//! Offline stand-in for the subset of [`rand` 0.8] this workspace uses.
//!
//! The build environment has no network access and no registry cache, so
//! the real `rand` crate cannot be fetched. This shim implements the exact
//! API surface the workspace consumes — [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen`, `gen_range` and `gen_bool` — on top of a xoshiro256++ generator.
//!
//! The stream differs from upstream `StdRng` (which is ChaCha-based); the
//! workspace only relies on determinism-given-seed and statistical
//! quality, not on a specific byte stream.
//!
//! [`rand` 0.8]: https://docs.rs/rand/0.8

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Constructing generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly "over their natural domain" by
/// [`Rng::gen`]: `[0, 1)` for floats, the full range for integers.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased-enough integer draw in `[0, span)` via 128-bit widening
/// multiply (Lemire's method without the rejection step; bias is
/// < 2⁻⁶⁴ · span, immaterial for simulation workloads).
fn draw_index<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + draw_index(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-domain inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                lo + draw_index(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

/// High-level sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    ///
    /// # Panics
    /// Panics on an empty range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded through SplitMix64.
    ///
    /// Not the upstream ChaCha-based `StdRng`; deterministic per seed and
    /// statistically strong, which is all the workspace requires.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range_with_correct_mean() {
        let mut r = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_covers_integer_domain() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let i = r.gen_range(0..10usize);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let i = r.gen_range(3..=5u32);
            assert!((3..=5).contains(&i));
        }
        assert_eq!(r.gen_range(4..5usize), 4, "single-element range");
    }

    #[test]
    fn gen_range_float_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&x));
            let y = r.gen_range(1.0..=2.0f64);
            assert!((1.0..=2.0).contains(&y));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(5);
        let _ = r.gen_range(5..5usize);
    }
}

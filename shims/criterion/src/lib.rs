//! Offline stand-in for the subset of the [criterion] benchmark API this
//! workspace uses.
//!
//! The build environment cannot fetch crates, so this shim re-implements
//! the handful of entry points the `crates/bench` benches call —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`]/[`Bencher::iter_with_setup`], [`BenchmarkId`] and the
//! `criterion_group!`/`criterion_main!` macros — with a simple
//! warmup-then-sample timing loop. Results print as
//! `name  median  mean  (samples)` lines instead of criterion's full
//! statistical report; good enough to compare hot-path costs run-to-run.
//!
//! [criterion]: https://docs.rs/criterion

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock spent measuring one sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(20);

/// One benchmark sample: `iters` iterations took `elapsed`.
#[derive(Debug, Clone, Copy)]
struct Sample {
    iters: u64,
    elapsed: Duration,
}

impl Sample {
    fn ns_per_iter(&self) -> f64 {
        self.elapsed.as_secs_f64() * 1e9 / self.iters.max(1) as f64
    }
}

/// Collects timing samples for one benchmark.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Sample>,
    /// Iterations per sample, calibrated on the first sample.
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, batching iterations so each sample spans roughly
    /// [`SAMPLE_TARGET`].
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.iters_per_sample == 0 {
            // Calibrate: run until the target elapses once.
            let start = Instant::now();
            let mut n = 0u64;
            while start.elapsed() < SAMPLE_TARGET {
                black_box(routine());
                n += 1;
            }
            self.iters_per_sample = n.max(1);
            self.samples.push(Sample {
                iters: n.max(1),
                elapsed: start.elapsed(),
            });
            return;
        }
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.samples.push(Sample {
            iters: self.iters_per_sample,
            elapsed: start.elapsed(),
        });
    }

    /// Times `routine` over inputs produced by `setup`; only the routine
    /// is measured.
    pub fn iter_with_setup<I, O, S, F>(&mut self, mut setup: S, mut routine: F)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // Setup cost is excluded by timing each call individually, so
        // batching is unnecessary (these routines are macro-scale).
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.samples.push(Sample {
            iters: 1,
            elapsed: start.elapsed(),
        });
    }

    fn summarise(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<44} no samples");
            return;
        }
        let mut per_iter: Vec<f64> = self.samples.iter().map(Sample::ns_per_iter).collect();
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!(
            "{name:<44} median {}  mean {}  ({} samples)",
            format_ns(median),
            format_ns(mean),
            per_iter.len()
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:>8.1} ns")
    } else if ns < 1e6 {
        format!("{:>8.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:>8.2} ms", ns / 1e6)
    } else {
        format!("{:>8.3} s ", ns / 1e9)
    }
}

/// Identifies a parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Throughput annotation (accepted and ignored by this shim).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 30 }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        b.summarise(name);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for subsequent benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.c.sample_size = n.max(2);
        self
    }

    /// Accepted for API compatibility; this shim reports ns/iter only.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark under the group's name.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let full = format!("{}/{id}", self.name);
        self.c.bench_function(&full, f);
        self
    }

    /// Runs one parameterised benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{id}", self.name);
        self.c.bench_function(&full, |b| f(b, input));
        self
    }

    /// Ends the group (printing happens per-bench; nothing to flush).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u64;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn group_runs_parameterised_benches() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        let mut hits = 0u64;
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| hits += n)
        });
        group.finish();
        assert!(hits >= 8, "two samples of at least one iteration each");
    }

    #[test]
    fn iter_with_setup_excludes_setup() {
        let mut b = Bencher::default();
        b.iter_with_setup(|| vec![1u8; 8], |v| v.len());
        assert_eq!(b.samples.len(), 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(32).to_string(), "32");
        assert_eq!(BenchmarkId::new("fit", 8).to_string(), "fit/8");
    }
}

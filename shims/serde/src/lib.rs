//! Offline stand-in for the `serde` trait names this workspace derives.
//!
//! The build environment has no network access, so the real `serde`
//! cannot be fetched. The workspace derives `Serialize`/`Deserialize` on
//! its public types for downstream compatibility but performs no serde
//! serialisation itself (structured export is hand-rolled JSON in
//! `msvs-telemetry`). This crate therefore provides the two trait names
//! as blanket-implemented markers plus no-op derive macros, keeping every
//! `use serde::{Deserialize, Serialize}` and `#[derive(...)]` site
//! source-compatible with the real crate.

/// Marker stand-in for `serde::Serialize`; blanket-implemented.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize<'de>`; blanket-implemented.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

#[cfg(all(test, feature = "derive"))]
mod tests {
    #[test]
    fn derives_compile_and_traits_are_satisfied() {
        #[derive(crate::Serialize, crate::Deserialize)]
        struct Probe {
            _x: u32,
        }

        fn needs_serialize<T: crate::Serialize>(_: &T) {}
        needs_serialize(&Probe { _x: 1 });
    }
}

//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for the
//! offline [`serde`] stand-in.
//!
//! The workspace derives these traits on its public types for downstream
//! compatibility but never serialises through serde itself (structured
//! export goes through `msvs-telemetry`'s hand-rolled JSON). The stand-in
//! `serde` crate blanket-implements its marker traits, so these derives
//! only need to exist — they expand to nothing.

use proc_macro::TokenStream;

/// Expands to nothing; `serde::Serialize` is blanket-implemented.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `serde::Deserialize` is blanket-implemented.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

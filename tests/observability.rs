//! Observability guarantees: the hierarchical span tree nests the way the
//! pipeline runs (interval → stage → per-group/per-batch work), the
//! Chrome-trace export and the bench document both satisfy their schemas,
//! and a damaged journal is summarised lossily rather than refused.

use msvs::core::{CompressorConfig, GroupingConfig, SchemeConfig};
use msvs::sim::{run_bench, validate_bench_json, BenchOptions, Simulation, SimulationConfig};
use msvs::telemetry::{
    chrome_trace, stages, validate_chrome_trace, EventJournal, Json, SpanRecord,
};
use msvs::types::SimDuration;

fn traced_run(seed: u64, threads: usize) -> Simulation {
    let scheme = SchemeConfig {
        compressor: CompressorConfig {
            window: 16,
            epochs: 10,
            ..Default::default()
        },
        grouping: GroupingConfig {
            k_min: 2,
            k_max: 5,
            ..Default::default()
        },
        ..Default::default()
    };
    let config = SimulationConfig::builder()
        .users(24)
        .intervals(2)
        .warmup_intervals(1)
        .interval(SimDuration::from_mins(2))
        .scheme(scheme)
        .threads(threads)
        .seed(seed)
        .build()
        .expect("test config is valid");
    let mut sim = Simulation::new(config).expect("scenario builds");
    sim.warm_up().expect("warm-up runs");
    for i in 0..2 {
        sim.run_interval(i).expect("interval runs");
    }
    sim
}

fn by_name<'a>(spans: &'a [SpanRecord], name: &str) -> Vec<&'a SpanRecord> {
    spans.iter().filter(|s| s.name == name).collect()
}

fn find(spans: &[SpanRecord], id: u64) -> &SpanRecord {
    spans.iter().find(|s| s.id == id).expect("parent id exists")
}

#[test]
fn span_tree_nests_interval_stage_and_per_item_work() {
    let sim = traced_run(5, 2);
    let spans = sim.telemetry().spans();

    // Roots: one interval span per warm-up + scored interval, nothing above.
    let intervals = by_name(&spans, stages::INTERVAL);
    assert_eq!(intervals.len(), 3, "1 warm-up + 2 scored intervals");
    assert!(intervals.iter().all(|s| s.parent.is_none()));
    // Scored intervals carry their index; the warm-up does not.
    let indices: Vec<_> = intervals.iter().filter_map(|s| s.attrs.interval).collect();
    assert_eq!(indices, vec![0, 1]);

    // Stage spans sit under an interval.
    for stage in [stages::UDT_INGEST, stages::SCHEME_PREDICT, stages::PLAYBACK] {
        let stage_spans = by_name(&spans, stage);
        assert!(!stage_spans.is_empty(), "{stage} spans recorded");
        for s in &stage_spans {
            let parent = find(&spans, s.parent.expect("stage span has a parent"));
            assert_eq!(parent.name, stages::INTERVAL, "{stage} nests in interval");
        }
    }

    // Per-group work: playback_group under playback, with a group attr.
    for s in by_name(&spans, stages::PLAYBACK_GROUP) {
        assert_eq!(find(&spans, s.parent.unwrap()).name, stages::PLAYBACK);
        assert!(s.attrs.group.is_some(), "playback_group carries its group");
    }

    // Per-batch work: cnn_encode_batch under cnn_forward, with a batch attr.
    let batches = by_name(&spans, stages::CNN_ENCODE_BATCH);
    assert!(!batches.is_empty(), "CNN encode ran in traced batches");
    for s in &batches {
        assert_eq!(find(&spans, s.parent.unwrap()).name, stages::CNN_FORWARD);
        assert!(s.attrs.batch.is_some(), "encode batch carries its index");
    }

    // Per-round work: kmeans_assign/update under kmeans_fit.
    for name in [stages::KMEANS_ASSIGN, stages::KMEANS_UPDATE] {
        let rounds = by_name(&spans, name);
        assert!(!rounds.is_empty(), "{name} spans recorded");
        for s in &rounds {
            assert_eq!(find(&spans, s.parent.unwrap()).name, stages::KMEANS_FIT);
        }
    }
}

#[test]
fn chrome_trace_export_satisfies_the_schema() {
    let sim = traced_run(5, 2);
    let spans = sim.telemetry().spans();
    let trace = chrome_trace(&spans, "observability test");
    validate_chrome_trace(&trace).expect("export is schema-valid");

    // Round-trips through serialisation (what `msvs run --trace` writes).
    let reparsed = Json::parse(&trace.to_string()).expect("valid JSON text");
    validate_chrome_trace(&reparsed).expect("reparsed export is schema-valid");

    // The event array mirrors the span tree: one X event per span, with
    // the id/parent/attrs carried in args.
    let events = match &reparsed {
        Json::Arr(events) => events,
        _ => panic!("chrome trace is a JSON array"),
    };
    let complete: Vec<_> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .collect();
    assert_eq!(complete.len(), spans.len());
    let interval_events = complete
        .iter()
        .filter(|e| {
            e.get("name").and_then(Json::as_str) == Some(stages::INTERVAL)
                && e.get("args").and_then(|a| a.get("interval")).is_some()
        })
        .count();
    assert_eq!(interval_events, 2, "both scored intervals are annotated");
}

#[test]
fn bench_document_from_a_tiny_run_is_schema_valid() {
    let doc = run_bench(&BenchOptions {
        seed: 11,
        users: 24,
        intervals: 1,
        threads: 2,
        shards: 1,
        backend: msvs::sim::BackendKind::Scalar,
        ..Default::default()
    })
    .expect("bench run");
    validate_bench_json(&doc).expect("schema-valid document");
    let stages_obj = doc.get("stages").expect("stages present");
    for stage in [stages::SCHEME_PREDICT, stages::PLAYBACK, stages::UDT_INGEST] {
        assert!(stages_obj.get(stage).is_some(), "{stage} in bench stages");
    }
}

#[test]
fn committed_bench_baselines_are_schema_valid() {
    for name in ["BENCH_5.json", "BENCH_6.json", "BENCH_7.json"] {
        let path = format!("{}/results/{name}", env!("CARGO_MANIFEST_DIR"));
        let text = std::fs::read_to_string(&path).expect("bench baseline is committed");
        let doc = Json::parse(&text).expect("baseline parses");
        validate_bench_json(&doc).unwrap_or_else(|e| panic!("{name} is not schema-valid: {e}"));
    }
    // The v2 baseline records the compute backend that produced it.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/results/BENCH_7.json");
    let doc = Json::parse(&std::fs::read_to_string(path).unwrap()).unwrap();
    assert_eq!(msvs::sim::bench_backend_name(&doc), "simd");
    // The sharded baseline carries the per-shard demand attribution.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/results/BENCH_6.json");
    let doc = Json::parse(&std::fs::read_to_string(path).unwrap()).unwrap();
    assert_eq!(doc.get("shards").and_then(Json::as_u64), Some(4));
    assert!(
        doc.get("shard_plane")
            .and_then(|p| p.get("demand"))
            .and_then(|d| d.get("shard_3"))
            .is_some(),
        "BENCH_6.json records per-shard demand rows"
    );
}

#[test]
fn damaged_journal_is_summarised_lossily_and_flagged_when_truncated() {
    let sim = traced_run(9, 1);
    let jsonl = sim.telemetry().journal().to_jsonl();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert!(lines.len() > 4, "journal has enough lines to damage");

    // Damage a middle line: still summarisable, skip is accounted for.
    let mut damaged: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
    damaged[2] = damaged[2].replace("\"t_ms\"", "\"t_m");
    let (journal, report) = EventJournal::parse_jsonl_lossy(&damaged.join("\n"));
    assert_eq!(report.skipped.len(), 1);
    assert_eq!(report.skipped[0].0, 3, "1-based line number of the damage");
    assert!(!report.truncated);
    assert_eq!(journal.entries().len(), lines.len() - 1);

    // Chop the final line mid-record: the truncation flag trips.
    let cut = jsonl.trim_end();
    let (_, report) = EventJournal::parse_jsonl_lossy(&cut[..cut.len() - 10]);
    assert!(report.truncated, "a corrupt final line means truncation");
}

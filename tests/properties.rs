//! Property-based tests over the workspace's core invariants.

use msvs::channel::{group_resource_demand, link::cqi_efficiency};
use msvs::cluster::{silhouette, KMeans, KMeansConfig};
use msvs::core::SwipingAbstraction;
use msvs::types::stats::{dirichlet, Ecdf, Zipf};
use msvs::types::{
    Hertz, Mbps, Position, RepresentationLevel, SimDuration, SimTime, VideoCategory, VideoId, Watts,
};
use msvs::udt::{TimeSeries, WatchRecord};
use msvs::video::{EngagementModel, UserProfile};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dbm_round_trip(dbm in -60.0..60.0f64) {
        let w = Watts::from_dbm(dbm);
        prop_assert!((w.as_dbm() - dbm).abs() < 1e-9);
    }

    #[test]
    fn position_distance_is_metric(ax in -1e3..1e3f64, ay in -1e3..1e3f64,
                                   bx in -1e3..1e3f64, by in -1e3..1e3f64,
                                   cx in -1e3..1e3f64, cy in -1e3..1e3f64) {
        let (a, b, c) = (Position::new(ax, ay), Position::new(bx, by), Position::new(cx, cy));
        prop_assert!((a.distance_to(b).value() - b.distance_to(a).value()).abs() < 1e-9);
        prop_assert!(a.distance_to(a).value() < 1e-9);
        // Triangle inequality.
        prop_assert!(a.distance_to(c).value() <= a.distance_to(b).value() + b.distance_to(c).value() + 1e-9);
    }

    #[test]
    fn ecdf_is_monotone_cdf(mut xs in prop::collection::vec(0.0..100.0f64, 1..50),
                            probe in prop::collection::vec(0.0..120.0f64, 1..20)) {
        let e = Ecdf::new(xs.drain(..));
        let mut sorted_probe = probe;
        sorted_probe.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0.0;
        for &t in &sorted_probe {
            let v = e.eval(t);
            prop_assert!((0.0..=1.0).contains(&v));
            prop_assert!(v >= prev - 1e-12);
            prev = v;
        }
    }

    #[test]
    fn ecdf_truncated_mean_bounded(xs in prop::collection::vec(0.0..100.0f64, 1..40),
                                   cap in 0.1..120.0f64) {
        let e = Ecdf::new(xs.iter().copied());
        let tm = e.truncated_mean(cap);
        prop_assert!(tm <= cap + 1e-9);
        prop_assert!(tm <= e.mean() + 1e-9);
        prop_assert!(tm >= 0.0);
    }

    #[test]
    fn zipf_pmf_sums_to_one(n in 1usize..200, s in 0.0..2.5f64) {
        let z = Zipf::new(n, s).unwrap();
        let total: f64 = (0..n).map(|r| z.pmf(r)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dirichlet_is_probability_vector(alpha in 0.05..10.0f64, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = dirichlet(&mut rng, alpha, 8);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn cqi_efficiency_monotone(a in -20.0..40.0f64, b in -20.0..40.0f64) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(cqi_efficiency(lo) <= cqi_efficiency(hi));
    }

    #[test]
    fn rb_demand_monotone_in_rate_and_efficiency(
        rate in 0.01..50.0f64, eff in 0.15..6.0f64, extra in 0.01..10.0f64) {
        let bw = Hertz(180_000.0);
        let base = group_resource_demand(Mbps(rate), eff, bw).value();
        let more_rate = group_resource_demand(Mbps(rate + extra), eff, bw).value();
        let more_eff = group_resource_demand(Mbps(rate), eff + extra, bw).value();
        prop_assert!(more_rate > base);
        prop_assert!(more_eff < base);
    }

    #[test]
    fn kmeans_assignments_always_valid(
        points in prop::collection::vec(
            prop::collection::vec(-100.0..100.0f64, 3), 5..40),
        k in 1usize..5, seed in 0u64..100) {
        let k = k.min(points.len());
        let fit = KMeans::new(KMeansConfig { k, seed, ..Default::default() })
            .fit(&points).unwrap();
        prop_assert_eq!(fit.assignments.len(), points.len());
        prop_assert!(fit.assignments.iter().all(|&a| a < k));
        prop_assert!(fit.inertia >= 0.0);
        let s = silhouette(&points, &fit.assignments);
        prop_assert!((-1.0..=1.0).contains(&s));
    }

    #[test]
    fn engagement_sample_bounded(interest in 0.0..1.0f64, len_s in 1u64..120,
                                 seed in 0u64..500) {
        let m = EngagementModel::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let dur = SimDuration::from_secs(len_s);
        let (w, completed) = m.sample_watch(&mut rng, interest,
                                            RepresentationLevel::P720, dur);
        prop_assert!(w <= dur);
        if completed { prop_assert_eq!(w, dur); }
    }

    #[test]
    fn km_swipe_cdf_is_a_cdf_under_censoring(
        observations in prop::collection::vec((0.5..60.0f64, prop::bool::ANY), 1..80),
        probes in prop::collection::vec(0.0..80.0f64, 1..15)) {
        let records: Vec<WatchRecord> = observations.iter().map(|&(d, completed)| WatchRecord {
            video: VideoId(0),
            category: VideoCategory::News,
            level: RepresentationLevel::P480,
            watched: SimDuration::from_secs_f64(d),
            video_duration: SimDuration::from_secs(60),
            completed,
        }).collect();
        let s = SwipingAbstraction::from_records(records.iter());
        let mut sorted = probes;
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0.0;
        for &t in &sorted {
            let f = s.cumulative_probability(VideoCategory::News, t);
            prop_assert!((0.0..=1.0).contains(&f), "F({t}) = {f}");
            prop_assert!(f + 1e-12 >= prev, "CDF must be monotone");
            prev = f;
        }
    }

    #[test]
    fn km_engagement_bounded_by_cap_and_monotone_in_cap(
        observations in prop::collection::vec((0.5..60.0f64, prop::bool::ANY), 1..60),
        cap_a in 1.0..40.0f64, extra in 0.0..30.0f64) {
        let records: Vec<WatchRecord> = observations.iter().map(|&(d, completed)| WatchRecord {
            video: VideoId(0),
            category: VideoCategory::Food,
            level: RepresentationLevel::P480,
            watched: SimDuration::from_secs_f64(d),
            video_duration: SimDuration::from_secs(60),
            completed,
        }).collect();
        let s = SwipingAbstraction::from_records(records.iter());
        // SimDuration rounds to milliseconds; compare against the rounded cap.
        let cap = SimDuration::from_secs_f64(cap_a);
        let cap_rounded = cap.as_secs_f64();
        let e_a = s.expected_engagement(VideoCategory::Food, cap);
        let e_b = s.expected_engagement(
            VideoCategory::Food, SimDuration::from_secs_f64(cap_rounded + extra));
        prop_assert!(e_a.as_secs_f64() <= cap_rounded + 1e-6);
        prop_assert!(e_b.as_secs_f64() + 1e-6 >= e_a.as_secs_f64(),
            "engagement must grow with the cap");
        // The group hold time dominates the single-viewer engagement.
        let hold = s.expected_max_engagement(VideoCategory::Food, 7, cap);
        prop_assert!(hold.as_secs_f64() + 0.01 >= e_a.as_secs_f64());
    }

    #[test]
    fn swiping_expected_max_monotone_in_group_size(
        durations in prop::collection::vec(0.5..60.0f64, 2..60),
        n1 in 1usize..10, n2 in 10usize..100) {
        let records: Vec<WatchRecord> = durations.iter().map(|&d| WatchRecord {
            video: VideoId(0),
            category: VideoCategory::Music,
            level: RepresentationLevel::P480,
            watched: SimDuration::from_secs_f64(d),
            video_duration: SimDuration::from_secs(60),
            completed: false,
        }).collect();
        let s = SwipingAbstraction::from_records(records.iter());
        let cap = SimDuration::from_secs(60);
        let small = s.expected_max_engagement(VideoCategory::Music, n1, cap);
        let large = s.expected_max_engagement(VideoCategory::Music, n2, cap);
        prop_assert!(large >= small);
        prop_assert!(large <= cap);
        // And always at least the single-viewer expectation.
        let single = s.expected_engagement(VideoCategory::Music, cap);
        prop_assert!(small.as_secs_f64() + 0.05 >= single.as_secs_f64());
    }

    #[test]
    fn time_series_never_exceeds_capacity(cap in 1usize..50, pushes in 0usize..200) {
        let mut ts = TimeSeries::new(cap);
        for i in 0..pushes {
            ts.push(SimTime::from_secs(i as u64), i as f64);
        }
        prop_assert!(ts.len() <= cap);
        prop_assert_eq!(ts.len(), pushes.min(cap));
        if pushes > 0 {
            let (_, newest) = *ts.latest().unwrap();
            prop_assert_eq!(newest as usize, pushes - 1);
        }
    }

    #[test]
    fn preference_reinforce_stays_normalised(
        seed in 0u64..1000, strength in 0.0..1.0f64, cat_idx in 0usize..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p = UserProfile::generate(msvs::types::UserId(0), 0.5, &mut rng);
        p.reinforce(VideoCategory::ALL[cat_idx], strength);
        let total: f64 = p.preferences().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        prop_assert!(p.preferences().iter().all(|&x| (0.0..=1.0).contains(&x)));
    }
}

//! Property-style tests over the workspace's core invariants.
//!
//! Formerly written with `proptest`; the offline build environment cannot
//! fetch it, so each property now draws its cases from a seeded [`StdRng`]
//! loop — same invariants, deterministic inputs, zero external deps.

use msvs::channel::{group_resource_demand, link::cqi_efficiency};
use msvs::cluster::{silhouette, KMeans, KMeansConfig};
use msvs::core::SwipingAbstraction;
use msvs::types::stats::{dirichlet, Ecdf, Zipf};
use msvs::types::{
    Hertz, Mbps, Position, RepresentationLevel, SimDuration, SimTime, VideoCategory, VideoId, Watts,
};
use msvs::udt::{TimeSeries, WatchRecord};
use msvs::video::{EngagementModel, UserProfile};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Cases per property (matches the old `ProptestConfig::with_cases(64)`).
const CASES: u64 = 64;

/// One seeded generator per case, so failures reproduce by case index.
fn case_rng(property: u64, case: u64) -> StdRng {
    StdRng::seed_from_u64(property.wrapping_mul(0x9E37_79B9) ^ case)
}

#[test]
fn dbm_round_trip() {
    for case in 0..CASES {
        let mut rng = case_rng(1, case);
        let dbm = rng.gen_range(-60.0..60.0f64);
        let w = Watts::from_dbm(dbm);
        assert!((w.as_dbm() - dbm).abs() < 1e-9, "dbm {dbm}");
    }
}

#[test]
fn position_distance_is_metric() {
    for case in 0..CASES {
        let mut rng = case_rng(2, case);
        let mut p = || Position::new(rng.gen_range(-1e3..1e3), rng.gen_range(-1e3..1e3));
        let (a, b, c) = (p(), p(), p());
        assert!((a.distance_to(b).value() - b.distance_to(a).value()).abs() < 1e-9);
        assert!(a.distance_to(a).value() < 1e-9);
        // Triangle inequality.
        assert!(
            a.distance_to(c).value() <= a.distance_to(b).value() + b.distance_to(c).value() + 1e-9
        );
    }
}

#[test]
fn ecdf_is_monotone_cdf() {
    for case in 0..CASES {
        let mut rng = case_rng(3, case);
        let n = rng.gen_range(1..50usize);
        let xs: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..100.0)).collect();
        let e = Ecdf::new(xs.iter().copied());
        let m = rng.gen_range(1..20usize);
        let mut probe: Vec<f64> = (0..m).map(|_| rng.gen_range(0.0..120.0)).collect();
        probe.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0.0;
        for &t in &probe {
            let v = e.eval(t);
            assert!((0.0..=1.0).contains(&v));
            assert!(v >= prev - 1e-12);
            prev = v;
        }
    }
}

#[test]
fn ecdf_truncated_mean_bounded() {
    for case in 0..CASES {
        let mut rng = case_rng(4, case);
        let n = rng.gen_range(1..40usize);
        let xs: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..100.0)).collect();
        let cap = rng.gen_range(0.1..120.0f64);
        let e = Ecdf::new(xs.iter().copied());
        let tm = e.truncated_mean(cap);
        assert!(tm <= cap + 1e-9);
        assert!(tm <= e.mean() + 1e-9);
        assert!(tm >= 0.0);
    }
}

#[test]
fn zipf_pmf_sums_to_one() {
    for case in 0..CASES {
        let mut rng = case_rng(5, case);
        let n = rng.gen_range(1..200usize);
        let s = rng.gen_range(0.0..2.5f64);
        let z = Zipf::new(n, s).unwrap();
        let total: f64 = (0..n).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9, "n {n} s {s}");
    }
}

#[test]
fn dirichlet_is_probability_vector() {
    for case in 0..CASES {
        let mut rng = case_rng(6, case);
        let alpha = rng.gen_range(0.05..10.0f64);
        let mut draw = StdRng::seed_from_u64(rng.gen_range(0..1000u64));
        let p = dirichlet(&mut draw, alpha, 8);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }
}

#[test]
fn cqi_efficiency_monotone() {
    for case in 0..CASES {
        let mut rng = case_rng(7, case);
        let a = rng.gen_range(-20.0..40.0f64);
        let b = rng.gen_range(-20.0..40.0f64);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(cqi_efficiency(lo) <= cqi_efficiency(hi));
    }
}

#[test]
fn rb_demand_monotone_in_rate_and_efficiency() {
    for case in 0..CASES {
        let mut rng = case_rng(8, case);
        let rate = rng.gen_range(0.01..50.0f64);
        let eff = rng.gen_range(0.15..6.0f64);
        let extra = rng.gen_range(0.01..10.0f64);
        let bw = Hertz(180_000.0);
        let base = group_resource_demand(Mbps(rate), eff, bw).value();
        let more_rate = group_resource_demand(Mbps(rate + extra), eff, bw).value();
        let more_eff = group_resource_demand(Mbps(rate), eff + extra, bw).value();
        assert!(more_rate > base);
        assert!(more_eff < base);
    }
}

#[test]
fn kmeans_assignments_always_valid() {
    for case in 0..CASES {
        let mut rng = case_rng(9, case);
        let n = rng.gen_range(5..40usize);
        let points: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..3).map(|_| rng.gen_range(-100.0..100.0)).collect())
            .collect();
        let k = rng.gen_range(1..5usize).min(points.len());
        let seed = rng.gen_range(0..100u64);
        let fit = KMeans::new(KMeansConfig {
            k,
            seed,
            ..Default::default()
        })
        .fit(&points)
        .unwrap();
        assert_eq!(fit.assignments.len(), points.len());
        assert!(fit.assignments.iter().all(|&a| a < k));
        assert!(fit.inertia >= 0.0);
        let s = silhouette(&points, &fit.assignments);
        assert!((-1.0..=1.0).contains(&s));
    }
}

#[test]
fn engagement_sample_bounded() {
    for case in 0..CASES {
        let mut rng = case_rng(10, case);
        let interest = rng.gen_range(0.0..1.0f64);
        let len_s = rng.gen_range(1..120u64);
        let m = EngagementModel::default();
        let mut draw = StdRng::seed_from_u64(rng.gen_range(0..500u64));
        let dur = SimDuration::from_secs(len_s);
        let (w, completed) = m.sample_watch(&mut draw, interest, RepresentationLevel::P720, dur);
        assert!(w <= dur);
        if completed {
            assert_eq!(w, dur);
        }
    }
}

/// Builds censored watch records for the Kaplan–Meier properties.
fn km_records(
    rng: &mut StdRng,
    n: usize,
    category: VideoCategory,
    censor: bool,
) -> Vec<WatchRecord> {
    (0..n)
        .map(|_| {
            let d = rng.gen_range(0.5..60.0f64);
            WatchRecord {
                video: VideoId(0),
                category,
                level: RepresentationLevel::P480,
                watched: SimDuration::from_secs_f64(d),
                video_duration: SimDuration::from_secs(60),
                completed: censor && rng.gen_bool(0.5),
            }
        })
        .collect()
}

#[test]
fn km_swipe_cdf_is_a_cdf_under_censoring() {
    for case in 0..CASES {
        let mut rng = case_rng(11, case);
        let n = rng.gen_range(1..80usize);
        let records = km_records(&mut rng, n, VideoCategory::News, true);
        let s = SwipingAbstraction::from_records(records.iter());
        let m = rng.gen_range(1..15usize);
        let mut probes: Vec<f64> = (0..m).map(|_| rng.gen_range(0.0..80.0)).collect();
        probes.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0.0;
        for &t in &probes {
            let f = s.cumulative_probability(VideoCategory::News, t);
            assert!((0.0..=1.0).contains(&f), "F({t}) = {f}");
            assert!(f + 1e-12 >= prev, "CDF must be monotone");
            prev = f;
        }
    }
}

#[test]
fn km_engagement_bounded_by_cap_and_monotone_in_cap() {
    for case in 0..CASES {
        let mut rng = case_rng(12, case);
        let n = rng.gen_range(1..60usize);
        let records = km_records(&mut rng, n, VideoCategory::Food, true);
        let cap_a = rng.gen_range(1.0..40.0f64);
        let extra = rng.gen_range(0.0..30.0f64);
        let s = SwipingAbstraction::from_records(records.iter());
        // SimDuration rounds to milliseconds; compare against the rounded cap.
        let cap = SimDuration::from_secs_f64(cap_a);
        let cap_rounded = cap.as_secs_f64();
        let e_a = s.expected_engagement(VideoCategory::Food, cap);
        let e_b = s.expected_engagement(
            VideoCategory::Food,
            SimDuration::from_secs_f64(cap_rounded + extra),
        );
        assert!(e_a.as_secs_f64() <= cap_rounded + 1e-6);
        assert!(
            e_b.as_secs_f64() + 1e-6 >= e_a.as_secs_f64(),
            "engagement must grow with the cap"
        );
        // The group hold time dominates the single-viewer engagement.
        let hold = s.expected_max_engagement(VideoCategory::Food, 7, cap);
        assert!(hold.as_secs_f64() + 0.01 >= e_a.as_secs_f64());
    }
}

#[test]
fn swiping_expected_max_monotone_in_group_size() {
    for case in 0..CASES {
        let mut rng = case_rng(13, case);
        let n = rng.gen_range(2..60usize);
        let records = km_records(&mut rng, n, VideoCategory::Music, false);
        let n1 = rng.gen_range(1..10usize);
        let n2 = rng.gen_range(10..100usize);
        let s = SwipingAbstraction::from_records(records.iter());
        let cap = SimDuration::from_secs(60);
        let small = s.expected_max_engagement(VideoCategory::Music, n1, cap);
        let large = s.expected_max_engagement(VideoCategory::Music, n2, cap);
        assert!(large >= small);
        assert!(large <= cap);
        // And always at least the single-viewer expectation.
        let single = s.expected_engagement(VideoCategory::Music, cap);
        assert!(small.as_secs_f64() + 0.05 >= single.as_secs_f64());
    }
}

#[test]
fn time_series_never_exceeds_capacity() {
    for case in 0..CASES {
        let mut rng = case_rng(14, case);
        let cap = rng.gen_range(1..50usize);
        let pushes = rng.gen_range(0..200usize);
        let mut ts = TimeSeries::new(cap);
        for i in 0..pushes {
            ts.push(SimTime::from_secs(i as u64), i as f64);
        }
        assert!(ts.len() <= cap);
        assert_eq!(ts.len(), pushes.min(cap));
        if pushes > 0 {
            let (_, newest) = *ts.latest().unwrap();
            assert_eq!(newest as usize, pushes - 1);
        }
    }
}

#[test]
fn preference_reinforce_stays_normalised() {
    for case in 0..CASES {
        let mut rng = case_rng(15, case);
        let strength = rng.gen_range(0.0..1.0f64);
        let cat_idx = rng.gen_range(0..8usize);
        let mut draw = StdRng::seed_from_u64(rng.gen_range(0..1000u64));
        let mut p = UserProfile::generate(msvs::types::UserId(0), 0.5, &mut draw);
        p.reinforce(VideoCategory::ALL[cat_idx], strength);
        let total: f64 = p.preferences().iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
        assert!(p.preferences().iter().all(|&x| (0.0..=1.0).contains(&x)));
    }
}

//! Report-level compute-backend guarantees: a seeded run routed through
//! the SIMD backend must produce a bit-identical `SimulationReport` to
//! the scalar reference, and the int8 quantized backend must complete
//! end to end with its prediction accuracy within a pinned bound of the
//! scalar run.

use msvs::core::{BackendKind, CompressorConfig, GroupingConfig, SchemeConfig};
use msvs::sim::{Simulation, SimulationConfig, SimulationReport};
use msvs::types::SimDuration;

fn small_scheme() -> SchemeConfig {
    let mut scheme = SchemeConfig {
        compressor: CompressorConfig {
            window: 16,
            epochs: 10,
            ..Default::default()
        },
        grouping: GroupingConfig {
            k_min: 2,
            k_max: 5,
            ..Default::default()
        },
        ..Default::default()
    };
    scheme.demand.interval = SimDuration::from_mins(2);
    scheme
}

/// Explicit `.backend(...)` override so these tests pin the backend even
/// when CI exports `MSVS_BACKEND` (the env var only sets the default).
fn seeded_config(seed: u64, users: usize, backend: BackendKind) -> SimulationConfig {
    SimulationConfig::builder()
        .users(users)
        .intervals(2)
        .warmup_intervals(1)
        .interval(SimDuration::from_mins(2))
        .scheme(small_scheme())
        .threads(1)
        .backend(backend)
        .seed(seed)
        .build()
        .expect("test config is valid")
}

/// Wall-clock timings differ run to run; everything else must match.
fn strip_wall(mut r: SimulationReport) -> SimulationReport {
    for i in &mut r.intervals {
        i.predict_wall_ms = 0.0;
    }
    r.telemetry = r.telemetry.with_zeroed_timings();
    r
}

#[test]
fn simd_backend_report_is_bit_identical_to_scalar() {
    let scalar = strip_wall(
        Simulation::run(seeded_config(33, 24, BackendKind::Scalar)).expect("scalar run"),
    );
    let simd =
        strip_wall(Simulation::run(seeded_config(33, 24, BackendKind::Simd)).expect("simd run"));
    assert_eq!(
        scalar, simd,
        "the SIMD backend reorders no per-element arithmetic, so a seeded \
         report must match the scalar reference bit for bit"
    );
}

#[test]
fn int8_backend_completes_with_bounded_accuracy_delta() {
    let scalar = Simulation::run(seeded_config(42, 200, BackendKind::Scalar)).expect("scalar run");
    let int8 = Simulation::run(seeded_config(42, 200, BackendKind::Int8)).expect("int8 run");
    assert_eq!(int8.intervals.len(), scalar.intervals.len());
    for (name, s, q) in [
        (
            "radio",
            scalar.mean_radio_accuracy(),
            int8.mean_radio_accuracy(),
        ),
        (
            "computing",
            scalar.mean_computing_accuracy(),
            int8.mean_computing_accuracy(),
        ),
    ] {
        assert!(
            s.is_finite() && q.is_finite(),
            "{name} accuracy must be finite (scalar {s}, int8 {q})"
        );
        // Pinned bound: quantizing the frozen encoder's weights perturbs
        // embeddings, which may shift k-means group boundaries, but the
        // end-to-end demand accuracy must stay within 5 percentage
        // points of the scalar run on this seeded scenario.
        assert!(
            (s - q).abs() < 0.05,
            "{name} accuracy delta too large: scalar {s:.4} vs int8 {q:.4}"
        );
    }
}

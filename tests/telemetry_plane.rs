//! Telemetry-plane guarantees: the Prometheus exposition of a real run
//! conforms to the text format, the SLO watchdog's breach stream is
//! deterministic across worker-pool and shard-deployment sizes, and the
//! whole plane is observer-effect free — scraping a live run or arming
//! an empty policy leaves the `SimulationReport` bit-identical.

use std::collections::BTreeMap;

use msvs::core::{CompressorConfig, GroupingConfig, SchemeConfig};
use msvs::faults::FaultPlan;
use msvs::sim::{Simulation, SimulationConfig, SimulationReport};
use msvs::telemetry::{expo, flame, Event, MetricsServer, SloPolicy};
use msvs::types::SimDuration;

fn small_scheme() -> SchemeConfig {
    let mut scheme = SchemeConfig {
        compressor: CompressorConfig {
            window: 16,
            epochs: 10,
            ..Default::default()
        },
        grouping: GroupingConfig {
            k_min: 2,
            k_max: 5,
            ..Default::default()
        },
        ..Default::default()
    };
    scheme.demand.interval = SimDuration::from_mins(2);
    scheme
}

fn seeded_config(seed: u64, shards: usize, threads: usize, intervals: usize) -> SimulationConfig {
    SimulationConfig::builder()
        .users(24)
        .base_stations(4)
        .intervals(intervals)
        .warmup_intervals(1)
        .interval(SimDuration::from_mins(2))
        .scheme(small_scheme())
        .threads(threads)
        .shards(shards)
        .seed(seed)
        .build()
        .expect("test config is valid")
}

/// A policy over sim-time signals only (no wall-clock stage ceilings), so
/// breach streams are exactly reproducible.
fn sim_time_policy() -> SloPolicy {
    SloPolicy {
        availability_floor: Some(0.9),
        coverage_floor: Some(0.9),
        degraded_budget: Some(0),
        breach_budget: 0,
        ..SloPolicy::none()
    }
}

/// Wall-clock timings differ run to run; everything else must match.
fn strip_wall(mut r: SimulationReport) -> SimulationReport {
    for i in &mut r.intervals {
        i.predict_wall_ms = 0.0;
    }
    r.telemetry = r.telemetry.with_zeroed_timings();
    r
}

/// The `(interval, slo, value, threshold, edge)` stream of a run's
/// journal, with wall-clock-derived rules excluded by construction
/// (the policy has none).
fn slo_stream(sim: &Simulation) -> Vec<(u64, String, f64, f64, &'static str)> {
    sim.telemetry()
        .journal()
        .entries()
        .iter()
        .filter_map(|e| match &e.event {
            Event::SloBreached {
                interval,
                slo,
                value,
                threshold,
            } => Some((*interval, slo.clone(), *value, *threshold, "breached")),
            Event::SloRecovered {
                interval,
                slo,
                value,
                threshold,
            } => Some((*interval, slo.clone(), *value, *threshold, "recovered")),
            _ => None,
        })
        .collect()
}

fn run_with_slo(seed: u64, shards: usize, threads: usize) -> Simulation {
    let mut cfg = seeded_config(seed, shards, threads, 4);
    cfg.faults = Some(FaultPlan::builtin("bs-crash").expect("builtin profile"));
    cfg.slo = Some(sim_time_policy());
    cfg.validate().expect("config with faults and slo is valid");
    let mut sim = Simulation::new(cfg).expect("sim builds");
    sim.warm_up().expect("warm-up runs");
    for i in 0..4 {
        sim.run_interval(i).expect("interval runs");
    }
    sim
}

/// Prometheus text-format conformance over a real run's registry: every
/// line is a `# HELP`, `# TYPE`, or sample line; metric names are legal;
/// every sample belongs to a family announced by a preceding `# TYPE`;
/// sample values parse as floats.
#[test]
fn exposition_of_a_real_run_conforms_to_the_text_format() {
    let sim = run_with_slo(33, 4, 1);
    let body = expo::render_prometheus(sim.telemetry().registry());
    assert!(!body.is_empty(), "a finished run must expose metrics");
    assert!(body.ends_with('\n'), "exposition must end with a newline");
    let legal_name = |name: &str| {
        !name.is_empty()
            && name
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    };
    let mut typed: BTreeMap<String, String> = BTreeMap::new();
    let mut samples = 0usize;
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.splitn(2, ' ');
            let name = it.next().unwrap();
            let kind = it.next().expect("TYPE line names a kind");
            assert!(legal_name(name), "illegal family name `{name}`");
            assert!(
                ["counter", "gauge", "summary"].contains(&kind),
                "unexpected metric kind `{kind}`"
            );
            typed.insert(name.to_string(), kind.to_string());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap();
            assert!(legal_name(name), "illegal family name `{name}`");
            continue;
        }
        assert!(!line.starts_with('#'), "unexpected comment line `{line}`");
        // Sample line: `name{label="v"} value` or `name value`.
        let (name_part, value) = line.rsplit_once(' ').expect("sample line has a value");
        assert!(
            value.parse::<f64>().is_ok(),
            "sample value `{value}` must parse as f64"
        );
        let name = name_part.split('{').next().unwrap();
        assert!(legal_name(name), "illegal metric name `{name}`");
        let family = name
            .strip_suffix("_count")
            .or_else(|| name.strip_suffix("_sum"))
            .unwrap_or(name);
        assert!(
            typed.contains_key(family),
            "sample `{name}` has no preceding # TYPE for `{family}`"
        );
        if let Some(labels) = name_part.strip_prefix(name) {
            if !labels.is_empty() {
                assert!(
                    labels.starts_with('{') && labels.ends_with('}'),
                    "malformed label block `{labels}`"
                );
            }
        }
        samples += 1;
    }
    assert!(samples > 10, "a run exposes many samples, got {samples}");
    // The run's own instruments are all present.
    for family in ["events_total", "stage_ms", "slo_breaches_total"] {
        assert!(typed.contains_key(family), "missing family `{family}`");
    }
}

/// The crash of shard 1 must breach the 0.9 availability floor, and the
/// full breach stream must be bit-identical at 1 vs 4 worker threads.
/// (Availability is cumulative, so a 2-of-4-intervals outage stays
/// breached through the end — no recovery edge is expected here.)
#[test]
fn slo_breach_stream_is_identical_across_thread_counts() {
    let serial = run_with_slo(33, 4, 1);
    let parallel = run_with_slo(33, 4, 4);
    let stream = slo_stream(&serial);
    assert_eq!(
        stream,
        slo_stream(&parallel),
        "breach stream must not depend on the worker-pool size"
    );
    assert!(
        stream
            .iter()
            .any(|(_, slo, _, _, edge)| slo == "availability" && *edge == "breached"),
        "bs-crash must breach the availability floor, got {stream:?}"
    );
}

/// Availability is a shard-plane signal, so the comparison across shard
/// counts covers the deployment-independent rules: the coverage and
/// degraded-budget breach streams must be bit-identical on 1 vs 4 shards
/// under the same `bs-crash` plan (whose outage is inert on 1 shard, as
/// its 5% uplink loss is not).
#[test]
fn slo_breach_stream_is_identical_across_shard_counts() {
    let single = run_with_slo(33, 1, 1);
    let sharded = run_with_slo(33, 4, 1);
    let deployment_free = |sim: &Simulation| {
        slo_stream(sim)
            .into_iter()
            .filter(|(_, slo, _, _, _)| slo != "availability")
            .collect::<Vec<_>>()
    };
    assert_eq!(
        deployment_free(&single),
        deployment_free(&sharded),
        "coverage/degraded breach stream must not depend on the shard count"
    );
}

/// Scraping `/metrics` and `/healthz` between every interval must not
/// perturb the run: the report stays bit-identical to an unserved run.
#[test]
fn metrics_server_has_zero_observer_effect() {
    let quiet = {
        let mut sim = Simulation::new(seeded_config(52, 4, 2, 3)).expect("sim builds");
        sim.warm_up().expect("warm-up runs");
        let mut report = SimulationReport::default();
        for i in 0..3 {
            report
                .intervals
                .push(sim.run_interval(i).expect("interval"));
        }
        report.telemetry = sim.telemetry().summary();
        report.shards = sim.store().sharded().then(|| sim.store().summary());
        strip_wall(report)
    };
    let scraped = {
        let mut sim = Simulation::new(seeded_config(52, 4, 2, 3)).expect("sim builds");
        let server = MetricsServer::bind(
            "127.0.0.1:0",
            sim.telemetry().registry().clone(),
            sim.health_board().clone(),
        )
        .expect("server binds an ephemeral port");
        let addr = server.addr();
        sim.warm_up().expect("warm-up runs");
        let mut report = SimulationReport::default();
        for i in 0..3 {
            report
                .intervals
                .push(sim.run_interval(i).expect("interval"));
            let metrics = expo::http_get(addr, "/metrics").expect("mid-run scrape");
            assert!(metrics.contains("# TYPE events_total counter"));
            let health = expo::http_get(addr, "/healthz").expect("mid-run health scrape");
            assert!(health.contains("\"state\":\"running\""));
        }
        sim.finish_health();
        let health = expo::http_get(addr, "/healthz").expect("final health scrape");
        assert!(health.contains("\"state\":\"finished\""));
        report.telemetry = sim.telemetry().summary();
        report.shards = sim.store().sharded().then(|| sim.store().summary());
        strip_wall(report)
    };
    assert_eq!(
        quiet, scraped,
        "a scraped run must produce a bit-identical report"
    );
}

/// An empty policy builds no watchdog: the report (including its `slo`
/// section) is bit-identical to running with no policy at all — the same
/// noop guarantee the fault plane gives.
#[test]
fn empty_slo_policy_is_bit_identical_to_no_policy() {
    for shards in [1, 4] {
        let clean =
            strip_wall(Simulation::run(seeded_config(61, shards, 1, 2)).expect("clean run"));
        assert!(clean.slo.is_none(), "no policy attaches no slo section");
        let mut cfg = seeded_config(61, shards, 1, 2);
        cfg.slo = Some(SloPolicy::none());
        cfg.validate().expect("empty policy is valid");
        let noop = strip_wall(Simulation::run(cfg).expect("noop-policy run"));
        assert_eq!(
            clean, noop,
            "{shards} shard(s): an empty policy must not perturb the report"
        );
    }
}

/// A live run's span tree collapses into non-empty inferno-style folded
/// stacks whose every line is `stack self_us`.
#[test]
fn run_spans_collapse_into_folded_stacks() {
    let sim = run_with_slo(47, 4, 1);
    let folded = flame::folded_stacks(&flame::from_spans(&sim.telemetry().spans()));
    assert!(!folded.is_empty(), "a run must produce folded stacks");
    for line in folded.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("line is `stack count`");
        assert!(!stack.is_empty());
        assert!(
            count.parse::<u64>().is_ok(),
            "self time `{count}` must be integer microseconds"
        );
    }
    assert!(
        folded.lines().any(|l| l.starts_with("interval;")),
        "interval children must appear as stacked frames"
    );
}

//! Cross-crate pipeline tests: drive the prediction scheme directly on
//! hand-built twins (no simulator) and check the pieces compose.

use msvs::channel::{Link, LinkConfig};
use msvs::core::{
    CompressorConfig, DtAssistedPredictor, GroupingConfig, GroupingStrategy, SchemeConfig,
};
use msvs::edge::{TranscodeModel, VideoCache};
use msvs::types::{
    Position, RepresentationLevel, SimDuration, SimTime, UserId, VideoCategory, VideoId,
};
use msvs::udt::{UdtStore, UserDigitalTwin, WatchRecord};
use msvs::video::{Catalog, CatalogConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a store with two clearly-separated behavioural archetypes.
fn bimodal_store(n: usize, seed: u64) -> UdtStore {
    let store = UdtStore::new();
    let mut rng = StdRng::seed_from_u64(seed);
    for u in 0..n {
        let mut twin = UserDigitalTwin::new(UserId(u as u32));
        let (snr, x, y, watch, fav) = if u < n / 2 {
            (21.0, 420.0, 520.0, 30.0, VideoCategory::News)
        } else {
            (8.0, 1000.0, 150.0, 4.0, VideoCategory::Game)
        };
        for s in 0..48u64 {
            let t = SimTime::from_secs(s * 5);
            twin.update_channel(t, snr + rng.gen::<f64>());
            twin.update_location(
                t,
                Position::new(x + rng.gen::<f64>() * 20.0, y + rng.gen::<f64>() * 20.0),
            );
            twin.record_watch(
                t,
                WatchRecord {
                    video: VideoId((s % 30) as u32),
                    category: if s % 2 == 0 { fav } else { VideoCategory::Food },
                    level: RepresentationLevel::P720,
                    watched: SimDuration::from_secs_f64(
                        msvs::types::stats::exponential(&mut rng, 1.0 / watch).min(55.0),
                    ),
                    video_duration: SimDuration::from_secs(55),
                    completed: false,
                },
            );
        }
        twin.refresh_preference_from_watches(SimTime::from_secs(300), 0.7);
        store.insert(twin);
    }
    store
}

fn fixtures() -> (Catalog, VideoCache, TranscodeModel, Link) {
    let catalog = Catalog::generate(CatalogConfig {
        n_videos: 200,
        seed: 13,
        ..Default::default()
    })
    .expect("catalog generates");
    let mut cache = VideoCache::new(60_000.0);
    cache.warm_from(&catalog);
    (
        catalog,
        cache,
        TranscodeModel::default(),
        Link::new(LinkConfig::default()),
    )
}

fn predictor(strategy: GroupingStrategy) -> DtAssistedPredictor {
    DtAssistedPredictor::new(SchemeConfig {
        compressor: CompressorConfig {
            window: 16,
            epochs: 20,
            ..Default::default()
        },
        grouping: GroupingConfig {
            k_min: 2,
            k_max: 6,
            strategy,
            ..Default::default()
        },
        ..Default::default()
    })
    .expect("valid scheme config")
}

#[test]
fn bimodal_population_separates_and_demands_differ() {
    let store = bimodal_store(40, 1);
    let (catalog, cache, transcode, link) = fixtures();
    let mut p = predictor(GroupingStrategy::FixedK(2));
    let outcome = p
        .predict(&store, &catalog, &cache, &transcode, &link)
        .expect("prediction runs");
    assert_eq!(outcome.grouping.k, 2);

    // Identify which group holds the good-channel archetype.
    let g0 = outcome.group_members(0);
    let good_group = if g0.iter().filter(|u| u.0 < 20).count() > g0.len() / 2 {
        0
    } else {
        1
    };
    let good = &outcome.groups[good_group];
    let bad = &outcome.groups[1 - good_group];
    assert!(
        good.min_efficiency > bad.min_efficiency,
        "good-channel group should have higher worst-member efficiency"
    );
    assert!(
        good.level >= bad.level,
        "good-channel group should sustain at least the same level"
    );
    // The News-loving long-watch group retains News far longer.
    let news_mean = outcome.swiping[good_group].mean_watch_secs(VideoCategory::News);
    let other_news = outcome.swiping[1 - good_group].mean_watch_secs(VideoCategory::News);
    assert!(news_mean > other_news);
}

#[test]
fn recommendations_track_group_preference() {
    let store = bimodal_store(40, 2);
    let (catalog, cache, transcode, link) = fixtures();
    let mut p = predictor(GroupingStrategy::FixedK(2));
    let outcome = p
        .predict(&store, &catalog, &cache, &transcode, &link)
        .expect("prediction runs");
    for (g, rec) in outcome.recommendations.iter().enumerate() {
        let mix = rec.category_mix(&catalog);
        let members = outcome.group_members(g);
        if members.is_empty() {
            continue;
        }
        let news_lovers = members.iter().filter(|u| u.0 < 20).count();
        let favourite_idx = if news_lovers > members.len() / 2 {
            VideoCategory::News.index()
        } else {
            VideoCategory::Game.index()
        };
        let uniform = 1.0 / VideoCategory::COUNT as f64;
        assert!(
            mix[favourite_idx] > uniform,
            "group {g} mix {mix:?} should over-weight its favourite"
        );
    }
}

#[test]
fn ddqn_strategy_runs_and_learns_across_calls() {
    let store = bimodal_store(30, 3);
    let (catalog, cache, transcode, link) = fixtures();
    let mut p = predictor(GroupingStrategy::Ddqn);
    p.pretrain_grouping(&store, 80).expect("pretraining runs");
    let mut rewards = Vec::new();
    for _ in 0..5 {
        let outcome = p
            .predict(&store, &catalog, &cache, &transcode, &link)
            .expect("prediction runs");
        rewards.push(outcome.grouping.reward);
        assert!(outcome.grouping.k >= 2 && outcome.grouping.k <= 6);
    }
    assert!(rewards.iter().all(|r| r.is_finite()));
}

#[test]
fn degraded_channel_raises_rb_demand() {
    let (catalog, cache, transcode, link) = fixtures();
    let run = |snr: f64| {
        let store = UdtStore::new();
        let mut rng = StdRng::seed_from_u64(4);
        for u in 0..20 {
            let mut twin = UserDigitalTwin::new(UserId(u));
            for s in 0..32u64 {
                let t = SimTime::from_secs(s * 5);
                twin.update_channel(t, snr + rng.gen::<f64>());
                twin.update_location(t, Position::new(500.0, 500.0));
                twin.record_watch(
                    t,
                    WatchRecord {
                        video: VideoId((s % 20) as u32),
                        category: VideoCategory::Music,
                        level: RepresentationLevel::P480,
                        watched: SimDuration::from_secs(10),
                        video_duration: SimDuration::from_secs(40),
                        completed: false,
                    },
                );
            }
            store.insert(twin);
        }
        let mut p = predictor(GroupingStrategy::FixedK(2));
        let outcome = p
            .predict(&store, &catalog, &cache, &transcode, &link)
            .expect("prediction runs");
        // RB per megabit normalises away level differences.
        let traffic: f64 = outcome.groups.iter().map(|g| g.expected_traffic_mb).sum();
        outcome.total_radio().value() / traffic
    };
    let good = run(20.0);
    let bad = run(2.0);
    assert!(
        bad > good * 2.0,
        "cell-edge users must cost more RB/Mb: good {good:.4}, bad {bad:.4}"
    );
}

#[test]
fn store_mutation_between_predictions_changes_outcome() {
    let store = bimodal_store(30, 5);
    let (catalog, cache, transcode, link) = fixtures();
    let mut p = predictor(GroupingStrategy::FixedK(3));
    // Compare RB per megabit: the scheme adapts bitrate to the channel, so
    // raw total RB can fall when traffic shrinks, but the per-Mb radio cost
    // must rise once every user sits at the cell edge.
    let rb_per_mb = |p: &mut DtAssistedPredictor| {
        let outcome = p
            .predict(&store, &catalog, &cache, &transcode, &link)
            .expect("prediction runs");
        let traffic: f64 = outcome.groups.iter().map(|g| g.expected_traffic_mb).sum();
        outcome.total_radio().value() / traffic
    };
    let before = rb_per_mb(&mut p);
    // Crash every user's channel.
    for id in store.user_ids() {
        for s in 0..64u64 {
            store
                .update_channel(id, SimTime::from_secs(400 + s), -2.0)
                .expect("user exists");
        }
    }
    let after = rb_per_mb(&mut p);
    assert!(
        after > before,
        "worse channel must raise per-Mb radio cost: {before:.4} -> {after:.4} RB/Mb"
    );
}

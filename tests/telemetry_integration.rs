//! End-to-end telemetry: the event sequence a two-interval simulation
//! journals, and the stage stats its report embeds.

use msvs::sim::{Simulation, SimulationConfig};
use msvs::telemetry::{stage, Entry, Event, EventJournal};
use msvs::types::SimDuration;

fn two_interval_config(seed: u64) -> SimulationConfig {
    let mut scheme = msvs::core::SchemeConfig {
        compressor: msvs::core::CompressorConfig {
            window: 16,
            epochs: 10,
            ..Default::default()
        },
        grouping: msvs::core::GroupingConfig {
            k_min: 2,
            k_max: 5,
            ..Default::default()
        },
        ..Default::default()
    };
    scheme.demand.interval = SimDuration::from_mins(2);
    SimulationConfig {
        n_users: 24,
        n_intervals: 2,
        warmup_intervals: 1,
        interval: SimDuration::from_mins(2),
        scheme,
        seed,
        ..Default::default()
    }
}

/// Runs warm-up plus both scored intervals, returning the journal entries
/// and the final report.
fn run_journaled(seed: u64) -> (Vec<Entry>, msvs::sim::SimulationReport) {
    let cfg = two_interval_config(seed);
    let n = cfg.n_intervals;
    let mut sim = Simulation::new(cfg).expect("scenario builds");
    sim.warm_up().expect("warm-up runs");
    let mut report = msvs::sim::SimulationReport::default();
    for i in 0..n {
        report
            .intervals
            .push(sim.run_interval(i).expect("interval runs"));
    }
    report.telemetry = sim.telemetry().summary();
    (sim.telemetry().journal().entries(), report)
}

#[test]
fn two_interval_run_journals_the_expected_event_sequence() {
    let (entries, report) = run_journaled(31);

    // The run opens with exactly one RunStarted, at simulation time zero.
    assert_eq!(entries[0].t_ms, 0);
    assert!(
        matches!(&entries[0].event, Event::RunStarted { scheme, seed }
            if scheme == "dt-assisted" && *seed == 31),
        "first event must be RunStarted, got {:?}",
        entries[0].event
    );
    let count = |name: &str| entries.iter().filter(|e| e.event.name() == name).count();
    assert_eq!(count("RunStarted"), 1);

    // One collection sweep per interval: warm-up plus the two scored.
    assert_eq!(count("CollectionCompleted"), 3);
    // Scored intervals journal their boundaries; warm-up does not.
    assert_eq!(count("IntervalStarted"), 2);
    assert_eq!(count("IntervalCompleted"), 2);
    // Each scored interval reports its prediction and playback stages.
    assert_eq!(count("StageCompleted"), 4);
    // Every prediction pass (warm-up included) emits one DemandPredicted.
    assert_eq!(count("DemandPredicted"), 3);
    // Grouping runs at least once per prediction pass, and many more times
    // during DDQN pretraining.
    assert!(count("GroupsFormed") >= 3);

    // Interval lifecycles nest: Started(0) < Completed(0) < Started(1)
    // < Completed(1), in record order.
    let boundary_positions: Vec<(usize, u64, bool)> = entries
        .iter()
        .enumerate()
        .filter_map(|(i, e)| match &e.event {
            Event::IntervalStarted { interval } => Some((i, *interval, false)),
            Event::IntervalCompleted { interval, .. } => Some((i, *interval, true)),
            _ => None,
        })
        .collect();
    let sequence: Vec<(u64, bool)> = boundary_positions
        .iter()
        .map(|&(_, n, done)| (n, done))
        .collect();
    assert_eq!(
        sequence,
        vec![(0, false), (0, true), (1, false), (1, true)],
        "interval events must nest in order"
    );

    // Timestamps are simulation time and never go backwards.
    assert!(
        entries.windows(2).all(|w| w[0].t_ms <= w[1].t_ms),
        "journal timestamps must be monotone"
    );
    // 1 warm-up + 2 scored intervals of 2 minutes each.
    assert_eq!(entries.last().unwrap().t_ms, 3 * 120_000);

    // The report's telemetry summary counts what the journal recorded.
    let events_total: u64 = report
        .telemetry
        .counters
        .iter()
        .filter(|(name, _, _)| name == "events_total")
        .map(|(_, _, v)| v)
        .sum();
    assert_eq!(events_total as usize, entries.len());
    // SCHEME_PREDICT percentiles come from the shared histogram: one
    // sample per prediction pass.
    let predict = report
        .telemetry
        .stages
        .iter()
        .find(|s| s.stage == stage::SCHEME_PREDICT)
        .expect("scheme_predict stage is timed");
    assert_eq!(predict.count, 3);
    assert!(predict.p50_ms > 0.0 && predict.p99_ms >= predict.p50_ms);
}

#[test]
fn journal_round_trips_through_jsonl_export() {
    let (entries, _) = run_journaled(32);
    let journal = EventJournal::new();
    for e in &entries {
        journal.record(e.t_ms, e.event.clone());
    }
    let parsed = EventJournal::parse_jsonl(&journal.to_jsonl()).expect("parses");
    assert_eq!(parsed.entries(), entries);
}

//! Control-plane fault tolerance: shard outages, checkpoint/restore and
//! failover routing. A crashed shard must fail its users over to live
//! neighbours and take them back after restoring from its boundary
//! checkpoint — conserving the twin population at every interval — a
//! partitioned shard must pin its users in place and push them into the
//! degradation ladder, and the whole outage machinery must be invisible
//! when unused: a fault plan with an empty outage list produces a
//! bit-identical `SimulationReport` to running with no plan at all, and
//! outage runs are bit-identical across worker-pool sizes.

use msvs::core::{CompressorConfig, GroupingConfig, SchemeConfig};
use msvs::faults::FaultPlan;
use msvs::sim::{Simulation, SimulationConfig, SimulationReport};
use msvs::telemetry::Event;
use msvs::types::SimDuration;

fn small_scheme() -> SchemeConfig {
    let mut scheme = SchemeConfig {
        compressor: CompressorConfig {
            window: 16,
            epochs: 10,
            ..Default::default()
        },
        grouping: GroupingConfig {
            k_min: 2,
            k_max: 5,
            ..Default::default()
        },
        ..Default::default()
    };
    scheme.demand.interval = SimDuration::from_mins(2);
    scheme
}

fn outage_config(seed: u64, shards: usize, threads: usize, intervals: usize) -> SimulationConfig {
    SimulationConfig::builder()
        .users(24)
        .base_stations(4)
        .intervals(intervals)
        .warmup_intervals(1)
        .interval(SimDuration::from_mins(2))
        .scheme(small_scheme())
        .threads(threads)
        .shards(shards)
        .seed(seed)
        .build()
        .expect("test config is valid")
}

fn with_profile(mut cfg: SimulationConfig, profile: &str) -> SimulationConfig {
    cfg.faults = Some(FaultPlan::builtin(profile).expect("builtin profile"));
    cfg.validate().expect("config with faults is valid");
    cfg
}

/// Wall-clock timings differ run to run; everything else must match.
fn strip_wall(mut r: SimulationReport) -> SimulationReport {
    for i in &mut r.intervals {
        i.predict_wall_ms = 0.0;
    }
    r.telemetry = r.telemetry.with_zeroed_timings();
    r
}

/// The acceptance scenario: a 4-shard, 4-thread run under `bs-crash`
/// completes the full kill → failover → restore cycle with the twin
/// population conserved at every interval boundary.
#[test]
fn bs_crash_conserves_twins_across_kill_failover_restore() {
    // bs-crash kills shard 1 at interval 1 for 2 intervals; 4 scored
    // intervals cover the kill, the dark window and the restore sweep.
    let cfg = with_profile(outage_config(33, 4, 4, 4), "bs-crash");
    let mut sim = Simulation::new(cfg).expect("scenario builds");
    sim.warm_up().expect("warm-up runs");
    for i in 0..4 {
        sim.run_interval(i).expect("interval runs");
        assert_eq!(
            sim.store().len(),
            24,
            "interval {i}: kill/failover/restore must conserve the twin population"
        );
    }
    let summary = sim.store().summary();
    assert_eq!(summary.outages_total, 1, "bs-crash schedules one outage");
    assert!(
        summary.failover_handovers_total > 0,
        "the crash must fail users over to live neighbours"
    );
    assert!(
        summary.checkpoint_bytes_total > 0,
        "going down captures a boundary checkpoint"
    );
    let users: usize = summary.demand.iter().map(|row| row.users).sum();
    assert_eq!(users, 24, "no twin duplicated or dropped");
    let row = &summary.demand[1];
    assert_eq!(row.down_intervals, 2, "shard 1 was dark for two intervals");
    assert!(
        row.availability < 1.0 && row.availability > 0.0,
        "shard 1 availability reflects the outage window, got {}",
        row.availability
    );
    assert!(
        row.users > 0,
        "the restore sweep must take users back onto the recovered shard"
    );
    // The lifecycle is journaled: one ShardDown, one ShardRestored.
    let journal = sim.telemetry().journal();
    let downs: Vec<_> = journal
        .entries()
        .iter()
        .filter_map(|e| match &e.event {
            Event::ShardDown { shard, mode, .. } => Some((*shard, mode.clone())),
            _ => None,
        })
        .collect();
    let restores: Vec<_> = journal
        .entries()
        .iter()
        .filter_map(|e| match &e.event {
            Event::ShardRestored { shard, mode, .. } => Some((*shard, mode.clone())),
            _ => None,
        })
        .collect();
    assert_eq!(downs, vec![(1, "crash".to_string())]);
    assert_eq!(restores, vec![(1, "crash".to_string())]);
}

/// A fault plan whose outage list is empty (and injects nothing else) is
/// a noop: the report must be bit-identical to running with no plan at
/// all, on both the single-shard and the sharded path.
#[test]
fn empty_outage_plan_is_bit_identical_to_no_plan() {
    for shards in [1, 4] {
        let clean =
            strip_wall(Simulation::run(outage_config(52, shards, 1, 2)).expect("clean run"));
        let mut cfg = outage_config(52, shards, 1, 2);
        cfg.faults = Some(FaultPlan::default());
        cfg.validate().expect("noop plan is valid");
        assert!(cfg.faults.as_ref().unwrap().outages.is_empty());
        let noop = strip_wall(Simulation::run(cfg).expect("noop-plan run"));
        assert_eq!(
            clean, noop,
            "{shards} shard(s): an empty outage plan must not perturb the report"
        );
    }
}

/// Outage runs must not depend on the worker-pool size: the outage
/// transitions, checkpoints and failover sweeps are all serial, so the
/// whole report — shard plane included — is bit-identical at 1 vs 4
/// threads under both builtin outage profiles.
#[test]
fn outage_runs_are_bit_identical_across_thread_counts() {
    for profile in ["bs-crash", "bs-flap"] {
        let run = |threads: usize| {
            let cfg = with_profile(outage_config(47, 4, threads, 4), profile);
            Simulation::run(cfg).expect("outage run")
        };
        assert_eq!(
            strip_wall(run(1)),
            strip_wall(run(4)),
            "{profile}: outage run must not depend on the worker-pool size"
        );
    }
}

/// A partitioned shard pins its users in place (no failover handovers)
/// while severing their uplink: every due report takes the loss/retry
/// path, which is what arms the PR-3 degradation ladder.
#[test]
fn partition_pins_users_and_feeds_the_degradation_ladder() {
    // bs-flap partitions shard 1 at intervals 1 and 3, one interval each.
    let cfg = with_profile(outage_config(61, 4, 1, 4), "bs-flap");
    let report = Simulation::run(cfg).expect("bs-flap run");
    let summary = report.shards.clone().expect("sharded summary");
    assert_eq!(summary.outages_total, 2, "bs-flap flaps twice");
    assert_eq!(
        summary.failover_handovers_total, 0,
        "partitioned users stay pinned to their shard"
    );
    assert_eq!(summary.demand[1].down_intervals, 2);
    let lost = report
        .telemetry
        .counters
        .iter()
        .find(|(name, label, _)| name == "fault_reports_total" && label == "lost")
        .map_or(0, |(_, _, v)| *v);
    assert!(
        lost > 0,
        "severed uplinks must surface as lost reports feeding retry/backoff"
    );
    let users: usize = summary.demand.iter().map(|row| row.users).sum();
    assert_eq!(users, 24, "partition never moves or drops a twin");
}

/// Outage specs aimed at shards the deployment doesn't have are inert:
/// the run completes and schedules nothing.
#[test]
fn outage_for_absent_shard_is_ignored() {
    // bs-crash targets shard 1; a single-shard run has only shard 0, and
    // the last live shard can never be downed anyway.
    let cfg = with_profile(outage_config(29, 1, 1, 3), "bs-crash");
    let report = Simulation::run(cfg).expect("single-shard bs-crash run");
    assert!(
        report.shards.is_none(),
        "single-shard runs never attach a shard summary"
    );
}

//! End-to-end integration tests: the full simulator, spanning every crate
//! in the workspace.

use msvs::sim::{report, DemandPredictorKind, Simulation, SimulationConfig, SimulationReport};
use msvs::types::SimDuration;

fn fast_config(seed: u64) -> SimulationConfig {
    let mut scheme = msvs::core::SchemeConfig::default();
    scheme.compressor.epochs = 15;
    scheme.compressor.window = 16;
    scheme.demand.interval = SimDuration::from_mins(2);
    SimulationConfig {
        n_users: 40,
        n_intervals: 4,
        warmup_intervals: 1,
        interval: SimDuration::from_mins(2),
        pretrain_rounds: 60,
        scheme,
        seed,
        ..Default::default()
    }
}

#[test]
fn paper_scenario_reaches_headline_accuracy_band() {
    // The paper reports 95.04% radio-demand accuracy; on the full scenario
    // we require the reproduction to stay in a defensible band.
    let report = Simulation::run(SimulationConfig {
        n_users: 120,
        n_intervals: 8,
        warmup_intervals: 2,
        seed: 42,
        ..Default::default()
    })
    .expect("simulation runs");
    let acc = report.mean_radio_accuracy();
    assert!(
        acc > 0.88,
        "radio accuracy {acc:.3} fell below the reproduction band"
    );
    assert!(acc <= 1.0);
}

#[test]
fn multicast_always_cheaper_than_unicast() {
    let report = Simulation::run(fast_config(3)).expect("simulation runs");
    for r in &report.intervals {
        assert!(r.actual_radio.value() < r.actual_unicast_radio.value());
    }
    assert!(report.mean_multicast_saving() > 0.3);
}

/// A steadier comparison configuration: the paper's 5-minute interval and
/// enough users that per-interval noise averages out.
fn comparison_config(seed: u64) -> SimulationConfig {
    SimulationConfig {
        n_users: 80,
        n_intervals: 6,
        warmup_intervals: 2,
        seed,
        ..Default::default()
    }
}

fn mean_accuracy_over_seeds(make: impl Fn(u64) -> SimulationConfig) -> f64 {
    let accs: Vec<f64> = [11u64, 23, 57]
        .iter()
        .map(|&s| {
            Simulation::run(make(s))
                .expect("simulation runs")
                .mean_radio_accuracy()
        })
        .collect();
    msvs::types::stats::mean(&accs)
}

#[test]
fn scheme_beats_historical_mean() {
    let scheme = mean_accuracy_over_seeds(comparison_config);
    let hist = mean_accuracy_over_seeds(|s| SimulationConfig {
        predictor: DemandPredictorKind::HistoricalMean { alpha: 0.3 },
        ..comparison_config(s)
    });
    assert!(scheme > hist, "scheme {scheme:.3} vs historical {hist:.3}");
}

#[test]
fn stale_twins_hurt_accuracy() {
    let fresh = mean_accuracy_over_seeds(comparison_config);
    let stale = mean_accuracy_over_seeds(|s| {
        let mut cfg = comparison_config(s);
        cfg.collection = cfg.collection.scaled(48.0);
        cfg
    });
    assert!(fresh > stale, "fresh {fresh:.3} vs stale {stale:.3}");
}

#[test]
fn csv_round_trips_row_count() {
    let report: SimulationReport = Simulation::run(fast_config(7)).expect("simulation runs");
    let csv = report::to_csv(&report);
    assert_eq!(csv.lines().count(), report.intervals.len() + 1);
    for r in &report.intervals {
        assert!(csv.contains(&format!("{},{}", r.index, r.k)));
    }
}

#[test]
fn interval_indices_are_sequential() {
    let report = Simulation::run(fast_config(9)).expect("simulation runs");
    for (i, r) in report.intervals.iter().enumerate() {
        assert_eq!(r.index, i);
        assert!(r.silhouette >= -1.0 && r.silhouette <= 1.0);
        assert!(r.predicted_radio.is_valid(), "prediction must be finite");
    }
}

#[test]
fn extension_modes_compose() {
    // Per-BS accounting + reservation + churn + mixed mobility, all at
    // once: the pipeline must stay finite and the per-interval artifacts
    // must all be populated.
    let mut cfg = fast_config(31);
    cfg.per_bs_accounting = true;
    cfg.churn_rate = 0.15;
    cfg.reservation = Some(msvs::core::ReservationPolicy {
        headroom: 0.2,
        ..Default::default()
    });
    let report = Simulation::run(cfg).expect("composed simulation runs");
    assert_eq!(report.intervals.len(), 4);
    for r in &report.intervals {
        assert!(r.predicted_radio.is_valid());
        assert!(r.actual_radio.value() > 0.0);
        assert!((0.0..=1.0).contains(&r.radio_accuracy));
        assert!(r.reservation.is_some());
        assert!(r.grouping_stability.is_some());
        assert!((0.0..=1.0).contains(&r.mean_level));
    }
    assert!(report.reservation_coverage().is_some());
    assert!(report.waste_fraction() >= 0.0);
}

#[test]
fn csv_reflects_reservation_and_stability_columns() {
    let mut cfg = fast_config(33);
    cfg.reservation = Some(msvs::core::ReservationPolicy::default());
    let rep = Simulation::run(cfg).expect("simulation runs");
    let csv = report::to_csv(&rep);
    let header = csv.lines().next().expect("header");
    assert!(header.contains("reservation_covered"));
    assert!(header.contains("grouping_stability"));
    assert!(header.contains("handovers"));
    // Every data row has the full column count.
    let cols = header.split(',').count();
    for line in csv.lines().skip(1) {
        assert_eq!(line.split(',').count(), cols, "ragged CSV row: {line}");
    }
}

//! Sharded-deployment guarantees: partitioning the pipeline across
//! base-station shards must not change what the simulation computes. A
//! seeded run must produce a bit-identical `SimulationReport` at 1, 2 and
//! 4 shards (after stripping the shard plane's own observability), a
//! sharded run must stay bit-identical across worker-pool sizes, and
//! cross-shard handover under churn storms and a lossy uplink must
//! conserve twins — a mid-handover lost report degrades the cached
//! embedding, never duplicates or drops a twin.

use msvs::core::{CompressorConfig, GroupingConfig, SchemeConfig};
use msvs::sim::{Simulation, SimulationConfig, SimulationReport};
use msvs::types::SimDuration;

fn small_scheme() -> SchemeConfig {
    let mut scheme = SchemeConfig {
        compressor: CompressorConfig {
            window: 16,
            epochs: 10,
            ..Default::default()
        },
        grouping: GroupingConfig {
            k_min: 2,
            k_max: 5,
            ..Default::default()
        },
        ..Default::default()
    };
    scheme.demand.interval = SimDuration::from_mins(2);
    scheme
}

fn sharded_config(seed: u64, shards: usize, threads: usize) -> SimulationConfig {
    SimulationConfig::builder()
        .users(24)
        .base_stations(4)
        .intervals(2)
        .warmup_intervals(1)
        .interval(SimDuration::from_mins(2))
        .scheme(small_scheme())
        .threads(threads)
        .shards(shards)
        .seed(seed)
        .build()
        .expect("test config is valid")
}

/// Wall-clock timings differ run to run; everything else must match.
fn strip_wall(mut r: SimulationReport) -> SimulationReport {
    for i in &mut r.intervals {
        i.predict_wall_ms = 0.0;
    }
    r.telemetry = r.telemetry.with_zeroed_timings();
    r
}

/// Removes everything the shard plane itself adds — its summary, its
/// stages, its handover counters, and the embedding-cache hit/miss split
/// (a migrated entry hits where a single cache would too, but a dropped
/// one re-encodes) — leaving only what the pipeline computed. After this,
/// reports at any shard count must be bit-identical.
fn strip_shard_plane(mut r: SimulationReport) -> SimulationReport {
    r.shards = None;
    r.telemetry
        .counters
        .retain(|(name, _, _)| !name.starts_with("cnn_cache") && !name.starts_with("handover"));
    r.telemetry
        .stages
        .retain(|s| !s.stage.starts_with("shard_"));
    strip_wall(r)
}

#[test]
fn seeded_report_is_bit_identical_across_shard_counts() {
    let baseline = strip_shard_plane(Simulation::run(sharded_config(33, 1, 1)).expect("1 shard"));
    for shards in [2, 4] {
        let partitioned =
            strip_shard_plane(Simulation::run(sharded_config(33, shards, 1)).expect("sharded run"));
        assert_eq!(
            baseline, partitioned,
            "{shards} shards must compute the same report as the single-shard path"
        );
    }
}

#[test]
fn sharded_report_is_bit_identical_across_thread_counts() {
    // No shard-plane stripping here: the handover sweep is serial and the
    // snapshot gather is index-ordered, so even the shard counters and
    // per-shard demand rows must match across pool sizes.
    let serial = strip_wall(Simulation::run(sharded_config(47, 4, 1)).expect("serial run"));
    let parallel = strip_wall(Simulation::run(sharded_config(47, 4, 4)).expect("parallel run"));
    assert_eq!(
        serial, parallel,
        "a sharded seeded run must not depend on the worker-pool size"
    );
}

#[test]
fn shard_summary_reports_per_bs_demand() {
    let report = Simulation::run(sharded_config(21, 4, 1)).expect("sharded run");
    let summary = report.shards.expect("multi-shard runs attach a summary");
    assert_eq!(summary.shards, 4);
    assert_eq!(summary.demand.len(), 4);
    let users: usize = summary.demand.iter().map(|row| row.users).sum();
    assert_eq!(users, 24, "every user owned by exactly one shard");
    assert!(summary.peak_imbalance >= 1.0);
    // The per-shard rows must sum back to the globally predicted totals.
    let row_radio: f64 = summary.demand.iter().map(|r| r.radio).sum();
    let global_radio: f64 = report
        .intervals
        .iter()
        .map(|i| i.predicted_radio.value())
        .sum();
    assert!(
        (row_radio - global_radio).abs() <= 1e-6 * global_radio.max(1.0),
        "aggregator rows ({row_radio}) must sum to the global reservation ({global_radio})"
    );
    // Single-shard runs stay on the legacy path: no summary at all.
    let legacy = Simulation::run(sharded_config(21, 1, 1)).expect("single-shard run");
    assert!(legacy.shards.is_none());
}

#[test]
fn boundary_crossing_mobility_triggers_conserving_handovers() {
    // All-waypoint mobility keeps everyone walking across cell boundaries.
    let mut cfg = sharded_config(5, 4, 1);
    cfg.mobility = msvs::sim::MobilityMix::all_waypoint();
    cfg.n_intervals = 3;
    let mut sim = Simulation::new(cfg).expect("scenario builds");
    sim.warm_up().expect("warm-up runs");
    for i in 0..3 {
        sim.run_interval(i).expect("interval runs");
    }
    assert_eq!(sim.store().len(), 24, "handover conserves twins");
    let summary = sim.store().summary();
    assert!(
        summary.handovers_total > 0,
        "walking users must cross cell boundaries"
    );
    let users: usize = summary.demand.iter().map(|row| row.users).sum();
    assert_eq!(users, 24, "no twin duplicated or dropped by migration");
}

/// Churn storm + lossy uplink on a 4-shard deployment: the interaction of
/// mass user replacement, lost uplink reports (including mid-handover
/// ones) and twin migration must conserve the twin population and stay
/// bit-identical across worker-pool sizes.
#[test]
fn handover_under_churn_storm_and_lossy_uplink_conserves_twins() {
    let run = |profile: &str, threads: usize| {
        let mut cfg = sharded_config(91, 4, threads);
        cfg.mobility = msvs::sim::MobilityMix::all_waypoint();
        cfg.faults = Some(msvs::faults::FaultPlan::builtin(profile).expect("builtin"));
        cfg.validate().expect("config with faults is valid");
        Simulation::run(cfg).expect("fault run")
    };
    for profile in ["churn-storm", "lossy-uplink"] {
        let serial = run(profile, 1);
        let summary = serial.shards.clone().expect("sharded summary");
        let users: usize = summary.demand.iter().map(|row| row.users).sum();
        assert_eq!(
            users, 24,
            "{profile}: churn + lost reports must never duplicate or drop a twin"
        );
        let parallel = run(profile, 4);
        assert_eq!(
            strip_wall(serial),
            strip_wall(parallel),
            "{profile}: sharded fault run must match the single-thread run exactly"
        );
    }
}

//! Fault-injection guarantees: seeded fault runs are bit-identical at any
//! worker-pool size, a heavily degraded uplink still completes (with the
//! degradation ladder engaged), and an explicit no-op plan changes nothing
//! versus a run with no plan at all.

use msvs::faults::{ChurnBurst, DelaySpec, FaultPlan};
use msvs::sim::{Simulation, SimulationConfig, SimulationReport};
use msvs::types::SimDuration;

fn small_scheme() -> msvs::core::SchemeConfig {
    let mut scheme = msvs::core::SchemeConfig {
        compressor: msvs::core::CompressorConfig {
            window: 16,
            epochs: 10,
            ..Default::default()
        },
        grouping: msvs::core::GroupingConfig {
            k_min: 2,
            k_max: 5,
            ..Default::default()
        },
        ..Default::default()
    };
    scheme.demand.interval = SimDuration::from_mins(2);
    scheme
}

fn seeded_config(seed: u64, threads: usize) -> SimulationConfig {
    SimulationConfig::builder()
        .users(24)
        .intervals(2)
        .warmup_intervals(1)
        .interval(SimDuration::from_mins(2))
        .scheme(small_scheme())
        .threads(threads)
        .seed(seed)
        .build()
        .expect("test config is valid")
}

/// A plan hostile enough to exercise every fault kind: 30% uplink loss,
/// delay, corruption, a churn burst and a brownout.
fn hostile_plan() -> FaultPlan {
    FaultPlan {
        seed: 0xFA_17,
        uplink_loss: 0.30,
        delay: DelaySpec {
            probability: 0.10,
            max_ticks: 2,
        },
        corruption: 0.05,
        churn_bursts: vec![ChurnBurst {
            interval: 1,
            fraction: 0.25,
        }],
        brownouts: vec![msvs::faults::Brownout {
            start: 0,
            duration: 1,
            capacity_scale: 0.5,
        }],
        ..FaultPlan::none()
    }
}

/// Wall-clock timings differ run to run; everything else must match.
fn strip_wall(mut r: SimulationReport) -> SimulationReport {
    for i in &mut r.intervals {
        i.predict_wall_ms = 0.0;
    }
    r.telemetry = r.telemetry.with_zeroed_timings();
    r
}

fn run(config: SimulationConfig) -> SimulationReport {
    strip_wall(Simulation::run(config).expect("fault run completes"))
}

#[test]
fn faulted_run_is_bit_identical_across_thread_counts() {
    let mut serial_cfg = seeded_config(33, 1);
    serial_cfg.faults = Some(hostile_plan());
    let mut parallel_cfg = seeded_config(33, 4);
    parallel_cfg.faults = Some(hostile_plan());
    assert_eq!(
        run(serial_cfg),
        run(parallel_cfg),
        "seeded fault runs must not depend on the worker-pool size"
    );
}

#[test]
fn heavy_loss_completes_and_engages_degradation() {
    let mut cfg = seeded_config(7, 2);
    cfg.faults = Some(hostile_plan());
    // Tighten the ladder so 30% report loss visibly starves the twins:
    // with the default 5 s tick, one missed channel report already makes
    // a twin stale against a one-tick horizon.
    cfg.scheme.degradation.coverage_threshold = 0.95;
    cfg.scheme.degradation.staleness_horizon = SimDuration::from_secs(5);
    let report = run(cfg);
    assert_eq!(
        report.intervals.len(),
        2,
        "run must complete every interval"
    );
    assert!(
        report.degraded_intervals() > 0,
        "30% uplink loss must push coverage below a 95% threshold"
    );
    let coverage = report
        .mean_twin_coverage()
        .expect("fault runs record coverage");
    assert!(
        coverage < 1.0,
        "lost reports must lower fresh-twin coverage, got {coverage}"
    );
    // Every injected fault is journaled.
    let faults_injected = report
        .telemetry
        .counters
        .iter()
        .find(|(n, l, _)| n == "events_total" && l == "FaultInjected")
        .map_or(0, |(_, _, v)| *v);
    let report_faults: u64 = report
        .telemetry
        .counters
        .iter()
        .filter(|(n, _, _)| n == "fault_reports_total")
        .map(|(_, _, v)| *v)
        .sum();
    assert!(faults_injected > 0, "faults must be journaled");
    assert!(
        report_faults >= faults_injected,
        "per-report counters ({report_faults}) must cover journaled events ({faults_injected})"
    );
}

#[test]
fn noop_plan_matches_no_plan_bit_for_bit() {
    let clean = run(seeded_config(11, 2));
    let mut noop_cfg = seeded_config(11, 2);
    noop_cfg.faults = Some(FaultPlan::none());
    assert_eq!(
        clean,
        run(noop_cfg),
        "an all-zero fault plan must be indistinguishable from no plan"
    );
}

//! Parallel-execution guarantees: a seeded run must produce a
//! bit-identical `SimulationReport` at any worker-pool size, the
//! validating builder must reject malformed configurations up front, and
//! custom predictors must plug into the runner through the
//! `DemandPredictor` trait.

use msvs::core::{
    CompressorConfig, DemandPredictor, DtAssistedPredictor, GroupingConfig, PipelineBacked,
    Prediction, PredictionContext, SchemeConfig,
};
use msvs::sim::{Simulation, SimulationConfig, SimulationReport};
use msvs::types::{CpuCycles, ResourceBlocks, Result, SimDuration};

fn small_scheme() -> SchemeConfig {
    let mut scheme = SchemeConfig {
        compressor: CompressorConfig {
            window: 16,
            epochs: 10,
            ..Default::default()
        },
        grouping: GroupingConfig {
            k_min: 2,
            k_max: 5,
            ..Default::default()
        },
        ..Default::default()
    };
    scheme.demand.interval = SimDuration::from_mins(2);
    scheme
}

fn seeded_config(seed: u64, threads: usize) -> SimulationConfig {
    SimulationConfig::builder()
        .users(24)
        .intervals(2)
        .warmup_intervals(1)
        .interval(SimDuration::from_mins(2))
        .scheme(small_scheme())
        .threads(threads)
        .seed(seed)
        .build()
        .expect("test config is valid")
}

/// Wall-clock timings differ run to run; everything else must match.
fn strip_wall(mut r: SimulationReport) -> SimulationReport {
    for i in &mut r.intervals {
        i.predict_wall_ms = 0.0;
    }
    r.telemetry = r.telemetry.with_zeroed_timings();
    r
}

#[test]
fn seeded_report_is_bit_identical_across_thread_counts() {
    let serial = strip_wall(Simulation::run(seeded_config(33, 1)).expect("serial run"));
    let parallel = strip_wall(Simulation::run(seeded_config(33, 4)).expect("parallel run"));
    assert_eq!(
        serial, parallel,
        "seeded runs must not depend on the worker-pool size"
    );
}

/// Drives a seeded run by hand (keeping the telemetry handle reachable)
/// and returns the span tree's thread-count-invariant shape.
fn span_structure(
    seed: u64,
    threads: usize,
) -> Vec<(u64, Option<u64>, &'static str, msvs::telemetry::SpanAttrs)> {
    let mut sim = Simulation::new(seeded_config(seed, threads)).expect("scenario builds");
    sim.warm_up().expect("warm-up runs");
    for i in 0..2 {
        sim.run_interval(i).expect("interval runs");
    }
    sim.telemetry()
        .spans()
        .iter()
        .map(|s| s.structure())
        .collect()
}

#[test]
fn span_structure_is_identical_across_thread_counts() {
    let serial = span_structure(33, 1);
    let parallel = span_structure(33, 4);
    assert!(!serial.is_empty(), "instrumented run must produce spans");
    assert_eq!(
        serial, parallel,
        "span ids, parents, names and attributes must not depend on the pool size"
    );
}

/// The cache-hit/miss tallies are the only counters allowed to differ
/// between embedding-cache modes; everything else must be bit-identical.
fn strip_cache_counters(mut r: SimulationReport) -> SimulationReport {
    r.telemetry
        .counters
        .retain(|(name, _, _)| !name.starts_with("cnn_cache"));
    strip_wall(r)
}

#[test]
fn embedding_cache_does_not_change_the_report_at_any_thread_count() {
    let run = |cache: bool, threads: usize| {
        let mut cfg = seeded_config(33, threads);
        cfg.scheme.embedding_cache = cache;
        // This contract is exact-mode only: incremental runs lean on the
        // cache to serve stale embeddings (a documented approximation), so
        // cache-on and cache-off reports legitimately diverge there. Pin it
        // off so the assertion holds under MSVS_INCREMENTAL=1 too;
        // incremental invariance is covered by the sim-level tests.
        cfg.incremental = false;
        strip_cache_counters(Simulation::run(cfg).expect("seeded run"))
    };
    let baseline = run(false, 1);
    for (cache, threads) in [(true, 1), (true, 4), (false, 4)] {
        assert_eq!(
            baseline,
            run(cache, threads),
            "cache={cache} threads={threads} must match the cache-off serial run"
        );
    }
}

#[test]
fn warm_embedding_cache_serves_hits_without_changing_predictions() {
    use msvs::channel::{Link, LinkConfig};
    use msvs::edge::{TranscodeModel, VideoCache};
    use msvs::types::{Position, RepresentationLevel, SimTime, UserId, VideoCategory, VideoId};
    use msvs::udt::{UdtStore, UserDigitalTwin, WatchRecord};
    use msvs::video::{Catalog, CatalogConfig};

    let store = UdtStore::new();
    for u in 0..12u32 {
        let mut twin = UserDigitalTwin::new(UserId(u));
        for step in 0..30u64 {
            let t = SimTime::from_secs(step * 5);
            twin.update_channel(t, 8.0 + (u % 3) as f64 * 4.0);
            twin.update_location(t, Position::new(100.0 * (u % 4) as f64, 50.0 * u as f64));
            twin.record_watch(
                t,
                WatchRecord {
                    video: VideoId((step % 20) as u32),
                    category: VideoCategory::News,
                    level: RepresentationLevel::P720,
                    watched: SimDuration::from_secs(10 + u as u64 % 7),
                    video_duration: SimDuration::from_secs(60),
                    completed: false,
                },
            );
        }
        store.insert(twin);
    }
    let catalog = Catalog::generate(CatalogConfig {
        n_videos: 80,
        seed: 3,
        ..Default::default()
    })
    .expect("catalog generates");
    let mut video_cache = VideoCache::new(100_000.0);
    video_cache.warm_from(&catalog);
    let transcode = TranscodeModel::default();
    let link = Link::new(LinkConfig::default());

    // Two passes over an untouched store: with the cache the second pass
    // re-encodes nobody, and both passes match the cache-off predictor
    // exactly (Debug output captures every field bit-for-bit via the
    // shortest-roundtrip float formatting).
    let passes = |use_cache: bool| {
        let mut predictor = DtAssistedPredictor::new(SchemeConfig {
            embedding_cache: use_cache,
            ..small_scheme()
        })
        .expect("predictor builds");
        let telemetry = msvs::telemetry::Telemetry::new();
        predictor.attach_telemetry(telemetry.clone());
        let first = predictor
            .predict(&store, &catalog, &video_cache, &transcode, &link)
            .expect("first pass");
        let second = predictor
            .predict(&store, &catalog, &video_cache, &transcode, &link)
            .expect("second pass");
        (format!("{first:?}"), format!("{second:?}"), telemetry)
    };
    let (cached_first, cached_second, telemetry) = passes(true);
    let (plain_first, plain_second, _) = passes(false);
    assert_eq!(cached_first, plain_first);
    assert_eq!(cached_second, plain_second);

    let hits = telemetry.counter("cnn_cache_hits", "all").get();
    let misses = telemetry.counter("cnn_cache_misses", "all").get();
    assert_eq!(misses, 12, "cold first pass encodes everyone");
    assert_eq!(hits, 12, "unchanged twins are all served from the cache");
    assert_eq!(
        hits + misses,
        24,
        "hits + misses must equal total encode requests (12 users x 2 passes)"
    );
}

#[test]
fn counter_totals_match_single_thread_exactly_under_faults() {
    let run = |threads: usize| {
        let mut cfg = seeded_config(91, threads);
        cfg.faults = Some(msvs::faults::FaultPlan::builtin("brownout").expect("builtin"));
        cfg.validate().expect("config with faults is valid");
        Simulation::run(cfg).expect("fault run")
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(
        serial.telemetry.counters, parallel.telemetry.counters,
        "every counter total (fault_reports_total, fault_retries_total, \
         events_total, ...) must match the single-thread run exactly"
    );
    assert!(
        serial
            .telemetry
            .counters
            .iter()
            .any(|(name, _, v)| name == "fault_reports_total" && *v > 0),
        "the brownout profile must actually inject faults"
    );
}

#[test]
fn thread_count_resolves_before_the_run() {
    let sim = Simulation::new(seeded_config(1, 4)).expect("scenario builds");
    assert_eq!(sim.threads(), 4);
    // `0` resolves to the machine's available parallelism — at least one.
    let sim = Simulation::new(seeded_config(1, 0)).expect("scenario builds");
    assert!(sim.threads() >= 1);
}

#[test]
fn builder_rejects_malformed_configs() {
    assert!(SimulationConfig::builder().users(0).build().is_err());
    assert!(SimulationConfig::builder()
        .tick(SimDuration::from_mins(30))
        .build()
        .is_err());
    assert!(SimulationConfig::builder().threads(4096).build().is_err());
}

/// A scalar predictor that always forecasts the same demand — the smallest
/// possible custom `DemandPredictor`.
struct ConstantPredictor {
    radio: f64,
    computing: f64,
}

impl DemandPredictor for ConstantPredictor {
    fn name(&self) -> &'static str {
        "constant"
    }

    fn predict(&mut self, _ctx: &PredictionContext<'_>) -> Result<Prediction> {
        Ok(Prediction {
            radio: ResourceBlocks(self.radio),
            computing: CpuCycles(self.computing),
            outcome: None,
            degradation: None,
        })
    }
}

#[test]
fn custom_predictor_plugs_into_the_runner() {
    let config = seeded_config(7, 1);
    let pipeline = DtAssistedPredictor::new(config.scheme.clone()).expect("pipeline builds");
    let scored = ConstantPredictor {
        radio: 123.0,
        computing: 4.5e9,
    };
    let mut sim =
        Simulation::with_predictor(config, Box::new(PipelineBacked::new(pipeline, scored)))
            .expect("scenario builds");
    assert_eq!(sim.predictor_name(), "constant");
    sim.warm_up().expect("warm-up runs");
    let record = sim.run_interval(0).expect("interval runs");
    // The scored totals come from the custom predictor; playback still
    // runs on the DT pipeline's grouping.
    assert_eq!(record.predicted_radio, ResourceBlocks(123.0));
    assert_eq!(record.predicted_computing, CpuCycles(4.5e9));
    assert!(record.actual_radio.value() > 0.0, "groups must transmit");
}

//! The per-user digital twin.

use msvs_telemetry::Json;
use msvs_types::{
    Position, RepresentationLevel, SimDuration, SimTime, UserId, VideoCategory, VideoId,
};
use serde::{Deserialize, Serialize};

use crate::attribute::{TimeSeries, WatchRecord};

/// Default retained history per attribute.
const CHANNEL_CAPACITY: usize = 256;
const LOCATION_CAPACITY: usize = 256;
const WATCH_CAPACITY: usize = 512;

/// Fixed-size multichannel window extracted from a twin for the 1D-CNN.
///
/// Channels (in order): normalised SNR, normalised x, normalised y,
/// normalised recent watch durations. The preference vector rides along
/// separately — it is a distribution, not a time series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureWindow {
    /// `channels x window` matrix, row-major, values roughly in `[0, 1]`.
    pub series: Vec<Vec<f32>>,
    /// Current preference distribution over categories.
    pub preference: Vec<f32>,
}

impl FeatureWindow {
    /// Number of time-series channels.
    pub const CHANNELS: usize = 4;

    /// Window length (all channels share it).
    pub fn window_len(&self) -> usize {
        self.series.first().map_or(0, |c| c.len())
    }

    /// Flattens to a `channels * window + preference` feature vector.
    pub fn flatten(&self) -> Vec<f32> {
        let mut out: Vec<f32> = self.series.iter().flatten().copied().collect();
        out.extend_from_slice(&self.preference);
        out
    }
}

/// Edge-resident mirror of one user's status.
///
/// Base stations push channel, location, and watch updates at their
/// configured frequencies; the prediction scheme reads consistent feature
/// windows out.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserDigitalTwin {
    user: UserId,
    channel_db: TimeSeries<f64>,
    location: TimeSeries<Position>,
    watches: TimeSeries<WatchRecord>,
    preference: Vec<f64>,
    preference_updated: Option<SimTime>,
    /// Store-stamped creation nonce: distinguishes successive twins that
    /// reuse one `UserId` slot (churn), so downstream caches keyed on
    /// revisions cannot confuse them. Run-local bookkeeping.
    instance: u64,
    /// Monotone per-attribute revision counters, bumped only when a
    /// mutation is actually *accepted* (rejected corrupt samples leave
    /// them untouched). Together with `instance` they let the embedding
    /// cache prove a feature window unchanged without re-reading the
    /// series. Run-local bookkeeping.
    channel_rev: u64,
    location_rev: u64,
    watch_rev: u64,
    preference_rev: u64,
}

/// Snapshot of a twin's identity nonce plus per-attribute revisions —
/// equal keys prove the twin's feature-relevant content is unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TwinRevision {
    /// Store-stamped creation nonce (churn-safe identity).
    pub instance: u64,
    /// Channel-series revision.
    pub channel: u64,
    /// Location-series revision.
    pub location: u64,
    /// Watch-series revision.
    pub watch: u64,
    /// Preference-vector revision.
    pub preference: u64,
}

impl UserDigitalTwin {
    /// Builds an empty twin with a uniform preference prior.
    pub fn new(user: UserId) -> Self {
        Self {
            user,
            channel_db: TimeSeries::new(CHANNEL_CAPACITY),
            location: TimeSeries::new(LOCATION_CAPACITY),
            watches: TimeSeries::new(WATCH_CAPACITY),
            preference: vec![1.0 / VideoCategory::COUNT as f64; VideoCategory::COUNT],
            preference_updated: None,
            instance: 0,
            channel_rev: 0,
            location_rev: 0,
            watch_rev: 0,
            preference_rev: 0,
        }
    }

    /// The mirrored user.
    pub fn user(&self) -> UserId {
        self.user
    }

    /// The combined identity + revision key for cache invalidation.
    pub fn revision(&self) -> TwinRevision {
        TwinRevision {
            instance: self.instance,
            channel: self.channel_rev,
            location: self.location_rev,
            watch: self.watch_rev,
            preference: self.preference_rev,
        }
    }

    pub(crate) fn set_instance(&mut self, instance: u64) {
        self.instance = instance;
    }

    /// SNR plausibility bound, dB: anything outside `±100` is a corrupted
    /// report, not physics.
    const SNR_PLAUSIBLE_DB: f64 = 100.0;

    /// Records a channel-condition sample (SNR in dB). Returns whether
    /// the sample was accepted.
    ///
    /// Non-finite or wildly implausible samples (a corrupted report from a
    /// BS) are rejected: a single NaN would otherwise poison every
    /// downstream mean, feature window, and CNN weight. Callers count
    /// rejections so corruption is visible in telemetry.
    pub fn update_channel(&mut self, at: SimTime, snr_db: f64) -> bool {
        if snr_db.is_finite() && snr_db.abs() <= Self::SNR_PLAUSIBLE_DB {
            self.channel_db.push(at, snr_db);
            self.channel_rev += 1;
            true
        } else {
            false
        }
    }

    /// Records a location sample. Returns whether the sample was accepted
    /// (non-finite coordinates are rejected).
    pub fn update_location(&mut self, at: SimTime, position: Position) -> bool {
        if position.x.is_finite() && position.y.is_finite() {
            self.location.push(at, position);
            self.location_rev += 1;
            true
        } else {
            false
        }
    }

    /// Records a completed/swiped video view.
    pub fn record_watch(&mut self, at: SimTime, record: WatchRecord) {
        self.watches.push(at, record);
        self.watch_rev += 1;
    }

    /// Replaces the preference estimate (e.g. from the recommender's
    /// label + engagement update described in the paper).
    ///
    /// # Panics
    /// Panics if `preference` is not one mass per category.
    pub fn set_preference(&mut self, at: SimTime, preference: Vec<f64>) {
        assert_eq!(
            preference.len(),
            VideoCategory::COUNT,
            "one preference mass per category"
        );
        self.preference = preference;
        self.preference_updated = Some(at);
        self.preference_rev += 1;
    }

    /// Nudges the preference towards the categories the user actually
    /// engaged with, weighting each watch by retention. `rate` in `[0, 1]`.
    pub fn refresh_preference_from_watches(&mut self, at: SimTime, rate: f64) {
        let recent = self.watches.tail(64);
        if recent.is_empty() {
            return;
        }
        let mut observed = vec![0.0f64; VideoCategory::COUNT];
        for w in &recent {
            observed[w.category.index()] += w.retention().max(0.01);
        }
        let total: f64 = observed.iter().sum();
        if total <= 0.0 {
            return;
        }
        let rate = rate.clamp(0.0, 1.0);
        for (p, o) in self.preference.iter_mut().zip(&observed) {
            *p = *p * (1.0 - rate) + (o / total) * rate;
        }
        let norm: f64 = self.preference.iter().sum();
        for p in &mut self.preference {
            *p /= norm;
        }
        self.preference_updated = Some(at);
        self.preference_rev += 1;
    }

    /// Latest SNR sample, dB.
    pub fn latest_snr_db(&self) -> Option<f64> {
        self.channel_db.latest().map(|(_, v)| *v)
    }

    /// Mean of the most recent `n` SNR samples, dB.
    ///
    /// Single samples carry deep fades; averaging the recent window gives
    /// the robust channel-condition estimate the predictor needs. Returns
    /// `None` when the twin has no channel data yet.
    pub fn mean_recent_snr_db(&self, n: usize) -> Option<f64> {
        let tail = self.channel_db.tail(n);
        if tail.is_empty() {
            return None;
        }
        Some(tail.iter().map(|&&v| v).sum::<f64>() / tail.len() as f64)
    }

    /// Latest known position.
    pub fn latest_position(&self) -> Option<Position> {
        self.location.latest().map(|(_, v)| *v)
    }

    /// Current preference distribution (sums to 1).
    pub fn preference(&self) -> &[f64] {
        &self.preference
    }

    /// Velocity estimate (m/s per axis) from the two most recent location
    /// samples, or `None` with fewer than two samples or coincident
    /// timestamps.
    pub fn velocity_estimate(&self) -> Option<Position> {
        let n = self.location.len();
        if n < 2 {
            return None;
        }
        let samples: Vec<&(SimTime, Position)> = self.location.iter().skip(n - 2).collect();
        let (t0, p0) = *samples[0];
        let (t1, p1) = *samples[1];
        let dt = t1.since(t0).as_secs_f64();
        if dt <= 0.0 {
            return None;
        }
        Some(Position::new((p1.x - p0.x) / dt, (p1.y - p0.y) / dt))
    }

    /// Dead-reckoned position `horizon_secs` past the newest location
    /// sample (clamped into the map), or the last known position when no
    /// velocity estimate exists.
    ///
    /// This is the "digital twin predicts where its user will be" feature
    /// the channel extrapolation estimator builds on.
    pub fn extrapolated_position(
        &self,
        horizon_secs: f64,
        map_width: f64,
        map_height: f64,
    ) -> Option<Position> {
        let last = self.latest_position()?;
        match self.velocity_estimate() {
            Some(v) => Some((last + v * horizon_secs).clamp_to(map_width, map_height)),
            None => Some(last),
        }
    }

    /// Channel-condition series.
    pub fn channel_series(&self) -> &TimeSeries<f64> {
        &self.channel_db
    }

    /// Location series.
    pub fn location_series(&self) -> &TimeSeries<Position> {
        &self.location
    }

    /// Watch-record series.
    pub fn watch_series(&self) -> &TimeSeries<WatchRecord> {
        &self.watches
    }

    /// Watch records observed at or after `since`.
    pub fn watches_since(&self, since: SimTime) -> Vec<&WatchRecord> {
        self.watches.since(since)
    }

    /// Worst staleness across attributes at `now` (`None` when the twin
    /// has never been updated).
    pub fn staleness(&self, now: SimTime) -> Option<SimDuration> {
        [
            self.channel_db.staleness(now),
            self.location.staleness(now),
            self.watches.staleness(now),
        ]
        .into_iter()
        .flatten()
        .max()
    }

    /// Staleness of the channel attribute alone (`None` = never updated).
    pub fn channel_staleness(&self, now: SimTime) -> Option<SimDuration> {
        self.channel_db.staleness(now)
    }

    /// Staleness of the location attribute alone (`None` = never updated).
    pub fn location_staleness(&self, now: SimTime) -> Option<SimDuration> {
        self.location.staleness(now)
    }

    /// Whether this twin's fast attributes (channel and location) were
    /// both updated within `horizon` of `now`. A twin with a missing
    /// attribute is never fresh — the predictor's last-known-good
    /// imputation (feature-window padding) covers it, but the data is
    /// stale and degradation accounting should know.
    pub fn is_fresh(&self, now: SimTime, horizon: SimDuration) -> bool {
        let within = |s: Option<SimDuration>| s.is_some_and(|d| d <= horizon);
        within(self.channel_staleness(now)) && within(self.location_staleness(now))
    }

    /// Extracts the fixed-size [`FeatureWindow`] ending at the newest data.
    ///
    /// Channels are normalised to roughly `[0, 1]` using the provided map
    /// extents and an SNR range of `[-10, 40]` dB. Windows shorter than
    /// `window` are left-padded by repeating the oldest sample (or 0.5 when
    /// empty), so freshly-created twins still produce valid input.
    pub fn feature_window(&self, window: usize, map_width: f64, map_height: f64) -> FeatureWindow {
        fn pad_left(vals: Vec<f32>, window: usize) -> Vec<f32> {
            let mut out = Vec::with_capacity(window);
            let fill = vals.first().copied().unwrap_or(0.5);
            for _ in vals.len()..window {
                out.push(fill);
            }
            out.extend(vals);
            out
        }

        let snr: Vec<f32> = self
            .channel_db
            .tail(window)
            .iter()
            .map(|&&v| (((v + 10.0) / 50.0) as f32).clamp(0.0, 1.0))
            .collect();
        let (xs, ys): (Vec<f32>, Vec<f32>) = self
            .location
            .tail(window)
            .iter()
            .map(|p| {
                (
                    (p.x / map_width.max(1e-9)) as f32,
                    (p.y / map_height.max(1e-9)) as f32,
                )
            })
            .unzip();
        // Watch durations normalised by a 60 s short-video ceiling.
        let watch: Vec<f32> = self
            .watches
            .tail(window)
            .iter()
            .map(|w| ((w.watched.as_secs_f64() / 60.0) as f32).clamp(0.0, 1.0))
            .collect();

        FeatureWindow {
            series: vec![
                pad_left(snr, window),
                pad_left(xs, window),
                pad_left(ys, window),
                pad_left(watch, window),
            ],
            preference: self.preference.iter().map(|&p| p as f32).collect(),
        }
    }

    /// Serialises the twin's full state for a shard checkpoint.
    ///
    /// Every private field is captured — including the instance nonce and
    /// the per-attribute revision counters, which count *accepted pushes
    /// ever* (evicted samples included) and therefore cannot be rebuilt by
    /// replaying the retained series. `f64` payloads survive the text
    /// round trip exactly (Rust's shortest-representation `Display`).
    pub fn checkpoint_json(&self) -> Json {
        let time = |t: SimTime| Json::Num(t.as_millis() as f64);
        let opt_time = |t: Option<SimTime>| t.map_or(Json::Null, time);
        Json::obj([
            ("user", Json::Num(f64::from(self.user.0))),
            ("instance", Json::Num(self.instance as f64)),
            (
                "revs",
                Json::Arr(vec![
                    Json::Num(self.channel_rev as f64),
                    Json::Num(self.location_rev as f64),
                    Json::Num(self.watch_rev as f64),
                    Json::Num(self.preference_rev as f64),
                ]),
            ),
            (
                "preference",
                Json::Arr(self.preference.iter().map(|&p| Json::Num(p)).collect()),
            ),
            ("preference_updated_ms", opt_time(self.preference_updated)),
            (
                "channel",
                Json::Arr(
                    self.channel_db
                        .iter()
                        .map(|&(t, v)| Json::Arr(vec![time(t), Json::Num(v)]))
                        .collect(),
                ),
            ),
            (
                "location",
                Json::Arr(
                    self.location
                        .iter()
                        .map(|&(t, p)| Json::Arr(vec![time(t), Json::Num(p.x), Json::Num(p.y)]))
                        .collect(),
                ),
            ),
            (
                "watches",
                Json::Arr(
                    self.watches
                        .iter()
                        .map(|(t, w)| {
                            Json::obj([
                                ("t_ms", time(*t)),
                                ("video", Json::Num(f64::from(w.video.0))),
                                ("category", Json::Num(w.category.index() as f64)),
                                ("level", Json::Num(w.level.index() as f64)),
                                ("watched_ms", Json::Num(w.watched.as_millis() as f64)),
                                (
                                    "duration_ms",
                                    Json::Num(w.video_duration.as_millis() as f64),
                                ),
                                ("completed", Json::Bool(w.completed)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Rebuilds a twin from [`Self::checkpoint_json`] output.
    ///
    /// # Errors
    /// Returns a message naming the first malformed or missing field.
    pub fn from_checkpoint_json(json: &Json) -> std::result::Result<Self, String> {
        let int = |k: &str| {
            json.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("twin: missing integer field '{k}'"))
        };
        let arr = |k: &str| match json.get(k) {
            Some(Json::Arr(items)) => Ok(items),
            _ => Err(format!("twin: missing array field '{k}'")),
        };
        let user =
            UserId(u32::try_from(int("user")?).map_err(|_| "twin: user out of range".to_string())?);
        let mut twin = Self::new(user);
        twin.instance = int("instance")?;
        let revs = arr("revs")?;
        if revs.len() != 4 {
            return Err("twin: revs must hold four counters".into());
        }
        let rev = |i: usize| {
            revs[i]
                .as_u64()
                .ok_or_else(|| format!("twin: revs[{i}] must be an integer"))
        };
        twin.channel_rev = rev(0)?;
        twin.location_rev = rev(1)?;
        twin.watch_rev = rev(2)?;
        twin.preference_rev = rev(3)?;
        twin.preference = arr("preference")?
            .iter()
            .map(|v| {
                v.as_f64()
                    .ok_or_else(|| "twin: preference entries must be numbers".to_string())
            })
            .collect::<std::result::Result<Vec<f64>, String>>()?;
        if twin.preference.len() != VideoCategory::COUNT {
            return Err("twin: preference must hold one mass per category".into());
        }
        twin.preference_updated = match json.get("preference_updated_ms") {
            None | Some(Json::Null) => None,
            Some(v) => Some(SimTime(v.as_u64().ok_or_else(|| {
                "twin: preference_updated_ms must be an integer".to_string()
            })?)),
        };
        for (i, item) in arr("channel")?.iter().enumerate() {
            let Json::Arr(pair) = item else {
                return Err(format!("twin: channel[{i}] must be [t_ms, snr_db]"));
            };
            let (Some(t), Some(v)) = (
                pair.first().and_then(Json::as_u64),
                pair.get(1).and_then(Json::as_f64),
            ) else {
                return Err(format!("twin: channel[{i}] must be [t_ms, snr_db]"));
            };
            twin.channel_db.push(SimTime(t), v);
        }
        for (i, item) in arr("location")?.iter().enumerate() {
            let Json::Arr(triple) = item else {
                return Err(format!("twin: location[{i}] must be [t_ms, x, y]"));
            };
            let (Some(t), Some(x), Some(y)) = (
                triple.first().and_then(Json::as_u64),
                triple.get(1).and_then(Json::as_f64),
                triple.get(2).and_then(Json::as_f64),
            ) else {
                return Err(format!("twin: location[{i}] must be [t_ms, x, y]"));
            };
            twin.location.push(SimTime(t), Position::new(x, y));
        }
        for (i, item) in arr("watches")?.iter().enumerate() {
            let field = |k: &str| {
                item.get(k)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("twin: watches[{i}].{k} must be an integer"))
            };
            let record = WatchRecord {
                video: VideoId(
                    u32::try_from(field("video")?)
                        .map_err(|_| format!("twin: watches[{i}].video out of range"))?,
                ),
                category: VideoCategory::from_index(field("category")? as usize)
                    .ok_or_else(|| format!("twin: watches[{i}].category unknown"))?,
                level: RepresentationLevel::from_index(field("level")? as usize)
                    .ok_or_else(|| format!("twin: watches[{i}].level unknown"))?,
                watched: SimDuration(field("watched_ms")?),
                video_duration: SimDuration(field("duration_ms")?),
                completed: matches!(item.get("completed"), Some(Json::Bool(true))),
            };
            twin.watches.push(SimTime(field("t_ms")?), record);
        }
        Ok(twin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msvs_types::{RepresentationLevel, VideoId};

    fn watch(cat: VideoCategory, watched_s: u64, total_s: u64) -> WatchRecord {
        WatchRecord {
            video: VideoId(0),
            category: cat,
            level: RepresentationLevel::P720,
            watched: SimDuration::from_secs(watched_s),
            video_duration: SimDuration::from_secs(total_s),
            completed: watched_s >= total_s,
        }
    }

    #[test]
    fn new_twin_has_uniform_preference() {
        let twin = UserDigitalTwin::new(UserId(1));
        assert_eq!(twin.user(), UserId(1));
        for &p in twin.preference() {
            assert!((p - 0.125).abs() < 1e-12);
        }
        assert_eq!(twin.latest_snr_db(), None);
        assert_eq!(twin.staleness(SimTime::from_secs(10)), None);
    }

    #[test]
    fn updates_flow_through() {
        let mut twin = UserDigitalTwin::new(UserId(1));
        twin.update_channel(SimTime::from_secs(1), 12.0);
        twin.update_location(SimTime::from_secs(2), Position::new(10.0, 20.0));
        twin.record_watch(SimTime::from_secs(3), watch(VideoCategory::News, 10, 20));
        assert_eq!(twin.latest_snr_db(), Some(12.0));
        assert_eq!(twin.latest_position(), Some(Position::new(10.0, 20.0)));
        assert_eq!(twin.watch_series().len(), 1);
        // Worst staleness is the channel (updated at t=1).
        assert_eq!(
            twin.staleness(SimTime::from_secs(10)),
            Some(SimDuration::from_secs(9))
        );
    }

    #[test]
    fn preference_refresh_tracks_engagement() {
        let mut twin = UserDigitalTwin::new(UserId(1));
        for i in 0..20 {
            twin.record_watch(SimTime::from_secs(i), watch(VideoCategory::Music, 30, 30));
            twin.record_watch(SimTime::from_secs(i), watch(VideoCategory::Game, 1, 30));
        }
        twin.refresh_preference_from_watches(SimTime::from_secs(30), 0.5);
        assert!(
            twin.preference()[VideoCategory::Music.index()]
                > twin.preference()[VideoCategory::Game.index()] * 3.0
        );
        let total: f64 = twin.preference().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn feature_window_shape_and_padding() {
        let twin = UserDigitalTwin::new(UserId(2));
        let fw = twin.feature_window(16, 1000.0, 1000.0);
        assert_eq!(fw.series.len(), FeatureWindow::CHANNELS);
        assert_eq!(fw.window_len(), 16);
        assert_eq!(fw.preference.len(), VideoCategory::COUNT);
        // Empty twin pads with 0.5.
        assert!(fw.series[0].iter().all(|&v| v == 0.5));
        assert_eq!(fw.flatten().len(), 4 * 16 + 8);
    }

    #[test]
    fn feature_window_normalises_into_unit_range() {
        let mut twin = UserDigitalTwin::new(UserId(3));
        for i in 0..32u64 {
            twin.update_channel(SimTime::from_secs(i), -20.0 + i as f64 * 3.0);
            twin.update_location(SimTime::from_secs(i), Position::new(i as f64 * 40.0, 999.0));
            twin.record_watch(
                SimTime::from_secs(i),
                watch(VideoCategory::News, i.min(60), 60),
            );
        }
        let fw = twin.feature_window(16, 1200.0, 1000.0);
        for ch in &fw.series {
            assert_eq!(ch.len(), 16);
            for &v in ch {
                assert!((0.0..=1.05).contains(&v), "value {v} escaped range");
            }
        }
        // Newest sample is last.
        let snr_last = fw.series[0].last().copied().unwrap();
        assert!(snr_last > fw.series[0][0], "SNR ramp should be increasing");
    }

    #[test]
    #[should_panic(expected = "one preference mass per category")]
    fn set_preference_validates_length() {
        let mut twin = UserDigitalTwin::new(UserId(1));
        twin.set_preference(SimTime::ZERO, vec![0.5, 0.5]);
    }

    #[test]
    fn revisions_bump_only_on_accepted_mutations() {
        let mut twin = UserDigitalTwin::new(UserId(9));
        let r0 = twin.revision();
        assert_eq!(
            (r0.channel, r0.location, r0.watch, r0.preference),
            (0, 0, 0, 0)
        );

        assert!(!twin.update_channel(SimTime::ZERO, f64::NAN));
        assert_eq!(twin.revision(), r0, "rejected sample leaves key unchanged");
        assert!(twin.update_channel(SimTime::ZERO, 12.0));
        assert_eq!(twin.revision().channel, 1);

        assert!(!twin.update_location(SimTime::ZERO, Position::new(f64::NAN, 1.0)));
        assert_eq!(twin.revision().location, 0);
        assert!(twin.update_location(SimTime::ZERO, Position::new(1.0, 2.0)));
        assert_eq!(twin.revision().location, 1);

        twin.record_watch(SimTime::ZERO, watch(VideoCategory::Music, 10, 20));
        assert_eq!(twin.revision().watch, 1);

        // Early-returning preference refresh (no watches consumed yet in a
        // fresh twin) must not bump.
        let mut empty = UserDigitalTwin::new(UserId(10));
        empty.refresh_preference_from_watches(SimTime::ZERO, 0.5);
        assert_eq!(empty.revision().preference, 0);
        twin.refresh_preference_from_watches(SimTime::ZERO, 0.5);
        assert_eq!(twin.revision().preference, 1);
        twin.set_preference(SimTime::ZERO, vec![0.125; VideoCategory::COUNT]);
        assert_eq!(twin.revision().preference, 2);

        // Clones carry the key; a fresh twin for the same user differs
        // once instances are stamped (store-level concern).
        assert_eq!(twin.clone().revision(), twin.revision());
    }

    #[test]
    fn checkpoint_round_trip_is_lossless() {
        let mut twin = UserDigitalTwin::new(UserId(42));
        twin.set_instance((3u64 << 40) | 17);
        for i in 0..20u64 {
            twin.update_channel(SimTime::from_secs(i), -3.5 + i as f64 * 0.731);
            twin.update_location(
                SimTime::from_secs(i),
                Position::new(i as f64 * 13.37, 500.0 - i as f64),
            );
            twin.record_watch(
                SimTime::from_secs(i),
                watch(VideoCategory::Music, i.min(45), 45),
            );
        }
        // A rejected sample keeps revisions honest: the counters must
        // survive the round trip even though they exceed what a replay of
        // the retained series would produce.
        assert!(!twin.update_channel(SimTime::from_secs(21), f64::NAN));
        twin.refresh_preference_from_watches(SimTime::from_secs(20), 0.5);
        let text = twin.checkpoint_json().to_string();
        let back = UserDigitalTwin::from_checkpoint_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, twin, "checkpoint round trip must be bit-exact");
        assert_eq!(back.revision(), twin.revision());
    }

    #[test]
    fn checkpoint_decode_names_the_bad_field() {
        let twin = UserDigitalTwin::new(UserId(1));
        let mut json = twin.checkpoint_json();
        if let Json::Obj(map) = &mut json {
            map.remove("revs");
        }
        let err = UserDigitalTwin::from_checkpoint_json(&json).unwrap_err();
        assert!(err.contains("revs"), "{err}");
    }
}

#[cfg(test)]
mod extrapolation_tests {
    use super::*;

    #[test]
    fn velocity_from_two_samples() {
        let mut twin = UserDigitalTwin::new(UserId(1));
        assert_eq!(twin.velocity_estimate(), None);
        twin.update_location(SimTime::from_secs(0), Position::new(0.0, 0.0));
        assert_eq!(twin.velocity_estimate(), None, "one sample is not enough");
        twin.update_location(SimTime::from_secs(10), Position::new(20.0, -10.0));
        let v = twin.velocity_estimate().unwrap();
        assert!((v.x - 2.0).abs() < 1e-9);
        assert!((v.y + 1.0).abs() < 1e-9);
    }

    #[test]
    fn extrapolation_dead_reckons_and_clamps() {
        let mut twin = UserDigitalTwin::new(UserId(1));
        assert_eq!(twin.extrapolated_position(5.0, 100.0, 100.0), None);
        twin.update_location(SimTime::from_secs(0), Position::new(50.0, 50.0));
        // No velocity yet: stays put.
        assert_eq!(
            twin.extrapolated_position(5.0, 100.0, 100.0),
            Some(Position::new(50.0, 50.0))
        );
        twin.update_location(SimTime::from_secs(10), Position::new(90.0, 50.0));
        // 4 m/s east; 5 s ahead = x 110 clamped to 100.
        assert_eq!(
            twin.extrapolated_position(5.0, 100.0, 100.0),
            Some(Position::new(100.0, 50.0))
        );
    }

    #[test]
    fn coincident_timestamps_give_no_velocity() {
        let mut twin = UserDigitalTwin::new(UserId(1));
        twin.update_location(SimTime::from_secs(5), Position::new(0.0, 0.0));
        twin.update_location(SimTime::from_secs(5), Position::new(9.0, 9.0));
        assert_eq!(twin.velocity_estimate(), None);
    }
}

#[cfg(test)]
mod poison_tests {
    use super::*;

    #[test]
    fn non_finite_updates_are_rejected() {
        let mut twin = UserDigitalTwin::new(UserId(4));
        assert!(!twin.update_channel(SimTime::from_secs(1), f64::NAN));
        assert!(!twin.update_channel(SimTime::from_secs(2), f64::INFINITY));
        assert!(
            !twin.update_channel(SimTime::from_secs(2), 1e6),
            "implausible magnitudes are corruption, not physics"
        );
        assert!(twin.update_channel(SimTime::from_secs(3), 12.0));
        assert_eq!(twin.channel_series().len(), 1);
        assert_eq!(twin.latest_snr_db(), Some(12.0));
        assert_eq!(twin.mean_recent_snr_db(10), Some(12.0));

        assert!(!twin.update_location(SimTime::from_secs(1), Position::new(f64::NAN, 5.0)));
        assert!(!twin.update_location(SimTime::from_secs(2), Position::new(5.0, f64::NEG_INFINITY)));
        assert!(twin.update_location(SimTime::from_secs(3), Position::new(5.0, 6.0)));
        assert_eq!(twin.location_series().len(), 1);
        assert_eq!(twin.latest_position(), Some(Position::new(5.0, 6.0)));
    }

    #[test]
    fn freshness_tracks_both_fast_attributes() {
        let mut twin = UserDigitalTwin::new(UserId(6));
        let horizon = SimDuration::from_secs(5);
        assert!(
            !twin.is_fresh(SimTime::from_secs(10), horizon),
            "empty twin"
        );
        twin.update_channel(SimTime::from_secs(8), 10.0);
        assert!(
            !twin.is_fresh(SimTime::from_secs(10), horizon),
            "location still missing"
        );
        twin.update_location(SimTime::from_secs(9), Position::new(1.0, 2.0));
        assert!(twin.is_fresh(SimTime::from_secs(10), horizon));
        assert_eq!(
            twin.channel_staleness(SimTime::from_secs(10)),
            Some(SimDuration::from_secs(2))
        );
        assert!(
            !twin.is_fresh(SimTime::from_secs(20), horizon),
            "both attributes aged out"
        );
    }

    #[test]
    fn feature_window_stays_finite_after_poison_attempts() {
        let mut twin = UserDigitalTwin::new(UserId(5));
        for i in 0..20u64 {
            let v = if i % 3 == 0 {
                f64::NAN
            } else {
                10.0 + i as f64
            };
            twin.update_channel(SimTime::from_secs(i), v);
        }
        let fw = twin.feature_window(16, 1000.0, 1000.0);
        for ch in &fw.series {
            assert!(ch.iter().all(|v| v.is_finite()), "poisoned feature window");
        }
    }
}

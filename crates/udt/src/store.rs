//! The concurrent edge-resident twin registry.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use msvs_types::{Error, Position, Result, SimDuration, SimTime, UserId};

use crate::attribute::WatchRecord;
use crate::twin::UserDigitalTwin;

/// Read-only view over a population of twins — what the prediction
/// pipeline actually consumes. Implemented by [`UdtStore`] (the
/// single-cell registry) and by multi-shard deployments that merge
/// several per-BS stores into one canonical population.
pub trait TwinView: Send + Sync {
    /// Number of registered twins.
    fn len(&self) -> usize;

    /// Whether the view holds no twins.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fraction of twins whose fast attributes are fresh within `horizon`
    /// of `now` (see [`UdtStore::fresh_fraction`]).
    fn fresh_fraction(&self, now: SimTime, horizon: SimDuration) -> f64;

    /// Clones every twin out, sorted by user id.
    fn snapshot(&self) -> Vec<UserDigitalTwin>;
}

impl TwinView for UdtStore {
    fn len(&self) -> usize {
        UdtStore::len(self)
    }

    fn fresh_fraction(&self, now: SimTime, horizon: SimDuration) -> f64 {
        UdtStore::fresh_fraction(self, now, horizon)
    }

    fn snapshot(&self) -> Vec<UserDigitalTwin> {
        UdtStore::snapshot(self)
    }
}

/// Number of lock shards; a small power of two spreads BS collector
/// contention without bloating the struct.
const SHARDS: usize = 16;

/// A sharded, thread-safe map of [`UserDigitalTwin`]s.
///
/// Base stations update twins concurrently while the predictor reads
/// consistent per-twin snapshots; shard-level `RwLock`s keep the common
/// path (disjoint users) contention-free.
#[derive(Debug, Default)]
pub struct UdtStore {
    shards: Vec<RwLock<HashMap<UserId, UserDigitalTwin>>>,
    /// Stamps each inserted twin with a fresh instance nonce so churned
    /// `UserId` slots never alias in revision-keyed caches. Inserts run
    /// serially in the simulation, so stamping order is deterministic.
    next_instance: AtomicU64,
}

impl UdtStore {
    /// Builds an empty store.
    pub fn new() -> Self {
        Self::with_instance_base(1)
    }

    /// Builds an empty store whose instance nonces start at `base`.
    ///
    /// Multi-shard deployments give each per-BS store a disjoint nonce
    /// namespace (e.g. the shard id in the high bits) so a twin that
    /// migrates between stores can never collide with a nonce the
    /// destination will stamp later. `with_instance_base(1)` is exactly
    /// [`UdtStore::new`].
    pub fn with_instance_base(base: u64) -> Self {
        Self {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            next_instance: AtomicU64::new(base),
        }
    }

    fn shard(&self, user: UserId) -> &RwLock<HashMap<UserId, UserDigitalTwin>> {
        &self.shards[user.index() % SHARDS]
    }

    /// Shared shard access; a poisoned lock means a collector thread
    /// panicked mid-update, which is unrecoverable for the registry.
    fn read(
        shard: &RwLock<HashMap<UserId, UserDigitalTwin>>,
    ) -> std::sync::RwLockReadGuard<'_, HashMap<UserId, UserDigitalTwin>> {
        shard.read().expect("twin shard lock poisoned")
    }

    /// Exclusive shard access (same poisoning policy as [`Self::read`]).
    fn write(
        shard: &RwLock<HashMap<UserId, UserDigitalTwin>>,
    ) -> std::sync::RwLockWriteGuard<'_, HashMap<UserId, UserDigitalTwin>> {
        shard.write().expect("twin shard lock poisoned")
    }

    /// Number of registered twins.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| Self::read(s).len()).sum()
    }

    /// Whether the store holds no twins.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Registers (or replaces) a twin, stamping it with a fresh instance
    /// nonce (see [`UserDigitalTwin::revision`]).
    pub fn insert(&self, mut twin: UserDigitalTwin) {
        twin.set_instance(self.next_instance.fetch_add(1, Ordering::Relaxed));
        Self::write(self.shard(twin.user())).insert(twin.user(), twin);
    }

    /// Re-registers a migrated twin *without* stamping a new instance
    /// nonce, preserving its full [`TwinRevision`](crate::TwinRevision) —
    /// the cross-shard handover primitive. Revision-keyed caches on the
    /// destination keep hitting because the revision (including the
    /// origin store's nonce) survives the move intact.
    pub fn import(&self, twin: UserDigitalTwin) {
        Self::write(self.shard(twin.user())).insert(twin.user(), twin);
    }

    /// Removes a twin, returning it if present.
    pub fn remove(&self, user: UserId) -> Option<UserDigitalTwin> {
        Self::write(self.shard(user)).remove(&user)
    }

    /// The next instance nonce this store would stamp. Captured by shard
    /// checkpoints so a restored store never reissues a nonce an earlier
    /// incarnation already handed out.
    pub fn next_instance(&self) -> u64 {
        self.next_instance.load(Ordering::Relaxed)
    }

    /// Restores the instance-nonce counter from a checkpoint. Only moves
    /// the counter forward — a stale checkpoint can never rewind it into
    /// reissuing live nonces.
    pub fn restore_next_instance(&self, next: u64) {
        self.next_instance.fetch_max(next, Ordering::Relaxed);
    }

    /// Removes every twin, leaving the instance counter untouched (a
    /// crashed shard's store is wiped, not rebuilt, so its nonce namespace
    /// stays monotone across the outage).
    pub fn clear(&self) {
        for shard in &self.shards {
            Self::write(shard).clear();
        }
    }

    /// Whether a twin exists for `user`.
    pub fn contains(&self, user: UserId) -> bool {
        Self::read(self.shard(user)).contains_key(&user)
    }

    /// All registered user ids (sorted for determinism).
    pub fn user_ids(&self) -> Vec<UserId> {
        let mut ids: Vec<UserId> = self
            .shards
            .iter()
            .flat_map(|s| Self::read(s).keys().copied().collect::<Vec<_>>())
            .collect();
        ids.sort();
        ids
    }

    /// Runs `f` with shared access to a twin.
    ///
    /// # Errors
    /// Returns [`Error::NotFound`] for an unregistered user.
    pub fn with_twin<T>(&self, user: UserId, f: impl FnOnce(&UserDigitalTwin) -> T) -> Result<T> {
        let guard = Self::read(self.shard(user));
        guard
            .get(&user)
            .map(f)
            .ok_or_else(|| Error::not_found("user twin", user))
    }

    /// Runs `f` with exclusive access to a twin.
    ///
    /// # Errors
    /// Returns [`Error::NotFound`] for an unregistered user.
    pub fn with_twin_mut<T>(
        &self,
        user: UserId,
        f: impl FnOnce(&mut UserDigitalTwin) -> T,
    ) -> Result<T> {
        let mut guard = Self::write(self.shard(user));
        guard
            .get_mut(&user)
            .map(f)
            .ok_or_else(|| Error::not_found("user twin", user))
    }

    /// Records a channel sample for `user`. Returns whether the twin
    /// accepted the sample (non-finite/implausible payloads are rejected;
    /// see [`UserDigitalTwin::update_channel`]).
    ///
    /// # Errors
    /// Returns [`Error::NotFound`] for an unregistered user.
    pub fn update_channel(&self, user: UserId, at: SimTime, snr_db: f64) -> Result<bool> {
        self.with_twin_mut(user, |t| t.update_channel(at, snr_db))
    }

    /// Records a location sample for `user`. Returns whether the twin
    /// accepted the sample.
    ///
    /// # Errors
    /// Returns [`Error::NotFound`] for an unregistered user.
    pub fn update_location(&self, user: UserId, at: SimTime, position: Position) -> Result<bool> {
        self.with_twin_mut(user, |t| t.update_location(at, position))
    }

    /// Records a watch record for `user`.
    ///
    /// # Errors
    /// Returns [`Error::NotFound`] for an unregistered user.
    pub fn record_watch(&self, user: UserId, at: SimTime, record: WatchRecord) -> Result<()> {
        self.with_twin_mut(user, |t| t.record_watch(at, record))
    }

    /// Fraction of registered twins whose fast attributes (channel and
    /// location) were both updated within `horizon` of `now` — the
    /// fresh-data coverage the degradation ladder gates on. `0.0` for an
    /// empty store. Order-independent (a pure count), so deterministic
    /// regardless of shard iteration order.
    pub fn fresh_fraction(&self, now: SimTime, horizon: msvs_types::SimDuration) -> f64 {
        let (fresh, total) = self.fresh_count(now, horizon);
        if total == 0 {
            0.0
        } else {
            fresh as f64 / total as f64
        }
    }

    /// `(fresh, total)` twin counts behind [`Self::fresh_fraction`].
    /// Multi-shard views sum these integer counts so the pooled fraction
    /// is bit-identical to a single store holding the same twins.
    pub fn fresh_count(&self, now: SimTime, horizon: msvs_types::SimDuration) -> (usize, usize) {
        let mut fresh = 0usize;
        let mut total = 0usize;
        for shard in &self.shards {
            for twin in Self::read(shard).values() {
                total += 1;
                if twin.is_fresh(now, horizon) {
                    fresh += 1;
                }
            }
        }
        (fresh, total)
    }

    /// Clones every twin out (snapshot for offline analysis).
    pub fn snapshot(&self) -> Vec<UserDigitalTwin> {
        let mut twins: Vec<UserDigitalTwin> = self
            .shards
            .iter()
            .flat_map(|s| Self::read(s).values().cloned().collect::<Vec<_>>())
            .collect();
        twins.sort_by_key(|t| t.user());
        twins
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn insert_contains_remove() {
        let store = UdtStore::new();
        assert!(store.is_empty());
        store.insert(UserDigitalTwin::new(UserId(5)));
        assert!(store.contains(UserId(5)));
        assert_eq!(store.len(), 1);
        assert!(store.remove(UserId(5)).is_some());
        assert!(store.remove(UserId(5)).is_none());
        assert!(store.is_empty());
    }

    #[test]
    fn unknown_user_errors() {
        let store = UdtStore::new();
        assert!(store
            .update_channel(UserId(1), SimTime::ZERO, 10.0)
            .is_err());
        assert!(store.with_twin(UserId(1), |_| ()).is_err());
    }

    #[test]
    fn user_ids_sorted() {
        let store = UdtStore::new();
        for id in [30u32, 2, 17, 99, 4] {
            store.insert(UserDigitalTwin::new(UserId(id)));
        }
        let ids: Vec<u32> = store.user_ids().into_iter().map(u32::from).collect();
        assert_eq!(ids, vec![2, 4, 17, 30, 99]);
    }

    #[test]
    fn fresh_fraction_counts_recent_twins() {
        use msvs_types::SimDuration;
        let store = UdtStore::new();
        assert_eq!(
            store.fresh_fraction(SimTime::ZERO, SimDuration::from_secs(5)),
            0.0
        );
        for id in 0..4u32 {
            store.insert(UserDigitalTwin::new(UserId(id)));
        }
        // Two twins fully fresh, one channel-only, one empty.
        for id in [0u32, 1] {
            store
                .update_channel(UserId(id), SimTime::from_secs(10), 8.0)
                .unwrap();
            store
                .update_location(UserId(id), SimTime::from_secs(10), Position::new(1.0, 2.0))
                .unwrap();
        }
        store
            .update_channel(UserId(2), SimTime::from_secs(10), 8.0)
            .unwrap();
        let now = SimTime::from_secs(12);
        assert_eq!(store.fresh_fraction(now, SimDuration::from_secs(5)), 0.5);
        assert_eq!(
            store.fresh_fraction(SimTime::from_secs(60), SimDuration::from_secs(5)),
            0.0
        );
    }

    #[test]
    fn reinserting_a_user_slot_gets_a_fresh_instance() {
        let store = UdtStore::new();
        store.insert(UserDigitalTwin::new(UserId(7)));
        let first = store.with_twin(UserId(7), |t| t.revision()).unwrap();
        assert_ne!(first.instance, 0, "store stamps a nonce");
        // Churn: same id slot, brand-new twin. Revisions reset but the
        // instance nonce must differ so caches cannot alias the two.
        store.insert(UserDigitalTwin::new(UserId(7)));
        let second = store.with_twin(UserId(7), |t| t.revision()).unwrap();
        assert_ne!(first.instance, second.instance);
        assert_eq!(second.channel, 0);
    }

    #[test]
    fn import_preserves_the_instance_nonce() {
        let origin = UdtStore::with_instance_base(1);
        let dest = UdtStore::with_instance_base(1 << 40);
        origin.insert(UserDigitalTwin::new(UserId(3)));
        origin
            .update_channel(UserId(3), SimTime::from_secs(1), 7.0)
            .unwrap();
        let rev = origin.with_twin(UserId(3), |t| t.revision()).unwrap();
        let twin = origin.remove(UserId(3)).expect("twin present");
        dest.import(twin);
        let after = dest.with_twin(UserId(3), |t| t.revision()).unwrap();
        assert_eq!(rev, after, "migration must not disturb the revision");
        // A fresh insert on the destination stamps from its own base, so
        // the migrated nonce can never be reissued there.
        dest.insert(UserDigitalTwin::new(UserId(9)));
        let stamped = dest.with_twin(UserId(9), |t| t.revision()).unwrap();
        assert_eq!(stamped.instance, 1 << 40);
        assert_ne!(stamped.instance, after.instance);
    }

    #[test]
    fn clear_keeps_the_instance_counter_monotone() {
        let store = UdtStore::with_instance_base(100);
        store.insert(UserDigitalTwin::new(UserId(1)));
        store.insert(UserDigitalTwin::new(UserId(2)));
        assert_eq!(store.next_instance(), 102);
        store.clear();
        assert!(store.is_empty());
        assert_eq!(store.next_instance(), 102, "clear must not rewind nonces");
        store.restore_next_instance(150);
        assert_eq!(store.next_instance(), 150);
        store.restore_next_instance(120);
        assert_eq!(store.next_instance(), 150, "restore never rewinds");
        store.insert(UserDigitalTwin::new(UserId(3)));
        let rev = store.with_twin(UserId(3), |t| t.revision()).unwrap();
        assert_eq!(rev.instance, 150);
    }

    #[test]
    fn twin_view_matches_inherent_methods() {
        let store = UdtStore::new();
        store.insert(UserDigitalTwin::new(UserId(2)));
        store.insert(UserDigitalTwin::new(UserId(1)));
        let view: &dyn TwinView = &store;
        assert_eq!(TwinView::len(view), 2);
        assert!(!view.is_empty());
        assert_eq!(view.snapshot().len(), 2);
        assert_eq!(
            view.fresh_fraction(SimTime::ZERO, msvs_types::SimDuration::from_secs(5)),
            store.fresh_fraction(SimTime::ZERO, msvs_types::SimDuration::from_secs(5))
        );
    }

    #[test]
    fn snapshot_is_deep_and_ordered() {
        let store = UdtStore::new();
        store.insert(UserDigitalTwin::new(UserId(2)));
        store.insert(UserDigitalTwin::new(UserId(1)));
        store.update_channel(UserId(1), SimTime::ZERO, 5.0).unwrap();
        let snap = store.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].user(), UserId(1));
        // Mutating the store after snapshot leaves the snapshot unchanged.
        store
            .update_channel(UserId(1), SimTime::from_secs(1), 9.0)
            .unwrap();
        assert_eq!(snap[0].latest_snr_db(), Some(5.0));
    }

    #[test]
    fn concurrent_updates_from_many_threads() {
        let store = Arc::new(UdtStore::new());
        const USERS: u32 = 64;
        for id in 0..USERS {
            store.insert(UserDigitalTwin::new(UserId(id)));
        }
        let mut handles = Vec::new();
        for thread in 0..8u32 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for step in 0..200u64 {
                    let user = UserId((thread * 8 + (step % 8) as u32) % USERS);
                    store
                        .update_channel(user, SimTime(step), step as f64)
                        .unwrap();
                    store
                        .update_location(user, SimTime(step), Position::new(1.0, 2.0))
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Every touched twin has data.
        let with_data = store
            .snapshot()
            .iter()
            .filter(|t| t.latest_snr_db().is_some())
            .count();
        assert!(with_data > 0);
        assert_eq!(store.len(), USERS as usize);
    }
}

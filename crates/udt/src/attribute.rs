//! Bounded, timestamped attribute series.

use msvs_types::{RepresentationLevel, SimDuration, SimTime, VideoCategory, VideoId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A bounded time series of `(timestamp, value)` samples.
///
/// Old samples are evicted once `capacity` is reached, mirroring the
/// fixed storage budget a real edge-resident twin would have.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries<T> {
    samples: VecDeque<(SimTime, T)>,
    capacity: usize,
}

impl<T> TimeSeries<T> {
    /// Builds an empty series bounded to `capacity` samples.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "time series capacity must be positive");
        Self {
            samples: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
        }
    }

    /// Number of stored samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Maximum retained samples.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends a sample, evicting the oldest when full.
    ///
    /// Samples are expected in non-decreasing time order; out-of-order
    /// pushes are accepted but `latest` then reflects insertion order.
    pub fn push(&mut self, at: SimTime, value: T) {
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
        }
        self.samples.push_back((at, value));
    }

    /// The most recent sample.
    pub fn latest(&self) -> Option<&(SimTime, T)> {
        self.samples.back()
    }

    /// Timestamp of the most recent sample.
    pub fn last_updated(&self) -> Option<SimTime> {
        self.samples.back().map(|(t, _)| *t)
    }

    /// Age of the newest sample relative to `now` (staleness).
    pub fn staleness(&self, now: SimTime) -> Option<SimDuration> {
        self.last_updated().map(|t| now.since(t))
    }

    /// Iterates oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &(SimTime, T)> {
        self.samples.iter()
    }

    /// The last `n` values (oldest → newest); shorter if fewer exist.
    pub fn tail(&self, n: usize) -> Vec<&T> {
        let skip = self.samples.len().saturating_sub(n);
        self.samples.iter().skip(skip).map(|(_, v)| v).collect()
    }

    /// Values sampled at or after `since` (oldest → newest).
    pub fn since(&self, since: SimTime) -> Vec<&T> {
        self.samples
            .iter()
            .filter(|(t, _)| *t >= since)
            .map(|(_, v)| v)
            .collect()
    }

    /// Removes all samples.
    pub fn clear(&mut self) {
        self.samples.clear();
    }
}

/// One completed or swiped-away video view, as reported by a base station.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WatchRecord {
    /// The video watched.
    pub video: VideoId,
    /// Its category.
    pub category: VideoCategory,
    /// Representation level streamed.
    pub level: RepresentationLevel,
    /// Time actually watched.
    pub watched: SimDuration,
    /// Full length of the video.
    pub video_duration: SimDuration,
    /// Whether playback reached the end.
    pub completed: bool,
}

impl WatchRecord {
    /// Fraction of the video watched, in `[0, 1]`.
    pub fn retention(&self) -> f64 {
        if self.video_duration == SimDuration::ZERO {
            return 0.0;
        }
        (self.watched.as_secs_f64() / self.video_duration.as_secs_f64()).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_evicts_oldest() {
        let mut ts = TimeSeries::new(3);
        for i in 0..5u64 {
            ts.push(SimTime::from_secs(i), i as f64);
        }
        assert_eq!(ts.len(), 3);
        let vals: Vec<f64> = ts.iter().map(|(_, v)| *v).collect();
        assert_eq!(vals, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn staleness_tracks_now() {
        let mut ts = TimeSeries::new(4);
        assert_eq!(ts.staleness(SimTime::from_secs(5)), None);
        ts.push(SimTime::from_secs(3), 1.0);
        assert_eq!(
            ts.staleness(SimTime::from_secs(10)),
            Some(SimDuration::from_secs(7))
        );
    }

    #[test]
    fn tail_and_since() {
        let mut ts = TimeSeries::new(10);
        for i in 0..6u64 {
            ts.push(SimTime::from_secs(i), i as i32);
        }
        assert_eq!(ts.tail(2), vec![&4, &5]);
        assert_eq!(ts.tail(100).len(), 6);
        assert_eq!(ts.since(SimTime::from_secs(4)), vec![&4, &5]);
        assert!(ts.since(SimTime::from_secs(100)).is_empty());
    }

    #[test]
    fn latest_and_clear() {
        let mut ts = TimeSeries::new(2);
        ts.push(SimTime::from_secs(1), "a");
        ts.push(SimTime::from_secs(2), "b");
        assert_eq!(ts.latest(), Some(&(SimTime::from_secs(2), "b")));
        ts.clear();
        assert!(ts.is_empty());
        assert_eq!(ts.capacity(), 2);
    }

    #[test]
    fn watch_record_retention_clamps() {
        let r = WatchRecord {
            video: VideoId(0),
            category: VideoCategory::News,
            level: RepresentationLevel::P720,
            watched: SimDuration::from_secs(30),
            video_duration: SimDuration::from_secs(20),
            completed: true,
        };
        assert_eq!(r.retention(), 1.0);
        let zero = WatchRecord {
            video_duration: SimDuration::ZERO,
            ..r
        };
        assert_eq!(zero.retention(), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _: TimeSeries<f64> = TimeSeries::new(0);
    }
}

//! Per-attribute collection scheduling.
//!
//! The paper: "Different data attributes are collected with different
//! frequencies." A [`CollectionPolicy`] declares those periods; the
//! [`SyncTracker`] decides, per tick, which attributes are due and counts
//! the uplink signalling this costs (ablated in experiment E4).

use msvs_types::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Collection periods per twin attribute.
///
/// Watch records are event-driven (reported when a session ends) and have
/// no period here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollectionPolicy {
    /// Channel-condition sampling period (fast-fading scale).
    pub channel_every: SimDuration,
    /// Location sampling period.
    pub location_every: SimDuration,
    /// Preference re-estimation period (slow).
    pub preference_every: SimDuration,
}

impl Default for CollectionPolicy {
    /// Channel every 1 s, location every 5 s, preference every 60 s.
    fn default() -> Self {
        Self {
            channel_every: SimDuration::from_secs(1),
            location_every: SimDuration::from_secs(5),
            preference_every: SimDuration::from_secs(60),
        }
    }
}

impl CollectionPolicy {
    /// Validates that all periods are non-zero.
    ///
    /// # Errors
    /// Returns `InvalidConfig` when any period is zero.
    pub fn validate(&self) -> msvs_types::Result<()> {
        for (name, d) in [
            ("channel_every", self.channel_every),
            ("location_every", self.location_every),
            ("preference_every", self.preference_every),
        ] {
            if d == SimDuration::ZERO {
                return Err(msvs_types::Error::invalid_config(
                    "collection policy",
                    format!("{name} must be non-zero"),
                ));
            }
        }
        Ok(())
    }

    /// Uniformly scales every period by `factor` (>1 = rarer collection).
    ///
    /// # Panics
    /// Panics if `factor` is not strictly positive.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        let scale = |d: SimDuration| {
            SimDuration::from_millis(((d.as_millis() as f64 * factor).round() as u64).max(1))
        };
        Self {
            channel_every: scale(self.channel_every),
            location_every: scale(self.location_every),
            preference_every: scale(self.preference_every),
        }
    }
}

/// Tracks what is due for one user and tallies signalling cost.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyncTracker {
    last_channel: Option<SimTime>,
    last_location: Option<SimTime>,
    last_preference: Option<SimTime>,
    updates_sent: u64,
}

impl SyncTracker {
    /// Builds a tracker with nothing collected yet (everything is due).
    pub fn new() -> Self {
        Self::default()
    }

    /// Total updates recorded by this tracker (signalling cost proxy).
    pub fn updates_sent(&self) -> u64 {
        self.updates_sent
    }

    /// Whether a channel sample is due at `now` under `policy`.
    pub fn channel_due(&self, policy: &CollectionPolicy, now: SimTime) -> bool {
        due(self.last_channel, policy.channel_every, now)
    }

    /// Whether a location sample is due.
    pub fn location_due(&self, policy: &CollectionPolicy, now: SimTime) -> bool {
        due(self.last_location, policy.location_every, now)
    }

    /// Whether a preference refresh is due.
    pub fn preference_due(&self, policy: &CollectionPolicy, now: SimTime) -> bool {
        due(self.last_preference, policy.preference_every, now)
    }

    /// Marks the channel attribute as collected at `now`.
    pub fn mark_channel(&mut self, now: SimTime) {
        self.last_channel = Some(now);
        self.updates_sent += 1;
    }

    /// Marks the location attribute as collected at `now`.
    pub fn mark_location(&mut self, now: SimTime) {
        self.last_location = Some(now);
        self.updates_sent += 1;
    }

    /// Marks the preference attribute as collected at `now`.
    pub fn mark_preference(&mut self, now: SimTime) {
        self.last_preference = Some(now);
        self.updates_sent += 1;
    }
}

fn due(last: Option<SimTime>, every: SimDuration, now: SimTime) -> bool {
    match last {
        None => true,
        Some(t) => now.since(t) >= every,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn everything_due_initially() {
        let tracker = SyncTracker::new();
        let policy = CollectionPolicy::default();
        let now = SimTime::ZERO;
        assert!(tracker.channel_due(&policy, now));
        assert!(tracker.location_due(&policy, now));
        assert!(tracker.preference_due(&policy, now));
    }

    #[test]
    fn due_respects_periods() {
        let mut tracker = SyncTracker::new();
        let policy = CollectionPolicy::default();
        tracker.mark_channel(SimTime::from_secs(10));
        assert!(!tracker.channel_due(&policy, SimTime::from_secs(10)));
        assert!(!tracker.channel_due(&policy, SimTime(10_999)));
        assert!(tracker.channel_due(&policy, SimTime::from_secs(11)));
    }

    #[test]
    fn updates_are_counted() {
        let mut tracker = SyncTracker::new();
        tracker.mark_channel(SimTime::ZERO);
        tracker.mark_location(SimTime::ZERO);
        tracker.mark_preference(SimTime::ZERO);
        assert_eq!(tracker.updates_sent(), 3);
    }

    #[test]
    fn scaled_policy_multiplies_periods() {
        let p = CollectionPolicy::default().scaled(3.0);
        assert_eq!(p.channel_every, SimDuration::from_secs(3));
        assert_eq!(p.location_every, SimDuration::from_secs(15));
        assert_eq!(p.preference_every, SimDuration::from_secs(180));
        p.validate().unwrap();
    }

    #[test]
    fn scaled_policy_never_hits_zero() {
        let p = CollectionPolicy::default().scaled(1e-9);
        p.validate().unwrap();
        assert!(p.channel_every > SimDuration::ZERO);
    }

    #[test]
    fn validate_rejects_zero_period() {
        let p = CollectionPolicy {
            channel_every: SimDuration::ZERO,
            ..Default::default()
        };
        assert!(p.validate().is_err());
    }
}

//! Per-attribute collection scheduling.
//!
//! The paper: "Different data attributes are collected with different
//! frequencies." A [`CollectionPolicy`] declares those periods; the
//! [`SyncTracker`] decides, per tick, which attributes are due and counts
//! the uplink signalling this costs (ablated in experiment E4).

use msvs_telemetry::Json;
use msvs_types::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Collection periods per twin attribute.
///
/// Watch records are event-driven (reported when a session ends) and have
/// no period here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollectionPolicy {
    /// Channel-condition sampling period (fast-fading scale).
    pub channel_every: SimDuration,
    /// Location sampling period.
    pub location_every: SimDuration,
    /// Preference re-estimation period (slow).
    pub preference_every: SimDuration,
}

impl Default for CollectionPolicy {
    /// Channel every 1 s, location every 5 s, preference every 60 s.
    fn default() -> Self {
        Self {
            channel_every: SimDuration::from_secs(1),
            location_every: SimDuration::from_secs(5),
            preference_every: SimDuration::from_secs(60),
        }
    }
}

impl CollectionPolicy {
    /// Validates that all periods are non-zero.
    ///
    /// # Errors
    /// Returns `InvalidConfig` when any period is zero.
    pub fn validate(&self) -> msvs_types::Result<()> {
        for (name, d) in [
            ("channel_every", self.channel_every),
            ("location_every", self.location_every),
            ("preference_every", self.preference_every),
        ] {
            if d == SimDuration::ZERO {
                return Err(msvs_types::Error::invalid_config(
                    "collection policy",
                    format!("{name} must be non-zero"),
                ));
            }
        }
        Ok(())
    }

    /// Uniformly scales every period by `factor` (>1 = rarer collection).
    ///
    /// # Panics
    /// Panics if `factor` is not strictly positive.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        let scale = |d: SimDuration| {
            SimDuration::from_millis(((d.as_millis() as f64 * factor).round() as u64).max(1))
        };
        Self {
            channel_every: scale(self.channel_every),
            location_every: scale(self.location_every),
            preference_every: scale(self.preference_every),
        }
    }
}

/// Bounded exponential backoff for lost uplink reports.
///
/// After a loss, the next attempt is scheduled `backoff` later, doubling
/// per further loss in the same episode, up to `max_attempts` retries —
/// so a lost report for a slow attribute (preference, every 60 s) is
/// re-sent within seconds instead of waiting out the full period.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum retries per loss episode (`0` disables retry).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub backoff: SimDuration,
}

impl Default for RetryPolicy {
    /// Three attempts, 2 s initial backoff.
    fn default() -> Self {
        Self {
            max_attempts: 3,
            backoff: SimDuration::from_secs(2),
        }
    }
}

/// Per-attribute retry bookkeeping: when the next retry fires and how
/// many attempts this loss episode has consumed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
struct RetryState {
    next: Option<SimTime>,
    attempts: u32,
}

impl RetryState {
    fn due(&self, now: SimTime) -> bool {
        self.next.is_some_and(|t| now >= t)
    }

    /// Schedules the next attempt after a loss at `now`, or gives the
    /// episode up when attempts are exhausted.
    fn schedule(&mut self, now: SimTime, policy: &RetryPolicy) {
        if self.attempts < policy.max_attempts {
            let backoff = policy.backoff * (1u64 << self.attempts.min(16));
            self.attempts += 1;
            self.next = Some(now + backoff);
        } else {
            *self = RetryState::default();
        }
    }
}

/// Tracks what is due for one user and tallies signalling cost.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyncTracker {
    last_channel: Option<SimTime>,
    last_location: Option<SimTime>,
    last_preference: Option<SimTime>,
    updates_sent: u64,
    retry_channel: RetryState,
    retry_location: RetryState,
    retry_preference: RetryState,
    retries_sent: u64,
}

impl SyncTracker {
    /// Builds a tracker with nothing collected yet (everything is due).
    pub fn new() -> Self {
        Self::default()
    }

    /// Total updates recorded by this tracker (signalling cost proxy).
    /// Lost sends count too — the uplink was used either way.
    pub fn updates_sent(&self) -> u64 {
        self.updates_sent
    }

    /// How many of those updates were retries of lost reports (the extra
    /// signalling the retry policy costs).
    pub fn retries_sent(&self) -> u64 {
        self.retries_sent
    }

    /// Whether a channel sample is due at `now` under `policy` (regular
    /// period elapsed, or a retry of a lost report is scheduled).
    pub fn channel_due(&self, policy: &CollectionPolicy, now: SimTime) -> bool {
        due(self.last_channel, policy.channel_every, now) || self.retry_channel.due(now)
    }

    /// Whether a location sample is due.
    pub fn location_due(&self, policy: &CollectionPolicy, now: SimTime) -> bool {
        due(self.last_location, policy.location_every, now) || self.retry_location.due(now)
    }

    /// Whether a preference refresh is due.
    pub fn preference_due(&self, policy: &CollectionPolicy, now: SimTime) -> bool {
        due(self.last_preference, policy.preference_every, now) || self.retry_preference.due(now)
    }

    /// Counts the send; a pending retry episode means this send *was* the
    /// retry.
    fn count_send(updates: &mut u64, retries: &mut u64, retry: &RetryState) {
        *updates += 1;
        if retry.attempts > 0 {
            *retries += 1;
        }
    }

    /// Marks the channel attribute as collected at `now`.
    pub fn mark_channel(&mut self, now: SimTime) {
        Self::count_send(
            &mut self.updates_sent,
            &mut self.retries_sent,
            &self.retry_channel,
        );
        self.last_channel = Some(now);
        self.retry_channel = RetryState::default();
    }

    /// Marks the location attribute as collected at `now`.
    pub fn mark_location(&mut self, now: SimTime) {
        Self::count_send(
            &mut self.updates_sent,
            &mut self.retries_sent,
            &self.retry_location,
        );
        self.last_location = Some(now);
        self.retry_location = RetryState::default();
    }

    /// Marks the preference attribute as collected at `now`.
    pub fn mark_preference(&mut self, now: SimTime) {
        Self::count_send(
            &mut self.updates_sent,
            &mut self.retries_sent,
            &self.retry_preference,
        );
        self.last_preference = Some(now);
        self.retry_preference = RetryState::default();
    }

    /// Records that the channel report sent at `now` was lost in transit:
    /// the send still cost signalling, the twin was not updated, and a
    /// retry is scheduled per `policy`. The regular period restarts (the
    /// BS does not know the report vanished).
    pub fn mark_channel_lost(&mut self, now: SimTime, policy: &RetryPolicy) {
        Self::count_send(
            &mut self.updates_sent,
            &mut self.retries_sent,
            &self.retry_channel,
        );
        self.last_channel = Some(now);
        self.retry_channel.schedule(now, policy);
    }

    /// Records a lost location report (see [`Self::mark_channel_lost`]).
    pub fn mark_location_lost(&mut self, now: SimTime, policy: &RetryPolicy) {
        Self::count_send(
            &mut self.updates_sent,
            &mut self.retries_sent,
            &self.retry_location,
        );
        self.last_location = Some(now);
        self.retry_location.schedule(now, policy);
    }

    /// Records a lost preference report (see [`Self::mark_channel_lost`]).
    pub fn mark_preference_lost(&mut self, now: SimTime, policy: &RetryPolicy) {
        Self::count_send(
            &mut self.updates_sent,
            &mut self.retries_sent,
            &self.retry_preference,
        );
        self.last_preference = Some(now);
        self.retry_preference.schedule(now, policy);
    }

    /// Serialises the tracker's full state for a shard checkpoint —
    /// including in-flight retry episodes, so a restored shard resumes
    /// the bounded-backoff replay exactly where the checkpoint left it.
    pub fn checkpoint_json(&self) -> Json {
        let opt_time = |t: Option<SimTime>| t.map_or(Json::Null, |t| Json::Num(t.0 as f64));
        let retry = |r: &RetryState| {
            Json::obj([
                ("next_ms", opt_time(r.next)),
                ("attempts", Json::Num(f64::from(r.attempts))),
            ])
        };
        Json::obj([
            ("last_channel_ms", opt_time(self.last_channel)),
            ("last_location_ms", opt_time(self.last_location)),
            ("last_preference_ms", opt_time(self.last_preference)),
            ("updates_sent", Json::Num(self.updates_sent as f64)),
            ("retries_sent", Json::Num(self.retries_sent as f64)),
            ("retry_channel", retry(&self.retry_channel)),
            ("retry_location", retry(&self.retry_location)),
            ("retry_preference", retry(&self.retry_preference)),
        ])
    }

    /// Rebuilds a tracker from [`Self::checkpoint_json`] output.
    ///
    /// # Errors
    /// Returns a message naming the first malformed or missing field.
    pub fn from_checkpoint_json(json: &Json) -> Result<Self, String> {
        let opt_time = |k: &str| match json.get(k) {
            None | Some(Json::Null) => Ok(None),
            Some(v) => v
                .as_u64()
                .map(|t| Some(SimTime(t)))
                .ok_or_else(|| format!("tracker: '{k}' must be an integer or null")),
        };
        let int = |k: &str| {
            json.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("tracker: missing integer field '{k}'"))
        };
        let retry = |k: &str| -> Result<RetryState, String> {
            let obj = json
                .get(k)
                .ok_or_else(|| format!("tracker: missing object field '{k}'"))?;
            let next = match obj.get("next_ms") {
                None | Some(Json::Null) => None,
                Some(v) => Some(SimTime(v.as_u64().ok_or_else(|| {
                    format!("tracker: '{k}.next_ms' must be an integer or null")
                })?)),
            };
            let attempts = obj
                .get("attempts")
                .and_then(Json::as_u64)
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| format!("tracker: '{k}.attempts' must be an integer"))?;
            Ok(RetryState { next, attempts })
        };
        Ok(Self {
            last_channel: opt_time("last_channel_ms")?,
            last_location: opt_time("last_location_ms")?,
            last_preference: opt_time("last_preference_ms")?,
            updates_sent: int("updates_sent")?,
            retries_sent: int("retries_sent")?,
            retry_channel: retry("retry_channel")?,
            retry_location: retry("retry_location")?,
            retry_preference: retry("retry_preference")?,
        })
    }
}

fn due(last: Option<SimTime>, every: SimDuration, now: SimTime) -> bool {
    match last {
        None => true,
        Some(t) => now.since(t) >= every,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn everything_due_initially() {
        let tracker = SyncTracker::new();
        let policy = CollectionPolicy::default();
        let now = SimTime::ZERO;
        assert!(tracker.channel_due(&policy, now));
        assert!(tracker.location_due(&policy, now));
        assert!(tracker.preference_due(&policy, now));
    }

    #[test]
    fn due_respects_periods() {
        let mut tracker = SyncTracker::new();
        let policy = CollectionPolicy::default();
        tracker.mark_channel(SimTime::from_secs(10));
        assert!(!tracker.channel_due(&policy, SimTime::from_secs(10)));
        assert!(!tracker.channel_due(&policy, SimTime(10_999)));
        assert!(tracker.channel_due(&policy, SimTime::from_secs(11)));
    }

    #[test]
    fn updates_are_counted() {
        let mut tracker = SyncTracker::new();
        tracker.mark_channel(SimTime::ZERO);
        tracker.mark_location(SimTime::ZERO);
        tracker.mark_preference(SimTime::ZERO);
        assert_eq!(tracker.updates_sent(), 3);
    }

    #[test]
    fn lost_reports_retry_with_backoff() {
        let mut tracker = SyncTracker::new();
        let policy = CollectionPolicy {
            preference_every: SimDuration::from_secs(60),
            ..Default::default()
        };
        let retry = RetryPolicy {
            max_attempts: 2,
            backoff: SimDuration::from_secs(2),
        };
        // The report at t=0 is lost: not due again until the 2 s backoff.
        tracker.mark_preference_lost(SimTime::ZERO, &retry);
        assert_eq!(tracker.updates_sent(), 1, "the lost send cost signalling");
        assert!(!tracker.preference_due(&policy, SimTime::from_secs(1)));
        assert!(tracker.preference_due(&policy, SimTime::from_secs(2)));
        // The retry is lost too: backoff doubles to 4 s.
        tracker.mark_preference_lost(SimTime::from_secs(2), &retry);
        assert_eq!(tracker.retries_sent(), 1, "the second send was a retry");
        assert!(!tracker.preference_due(&policy, SimTime::from_secs(5)));
        assert!(tracker.preference_due(&policy, SimTime::from_secs(6)));
        // The second retry succeeds; the episode clears.
        tracker.mark_preference(SimTime::from_secs(6));
        assert_eq!(tracker.retries_sent(), 2);
        assert_eq!(tracker.updates_sent(), 3);
        assert!(!tracker.preference_due(&policy, SimTime::from_secs(30)));
        assert!(tracker.preference_due(&policy, SimTime::from_secs(66)));
    }

    #[test]
    fn retry_attempts_are_bounded() {
        let mut tracker = SyncTracker::new();
        let policy = CollectionPolicy::default();
        let retry = RetryPolicy {
            max_attempts: 1,
            backoff: SimDuration::from_secs(2),
        };
        tracker.mark_preference_lost(SimTime::ZERO, &retry);
        // The single allowed retry is lost as well: the episode is given
        // up, and only the regular 60 s period can trigger the next send.
        tracker.mark_preference_lost(SimTime::from_secs(2), &retry);
        assert!(!tracker.preference_due(&policy, SimTime::from_secs(30)));
        assert!(tracker.preference_due(&policy, SimTime::from_secs(62)));
    }

    #[test]
    fn zero_attempts_disables_retry() {
        let mut tracker = SyncTracker::new();
        let policy = CollectionPolicy::default();
        let retry = RetryPolicy {
            max_attempts: 0,
            backoff: SimDuration::from_secs(2),
        };
        tracker.mark_channel_lost(SimTime::ZERO, &retry);
        assert!(!tracker.channel_due(&policy, SimTime(500)));
        assert!(
            tracker.channel_due(&policy, SimTime::from_secs(1)),
            "regular period"
        );
        assert_eq!(tracker.retries_sent(), 0);
    }

    #[test]
    fn scaled_policy_multiplies_periods() {
        let p = CollectionPolicy::default().scaled(3.0);
        assert_eq!(p.channel_every, SimDuration::from_secs(3));
        assert_eq!(p.location_every, SimDuration::from_secs(15));
        assert_eq!(p.preference_every, SimDuration::from_secs(180));
        p.validate().unwrap();
    }

    #[test]
    fn scaled_policy_never_hits_zero() {
        let p = CollectionPolicy::default().scaled(1e-9);
        p.validate().unwrap();
        assert!(p.channel_every > SimDuration::ZERO);
    }

    #[test]
    fn tracker_checkpoint_round_trip_preserves_retry_state() {
        let mut tracker = SyncTracker::new();
        let retry = RetryPolicy {
            max_attempts: 3,
            backoff: SimDuration::from_secs(2),
        };
        tracker.mark_channel(SimTime::from_secs(4));
        tracker.mark_location_lost(SimTime::from_secs(5), &retry);
        tracker.mark_location_lost(SimTime::from_secs(7), &retry);
        tracker.mark_preference_lost(SimTime::from_secs(6), &retry);
        let text = tracker.checkpoint_json().to_string();
        let back = SyncTracker::from_checkpoint_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, tracker, "checkpoint round trip must be exact");
        // The in-flight episode resumes: location retry due at 7 s + 4 s.
        let policy = CollectionPolicy::default();
        assert!(!back.location_due(&policy, SimTime::from_secs(10)));
        assert!(back.retry_location.due(SimTime::from_secs(11)));
    }

    #[test]
    fn tracker_checkpoint_decode_names_the_bad_field() {
        let mut json = SyncTracker::new().checkpoint_json();
        if let Json::Obj(map) = &mut json {
            map.remove("retry_channel");
        }
        let err = SyncTracker::from_checkpoint_json(&json).unwrap_err();
        assert!(err.contains("retry_channel"), "{err}");
    }

    #[test]
    fn validate_rejects_zero_period() {
        let p = CollectionPolicy {
            channel_every: SimDuration::ZERO,
            ..Default::default()
        };
        assert!(p.validate().is_err());
    }
}

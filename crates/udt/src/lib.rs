//! User digital twin (UDT) substrate.
//!
//! UDTs live on the edge server and mirror each user's status — channel
//! condition, location, watching duration, preference — as time series
//! collected by base stations at *per-attribute frequencies* (the paper's
//! "different data attributes are collected with different frequencies").
//!
//! - [`attribute`] — bounded time series with staleness tracking;
//! - [`twin`] — the per-user twin and its feature-window extraction for
//!   the 1D-CNN compressor;
//! - [`sync`] — collection policies (per-attribute periods) and their
//!   signalling cost;
//! - [`store`] — the concurrent edge-resident registry of twins.
//!
//! # Examples
//!
//! ```
//! use msvs_udt::{UserDigitalTwin, UdtStore};
//! use msvs_types::{UserId, SimTime, Position};
//!
//! let store = UdtStore::new();
//! store.insert(UserDigitalTwin::new(UserId(3)));
//! store.update_channel(UserId(3), SimTime::from_secs(1), 17.0).unwrap();
//! store.update_location(UserId(3), SimTime::from_secs(1),
//!                       Position::new(100.0, 250.0)).unwrap();
//! let snr = store.with_twin(UserId(3), |t| t.latest_snr_db()).unwrap();
//! assert_eq!(snr, Some(17.0));
//! ```

pub mod attribute;
pub mod store;
pub mod sync;
pub mod twin;

pub use attribute::{TimeSeries, WatchRecord};
pub use store::{TwinView, UdtStore};
pub use sync::{CollectionPolicy, RetryPolicy, SyncTracker};
pub use twin::{FeatureWindow, TwinRevision, UserDigitalTwin};

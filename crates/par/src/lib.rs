//! Zero-dependency scoped worker pool for the MSVS hot paths.
//!
//! The pool hands out *index ranges* of the input slice to worker threads via
//! an atomic chunk counter, then merges every result back **in input order**.
//! Because each item is processed independently and the merge is positional,
//! the output of [`Pool::map`] is bit-identical regardless of thread count —
//! the property the seeded-determinism guarantee of the simulator rests on.
//!
//! Design notes, in the house style of `shims/` and `crates/telemetry`:
//!
//! - std-only: [`std::thread::scope`] + atomics, no channels crates, no rayon;
//! - no persistent worker threads — a [`Pool`] is a thread-count policy, and
//!   each call spawns scoped workers that borrow the input directly;
//! - one thread (or one item) short-circuits to an inline serial loop, so a
//!   `threads = 1` run never pays spawn overhead and is trivially identical
//!   to pre-parallel behaviour;
//! - worker panics propagate to the caller on join, never silently dropped.
//!
//! ```
//! use msvs_par::Pool;
//! let pool = Pool::new(4);
//! let squares = pool.map(&[1u64, 2, 3, 4, 5], |_, x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How many chunks each worker should see on average. More chunks means
/// better load balancing for skewed workloads, at the cost of more contended
/// `fetch_add`s on the shared counter.
const CHUNKS_PER_WORKER: usize = 4;

/// One worker's output: its busy time plus each processed chunk as
/// `(start index, results)`, merged positionally by the caller.
type WorkerYield<R> = (Duration, Vec<(usize, Vec<R>)>);

/// Utilisation statistics for one parallel call, suitable for export as
/// telemetry gauges. All fields are *measured*, not estimated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParStats {
    /// Worker threads used for the call (1 for the inline serial path).
    pub threads: usize,
    /// Items processed.
    pub tasks: usize,
    /// Sum of per-worker busy time across all threads.
    pub busy: Duration,
    /// Wall-clock duration of the whole call.
    pub wall: Duration,
}

impl ParStats {
    /// Fraction of the pool's total thread-time spent doing work, in
    /// `[0, 1]`. A perfectly balanced call reports ~1.0.
    pub fn utilisation(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall <= 0.0 || self.threads == 0 {
            return 0.0;
        }
        (self.busy.as_secs_f64() / (self.threads as f64 * wall)).min(1.0)
    }

    /// Observed speedup over a hypothetical serial run: busy time divided by
    /// wall time. Bounded above by `threads`.
    pub fn effective_parallelism(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall <= 0.0 {
            return 0.0;
        }
        self.busy.as_secs_f64() / wall
    }
}

/// A fixed-width scoped worker pool.
///
/// `Pool` carries no threads of its own; it records how many workers each
/// call may spawn. Cloning or copying it is free, and a pool is safely
/// shareable across threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Default for Pool {
    /// Defaults to all available parallelism (like `Pool::new(0)`).
    fn default() -> Self {
        Self::new(0)
    }
}

impl Pool {
    /// Creates a pool that uses `threads` workers per call. `0` means "use
    /// [`std::thread::available_parallelism`]", falling back to 1 if the
    /// platform cannot report it.
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        Self { threads }
    }

    /// A single-threaded pool: every call runs inline on the caller's thread.
    pub fn serial() -> Self {
        Self { threads: 1 }
    }

    /// The number of worker threads a call on this pool may use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items`, returning results **in input order** no matter
    /// how work was interleaved across threads. `f` receives the item index
    /// alongside the item.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.map_stats(items, f).0
    }

    /// Like [`map`](Self::map), but also reports [`ParStats`] for telemetry.
    pub fn map_stats<T, R, F>(&self, items: &[T], f: F) -> (Vec<R>, ParStats)
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.workers_for(n);
        if workers <= 1 {
            let start = Instant::now();
            let out: Vec<R> = items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
            let wall = start.elapsed();
            return (
                out,
                ParStats {
                    threads: 1,
                    tasks: n,
                    busy: wall,
                    wall,
                },
            );
        }

        let chunk = chunk_size(n, workers);
        let next = AtomicUsize::new(0);
        let start = Instant::now();

        // Each worker returns (busy_time, Vec<(start_index, results)>); the
        // main thread merges positionally, so the output order is the input
        // order regardless of which worker processed which chunk.
        let per_worker: Vec<WorkerYield<R>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let busy_start = Instant::now();
                        let mut produced: Vec<(usize, Vec<R>)> = Vec::new();
                        loop {
                            let lo = next.fetch_add(chunk, Ordering::Relaxed);
                            if lo >= n {
                                break;
                            }
                            let hi = (lo + chunk).min(n);
                            let out: Vec<R> = (lo..hi).map(|i| f(i, &items[i])).collect();
                            produced.push((lo, out));
                        }
                        (busy_start.elapsed(), produced)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("msvs-par worker panicked"))
                .collect()
        });
        let wall = start.elapsed();

        let mut busy = Duration::ZERO;
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (worker_busy, produced) in per_worker {
            busy += worker_busy;
            for (lo, out) in produced {
                for (offset, r) in out.into_iter().enumerate() {
                    slots[lo + offset] = Some(r);
                }
            }
        }
        let out: Vec<R> = slots
            .into_iter()
            .map(|s| s.expect("msvs-par lost a result slot"))
            .collect();

        (
            out,
            ParStats {
                threads: workers,
                tasks: n,
                busy,
                wall,
            },
        )
    }

    /// Runs `f` on every element of `items` in place, in parallel. `f`
    /// receives the element's index. Returns [`ParStats`] for telemetry.
    ///
    /// Determinism note: each element is mutated independently, so the final
    /// slice contents do not depend on scheduling order.
    pub fn for_each_mut<T, F>(&self, items: &mut [T], f: F) -> ParStats
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        let n = items.len();
        let workers = self.workers_for(n);
        if workers <= 1 {
            let start = Instant::now();
            for (i, item) in items.iter_mut().enumerate() {
                f(i, item);
            }
            let wall = start.elapsed();
            return ParStats {
                threads: 1,
                tasks: n,
                busy: wall,
                wall,
            };
        }

        let chunk = chunk_size(n, workers);
        // Pre-split the slice into disjoint mutable chunks tagged with their
        // start index; workers pop chunks off the shared queue.
        let queue: Mutex<Vec<(usize, &mut [T])>> = Mutex::new(
            items
                .chunks_mut(chunk)
                .enumerate()
                .map(|(ci, c)| (ci * chunk, c))
                .collect(),
        );
        let start = Instant::now();

        let busy_times: Vec<Duration> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let busy_start = Instant::now();
                        loop {
                            let job = queue.lock().expect("msvs-par queue poisoned").pop();
                            let Some((lo, slice)) = job else { break };
                            for (offset, item) in slice.iter_mut().enumerate() {
                                f(lo + offset, item);
                            }
                        }
                        busy_start.elapsed()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("msvs-par worker panicked"))
                .collect()
        });
        let wall = start.elapsed();

        ParStats {
            threads: workers,
            tasks: n,
            busy: busy_times.into_iter().sum(),
            wall,
        }
    }

    /// Workers actually worth spawning for `n` items.
    fn workers_for(&self, n: usize) -> usize {
        self.threads.min(n).max(1)
    }
}

/// Chunk size giving each worker ~[`CHUNKS_PER_WORKER`] turns at the queue.
fn chunk_size(n: usize, workers: usize) -> usize {
    n.div_ceil(workers * CHUNKS_PER_WORKER).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let pool = Pool::new(4);
        let out = pool.map(&items, |i, x| {
            assert_eq!(i as u64, *x);
            x * 3 + 1
        });
        let expected: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn map_identical_across_thread_counts() {
        let items: Vec<f64> = (0..777).map(|i| i as f64 * 0.31).collect();
        let f = |_: usize, x: &f64| (x.sin() * 1e6).round();
        let serial = Pool::serial().map(&items, f);
        for threads in [2, 3, 4, 8] {
            let par = Pool::new(threads).map(&items, f);
            assert_eq!(serial, par, "thread count {threads} changed results");
        }
    }

    #[test]
    fn map_handles_empty_and_tiny_inputs() {
        let pool = Pool::new(8);
        let empty: Vec<u32> = Vec::new();
        assert!(pool.map(&empty, |_, x| *x).is_empty());
        assert_eq!(pool.map(&[7u32], |_, x| x + 1), vec![8]);
    }

    #[test]
    fn for_each_mut_touches_every_element_once() {
        let mut items = vec![0u64; 503];
        let calls = AtomicU64::new(0);
        let stats = Pool::new(4).for_each_mut(&mut items, |i, x| {
            calls.fetch_add(1, Ordering::Relaxed);
            *x = i as u64 + 1;
        });
        assert_eq!(calls.load(Ordering::Relaxed), 503);
        assert_eq!(stats.tasks, 503);
        for (i, x) in items.iter().enumerate() {
            assert_eq!(*x, i as u64 + 1);
        }
    }

    #[test]
    fn stats_are_sane() {
        let items: Vec<u64> = (0..4096).collect();
        let (out, stats) = Pool::new(4).map_stats(&items, |_, x| {
            // Enough work that busy time is measurable.
            (0..200).fold(*x, |acc, i| acc.wrapping_mul(31).wrapping_add(i))
        });
        assert_eq!(out.len(), 4096);
        assert!(stats.threads >= 1 && stats.threads <= 4);
        assert_eq!(stats.tasks, 4096);
        assert!(stats.utilisation() >= 0.0 && stats.utilisation() <= 1.0);
        assert!(stats.effective_parallelism() <= stats.threads as f64 + 0.5);
    }

    #[test]
    fn serial_pool_runs_inline() {
        let pool = Pool::serial();
        assert_eq!(pool.threads(), 1);
        let stats = pool.for_each_mut(&mut [1, 2, 3], |_, x| *x += 1);
        assert_eq!(stats.threads, 1);
    }

    #[test]
    fn zero_resolves_to_available_parallelism() {
        assert!(Pool::new(0).threads() >= 1);
        assert!(Pool::default().threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..64).collect();
        Pool::new(2).map(&items, |_, x| {
            if *x == 13 {
                panic!("boom");
            }
            *x
        });
    }
}

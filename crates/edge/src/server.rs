//! The edge serving policy.

use msvs_types::{CpuCycles, RepresentationLevel};
use msvs_video::{Catalog, Video};
use serde::{Deserialize, Serialize};

use crate::cache::VideoCache;
use crate::transcode::TranscodeModel;

/// Edge server sizing and cost parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdgeConfig {
    /// Cache storage, megabits.
    pub cache_capacity_mb: f64,
    /// Transcode cost model.
    pub transcode: TranscodeModel,
}

impl Default for EdgeConfig {
    fn default() -> Self {
        Self {
            // ~25 GB of storage: enough for a popular head at 1080p.
            cache_capacity_mb: 200_000.0,
            transcode: TranscodeModel::default(),
        }
    }
}

/// How a request was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServeKind {
    /// Exact representation was cached.
    CacheHit,
    /// A higher cached representation was transcoded down.
    Transcoded,
    /// Fetched from the remote CDN (then cached at top level, possibly
    /// transcoded down as well).
    RemoteFetch,
}

/// Result of serving one video request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServeOutcome {
    /// How the request was satisfied.
    pub kind: ServeKind,
    /// Compute spent transcoding for this request.
    pub cycles: CpuCycles,
    /// Backhaul traffic to the CDN, megabits (0 unless a remote fetch).
    pub backhaul_mb: f64,
}

/// An edge server: popularity-warmed cache plus transcoder, with running
/// compute/backhaul accounting.
#[derive(Debug, Clone)]
pub struct EdgeServer {
    cache: VideoCache,
    model: TranscodeModel,
    total_cycles: CpuCycles,
    total_backhaul_mb: f64,
    serves: u64,
    telemetry: Option<msvs_telemetry::Telemetry>,
}

impl EdgeServer {
    /// Builds a server and pre-warms its cache from `catalog`.
    pub fn new(config: EdgeConfig, catalog: &Catalog) -> Self {
        let mut cache = VideoCache::new(config.cache_capacity_mb);
        cache.warm_from(catalog);
        Self {
            cache,
            model: config.transcode,
            total_cycles: CpuCycles::ZERO,
            total_backhaul_mb: 0.0,
            serves: 0,
            telemetry: None,
        }
    }

    /// Wires observability in: serve-kind counters, transcode stage
    /// latencies, and `CacheEvicted` journal events.
    pub fn attach_telemetry(&mut self, telemetry: msvs_telemetry::Telemetry) {
        self.telemetry = Some(telemetry);
    }

    /// Counts one served request by kind and reports evictions the cache
    /// performed while satisfying it.
    fn note_serve(&mut self, kind: ServeKind) {
        let Some(t) = &self.telemetry else { return };
        let label = match kind {
            ServeKind::CacheHit => "cache_hit",
            ServeKind::Transcoded => "transcoded",
            ServeKind::RemoteFetch => "remote_fetch",
        };
        t.counter("edge_serves_total", label).inc();
        for (video, level) in self.cache.take_evicted() {
            t.emit(msvs_telemetry::Event::CacheEvicted {
                video: video.0 as u64,
                level: level.to_string(),
            });
        }
    }

    /// The underlying cache (stats, inspection).
    pub fn cache(&self) -> &VideoCache {
        &self.cache
    }

    /// Applies a brownout capacity scale in `(0, 1]` to the cache,
    /// evicting down to the reduced capacity. Evictions are journaled like
    /// any serve-path eviction when telemetry is attached.
    ///
    /// # Panics
    /// Panics if `scale` is outside `(0, 1]`.
    pub fn set_capacity_scale(&mut self, scale: f64) {
        self.cache.set_capacity_scale(scale);
        if let Some(t) = &self.telemetry {
            for (video, level) in self.cache.take_evicted() {
                t.emit(msvs_telemetry::Event::CacheEvicted {
                    video: video.0 as u64,
                    level: level.to_string(),
                });
            }
        }
    }

    /// The transcode cost model.
    pub fn transcode_model(&self) -> &TranscodeModel {
        &self.model
    }

    /// Total transcode cycles spent since construction.
    pub fn total_cycles(&self) -> CpuCycles {
        self.total_cycles
    }

    /// Total CDN backhaul, megabits.
    pub fn total_backhaul_mb(&self) -> f64 {
        self.total_backhaul_mb
    }

    /// Number of requests served.
    pub fn serves(&self) -> u64 {
        self.serves
    }

    /// Serves `video` at `level`, updating cache state and accounting.
    ///
    /// Equivalent to [`EdgeServer::serve_for`] with the full video
    /// duration (the whole clip is prepared).
    pub fn serve(&mut self, video: &Video, level: RepresentationLevel) -> ServeOutcome {
        self.serve_for(video, level, video.duration)
    }

    /// Serves the first `duration` of `video` at `level`.
    ///
    /// Short-video transcoding happens segment-by-segment just ahead of the
    /// multicast transmission, so when every group member swipes early only
    /// the transmitted prefix is transcoded (and billed). Backhaul likewise
    /// only covers the fetched prefix.
    ///
    /// Policy: exact hit → serve; higher representation cached → transcode
    /// down (and cache the result); otherwise fetch the top representation
    /// from the CDN, cache it, and transcode down if needed.
    pub fn serve_for(
        &mut self,
        video: &Video,
        level: RepresentationLevel,
        duration: msvs_types::SimDuration,
    ) -> ServeOutcome {
        let duration = duration.min(video.duration);
        self.serves += 1;
        if self.cache.lookup(video.id, level) {
            self.note_serve(ServeKind::CacheHit);
            return ServeOutcome {
                kind: ServeKind::CacheHit,
                cycles: CpuCycles::ZERO,
                backhaul_mb: 0.0,
            };
        }
        if let Some(higher) = self.cache.best_at_or_above(video.id, level) {
            let scope = self
                .telemetry
                .as_ref()
                .map(|t| t.stage_scope(msvs_telemetry::stages::TRANSCODE));
            let cycles = self.model.cost(higher, level, duration);
            drop(scope);
            self.total_cycles += cycles;
            self.cache.insert(video, level);
            self.note_serve(ServeKind::Transcoded);
            return ServeOutcome {
                kind: ServeKind::Transcoded,
                cycles,
                backhaul_mb: 0.0,
            };
        }
        // Remote fetch at top representation.
        let top = video.top_level();
        let backhaul_mb = video
            .representation(top)
            .map(|r| r.bitrate.value())
            .unwrap_or_else(|| top.nominal_bitrate().value())
            * duration.as_secs_f64();
        self.total_backhaul_mb += backhaul_mb;
        self.cache.insert(video, top);
        let cycles = if top > level {
            let scope = self
                .telemetry
                .as_ref()
                .map(|t| t.stage_scope(msvs_telemetry::stages::TRANSCODE));
            let c = self.model.cost(top, level, duration);
            drop(scope);
            self.cache.insert(video, level);
            c
        } else {
            CpuCycles::ZERO
        };
        self.total_cycles += cycles;
        self.note_serve(ServeKind::RemoteFetch);
        ServeOutcome {
            kind: ServeKind::RemoteFetch,
            cycles,
            backhaul_mb,
        }
    }

    /// Resets the running accounting (per-interval measurement).
    pub fn reset_accounting(&mut self) {
        self.total_cycles = CpuCycles::ZERO;
        self.total_backhaul_mb = 0.0;
        self.serves = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msvs_video::CatalogConfig;

    fn setup() -> (Catalog, EdgeServer) {
        let catalog = Catalog::generate(CatalogConfig {
            n_videos: 200,
            seed: 4,
            ..Default::default()
        })
        .unwrap();
        let edge = EdgeServer::new(EdgeConfig::default(), &catalog);
        (catalog, edge)
    }

    #[test]
    fn top_video_at_top_level_is_a_hit() {
        let (catalog, mut edge) = setup();
        let v = &catalog.videos()[0];
        let o = edge.serve(v, v.top_level());
        assert_eq!(o.kind, ServeKind::CacheHit);
        assert_eq!(o.cycles, CpuCycles::ZERO);
        assert_eq!(o.backhaul_mb, 0.0);
    }

    #[test]
    fn downscale_of_cached_video_transcodes() {
        let (catalog, mut edge) = setup();
        let v = &catalog.videos()[0];
        let o = edge.serve(v, RepresentationLevel::P360);
        assert_eq!(o.kind, ServeKind::Transcoded);
        assert!(o.cycles.value() > 0.0);
        // Second request for the same level is now a hit.
        let o2 = edge.serve(v, RepresentationLevel::P360);
        assert_eq!(o2.kind, ServeKind::CacheHit);
    }

    #[test]
    fn cold_tail_video_is_remote_fetch() {
        let catalog = Catalog::generate(CatalogConfig {
            n_videos: 5000,
            seed: 4,
            ..Default::default()
        })
        .unwrap();
        let mut edge = EdgeServer::new(
            EdgeConfig {
                cache_capacity_mb: 5_000.0,
                ..Default::default()
            },
            &catalog,
        );
        let tail = &catalog.videos()[4999];
        let o = edge.serve(tail, RepresentationLevel::P720);
        assert_eq!(o.kind, ServeKind::RemoteFetch);
        assert!(o.backhaul_mb > 0.0);
        assert!(o.cycles.value() > 0.0, "fetched top then transcoded down");
        assert!(edge.total_backhaul_mb() > 0.0);
    }

    #[test]
    fn accounting_accumulates_and_resets() {
        let (catalog, mut edge) = setup();
        let v = &catalog.videos()[1];
        edge.serve(v, RepresentationLevel::P240);
        edge.serve(v, RepresentationLevel::P480);
        assert!(edge.total_cycles().value() > 0.0);
        assert_eq!(edge.serves(), 2);
        edge.reset_accounting();
        assert_eq!(edge.total_cycles(), CpuCycles::ZERO);
        assert_eq!(edge.serves(), 0);
        // Cache state survives the accounting reset.
        assert_eq!(
            edge.serve(v, RepresentationLevel::P240).kind,
            ServeKind::CacheHit
        );
    }

    #[test]
    fn remote_fetch_at_top_level_needs_no_transcode() {
        let catalog = Catalog::generate(CatalogConfig {
            n_videos: 3000,
            seed: 7,
            ..Default::default()
        })
        .unwrap();
        let mut edge = EdgeServer::new(
            EdgeConfig {
                cache_capacity_mb: 5_000.0,
                ..Default::default()
            },
            &catalog,
        );
        let tail = &catalog.videos()[2999];
        let o = edge.serve(tail, tail.top_level());
        assert_eq!(o.kind, ServeKind::RemoteFetch);
        assert_eq!(o.cycles, CpuCycles::ZERO);
    }
}

#[cfg(test)]
mod serve_for_tests {
    use super::*;

    use msvs_video::CatalogConfig;

    #[test]
    fn partial_duration_bills_proportionally() {
        let catalog = Catalog::generate(CatalogConfig {
            n_videos: 50,
            seed: 9,
            ..Default::default()
        })
        .unwrap();
        let mut a = EdgeServer::new(EdgeConfig::default(), &catalog);
        let mut b = EdgeServer::new(EdgeConfig::default(), &catalog);
        let v = &catalog.videos()[0];
        let full = a.serve(v, RepresentationLevel::P360);
        let half = b.serve_for(v, RepresentationLevel::P360, v.duration / 2);
        assert!(half.cycles.value() < full.cycles.value());
        assert!(half.cycles.value() > 0.0);
        // Requesting more than the video length clamps to the video length.
        let mut c = EdgeServer::new(EdgeConfig::default(), &catalog);
        let over = c.serve_for(v, RepresentationLevel::P360, v.duration * 10);
        assert_eq!(over.cycles, full.cycles);
    }

    #[test]
    fn cache_contains_is_pure() {
        let catalog = Catalog::generate(CatalogConfig {
            n_videos: 50,
            seed: 9,
            ..Default::default()
        })
        .unwrap();
        let edge = EdgeServer::new(EdgeConfig::default(), &catalog);
        let v = &catalog.videos()[0];
        assert!(edge.cache().contains(v.id, v.top_level()));
        assert!(edge
            .cache()
            .contains_at_or_above(v.id, RepresentationLevel::P240));
        assert!(!edge.cache().contains(v.id, RepresentationLevel::P240));
        let (h, m) = edge.cache().stats();
        assert_eq!((h, m), (0, 0), "introspection must not count");
    }
}

//! Capacity-bounded LRU video cache.

use std::collections::HashMap;

use msvs_types::{RepresentationLevel, VideoId};
use msvs_video::{Catalog, Video};

/// Storage size of one cached entry, megabits.
fn entry_size_mb(video: &Video, level: RepresentationLevel) -> f64 {
    let rate = video
        .representation(level)
        .map(|r| r.bitrate.value())
        .unwrap_or_else(|| level.nominal_bitrate().value());
    rate * video.duration.as_secs_f64()
}

/// An LRU cache of `(video, representation)` entries bounded by total
/// storage (megabits).
///
/// Mirrors the paper's edge policy: pre-warm the most popular videos at the
/// highest representation, evict least-recently-used entries under
/// pressure.
#[derive(Debug, Clone)]
pub struct VideoCache {
    capacity_mb: f64,
    /// Brownout multiplier in `(0, 1]` applied to `capacity_mb`; `1.0`
    /// outside fault-injection runs.
    capacity_scale: f64,
    used_mb: f64,
    /// key -> (size, last-use tick)
    entries: HashMap<(VideoId, RepresentationLevel), (f64, u64)>,
    tick: u64,
    hits: u64,
    misses: u64,
    /// Entries evicted since the last [`take_evicted`](Self::take_evicted)
    /// drain, in eviction order.
    evicted: Vec<(VideoId, RepresentationLevel)>,
}

impl VideoCache {
    /// Builds an empty cache with `capacity_mb` megabits of storage.
    ///
    /// # Panics
    /// Panics if `capacity_mb` is not strictly positive.
    pub fn new(capacity_mb: f64) -> Self {
        assert!(
            capacity_mb > 0.0 && capacity_mb.is_finite(),
            "cache capacity must be positive"
        );
        Self {
            capacity_mb,
            capacity_scale: 1.0,
            used_mb: 0.0,
            entries: HashMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
            evicted: Vec::new(),
        }
    }

    /// Drains the entries evicted since the last call, oldest first.
    pub fn take_evicted(&mut self) -> Vec<(VideoId, RepresentationLevel)> {
        std::mem::take(&mut self.evicted)
    }

    /// Pre-warms the cache with the most popular catalog videos at the top
    /// representation, until storage runs out or the catalog is exhausted.
    pub fn warm_from(&mut self, catalog: &Catalog) {
        for video in catalog.videos() {
            let level = video.top_level();
            let size = entry_size_mb(video, level);
            if self.used_mb + size > self.effective_capacity_mb() {
                break;
            }
            self.insert_unchecked(video.id, level, size);
        }
    }

    /// Storage currently used, megabits.
    pub fn used_mb(&self) -> f64 {
        self.used_mb
    }

    /// Configured capacity, megabits (before any brownout scale).
    pub fn capacity_mb(&self) -> f64 {
        self.capacity_mb
    }

    /// Capacity currently available, megabits: configured capacity times
    /// the brownout scale.
    pub fn effective_capacity_mb(&self) -> f64 {
        self.capacity_mb * self.capacity_scale
    }

    /// The brownout capacity multiplier currently applied.
    pub fn capacity_scale(&self) -> f64 {
        self.capacity_scale
    }

    /// Applies a brownout capacity multiplier in `(0, 1]`, evicting LRU
    /// entries until usage fits the reduced capacity. Restoring a larger
    /// scale does not refill the cache — entries return only through
    /// normal inserts.
    ///
    /// # Panics
    /// Panics if `scale` is outside `(0, 1]`.
    pub fn set_capacity_scale(&mut self, scale: f64) {
        assert!(
            scale > 0.0 && scale <= 1.0,
            "capacity scale must be in (0, 1]"
        );
        self.capacity_scale = scale;
        while self.used_mb > self.effective_capacity_mb() {
            if !self.evict_lru() {
                break;
            }
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(hits, misses)` counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Hit ratio in `[0, 1]`; 0 when nothing has been looked up.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Looks up an exact `(video, level)` entry, refreshing recency and
    /// counting hit/miss.
    pub fn lookup(&mut self, video: VideoId, level: RepresentationLevel) -> bool {
        self.tick += 1;
        if let Some((_, last)) = self.entries.get_mut(&(video, level)) {
            *last = self.tick;
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// The highest cached representation of `video` at or above `level`,
    /// if any (does not count towards hit/miss; refreshes recency).
    pub fn best_at_or_above(
        &mut self,
        video: VideoId,
        level: RepresentationLevel,
    ) -> Option<RepresentationLevel> {
        self.tick += 1;
        let best = RepresentationLevel::ALL
            .iter()
            .rev()
            .copied()
            .find(|&l| l >= level && self.entries.contains_key(&(video, l)));
        if let Some(l) = best {
            if let Some((_, last)) = self.entries.get_mut(&(video, l)) {
                *last = self.tick;
            }
        }
        best
    }

    /// Whether an exact `(video, level)` entry is cached, without touching
    /// recency or hit/miss counters (predictor introspection).
    pub fn contains(&self, video: VideoId, level: RepresentationLevel) -> bool {
        self.entries.contains_key(&(video, level))
    }

    /// Whether any representation of `video` at or above `level` is cached,
    /// without touching recency or counters.
    pub fn contains_at_or_above(&self, video: VideoId, level: RepresentationLevel) -> bool {
        RepresentationLevel::ALL
            .iter()
            .any(|&l| l >= level && self.entries.contains_key(&(video, l)))
    }

    /// Inserts an entry, evicting LRU entries until it fits.
    ///
    /// Entries larger than the whole cache are refused (returns `false`).
    pub fn insert(&mut self, video: &Video, level: RepresentationLevel) -> bool {
        let size = entry_size_mb(video, level);
        if size > self.effective_capacity_mb() {
            return false;
        }
        if self.entries.contains_key(&(video.id, level)) {
            return true;
        }
        while self.used_mb + size > self.effective_capacity_mb() {
            if !self.evict_lru() {
                return false;
            }
        }
        self.insert_unchecked(video.id, level, size);
        true
    }

    fn insert_unchecked(&mut self, video: VideoId, level: RepresentationLevel, size: f64) {
        self.tick += 1;
        self.used_mb += size;
        self.entries.insert((video, level), (size, self.tick));
    }

    fn evict_lru(&mut self) -> bool {
        let victim = self
            .entries
            .iter()
            .min_by_key(|(_, (_, last))| *last)
            .map(|(k, _)| *k);
        match victim {
            Some(key) => {
                if let Some((size, _)) = self.entries.remove(&key) {
                    self.used_mb -= size;
                    self.evicted.push(key);
                }
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msvs_video::CatalogConfig;

    fn catalog() -> Catalog {
        Catalog::generate(CatalogConfig {
            n_videos: 100,
            seed: 2,
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn warm_fills_most_popular_first() {
        let c = catalog();
        let mut cache = VideoCache::new(2000.0);
        cache.warm_from(&c);
        assert!(!cache.is_empty());
        assert!(cache.used_mb() <= cache.capacity_mb());
        // Rank-0 video must be present at top level.
        let v0 = &c.videos()[0];
        assert!(cache.lookup(v0.id, v0.top_level()));
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let c = catalog();
        let mut cache = VideoCache::new(5000.0);
        cache.warm_from(&c);
        let v0 = &c.videos()[0];
        assert!(cache.lookup(v0.id, v0.top_level()));
        assert!(!cache.lookup(VideoId(9999), RepresentationLevel::P240));
        let (h, m) = cache.stats();
        assert_eq!((h, m), (1, 1));
        assert!((cache.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_prefers_cold_entries() {
        let c = catalog();
        // Small cache that fits only a few videos.
        let videos = c.videos();
        let sz = |i: usize| entry_size_mb(&videos[i], videos[i].top_level());
        let cap = sz(0) + sz(1) + 1.0;
        let mut cache = VideoCache::new(cap);
        assert!(cache.insert(&videos[0], videos[0].top_level()));
        assert!(cache.insert(&videos[1], videos[1].top_level()));
        // Touch 0 so 1 becomes LRU.
        assert!(cache.lookup(videos[0].id, videos[0].top_level()));
        // Pick a third video that needs an eviction (> slack) but fits once
        // the single LRU victim is gone, so only video 1 must be evicted.
        let j = (2..videos.len())
            .find(|&i| sz(i) > 1.0 && sz(i) <= sz(1))
            .expect("catalog holds a video no larger than video 1");
        assert!(cache.insert(&videos[j], videos[j].top_level()));
        assert!(
            cache.lookup(videos[0].id, videos[0].top_level()),
            "hot kept"
        );
        assert!(
            !cache.lookup(videos[1].id, videos[1].top_level()),
            "cold evicted"
        );
    }

    #[test]
    fn best_at_or_above_finds_higher_level() {
        let c = catalog();
        let mut cache = VideoCache::new(10_000.0);
        let v = &c.videos()[3];
        cache.insert(v, RepresentationLevel::P1080);
        assert_eq!(
            cache.best_at_or_above(v.id, RepresentationLevel::P360),
            Some(RepresentationLevel::P1080)
        );
        assert_eq!(
            cache.best_at_or_above(v.id, RepresentationLevel::P1080),
            Some(RepresentationLevel::P1080)
        );
        assert_eq!(
            cache.best_at_or_above(VideoId(999), RepresentationLevel::P240),
            None
        );
    }

    #[test]
    fn oversized_entry_is_refused() {
        let c = catalog();
        let mut cache = VideoCache::new(0.001);
        assert!(!cache.insert(&c.videos()[0], RepresentationLevel::P1080));
        assert!(cache.is_empty());
    }

    #[test]
    fn double_insert_is_idempotent() {
        let c = catalog();
        let mut cache = VideoCache::new(10_000.0);
        let v = &c.videos()[0];
        assert!(cache.insert(v, RepresentationLevel::P720));
        let used = cache.used_mb();
        assert!(cache.insert(v, RepresentationLevel::P720));
        assert_eq!(cache.used_mb(), used);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = VideoCache::new(0.0);
    }

    #[test]
    fn brownout_scale_evicts_down_and_bounds_inserts() {
        let c = catalog();
        let mut cache = VideoCache::new(2000.0);
        cache.warm_from(&c);
        let before = cache.used_mb();
        assert!(before > 1000.0, "warm fills most of the cache: {before}");
        cache.set_capacity_scale(0.5);
        assert!(cache.used_mb() <= 1000.0, "evicted down to the brownout");
        assert!(!cache.take_evicted().is_empty());
        assert_eq!(cache.effective_capacity_mb(), 1000.0);
        // Inserts respect the reduced capacity.
        let big = &c.videos()[0];
        let used = cache.used_mb();
        cache.insert(big, big.top_level());
        assert!(cache.used_mb() <= 1000.0);
        // Restoring the scale reopens headroom without refilling.
        cache.set_capacity_scale(1.0);
        assert_eq!(cache.effective_capacity_mb(), 2000.0);
        assert!(cache.used_mb() <= used + 2000.0);
    }

    #[test]
    #[should_panic(expected = "capacity scale")]
    fn out_of_range_scale_panics() {
        let mut cache = VideoCache::new(100.0);
        cache.set_capacity_scale(0.0);
    }

    #[test]
    fn take_evicted_drains_victims_once() {
        let c = catalog();
        let videos = c.videos();
        let sz = |i: usize| entry_size_mb(&videos[i], videos[i].top_level());
        let cap = sz(0) + sz(1) + 1.0;
        let mut cache = VideoCache::new(cap);
        assert!(cache.insert(&videos[0], videos[0].top_level()));
        assert!(cache.insert(&videos[1], videos[1].top_level()));
        assert!(cache.take_evicted().is_empty(), "no eviction yet");
        cache.lookup(videos[0].id, videos[0].top_level());
        let j = (2..videos.len())
            .find(|&i| sz(i) > 1.0 && sz(i) <= sz(1))
            .expect("catalog holds a video no larger than video 1");
        assert!(cache.insert(&videos[j], videos[j].top_level()));
        let evicted = cache.take_evicted();
        assert_eq!(evicted, vec![(videos[1].id, videos[1].top_level())]);
        assert!(cache.take_evicted().is_empty(), "drain is one-shot");
    }
}

//! Edge server substrate: video cache and transcoding compute model.
//!
//! The paper's edge server "stores popular short videos with the highest
//! representation" and transcodes them down to adapt to network dynamics.
//! Computing resource demand is therefore the cycle cost of the transcode
//! jobs an interval triggers. This crate models both halves:
//!
//! - [`cache`] — a capacity-bounded LRU cache of `(video, representation)`
//!   entries with popularity pre-warming;
//! - [`transcode`] — a cycles-per-output-bit transcode cost model;
//! - [`server`] — the serving policy gluing them together (hit, transcode
//!   down from a higher cached representation, or remote fetch).
//!
//! # Examples
//!
//! ```
//! use msvs_edge::{EdgeServer, EdgeConfig};
//! use msvs_video::{Catalog, CatalogConfig};
//! use msvs_types::RepresentationLevel;
//!
//! let catalog = Catalog::generate(CatalogConfig { n_videos: 50, seed: 1,
//!     ..Default::default() }).unwrap();
//! let mut edge = EdgeServer::new(EdgeConfig::default(), &catalog);
//! let video = &catalog.videos()[0];
//! // Top-popularity video is pre-warmed at the top representation:
//! let outcome = edge.serve(video, RepresentationLevel::P240);
//! assert!(outcome.cycles.value() > 0.0, "downscale requires transcoding");
//! ```

pub mod cache;
pub mod server;
pub mod transcode;

pub use cache::VideoCache;
pub use server::{EdgeConfig, EdgeServer, ServeKind, ServeOutcome};
pub use transcode::TranscodeModel;

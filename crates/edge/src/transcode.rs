//! Transcoding compute cost model.

use msvs_types::{CpuCycles, RepresentationLevel, SimDuration};
use serde::{Deserialize, Serialize};

/// Cycles-per-output-bit transcode cost model.
///
/// Video transcoding cost is dominated by encoding the *output*
/// representation; decoding the (higher) input adds a fixed overhead
/// fraction. A 1080p→480p transcode of a 30 s clip therefore costs roughly
/// `cycles_per_bit * bits(480p, 30 s) * (1 + decode_overhead)` cycles,
/// which matches the linear-in-output-bitrate models used in edge
/// transcoding literature.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TranscodeModel {
    /// Encoder cost per output bit, cycles/bit (H.264 software ≈ 50–100).
    pub cycles_per_output_bit: f64,
    /// Extra fraction for decoding the source representation.
    pub decode_overhead: f64,
}

impl Default for TranscodeModel {
    fn default() -> Self {
        Self {
            cycles_per_output_bit: 70.0,
            decode_overhead: 0.25,
        }
    }
}

impl TranscodeModel {
    /// Cycle cost of transcoding `duration` of video from `from` down to
    /// `to`.
    ///
    /// Returns zero when `from == to` (served as-is). Uses the nominal
    /// ladder bitrate of the *output* level.
    ///
    /// # Panics
    /// Panics if `from < to` — the edge only transcodes downwards (the
    /// cache never holds a lower representation than it can serve from).
    pub fn cost(
        &self,
        from: RepresentationLevel,
        to: RepresentationLevel,
        duration: SimDuration,
    ) -> CpuCycles {
        assert!(
            from >= to,
            "edge transcoding is downscale-only: {from} -> {to}"
        );
        if from == to {
            return CpuCycles::ZERO;
        }
        let output_bits = to.nominal_bitrate().as_bits_per_sec() * duration.as_secs_f64();
        CpuCycles(output_bits * self.cycles_per_output_bit * (1.0 + self.decode_overhead))
    }

    /// Cycle cost per second of output video at `to` (for demand
    /// prediction without knowing exact durations).
    pub fn cost_rate(&self, to: RepresentationLevel) -> CpuCycles {
        CpuCycles(
            to.nominal_bitrate().as_bits_per_sec()
                * self.cycles_per_output_bit
                * (1.0 + self.decode_overhead),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_level_is_free() {
        let m = TranscodeModel::default();
        assert_eq!(
            m.cost(
                RepresentationLevel::P720,
                RepresentationLevel::P720,
                SimDuration::from_secs(30)
            ),
            CpuCycles::ZERO
        );
    }

    #[test]
    fn cost_scales_with_duration_and_level() {
        let m = TranscodeModel::default();
        let c30 = m.cost(
            RepresentationLevel::P1080,
            RepresentationLevel::P480,
            SimDuration::from_secs(30),
        );
        let c60 = m.cost(
            RepresentationLevel::P1080,
            RepresentationLevel::P480,
            SimDuration::from_secs(60),
        );
        assert!((c60.value() - 2.0 * c30.value()).abs() < 1.0);
        let c_hi = m.cost(
            RepresentationLevel::P1080,
            RepresentationLevel::P720,
            SimDuration::from_secs(30),
        );
        assert!(c_hi.value() > c30.value(), "higher output costs more");
    }

    #[test]
    fn cost_matches_hand_calc() {
        let m = TranscodeModel {
            cycles_per_output_bit: 100.0,
            decode_overhead: 0.0,
        };
        // P240 = 0.4 Mbps, 10 s -> 4e6 bits -> 4e8 cycles.
        let c = m.cost(
            RepresentationLevel::P1080,
            RepresentationLevel::P240,
            SimDuration::from_secs(10),
        );
        assert!((c.value() - 4e8).abs() < 1.0);
    }

    #[test]
    fn cost_rate_consistent_with_cost() {
        let m = TranscodeModel::default();
        let rate = m.cost_rate(RepresentationLevel::P360);
        let one_sec = m.cost(
            RepresentationLevel::P1080,
            RepresentationLevel::P360,
            SimDuration::from_secs(1),
        );
        assert!((rate.value() - one_sec.value()).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "downscale-only")]
    fn upscale_panics() {
        let m = TranscodeModel::default();
        let _ = m.cost(
            RepresentationLevel::P240,
            RepresentationLevel::P720,
            SimDuration::from_secs(1),
        );
    }
}

//! The end-to-end DT-assisted prediction scheme (Fig. 2 of the paper).

use msvs_channel::Link;
use msvs_edge::{TranscodeModel, VideoCache};
use msvs_types::{CpuCycles, Error, GroupId, ResourceBlocks, Result, UserId};
use msvs_udt::{TwinView, UserDigitalTwin};
use msvs_video::Catalog;

use crate::cache::{EmbeddingBackend, EmbeddingCache};
use crate::compressor::{CnnCompressor, CompressorConfig};
use crate::demand::{predict_group_demand, DemandConfig, GroupDemandPrediction};
use crate::grouping::{Grouping, GroupingConfig, GroupingEngine};
use crate::recommend::{
    aggregate_preference, recommend_for_group, GroupRecommendation, RecommenderConfig,
};
use crate::swiping::SwipingAbstraction;

/// SNR assumed for users whose twin has no channel sample yet, dB.
const DEFAULT_SNR_DB: f64 = 10.0;

/// How the predictor estimates each member's channel condition for the
/// next interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SnrEstimator {
    /// Mean of the last `window` twin channel samples (robust to fading,
    /// but lags a moving user by up to one interval).
    RecentMean {
        /// Number of recent samples averaged.
        window: usize,
    },
    /// Dead-reckon the user's position to the interval midpoint from the
    /// twin's location series, then compute the expected SNR from the
    /// path-loss model. `fading_offset_db` converts the fading-averaged
    /// SNR to the mean of dB-domain samples (≈ −2.5 dB for Rayleigh).
    ///
    /// Falls back to the recent mean when the twin has no location data
    /// or no base-station positions are configured.
    Extrapolated {
        /// dB offset applied for the fading distribution.
        fading_offset_db: f64,
    },
}

impl Default for SnrEstimator {
    fn default() -> Self {
        SnrEstimator::RecentMean { window: 64 }
    }
}

/// Index of the base station nearest to `pos`.
///
/// `total_cmp` sorts NaN above every finite distance, so a corrupted
/// position degrades to an arbitrary-but-deterministic choice instead of
/// a panic.
fn nearest_bs(pos: msvs_types::Position, bs: &[msvs_types::Position]) -> usize {
    bs.iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| pos.distance_sq(**a).total_cmp(&pos.distance_sq(**b)))
        .map(|(i, _)| i)
        .expect("at least one BS when called")
}

/// Graceful-degradation policy: what the predictor does when twin data
/// goes stale (lossy uplink, churn storms).
///
/// The ladder has three rungs: *fresh* twin data feeds the full pipeline;
/// *stale-but-present* data is imputed from the last known good samples
/// (the twin's feature-window padding); and when fresh coverage across
/// the population falls below `coverage_threshold`, the predictor's
/// totals *fall back* to a historical-mean EWMA over past actual demands,
/// with the reservation safety margin widened proportionally to the
/// missing coverage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradationConfig {
    /// Whether degradation accounting runs at all. Off by default so
    /// fault-free runs are bit-identical to historical behaviour; the
    /// simulator enables it whenever a fault plan is active.
    pub enabled: bool,
    /// Minimum fresh-twin fraction below which the interval degrades.
    pub coverage_threshold: f64,
    /// How recent a twin's channel *and* location updates must be for the
    /// twin to count as fresh.
    pub staleness_horizon: msvs_types::SimDuration,
    /// EWMA smoothing factor of the historical-mean fallback, in `(0, 1]`.
    pub fallback_alpha: f64,
    /// Extra reservation margin at zero coverage; the applied margin is
    /// `1 + max_extra_margin * (1 - coverage)`.
    pub max_extra_margin: f64,
}

impl Default for DegradationConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            coverage_threshold: 0.75,
            staleness_horizon: msvs_types::SimDuration::from_secs(15),
            fallback_alpha: 0.5,
            max_extra_margin: 0.5,
        }
    }
}

impl DegradationConfig {
    /// Validates thresholds and factors.
    ///
    /// # Errors
    /// Returns `InvalidConfig` for the first violated constraint.
    pub fn validate(&self) -> Result<()> {
        if !self.coverage_threshold.is_finite() || !(0.0..=1.0).contains(&self.coverage_threshold) {
            return Err(Error::invalid_config(
                "degradation.coverage_threshold",
                "must be in [0, 1]",
            ));
        }
        if self.staleness_horizon == msvs_types::SimDuration::ZERO {
            return Err(Error::invalid_config(
                "degradation.staleness_horizon",
                "must be non-zero",
            ));
        }
        if !(self.fallback_alpha > 0.0 && self.fallback_alpha <= 1.0) {
            return Err(Error::invalid_config(
                "degradation.fallback_alpha",
                "must be in (0, 1]",
            ));
        }
        if !self.max_extra_margin.is_finite() || self.max_extra_margin < 0.0 {
            return Err(Error::invalid_config(
                "degradation.max_extra_margin",
                "must be finite and non-negative",
            ));
        }
        Ok(())
    }
}

/// Configuration of the full scheme.
#[derive(Debug, Clone)]
pub struct SchemeConfig {
    /// 1D-CNN compressor hyperparameters (the window length here defines
    /// the twin history fed to clustering).
    pub compressor: CompressorConfig,
    /// Group-construction hyperparameters.
    pub grouping: GroupingConfig,
    /// Recommendation-pool parameters.
    pub recommender: RecommenderConfig,
    /// Demand-prediction parameters.
    pub demand: DemandConfig,
    /// Campus extent used to normalise twin locations.
    pub map_width: f64,
    /// Campus extent used to normalise twin locations.
    pub map_height: f64,
    /// Base-station positions, used by the extrapolating SNR estimator and
    /// (when [`SchemeConfig::per_bs_accounting`] is set) by per-BS radio
    /// accounting.
    pub bs_positions: Vec<msvs_types::Position>,
    /// Account radio demand per BS: each BS multicasts the group stream to
    /// its attached members (nearest-BS association from the twin's last
    /// known location). Requires `bs_positions`.
    pub per_bs_accounting: bool,
    /// Channel-condition estimator.
    pub snr_estimator: SnrEstimator,
    /// Graceful-degradation policy for stale twin data.
    pub degradation: DegradationConfig,
    /// Reuse the last CNN encoding for users whose twin window content is
    /// unchanged (tracked by per-attribute revision counters). Features
    /// are bit-identical either way; off disables the memo entirely.
    pub embedding_cache: bool,
    /// Worker threads for the parallel pipeline stages (CNN encode and
    /// K-means assignment): `1` = serial, `0` = all available cores.
    /// Predictions are bit-identical at any thread count.
    pub threads: usize,
    /// Incremental interval pipeline: re-encode only dirty twins (churned,
    /// restored, or explicitly flagged slots — routine revision bumps keep
    /// the cached encoding), warm-start K-means from the previous
    /// interval's centroids, and gate DDQN `K` re-selection on a drift
    /// score. A bounded approximation of the exact pipeline; off by
    /// default, and off is bit-identical to historical behaviour.
    pub incremental: bool,
}

impl Default for SchemeConfig {
    fn default() -> Self {
        Self {
            compressor: CompressorConfig::default(),
            grouping: GroupingConfig::default(),
            recommender: RecommenderConfig::default(),
            demand: DemandConfig::default(),
            map_width: 1200.0,
            map_height: 1000.0,
            bs_positions: Vec::new(),
            per_bs_accounting: false,
            snr_estimator: SnrEstimator::default(),
            degradation: DegradationConfig::default(),
            embedding_cache: true,
            threads: 1,
            incremental: false,
        }
    }
}

/// Everything one prediction pass produces.
#[derive(Debug)]
pub struct PredictionOutcome {
    /// Users in the order they were clustered (index ↔ assignment).
    pub user_order: Vec<UserId>,
    /// The multicast grouping.
    pub grouping: Grouping,
    /// Per-group swiping abstractions (index = group id).
    pub swiping: Vec<SwipingAbstraction>,
    /// Per-group recommendation pools.
    pub recommendations: Vec<GroupRecommendation>,
    /// Per-group demand predictions.
    pub groups: Vec<GroupDemandPrediction>,
}

impl PredictionOutcome {
    /// Total predicted radio demand across groups.
    pub fn total_radio(&self) -> ResourceBlocks {
        self.groups.iter().map(|g| g.radio).sum()
    }

    /// Total predicted computing demand across groups.
    pub fn total_computing(&self) -> CpuCycles {
        self.groups.iter().map(|g| g.computing).sum()
    }

    /// Total expected prefetch waste across groups, megabits.
    pub fn total_waste_mb(&self) -> f64 {
        self.groups.iter().map(|g| g.expected_waste_mb).sum()
    }

    /// The members of group `g` (user ids).
    pub fn group_members(&self, g: usize) -> Vec<UserId> {
        self.grouping
            .assignments
            .iter()
            .enumerate()
            .filter(|(_, &a)| a == g)
            .map(|(i, _)| self.user_order[i])
            .collect()
    }
}

/// The DT-assisted resource demand predictor.
///
/// Owns the trainable pieces (1D-CNN compressor, DDQN grouping agent) and
/// re-runs the full abstraction → prediction pipeline each reservation
/// interval.
#[derive(Debug)]
pub struct DtAssistedPredictor {
    config: SchemeConfig,
    compressor: CnnCompressor,
    cache: Box<dyn EmbeddingBackend>,
    engine: GroupingEngine,
    pool: msvs_par::Pool,
    fallback: crate::baselines::HistoricalMeanPredictor,
    intervals_predicted: u64,
    telemetry: Option<msvs_telemetry::Telemetry>,
    /// Users flagged dirty for the next incremental encode pass (churned
    /// slots, outage restores). Drained by [`Self::encode_population`].
    pending_dirty: std::collections::HashSet<UserId>,
}

impl DtAssistedPredictor {
    /// Builds the predictor.
    ///
    /// # Errors
    /// Propagates configuration errors from the compressor and grouping
    /// engine.
    pub fn new(mut config: SchemeConfig) -> Result<Self> {
        config.degradation.validate()?;
        let pool = if config.threads == 1 {
            msvs_par::Pool::serial()
        } else {
            msvs_par::Pool::new(config.threads)
        };
        // Grouping inherits the resolved thread count so K-means assignment
        // parallelises alongside the CNN encode.
        config.threads = pool.threads();
        config.grouping.threads = pool.threads();
        // The grouping engine inherits the incremental flag so warm-start
        // K-means and the drift-gated DDQN switch on together with the
        // dirty-set encode path.
        config.grouping.incremental = config.incremental;
        let compressor = CnnCompressor::new(config.compressor)?;
        let engine = GroupingEngine::new(config.grouping.clone())?;
        let fallback =
            crate::baselines::HistoricalMeanPredictor::new(config.degradation.fallback_alpha)?;
        Ok(Self {
            config,
            compressor,
            cache: Box::new(EmbeddingCache::new()),
            engine,
            pool,
            fallback,
            intervals_predicted: 0,
            telemetry: None,
            pending_dirty: std::collections::HashSet::new(),
        })
    }

    /// Flags users whose cached state must be rebuilt on the next encode
    /// pass (churned slots, shard restores). Only consumed in incremental
    /// mode; the exact pipeline re-validates every twin anyway.
    pub fn note_interval_dirty(&mut self, users: &[UserId]) {
        self.pending_dirty.extend(users.iter().copied());
    }

    /// Wires the predictor (and its grouping engine + DDQN agent) into an
    /// observability pipeline: every pipeline stage is timed into
    /// `stage_ms` histograms and structured events flow into the journal.
    pub fn attach_telemetry(&mut self, telemetry: msvs_telemetry::Telemetry) {
        self.engine.attach_telemetry(telemetry.clone());
        self.telemetry = Some(telemetry);
    }

    /// Starts a stage scope (histogram + tracing span) when telemetry is
    /// attached.
    fn stage_scope(&self, stage: &'static str) -> Option<msvs_telemetry::StageScope> {
        self.telemetry.as_ref().map(|t| t.stage_scope(stage))
    }

    /// The configuration in use.
    pub fn config(&self) -> &SchemeConfig {
        &self.config
    }

    /// Number of prediction passes performed.
    pub fn intervals_predicted(&self) -> u64 {
        self.intervals_predicted
    }

    /// Feeds an interval's actual measured demands into the historical-mean
    /// fallback — the bottom rung of the degradation ladder.
    pub fn observe_fallback(&mut self, radio: ResourceBlocks, computing: CpuCycles) {
        self.fallback.observe(radio, computing);
    }

    /// The fallback EWMA's current `(radio, computing)` estimate, or `None`
    /// before its first observation.
    pub fn fallback_totals(&self) -> Option<(ResourceBlocks, CpuCycles)> {
        self.fallback.predict()
    }

    /// Mutable access to the grouping engine (pretraining, inspection).
    pub fn grouping_engine_mut(&mut self) -> &mut GroupingEngine {
        &mut self.engine
    }

    /// Forces a compressor (re)training pass on the next prediction by
    /// thawing the frozen compressor.
    pub fn invalidate_compressor(&mut self) {
        self.compressor.thaw();
    }

    /// Replaces the embedding-cache backend. Multi-shard deployments
    /// install a sharded backend here so each per-BS shard owns its slice
    /// of the cache and handover can migrate entries between shards.
    /// Features are bit-identical for any backend (cached rows equal
    /// fresh encodes); only the hit/miss split may differ.
    pub fn set_embedding_backend(&mut self, backend: Box<dyn EmbeddingBackend>) {
        self.cache = backend;
    }

    /// The compressor generation (trained-epoch count) cache entries are
    /// keyed by — what a sharded backend's `put` must match.
    pub fn cache_generation(&self) -> u64 {
        self.compressor.trained_epochs() as u64
    }

    /// One twin's feature window per the configured compressor geometry.
    fn window_of(&self, twin: &UserDigitalTwin) -> msvs_udt::FeatureWindow {
        twin.feature_window(
            self.config.compressor.window,
            self.config.map_width,
            self.config.map_height,
        )
    }

    /// Trains the compressor if it is not yet frozen, freezes it, then
    /// encodes the population on the worker pool — through the embedding
    /// cache when enabled, so only twins whose window content changed
    /// since the last pass pay a CNN forward pass. Features are
    /// bit-identical with the cache on or off. Exports pool utilisation
    /// gauges and `cnn_cache_hits`/`cnn_cache_misses` counters when
    /// telemetry is attached.
    fn encode_population(&mut self, twins: &[UserDigitalTwin]) -> Result<Vec<Vec<f64>>> {
        if !self.compressor.is_frozen() {
            let windows: Vec<_> = twins.iter().map(|t| self.window_of(t)).collect();
            let _train_scope = self.stage_scope(msvs_telemetry::stages::CNN_TRAIN);
            self.compressor.train(&windows)?;
            self.compressor.freeze();
        }
        // The forward scope opens even on an all-hit pass: a cache hit is
        // a (cheap) outcome of the cnn_forward stage, not its absence.
        let forward_scope = self.stage_scope(msvs_telemetry::stages::CNN_FORWARD);
        // When tracing, each worker batch records a cnn_encode_batch span
        // adopted under the cnn_forward span after the pool joins.
        let trace = self
            .telemetry
            .as_ref()
            .zip(forward_scope.as_ref())
            .map(|(t, scope)| (t.span_collector(), scope.span_id()));
        // `Some(churned)` when the drift detector forced a full refresh
        // this pass; carries the true churn count so the drift signal
        // keeps reading population movement, not the refresh burst.
        let mut forced_churn = None;
        let (features, stats, hits, misses) = if self.config.embedding_cache {
            let generation = self.compressor.trained_epochs() as u64;
            let plan = if self.config.incremental {
                let dirty = std::mem::take(&mut self.pending_dirty);
                if self.engine.take_refresh_hint() {
                    // Drift above threshold last interval: bound staleness
                    // with a full (exact) pass so heavy churn degrades to
                    // the exact pipeline instead of compounding stale
                    // embeddings.
                    forced_churn = Some(dirty.len());
                    self.cache.plan(generation, twins)
                } else {
                    // Low drift: only dirty slots (churned, restored) and
                    // structurally invalid entries re-encode; everyone
                    // else keeps their cached embedding across routine
                    // twin updates. Bounded approximation — E15 pins the
                    // accuracy cost below one percentage point.
                    self.cache.plan_incremental(generation, twins, &dirty)
                }
            } else {
                self.cache.plan(generation, twins)
            };
            let miss_windows: Vec<_> = plan
                .miss_indices
                .iter()
                .map(|&i| self.window_of(&twins[i]))
                .collect();
            let (fresh, stats) = self
                .compressor
                .encode_traced(&miss_windows, &self.pool, trace)?;
            let (hits, misses) = (plan.hits, plan.miss_indices.len());
            (
                self.cache.complete(twins, &plan, fresh),
                stats,
                hits,
                misses,
            )
        } else {
            // No cache: every pass re-encodes everyone, so pending dirt is
            // moot — drop it to keep the set from growing without bound.
            self.pending_dirty.clear();
            let windows: Vec<_> = twins.iter().map(|t| self.window_of(t)).collect();
            let (features, stats) = self.compressor.encode_traced(&windows, &self.pool, trace)?;
            (features, stats, 0, twins.len())
        };
        drop(forward_scope);
        if let Some(t) = &self.telemetry {
            t.gauge("par_threads", msvs_telemetry::stages::CNN_FORWARD)
                .set(stats.threads as f64);
            t.gauge("par_utilisation", msvs_telemetry::stages::CNN_FORWARD)
                .set(stats.utilisation());
            t.gauge("par_speedup", msvs_telemetry::stages::CNN_FORWARD)
                .set(stats.effective_parallelism());
            t.counter("cnn_cache_hits", "all").add(hits as u64);
            t.counter("cnn_cache_misses", "all").add(misses as u64);
            if self.config.incremental {
                t.counter("encode_dirty_users", "all").add(misses as u64);
                t.counter("encode_skipped_users", "all").add(hits as u64);
            }
        }
        if self.config.incremental {
            // Feed the drift gate: how much of the population actually
            // changed this pass. A forced refresh re-encodes everyone, so
            // it reports the churned count instead of the miss rate —
            // otherwise one drifty interval would read as full drift and
            // ratchet into permanent refreshes. With the cache disabled
            // everything re-encodes, which correctly reads as full drift.
            let fraction = if twins.is_empty() || !self.config.embedding_cache {
                1.0
            } else if let Some(churned) = forced_churn {
                churned as f64 / twins.len() as f64
            } else {
                misses as f64 / twins.len() as f64
            };
            self.engine.set_dirty_fraction(fraction);
        }
        Ok(features)
    }

    /// Pretrains the DDQN grouping agent on the current twin population:
    /// extracts features once, then runs `rounds` construct/observe cycles
    /// so ε decays and the agent converges before scored predictions.
    ///
    /// # Errors
    /// Propagates feature-extraction and clustering errors.
    pub fn pretrain_grouping(&mut self, store: &dyn TwinView, rounds: usize) -> Result<()> {
        let twins = store.snapshot();
        if twins.len() < self.config.grouping.k_min {
            return Err(Error::insufficient(format!(
                "need at least {} users, store has {}",
                self.config.grouping.k_min,
                twins.len()
            )));
        }
        let features = self.encode_population(&twins)?;
        self.engine.pretrain(&[features], rounds)
    }

    /// Estimates one member's SNR for the coming interval per the
    /// configured [`SnrEstimator`].
    fn estimate_snr(&self, twin: &UserDigitalTwin, link: &Link) -> f64 {
        let recent = |window: usize| twin.mean_recent_snr_db(window).unwrap_or(DEFAULT_SNR_DB);
        match self.config.snr_estimator {
            SnrEstimator::RecentMean { window } => recent(window),
            SnrEstimator::Extrapolated { fading_offset_db } => {
                if self.config.bs_positions.is_empty() {
                    return recent(64);
                }
                let horizon = self.config.demand.interval.as_secs_f64() / 2.0;
                match twin.extrapolated_position(
                    horizon,
                    self.config.map_width,
                    self.config.map_height,
                ) {
                    Some(pos) => {
                        let bs = nearest_bs(pos, &self.config.bs_positions);
                        let dist = pos.distance_to(self.config.bs_positions[bs]);
                        link.mean_snr_db(dist) + fading_offset_db
                    }
                    None => recent(64),
                }
            }
        }
    }

    /// Runs one full prediction pass over the twins in `store`.
    ///
    /// Steps: extract feature windows → (train then) encode with the
    /// 1D-CNN → DDQN + K-means++ grouping → per-group swiping abstraction,
    /// preference aggregation, recommendation → radio & computing demand.
    ///
    /// # Errors
    /// Returns `InsufficientData` when the store has fewer users than the
    /// minimum group count, and propagates pipeline errors.
    pub fn predict(
        &mut self,
        store: &dyn TwinView,
        catalog: &Catalog,
        cache: &VideoCache,
        transcode: &TranscodeModel,
        link: &Link,
    ) -> Result<PredictionOutcome> {
        let twins = store.snapshot();
        if twins.len() < self.config.grouping.k_min {
            return Err(Error::insufficient(format!(
                "need at least {} users, store has {}",
                self.config.grouping.k_min,
                twins.len()
            )));
        }
        self.intervals_predicted += 1;
        let user_order: Vec<UserId> = twins.iter().map(|t| t.user()).collect();
        let features = self.encode_population(&twins)?;
        let grouping = self.engine.construct(&features)?;

        let mut swiping = Vec::with_capacity(grouping.k);
        let mut recommendations = Vec::with_capacity(grouping.k);
        let mut groups = Vec::with_capacity(grouping.k);
        for (gid, member_idx) in grouping.members().into_iter().enumerate() {
            if member_idx.is_empty() {
                swiping.push(SwipingAbstraction::new());
                recommendations.push(recommend_for_group(
                    catalog,
                    &[1.0 / 8.0; 8],
                    &self.config.recommender,
                )?);
                continue;
            }
            let member_twins: Vec<&UserDigitalTwin> =
                member_idx.iter().map(|&i| &twins[i]).collect();
            // Swiping abstraction from all members' watch histories.
            let swiping_scope = self
                .stage_scope(msvs_telemetry::stages::SWIPING_ABSTRACTION)
                .map(|s| s.with_group(gid as u64));
            let mut abstraction = SwipingAbstraction::new();
            for t in &member_twins {
                abstraction.ingest(t.watch_series().iter().map(|(_, r)| r));
            }
            // Group preference and recommendation pool.
            let prefs: Vec<&[f64]> = member_twins.iter().map(|t| t.preference()).collect();
            let group_pref = aggregate_preference(&prefs);
            let recommendation =
                recommend_for_group(catalog, &group_pref, &self.config.recommender)?;
            drop(swiping_scope);
            // Member channel states and BS attachment (from twin data).
            let members: Vec<crate::demand::MemberState> = member_twins
                .iter()
                .map(|t| {
                    let snr = self.estimate_snr(t, link);
                    let bs =
                        if !self.config.per_bs_accounting || self.config.bs_positions.is_empty() {
                            0
                        } else {
                            let pos = t.latest_position().unwrap_or(msvs_types::Position::ORIGIN);
                            nearest_bs(pos, &self.config.bs_positions)
                        };
                    crate::demand::MemberState {
                        user: t.user(),
                        snr_db: snr,
                        bs,
                    }
                })
                .collect();
            let demand_scope = self
                .stage_scope(msvs_telemetry::stages::DEMAND_PREDICT)
                .map(|s| s.with_group(gid as u64));
            let prediction = predict_group_demand(
                GroupId(gid as u32),
                &members,
                &abstraction,
                &recommendation,
                catalog,
                cache,
                transcode,
                link,
                &self.config.demand,
            )?;
            drop(demand_scope);
            swiping.push(abstraction);
            recommendations.push(recommendation);
            groups.push(prediction);
        }

        if let Some(t) = &self.telemetry {
            let total_rb: f64 = groups.iter().map(|g| g.radio.value()).sum();
            let traffic_mb: f64 = groups.iter().map(|g| g.expected_traffic_mb).sum();
            t.emit(msvs_telemetry::Event::DemandPredicted {
                groups: groups.len() as u64,
                total_rb,
                traffic_mb,
            });
        }

        Ok(PredictionOutcome {
            user_order,
            grouping,
            swiping,
            recommendations,
            groups,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msvs_channel::LinkConfig;
    use msvs_types::{Position, RepresentationLevel, SimDuration, SimTime, VideoCategory, VideoId};
    use msvs_udt::{UdtStore, WatchRecord};
    use msvs_video::CatalogConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn populated_store(n: usize, seed: u64) -> UdtStore {
        let store = UdtStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        for u in 0..n {
            let mut twin = UserDigitalTwin::new(UserId(u as u32));
            // Two archetype populations for clusterable structure.
            let (snr_base, x, y, watch_mean, fav) = if u % 2 == 0 {
                (20.0, 500.0, 500.0, 25.0, VideoCategory::News)
            } else {
                (6.0, 1000.0, 100.0, 4.0, VideoCategory::Game)
            };
            for step in 0..40u64 {
                let t = SimTime::from_secs(step * 5);
                twin.update_channel(t, snr_base + rng.gen::<f64>() * 2.0);
                twin.update_location(
                    t,
                    Position::new(x + rng.gen::<f64>() * 30.0, y + rng.gen::<f64>() * 30.0),
                );
                twin.record_watch(
                    t,
                    WatchRecord {
                        video: VideoId((step % 50) as u32),
                        category: if step % 3 == 0 {
                            fav
                        } else {
                            VideoCategory::Music
                        },
                        level: RepresentationLevel::P720,
                        watched: SimDuration::from_secs_f64(
                            msvs_types::stats::exponential(&mut rng, 1.0 / watch_mean).min(59.0),
                        ),
                        video_duration: SimDuration::from_secs(60),
                        completed: false,
                    },
                );
            }
            twin.refresh_preference_from_watches(SimTime::from_secs(200), 0.6);
            store.insert(twin);
        }
        store
    }

    fn scheme_config() -> SchemeConfig {
        SchemeConfig {
            compressor: CompressorConfig {
                window: 16,
                epochs: 15,
                ..Default::default()
            },
            grouping: GroupingConfig {
                k_min: 2,
                k_max: 6,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    fn fixtures() -> (Catalog, VideoCache, TranscodeModel, Link) {
        let catalog = Catalog::generate(CatalogConfig {
            n_videos: 150,
            seed: 31,
            ..Default::default()
        })
        .unwrap();
        let mut cache = VideoCache::new(100_000.0);
        cache.warm_from(&catalog);
        (
            catalog,
            cache,
            TranscodeModel::default(),
            Link::new(LinkConfig::default()),
        )
    }

    #[test]
    fn end_to_end_prediction_runs() {
        let store = populated_store(30, 1);
        let (catalog, cache, transcode, link) = fixtures();
        let mut predictor = DtAssistedPredictor::new(scheme_config()).unwrap();
        let outcome = predictor
            .predict(&store, &catalog, &cache, &transcode, &link)
            .unwrap();
        assert_eq!(outcome.user_order.len(), 30);
        assert_eq!(outcome.grouping.assignments.len(), 30);
        assert!(outcome.grouping.k >= 2 && outcome.grouping.k <= 6);
        assert!(outcome.total_radio().value() > 0.0);
        assert!(outcome.total_radio().value().is_finite());
        assert_eq!(outcome.groups.len(), outcome.recommendations.len());
        assert_eq!(predictor.intervals_predicted(), 1);
    }

    #[test]
    fn group_members_partition_users() {
        let store = populated_store(24, 2);
        let (catalog, cache, transcode, link) = fixtures();
        let mut predictor = DtAssistedPredictor::new(scheme_config()).unwrap();
        let outcome = predictor
            .predict(&store, &catalog, &cache, &transcode, &link)
            .unwrap();
        let mut all: Vec<UserId> = (0..outcome.grouping.k)
            .flat_map(|g| outcome.group_members(g))
            .collect();
        all.sort();
        let mut expect = outcome.user_order.clone();
        expect.sort();
        assert_eq!(all, expect);
    }

    #[test]
    fn too_few_users_errors() {
        let store = populated_store(1, 3);
        let (catalog, cache, transcode, link) = fixtures();
        let mut predictor = DtAssistedPredictor::new(scheme_config()).unwrap();
        assert!(predictor
            .predict(&store, &catalog, &cache, &transcode, &link)
            .is_err());
    }

    #[test]
    fn compressor_trains_once_unless_invalidated() {
        let store = populated_store(20, 4);
        let (catalog, cache, transcode, link) = fixtures();
        let mut predictor = DtAssistedPredictor::new(scheme_config()).unwrap();
        predictor
            .predict(&store, &catalog, &cache, &transcode, &link)
            .unwrap();
        let epochs_after_first = 15;
        predictor
            .predict(&store, &catalog, &cache, &transcode, &link)
            .unwrap();
        // Second pass must not retrain.
        // (trained_epochs is internal to the compressor; verify via Debug.)
        let dbg = format!("{predictor:?}");
        assert!(
            dbg.contains(&format!("trained_epochs: {epochs_after_first}")),
            "{dbg}"
        );
        predictor.invalidate_compressor();
        predictor
            .predict(&store, &catalog, &cache, &transcode, &link)
            .unwrap();
        let dbg = format!("{predictor:?}");
        assert!(dbg.contains(&format!("trained_epochs: {}", 2 * epochs_after_first)));
    }

    #[test]
    fn archetypes_end_up_separated() {
        // With strongly bimodal users the grouping should mostly separate
        // the two archetypes (even/odd users).
        let store = populated_store(40, 5);
        let (catalog, cache, transcode, link) = fixtures();
        let mut predictor = DtAssistedPredictor::new(SchemeConfig {
            grouping: GroupingConfig {
                k_min: 2,
                k_max: 4,
                strategy: crate::grouping::GroupingStrategy::FixedK(2),
                ..Default::default()
            },
            ..scheme_config()
        })
        .unwrap();
        let outcome = predictor
            .predict(&store, &catalog, &cache, &transcode, &link)
            .unwrap();
        // Count the majority label per parity.
        let mut same = 0;
        let mut total = 0;
        for (i, &a) in outcome.grouping.assignments.iter().enumerate() {
            for (j, &b) in outcome.grouping.assignments.iter().enumerate().skip(i + 1) {
                let same_arche = outcome.user_order[i].0 % 2 == outcome.user_order[j].0 % 2;
                if same_arche {
                    total += 1;
                    if a == b {
                        same += 1;
                    }
                }
            }
        }
        let purity = same as f64 / total as f64;
        assert!(purity > 0.8, "same-archetype pairs co-grouped: {purity}");
    }
}

#[cfg(test)]
mod snr_estimator_tests {
    use super::*;
    use msvs_types::{Position, SimTime};

    fn twin_moving_away() -> UserDigitalTwin {
        let mut twin = UserDigitalTwin::new(UserId(1));
        // Near the BS with strong samples, but moving away at 4 m/s.
        for s in 0..10u64 {
            let t = SimTime::from_secs(s * 10);
            twin.update_channel(t, 20.0);
            twin.update_location(t, Position::new(100.0 + s as f64 * 40.0, 500.0));
        }
        twin
    }

    fn predictor_with(estimator: SnrEstimator) -> DtAssistedPredictor {
        DtAssistedPredictor::new(SchemeConfig {
            bs_positions: vec![Position::new(100.0, 500.0)],
            snr_estimator: estimator,
            ..SchemeConfig::default()
        })
        .expect("valid config")
    }

    #[test]
    fn recent_mean_reports_history_average() {
        let p = predictor_with(SnrEstimator::RecentMean { window: 64 });
        let link = Link::new(msvs_channel::LinkConfig::default());
        let snr = p.estimate_snr(&twin_moving_away(), &link);
        assert!((snr - 20.0).abs() < 1e-9, "mean of identical samples");
    }

    #[test]
    fn extrapolated_projects_ahead_of_last_position() {
        let p = predictor_with(SnrEstimator::Extrapolated {
            fading_offset_db: -2.5,
        });
        let link = Link::new(msvs_channel::LinkConfig::default());
        let twin = twin_moving_away();
        let snr = p.estimate_snr(&twin, &link);
        // The last known position is 460 m out, midpoint projection adds 150 s x 4 m/s:
        // the estimate must be well below the SNR at the last position.
        let last_pos = twin.latest_position().unwrap();
        let at_last = link.mean_snr_db(last_pos.distance_to(Position::new(100.0, 500.0))) - 2.5;
        assert!(
            snr < at_last - 3.0,
            "projection must anticipate the retreat: {snr:.1} vs {at_last:.1}"
        );
    }

    #[test]
    fn extrapolated_falls_back_without_bs_or_location() {
        // No BS positions configured: falls back to recent mean.
        let p = DtAssistedPredictor::new(SchemeConfig {
            snr_estimator: SnrEstimator::Extrapolated {
                fading_offset_db: -2.5,
            },
            ..SchemeConfig::default()
        })
        .expect("valid config");
        let link = Link::new(msvs_channel::LinkConfig::default());
        assert!((p.estimate_snr(&twin_moving_away(), &link) - 20.0).abs() < 1e-9);
        // No location data at all: recent mean again.
        let p = predictor_with(SnrEstimator::Extrapolated {
            fading_offset_db: -2.5,
        });
        let mut bare = UserDigitalTwin::new(UserId(2));
        bare.update_channel(SimTime::ZERO, 7.0);
        assert!((p.estimate_snr(&bare, &link) - 7.0).abs() < 1e-9);
    }
}

//! Group-level swiping probability abstraction.
//!
//! "Users' watching duration on each kind of video is utilized to update
//! multicast groups' swiping probability distributions." For each group
//! and category we estimate the distribution of the *time until the user
//! swipes away*. A subtlety the naive empirical CDF gets wrong: when a
//! user watches a video to the end, we never observe their swipe time —
//! the observation is **right-censored** at the video length. We therefore
//! use the Kaplan–Meier estimator, which handles censoring exactly; its
//! complement `1 − S(t)` *is* the cumulative swiping probability of the
//! paper's Fig. 3(a), and expectations over it drive the demand and
//! prefetch-waste predictions.

use msvs_types::{SimDuration, VideoCategory};
use msvs_udt::WatchRecord;

/// Fallback mean watch time (seconds) for categories with no observations.
const PRIOR_MEAN_SECS: f64 = 14.0;

/// Maximum retained samples per category (rolling window).
const MAX_SAMPLES: usize = 2048;

/// Horizon used when summarising a category's retention as a scalar
/// ("expected engagement with a 60-second video").
const SUMMARY_CAP_SECS: f64 = 60.0;

/// One observation: watch duration, and whether the swipe was actually
/// observed (`true`) or censored by the video ending (`false`).
type Observation = (f64, bool);

/// A compiled Kaplan–Meier survival curve: survival value *after* each
/// distinct event time. `S(t) = 1` before the first event.
#[derive(Debug, Clone, PartialEq)]
struct KmCurve {
    points: Vec<(f64, f64)>, // (event time, survival after it)
}

impl KmCurve {
    /// Fits the estimator. At tied times, events precede censorings (the
    /// standard convention).
    fn fit(observations: &[Observation]) -> Self {
        let mut sorted: Vec<Observation> = observations.to_vec();
        sorted.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("durations are finite")
                .then(b.1.cmp(&a.1))
        });
        let mut at_risk = sorted.len() as f64;
        let mut survival = 1.0;
        let mut points = Vec::new();
        let mut i = 0;
        while i < sorted.len() {
            let t = sorted[i].0;
            let mut events = 0.0;
            let mut censored = 0.0;
            while i < sorted.len() && sorted[i].0 == t {
                if sorted[i].1 {
                    events += 1.0;
                } else {
                    censored += 1.0;
                }
                i += 1;
            }
            if events > 0.0 && at_risk > 0.0 {
                survival *= 1.0 - events / at_risk;
                points.push((t, survival));
            }
            at_risk -= events + censored;
        }
        Self { points }
    }

    /// `S(t)`: probability the user is still watching after `t` seconds.
    fn survival(&self, t: f64) -> f64 {
        let idx = self.points.partition_point(|&(pt, _)| pt <= t);
        if idx == 0 {
            1.0
        } else {
            self.points[idx - 1].1
        }
    }

    /// `∫_0^cap f(S(t)) dt` over the step curve.
    fn integrate(&self, cap: f64, f: impl Fn(f64) -> f64) -> f64 {
        if cap <= 0.0 {
            return 0.0;
        }
        let mut acc = 0.0;
        let mut prev_t = 0.0;
        let mut prev_s = 1.0;
        for &(t, s) in &self.points {
            let t_clamped = t.min(cap);
            if t_clamped > prev_t {
                acc += (t_clamped - prev_t) * f(prev_s);
                prev_t = t_clamped;
            }
            prev_s = s;
            if prev_t >= cap {
                return acc;
            }
        }
        acc + (cap - prev_t) * f(prev_s)
    }
}

/// Per-group, per-category swipe-time distributions (Kaplan–Meier).
#[derive(Debug, Clone, Default)]
pub struct SwipingAbstraction {
    per_category: Vec<Vec<Observation>>,
}

impl SwipingAbstraction {
    /// Builds an empty abstraction (all categories on the neutral prior).
    pub fn new() -> Self {
        Self {
            per_category: vec![Vec::new(); VideoCategory::COUNT],
        }
    }

    /// Builds directly from watch records.
    pub fn from_records<'a>(records: impl IntoIterator<Item = &'a WatchRecord>) -> Self {
        let mut s = Self::new();
        s.ingest(records);
        s
    }

    /// Adds watch records (e.g. all member twins' histories for this
    /// interval). Completed views enter as right-censored observations;
    /// oldest samples are dropped beyond the rolling window.
    pub fn ingest<'a>(&mut self, records: impl IntoIterator<Item = &'a WatchRecord>) {
        for r in records {
            let bucket = &mut self.per_category[r.category.index()];
            if bucket.len() == MAX_SAMPLES {
                bucket.remove(0);
            }
            // `completed` means the swipe was never observed: censored.
            bucket.push((r.watched.as_secs_f64(), !r.completed));
        }
    }

    /// Number of samples held for a category.
    pub fn sample_count(&self, category: VideoCategory) -> usize {
        self.per_category[category.index()].len()
    }

    /// Total samples across categories.
    pub fn total_samples(&self) -> usize {
        self.per_category.iter().map(|c| c.len()).sum()
    }

    fn curve(&self, category: VideoCategory) -> Option<KmCurve> {
        let bucket = &self.per_category[category.index()];
        if bucket.is_empty() {
            None
        } else {
            Some(KmCurve::fit(bucket))
        }
    }

    /// Cumulative swiping probability: the chance a group member has
    /// swiped a `category` video away by time `t_secs` (completions are
    /// not swipes). Kaplan–Meier when data exists, exponential prior
    /// otherwise.
    pub fn cumulative_probability(&self, category: VideoCategory, t_secs: f64) -> f64 {
        match self.curve(category) {
            Some(curve) => 1.0 - curve.survival(t_secs),
            None => 1.0 - (-t_secs.max(0.0) / PRIOR_MEAN_SECS).exp(),
        }
    }

    /// Expected engagement time with a `category` video of length `cap`:
    /// `E[min(T_swipe, cap)] = ∫_0^cap S(t) dt`.
    pub fn expected_engagement(&self, category: VideoCategory, cap: SimDuration) -> SimDuration {
        let cap_s = cap.as_secs_f64();
        let secs = match self.curve(category) {
            Some(curve) => curve.integrate(cap_s, |s| s),
            None => PRIOR_MEAN_SECS * (1.0 - (-cap_s / PRIOR_MEAN_SECS).exp()),
        };
        SimDuration::from_secs_f64(secs)
    }

    /// Expected *transmission-governing* engagement for a multicast group
    /// of `n` members: `E[min(max(T_1..T_n), cap)]`, the time until the
    /// last member swipes (capped at the video length).
    ///
    /// Computed as `∫_0^cap (1 - (1 - S(t))^n) dt`. Because completions
    /// are censored, `S` retains mass at the video end, so large groups
    /// correctly hold videos to completion.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn expected_max_engagement(
        &self,
        category: VideoCategory,
        n: usize,
        cap: SimDuration,
    ) -> SimDuration {
        assert!(n > 0, "group must have at least one member");
        let cap_s = cap.as_secs_f64();
        if cap_s == 0.0 {
            return SimDuration::ZERO;
        }
        let secs = match self.curve(category) {
            Some(curve) => curve.integrate(cap_s, |s| 1.0 - (1.0 - s).powi(n as i32)),
            None => integrate_prior_max(n, cap_s),
        };
        SimDuration::from_secs_f64(secs)
    }

    /// Scalar retention summary: expected engagement with a
    /// 60-second video of this category.
    pub fn mean_watch_secs(&self, category: VideoCategory) -> f64 {
        self.expected_engagement(category, SimDuration::from_secs_f64(SUMMARY_CAP_SECS))
            .as_secs_f64()
    }

    /// Categories ranked by retention, longest first (Fig. 3(a)'s "users
    /// watch News most, Game least" ordering).
    pub fn ranked_categories(&self) -> Vec<(VideoCategory, f64)> {
        let mut ranked: Vec<(VideoCategory, f64)> = VideoCategory::ALL
            .iter()
            .map(|&c| (c, self.mean_watch_secs(c)))
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite means"));
        ranked
    }
}

fn integrate_prior_max(n: usize, cap: f64) -> f64 {
    const STEPS: usize = 200;
    let dt = cap / STEPS as f64;
    let mut acc = 0.0;
    for i in 0..STEPS {
        let t = (i as f64 + 0.5) * dt;
        let cdf = 1.0 - (-t / PRIOR_MEAN_SECS).exp();
        acc += (1.0 - cdf.powi(n as i32)) * dt;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use msvs_types::{RepresentationLevel, VideoId};

    fn record(cat: VideoCategory, secs: f64) -> WatchRecord {
        WatchRecord {
            video: VideoId(0),
            category: cat,
            level: RepresentationLevel::P720,
            watched: SimDuration::from_secs_f64(secs),
            video_duration: SimDuration::from_secs(60),
            completed: false,
        }
    }

    fn completed(cat: VideoCategory, secs: f64) -> WatchRecord {
        WatchRecord {
            completed: true,
            watched: SimDuration::from_secs_f64(secs),
            ..record(cat, secs)
        }
    }

    #[test]
    fn empty_abstraction_uses_prior() {
        let s = SwipingAbstraction::new();
        assert_eq!(s.total_samples(), 0);
        let p = s.cumulative_probability(VideoCategory::News, PRIOR_MEAN_SECS);
        assert!((p - (1.0 - (-1.0f64).exp())).abs() < 1e-9);
    }

    #[test]
    fn uncensored_km_matches_empirical_cdf() {
        // Without completions, KM reduces to 1 - empirical survivor.
        let recs: Vec<WatchRecord> = (1..=20)
            .map(|i| record(VideoCategory::Music, i as f64))
            .collect();
        let s = SwipingAbstraction::from_records(recs.iter());
        assert!((s.cumulative_probability(VideoCategory::Music, 10.0) - 0.5).abs() < 1e-9);
        assert!((s.cumulative_probability(VideoCategory::Music, 0.5) - 0.0).abs() < 1e-9);
        assert_eq!(s.cumulative_probability(VideoCategory::Music, 100.0), 1.0);
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let recs: Vec<WatchRecord> = (1..=20)
            .map(|i| {
                if i % 4 == 0 {
                    completed(VideoCategory::Music, i as f64)
                } else {
                    record(VideoCategory::Music, i as f64)
                }
            })
            .collect();
        let s = SwipingAbstraction::from_records(recs.iter());
        let mut prev = -1.0;
        for t in 0..30 {
            let p = s.cumulative_probability(VideoCategory::Music, t as f64);
            assert!((0.0..=1.0).contains(&p));
            assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    fn completions_are_not_swipes() {
        // Half the views complete at 20 s: the swipe CDF must NOT reach 1
        // at 20 s — completed viewers never swiped.
        let mut recs = Vec::new();
        for i in 0..50 {
            recs.push(record(VideoCategory::News, 2.0 + (i % 10) as f64));
            recs.push(completed(VideoCategory::News, 20.0));
        }
        let s = SwipingAbstraction::from_records(recs.iter());
        let p = s.cumulative_probability(VideoCategory::News, 25.0);
        assert!(
            p < 0.95,
            "censored completions must leave survival mass: F(25) = {p}"
        );
        // Naive ECDF would say 1.0 here.
    }

    #[test]
    fn all_completed_means_nobody_swipes() {
        let recs: Vec<WatchRecord> = (0..30)
            .map(|_| completed(VideoCategory::Food, 15.0))
            .collect();
        let s = SwipingAbstraction::from_records(recs.iter());
        assert_eq!(s.cumulative_probability(VideoCategory::Food, 30.0), 0.0);
        // Expected engagement with any video = its full length.
        let e = s.expected_engagement(VideoCategory::Food, SimDuration::from_secs(40));
        assert!((e.as_secs_f64() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn categories_are_independent() {
        let mut s = SwipingAbstraction::new();
        s.ingest([record(VideoCategory::News, 50.0)].iter());
        assert_eq!(s.sample_count(VideoCategory::News), 1);
        assert_eq!(s.sample_count(VideoCategory::Game), 0);
    }

    #[test]
    fn expected_engagement_matches_hand_calc() {
        let recs = [
            record(VideoCategory::Food, 5.0),
            record(VideoCategory::Food, 15.0),
            record(VideoCategory::Food, 25.0),
        ];
        let s = SwipingAbstraction::from_records(recs.iter());
        // Uncensored: E[min(T, 20)] = (5 + 15 + 20)/3.
        let e = s.expected_engagement(VideoCategory::Food, SimDuration::from_secs(20));
        assert!((e.as_secs_f64() - 40.0 / 3.0).abs() < 0.01);
    }

    #[test]
    fn expected_max_grows_with_group_size() {
        let recs: Vec<WatchRecord> = (0..200)
            .map(|i| record(VideoCategory::Sports, 2.0 + (i % 30) as f64))
            .collect();
        let s = SwipingAbstraction::from_records(recs.iter());
        let cap = SimDuration::from_secs(60);
        let e1 = s.expected_max_engagement(VideoCategory::Sports, 1, cap);
        let e5 = s.expected_max_engagement(VideoCategory::Sports, 5, cap);
        let e50 = s.expected_max_engagement(VideoCategory::Sports, 50, cap);
        assert!(e1 < e5 && e5 < e50, "{e1} {e5} {e50}");
        assert!(e50.as_secs_f64() <= 60.0 + 1e-9);
        let plain = s.expected_engagement(VideoCategory::Sports, cap);
        assert!((e1.as_secs_f64() - plain.as_secs_f64()).abs() < 0.05);
    }

    #[test]
    fn censoring_keeps_groups_holding_to_completion() {
        // 30% completion rate: a large group almost surely contains a
        // completer, so the expected max must approach the video length.
        let mut recs = Vec::new();
        for i in 0..100 {
            if i % 3 == 0 {
                recs.push(completed(VideoCategory::Comedy, 30.0));
            } else {
                recs.push(record(VideoCategory::Comedy, 1.0 + (i % 8) as f64));
            }
        }
        let s = SwipingAbstraction::from_records(recs.iter());
        let cap = SimDuration::from_secs(30);
        let e20 = s.expected_max_engagement(VideoCategory::Comedy, 20, cap);
        assert!(
            e20.as_secs_f64() > 29.0,
            "20 members with 33% completers must hold ~30 s, got {e20}"
        );
    }

    #[test]
    fn expected_max_capped_by_video_length() {
        let recs: Vec<WatchRecord> = (0..50)
            .map(|_| record(VideoCategory::Comedy, 500.0))
            .collect();
        let s = SwipingAbstraction::from_records(recs.iter());
        let e = s.expected_max_engagement(VideoCategory::Comedy, 10, SimDuration::from_secs(30));
        assert!((e.as_secs_f64() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn ranked_categories_orders_by_retention() {
        let mut s = SwipingAbstraction::new();
        for _ in 0..50 {
            s.ingest([record(VideoCategory::News, 40.0)].iter());
            s.ingest([record(VideoCategory::Game, 3.0)].iter());
        }
        let ranked = s.ranked_categories();
        assert_eq!(ranked[0].0, VideoCategory::News);
        assert_eq!(ranked.last().unwrap().0, VideoCategory::Game);
    }

    #[test]
    fn rolling_window_caps_memory() {
        let mut s = SwipingAbstraction::new();
        for i in 0..(MAX_SAMPLES + 100) {
            s.ingest([record(VideoCategory::Music, i as f64 % 30.0)].iter());
        }
        assert_eq!(s.sample_count(VideoCategory::Music), MAX_SAMPLES);
    }

    #[test]
    fn km_curve_hand_example() {
        // Classic worked example: events at 2, 4; censored at 3.
        // S(2) = 1 - 1/3 = 2/3; at t=4 at-risk = 1: S(4) = 2/3 * 0 = 0.
        let curve = KmCurve::fit(&[(2.0, true), (3.0, false), (4.0, true)]);
        assert!((curve.survival(1.9) - 1.0).abs() < 1e-12);
        assert!((curve.survival(2.5) - 2.0 / 3.0).abs() < 1e-12);
        assert!((curve.survival(3.5) - 2.0 / 3.0).abs() < 1e-12);
        assert!(curve.survival(4.0).abs() < 1e-12);
    }

    #[test]
    fn km_ties_events_before_censorings() {
        // Event and censoring both at t=5 with 2 at risk: the event sees
        // n=2, so S(5) = 1/2 (not 0).
        let curve = KmCurve::fit(&[(5.0, true), (5.0, false)]);
        assert!((curve.survival(5.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn zero_member_group_panics() {
        let s = SwipingAbstraction::new();
        let _ = s.expected_max_engagement(VideoCategory::News, 0, SimDuration::from_secs(10));
    }
}

//! Group-level video recommendation.
//!
//! "The recommended videos are updated based on video popularity and
//! users' preferences." For each multicast group we score catalog videos by
//! a convex mix of global popularity and the group's aggregate preference,
//! keep the top `n`, and normalise the scores into the distribution the
//! multicast scheduler will draw the group's feed from.

use msvs_types::{Error, Result, VideoCategory, VideoId};
use msvs_video::Catalog;

/// Recommender parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecommenderConfig {
    /// Videos in each group's recommendation pool.
    pub top_n: usize,
    /// Weight on global popularity (`1 - this` goes to group preference).
    pub popularity_weight: f64,
}

impl Default for RecommenderConfig {
    fn default() -> Self {
        Self {
            top_n: 50,
            popularity_weight: 0.4,
        }
    }
}

/// A group's recommendation pool: videos with normalised play
/// probabilities.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupRecommendation {
    entries: Vec<(VideoId, f64)>,
}

impl GroupRecommendation {
    /// `(video, probability)` pairs, highest probability first.
    pub fn entries(&self) -> &[(VideoId, f64)] {
        &self.entries
    }

    /// Number of recommended videos.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the pool is empty (never true for a valid build).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Probability assigned to `video` (0 when not in the pool).
    pub fn probability(&self, video: VideoId) -> f64 {
        self.entries
            .iter()
            .find(|(v, _)| *v == video)
            .map(|(_, p)| *p)
            .unwrap_or(0.0)
    }

    /// Aggregated probability mass per category.
    pub fn category_mix(&self, catalog: &Catalog) -> Vec<f64> {
        let mut mix = vec![0.0; VideoCategory::COUNT];
        for (v, p) in &self.entries {
            if let Ok(video) = catalog.get(*v) {
                mix[video.category.index()] += p;
            }
        }
        mix
    }

    /// Samples a video id from the pool.
    pub fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> VideoId {
        let weights: Vec<f64> = self.entries.iter().map(|(_, p)| *p).collect();
        let idx = msvs_types::stats::weighted_index(rng, &weights).unwrap_or(0);
        self.entries[idx].0
    }
}

/// Computes a group's aggregate preference: the mean of member preference
/// vectors, re-normalised.
///
/// # Panics
/// Panics if member vectors have inconsistent lengths.
pub fn aggregate_preference(member_preferences: &[&[f64]]) -> Vec<f64> {
    let mut agg = vec![0.0; VideoCategory::COUNT];
    for p in member_preferences {
        assert_eq!(p.len(), VideoCategory::COUNT, "preference vector length");
        for (a, &x) in agg.iter_mut().zip(*p) {
            *a += x;
        }
    }
    let total: f64 = agg.iter().sum();
    if total > 0.0 {
        for a in &mut agg {
            *a /= total;
        }
    } else {
        agg = vec![1.0 / VideoCategory::COUNT as f64; VideoCategory::COUNT];
    }
    agg
}

/// Builds a group's recommendation pool.
///
/// Scores every catalog video as
/// `popularity_weight * popularity + (1 - popularity_weight) * preference`
/// (both factors normalised to peak 1), keeps the top `n`, and normalises.
///
/// # Errors
/// Returns `InvalidConfig` for a zero `top_n`, a weight outside `[0, 1]`,
/// or a preference vector of the wrong length.
pub fn recommend_for_group(
    catalog: &Catalog,
    group_preference: &[f64],
    config: &RecommenderConfig,
) -> Result<GroupRecommendation> {
    if config.top_n == 0 {
        return Err(Error::invalid_config("top_n", "must be positive"));
    }
    if !(0.0..=1.0).contains(&config.popularity_weight) {
        return Err(Error::invalid_config(
            "popularity_weight",
            "must be in [0, 1]",
        ));
    }
    if group_preference.len() != VideoCategory::COUNT {
        return Err(Error::invalid_config(
            "group_preference",
            format!(
                "need {} entries, got {}",
                VideoCategory::COUNT,
                group_preference.len()
            ),
        ));
    }
    let max_pop = catalog.popularity(VideoId(0)).max(f64::MIN_POSITIVE);
    let max_pref = group_preference
        .iter()
        .copied()
        .fold(f64::MIN_POSITIVE, f64::max);
    let mut scored: Vec<(VideoId, f64)> = catalog
        .videos()
        .iter()
        .map(|v| {
            let pop = catalog.popularity(v.id) / max_pop;
            let pref = group_preference[v.category.index()] / max_pref;
            (
                v.id,
                config.popularity_weight * pop + (1.0 - config.popularity_weight) * pref,
            )
        })
        .collect();
    scored.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("finite scores")
            .then(a.0.cmp(&b.0))
    });
    scored.truncate(config.top_n);
    let total: f64 = scored.iter().map(|(_, s)| s).sum();
    if total > 0.0 {
        for (_, s) in &mut scored {
            *s /= total;
        }
    } else {
        let uniform = 1.0 / scored.len() as f64;
        for (_, s) in &mut scored {
            *s = uniform;
        }
    }
    Ok(GroupRecommendation { entries: scored })
}

#[cfg(test)]
mod tests {
    use super::*;
    use msvs_video::CatalogConfig;

    fn catalog() -> Catalog {
        Catalog::generate(CatalogConfig {
            n_videos: 300,
            seed: 11,
            ..Default::default()
        })
        .unwrap()
    }

    fn spiked_pref(cat: VideoCategory, mass: f64) -> Vec<f64> {
        let rest = (1.0 - mass) / (VideoCategory::COUNT - 1) as f64;
        (0..VideoCategory::COUNT)
            .map(|i| if i == cat.index() { mass } else { rest })
            .collect()
    }

    #[test]
    fn probabilities_sum_to_one() {
        let rec = recommend_for_group(
            &catalog(),
            &spiked_pref(VideoCategory::News, 0.6),
            &RecommenderConfig::default(),
        )
        .unwrap();
        assert_eq!(rec.len(), 50);
        let total: f64 = rec.entries().iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Sorted descending.
        let ps: Vec<f64> = rec.entries().iter().map(|(_, p)| *p).collect();
        assert!(ps.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn preference_dominates_when_popularity_weight_low() {
        let c = catalog();
        let rec = recommend_for_group(
            &c,
            &spiked_pref(VideoCategory::Music, 0.8),
            &RecommenderConfig {
                top_n: 30,
                popularity_weight: 0.1,
            },
        )
        .unwrap();
        let mix = rec.category_mix(&c);
        assert!(
            mix[VideoCategory::Music.index()] > 0.6,
            "music mass {mix:?}"
        );
    }

    #[test]
    fn popularity_dominates_when_weight_high() {
        let c = catalog();
        let rec = recommend_for_group(
            &c,
            &spiked_pref(VideoCategory::Music, 0.8),
            &RecommenderConfig {
                top_n: 30,
                popularity_weight: 1.0,
            },
        )
        .unwrap();
        // With pure popularity, the top-ranked video must be in the pool.
        assert!(rec.probability(VideoId(0)) > 0.0);
    }

    #[test]
    fn aggregate_preference_means_and_normalises() {
        let a = vec![0.5, 0.5, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let b = vec![0.0, 0.5, 0.5, 0.0, 0.0, 0.0, 0.0, 0.0];
        let agg = aggregate_preference(&[&a, &b]);
        assert!((agg.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((agg[1] - 0.5).abs() < 1e-12);
        assert!((agg[0] - 0.25).abs() < 1e-12);
        // Empty group falls back to uniform.
        let uni = aggregate_preference(&[]);
        assert!((uni[0] - 0.125).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_config() {
        let c = catalog();
        let pref = spiked_pref(VideoCategory::News, 0.5);
        assert!(recommend_for_group(
            &c,
            &pref,
            &RecommenderConfig {
                top_n: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(recommend_for_group(
            &c,
            &pref,
            &RecommenderConfig {
                popularity_weight: 1.5,
                ..Default::default()
            }
        )
        .is_err());
        assert!(recommend_for_group(&c, &[0.5, 0.5], &RecommenderConfig::default()).is_err());
    }

    #[test]
    fn sampling_follows_pool_probabilities() {
        use rand::SeedableRng;
        let c = catalog();
        let rec = recommend_for_group(
            &c,
            &spiked_pref(VideoCategory::Food, 0.7),
            &RecommenderConfig::default(),
        )
        .unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let top = rec.entries()[0];
        let hits = (0..5000).filter(|_| rec.sample(&mut rng) == top.0).count();
        let emp = hits as f64 / 5000.0;
        assert!((emp - top.1).abs() < 0.03, "emp {emp} vs p {}", top.1);
    }
}

//! Resource reservation from predicted demand (the paper's future work).
//!
//! "For future work, we will investigate how to effectively reserve radio
//! and computing resources based on the predicted multicast groups'
//! resource demand." This module implements the natural policy: reserve
//! `prediction × (1 + headroom)` per group, clipped to the cell's budget,
//! and score each interval's outcome — covered or violated, and how much
//! reserved capacity sat idle.

use msvs_types::{CpuCycles, Error, GroupId, ResourceBlocks, Result};
use serde::{Deserialize, Serialize};

use crate::scheme::PredictionOutcome;

/// Reservation policy parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReservationPolicy {
    /// Safety margin on top of the prediction (0.1 = +10%).
    pub headroom: f64,
    /// Total radio budget of the cell, resource blocks.
    pub radio_budget: ResourceBlocks,
    /// Total computing budget of the edge per interval, cycles.
    pub computing_budget: CpuCycles,
}

impl Default for ReservationPolicy {
    fn default() -> Self {
        Self {
            headroom: 0.10,
            // 100 RBs (a 20 MHz LTE carrier) and a 16-core 3 GHz edge box
            // over a 5-minute interval.
            radio_budget: ResourceBlocks(100.0),
            computing_budget: CpuCycles(16.0 * 3e9 * 300.0),
        }
    }
}

impl ReservationPolicy {
    /// Validates the policy.
    ///
    /// # Errors
    /// Returns `InvalidConfig` when the headroom is negative/non-finite or
    /// a budget is non-positive.
    pub fn validate(&self) -> Result<()> {
        if !self.headroom.is_finite() || self.headroom < 0.0 {
            return Err(Error::invalid_config(
                "headroom",
                "must be finite and non-negative",
            ));
        }
        if self.radio_budget.value() <= 0.0 {
            return Err(Error::invalid_config("radio_budget", "must be positive"));
        }
        if self.computing_budget.value() <= 0.0 {
            return Err(Error::invalid_config(
                "computing_budget",
                "must be positive",
            ));
        }
        Ok(())
    }
}

/// A per-group radio + computing reservation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroupReservation {
    /// The group.
    pub group: GroupId,
    /// Radio blocks set aside for the group.
    pub radio: ResourceBlocks,
    /// Computing cycles set aside for the group.
    pub computing: CpuCycles,
}

/// One interval's reservation across all groups.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReservationPlan {
    /// Per-group reservations.
    pub groups: Vec<GroupReservation>,
    /// Whether the headroom-padded demand had to be scaled down to fit the
    /// budget (an admission-control event).
    pub radio_scaled: bool,
    /// Whether computing reservations were scaled to fit.
    pub computing_scaled: bool,
}

impl ReservationPlan {
    /// Total reserved radio.
    pub fn total_radio(&self) -> ResourceBlocks {
        self.groups.iter().map(|g| g.radio).sum()
    }

    /// Total reserved computing.
    pub fn total_computing(&self) -> CpuCycles {
        self.groups.iter().map(|g| g.computing).sum()
    }
}

/// How an interval's reservation played out against measured demand.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReservationOutcome {
    /// Reserved radio covered the actual radio demand.
    pub radio_covered: bool,
    /// Fraction of reserved radio left idle (0 when violated).
    pub radio_idle_fraction: f64,
    /// Unserved radio demand when violated, resource blocks.
    pub radio_shortfall: ResourceBlocks,
    /// Reserved computing covered actual transcoding demand.
    pub computing_covered: bool,
    /// Fraction of reserved computing left idle (0 when violated).
    pub computing_idle_fraction: f64,
}

/// Builds a reservation plan from a prediction outcome.
///
/// Each group gets `prediction × (1 + headroom)`; if the padded total
/// exceeds the budget, all groups are scaled down proportionally
/// (weighted fair sharing) and the plan is flagged.
///
/// # Errors
/// Propagates policy validation errors.
pub fn plan_reservation(
    outcome: &PredictionOutcome,
    policy: &ReservationPolicy,
) -> Result<ReservationPlan> {
    policy.validate()?;
    let pad = 1.0 + policy.headroom;
    let mut groups: Vec<GroupReservation> = outcome
        .groups
        .iter()
        .map(|g| GroupReservation {
            group: g.group,
            radio: g.radio * pad,
            computing: g.computing * pad,
        })
        .collect();
    let total_radio: f64 = groups.iter().map(|g| g.radio.value()).sum();
    let radio_scaled = total_radio > policy.radio_budget.value();
    if radio_scaled && total_radio > 0.0 {
        let scale = policy.radio_budget.value() / total_radio;
        for g in &mut groups {
            g.radio = g.radio * scale;
        }
    }
    let total_comp: f64 = groups.iter().map(|g| g.computing.value()).sum();
    let computing_scaled = total_comp > policy.computing_budget.value();
    if computing_scaled && total_comp > 0.0 {
        let scale = policy.computing_budget.value() / total_comp;
        for g in &mut groups {
            g.computing = g.computing * scale;
        }
    }
    Ok(ReservationPlan {
        groups,
        radio_scaled,
        computing_scaled,
    })
}

/// Scores a plan against the measured interval demand.
pub fn score_reservation(
    plan: &ReservationPlan,
    actual_radio: ResourceBlocks,
    actual_computing: CpuCycles,
) -> ReservationOutcome {
    let reserved_radio = plan.total_radio().value();
    let reserved_comp = plan.total_computing().value();
    let radio_covered = reserved_radio >= actual_radio.value();
    let computing_covered = reserved_comp >= actual_computing.value();
    ReservationOutcome {
        radio_covered,
        radio_idle_fraction: if radio_covered && reserved_radio > 0.0 {
            (reserved_radio - actual_radio.value()) / reserved_radio
        } else {
            0.0
        },
        radio_shortfall: if radio_covered {
            ResourceBlocks::ZERO
        } else {
            ResourceBlocks(actual_radio.value() - reserved_radio)
        },
        computing_covered,
        computing_idle_fraction: if computing_covered && reserved_comp > 0.0 {
            (reserved_comp - actual_computing.value()) / reserved_comp
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::GroupDemandPrediction;
    use crate::grouping::Grouping;
    use msvs_types::RepresentationLevel;

    fn outcome_with(radios: &[f64]) -> PredictionOutcome {
        let groups = radios
            .iter()
            .enumerate()
            .map(|(i, &r)| GroupDemandPrediction {
                group: GroupId(i as u32),
                members: vec![],
                level: RepresentationLevel::P720,
                min_efficiency: 2.0,
                radio: ResourceBlocks(r),
                computing: CpuCycles(r * 1e9),
                expected_slots: 10.0,
                expected_traffic_mb: 100.0,
                expected_waste_mb: 5.0,
            })
            .collect();
        PredictionOutcome {
            user_order: vec![],
            grouping: Grouping {
                k: radios.len(),
                assignments: vec![],
                silhouette: 0.5,
                reward: 0.5,
            },
            swiping: vec![],
            recommendations: vec![],
            groups,
        }
    }

    #[test]
    fn plan_applies_headroom() {
        let plan = plan_reservation(
            &outcome_with(&[10.0, 20.0]),
            &ReservationPolicy {
                headroom: 0.1,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!plan.radio_scaled);
        assert!((plan.total_radio().value() - 33.0).abs() < 1e-9);
        assert!((plan.groups[0].radio.value() - 11.0).abs() < 1e-9);
    }

    #[test]
    fn plan_scales_to_budget() {
        let plan = plan_reservation(
            &outcome_with(&[80.0, 80.0]),
            &ReservationPolicy {
                headroom: 0.0,
                radio_budget: ResourceBlocks(100.0),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(plan.radio_scaled);
        assert!((plan.total_radio().value() - 100.0).abs() < 1e-9);
        // Proportional split preserved.
        assert!((plan.groups[0].radio.value() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn score_covered_vs_violated() {
        let plan = plan_reservation(&outcome_with(&[50.0]), &ReservationPolicy::default()).unwrap();
        let covered = score_reservation(&plan, ResourceBlocks(50.0), CpuCycles(1e9));
        assert!(covered.radio_covered);
        assert!(covered.radio_idle_fraction > 0.0);
        assert_eq!(covered.radio_shortfall, ResourceBlocks::ZERO);

        let violated = score_reservation(&plan, ResourceBlocks(90.0), CpuCycles(1e9));
        assert!(!violated.radio_covered);
        assert_eq!(violated.radio_idle_fraction, 0.0);
        assert!((violated.radio_shortfall.value() - (90.0 - 55.0)).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_policy() {
        assert!(ReservationPolicy {
            headroom: -0.1,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(ReservationPolicy {
            radio_budget: ResourceBlocks(0.0),
            ..Default::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn empty_outcome_plans_empty() {
        let plan = plan_reservation(&outcome_with(&[]), &ReservationPolicy::default()).unwrap();
        assert_eq!(plan.total_radio(), ResourceBlocks::ZERO);
        let score = score_reservation(&plan, ResourceBlocks::ZERO, CpuCycles::ZERO);
        assert!(score.radio_covered);
    }
}

//! The pluggable demand-predictor API.
//!
//! Every predictor the simulator can score — the paper's DT-assisted
//! scheme, the naive full-watch ablation, the historical-mean EWMA — sits
//! behind the [`DemandPredictor`] trait, so the simulation runner holds a
//! `Box<dyn DemandPredictor>` and new predictors plug in without touching
//! the runner at all.

use msvs_channel::Link;
use msvs_edge::{TranscodeModel, VideoCache};
use msvs_types::{CpuCycles, ResourceBlocks, Result, SimTime};
use msvs_udt::TwinView;
use msvs_video::Catalog;

use crate::baselines::HistoricalMeanPredictor;
use crate::scheme::{DtAssistedPredictor, PredictionOutcome};

/// Everything a predictor may consult when forecasting the next
/// reservation interval. Borrowed from the simulator each pass.
pub struct PredictionContext<'a> {
    /// The user digital twin population (channel, location, watch
    /// histories) — a single [`msvs_udt::UdtStore`] or a merged view over
    /// several per-BS shards.
    pub store: &'a dyn TwinView,
    /// The video catalog.
    pub catalog: &'a Catalog,
    /// The edge video cache (hit/miss state drives transcode demand).
    pub cache: &'a VideoCache,
    /// The transcoding cost model.
    pub transcode: &'a TranscodeModel,
    /// The radio link model.
    pub link: &'a Link,
    /// Simulation time of the prediction pass (degradation gates twin
    /// freshness against this instant).
    pub now: SimTime,
}

/// How the degradation ladder resolved for one prediction pass. Present
/// only when [`crate::DegradationConfig::enabled`] is set, so fault-free
/// runs carry no signal and stay bit-identical to historical behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradationSignal {
    /// Fraction of twins with fresh fast attributes at prediction time.
    pub coverage: f64,
    /// Whether coverage fell below the configured threshold (totals fell
    /// back to the historical mean when it had observations).
    pub degraded: bool,
    /// Reservation margin multiplier the caller should apply:
    /// `1 + max_extra_margin * (1 - coverage)`.
    pub margin: f64,
}

/// A predictor's forecast for the coming interval.
#[derive(Debug)]
pub struct Prediction {
    /// Predicted multicast radio demand.
    pub radio: ResourceBlocks,
    /// Predicted edge computing demand.
    pub computing: CpuCycles,
    /// The full pipeline outcome (grouping, swiping abstractions,
    /// recommendations) when the predictor runs the DT pipeline; `None`
    /// for scalar predictors like the historical mean.
    pub outcome: Option<PredictionOutcome>,
    /// Degradation-ladder outcome; `None` when degradation is disabled or
    /// the predictor does not track twin freshness.
    pub degradation: Option<DegradationSignal>,
}

/// A resource-demand predictor the simulator can score.
///
/// Implementations must be [`Send`] so a simulation owning one can move
/// across threads.
pub trait DemandPredictor: Send {
    /// Stable human-readable name (run manifests, journals, reports).
    fn name(&self) -> &'static str;

    /// Forecasts the next interval's resource demand.
    ///
    /// # Errors
    /// Propagates pipeline errors (insufficient twins, shape mismatches).
    fn predict(&mut self, ctx: &PredictionContext<'_>) -> Result<Prediction>;

    /// Wires the predictor into an observability pipeline. Default: no-op.
    fn attach_telemetry(&mut self, _telemetry: msvs_telemetry::Telemetry) {}

    /// Feeds back the interval's *actual* measured demand after playback
    /// (learning predictors fold it into their state). Default: no-op.
    fn observe_actual(&mut self, _radio: ResourceBlocks, _computing: CpuCycles) {}

    /// Pretrains internal models on the current twin population before
    /// scored intervals begin. Default: no-op.
    ///
    /// # Errors
    /// Propagates training errors.
    fn pretrain(&mut self, _store: &dyn TwinView, _rounds: usize) -> Result<()> {
        Ok(())
    }

    /// Installs an embedding-cache backend (sharded deployments route
    /// each twin's cached encoding to its owning shard). Default: no-op —
    /// scalar predictors run no compressor.
    fn set_embedding_backend(&mut self, _backend: Box<dyn crate::cache::EmbeddingBackend>) {}

    /// Flags users whose cached state must be rebuilt on the next pass
    /// (churned slots, shard restores). Consumed by the incremental
    /// pipeline; exact predictors re-validate everything anyway. Default:
    /// no-op.
    fn note_interval_dirty(&mut self, _users: &[msvs_types::UserId]) {}
}

impl DemandPredictor for DtAssistedPredictor {
    fn name(&self) -> &'static str {
        if self.config().demand.assume_full_watch {
            "naive-full-watch"
        } else {
            "dt-assisted"
        }
    }

    fn predict(&mut self, ctx: &PredictionContext<'_>) -> Result<Prediction> {
        let outcome = DtAssistedPredictor::predict(
            self,
            ctx.store,
            ctx.catalog,
            ctx.cache,
            ctx.transcode,
            ctx.link,
        )?;
        let mut radio = outcome.total_radio();
        let mut computing = outcome.total_computing();
        let deg = self.config().degradation;
        let degradation = if deg.enabled {
            let coverage = ctx.store.fresh_fraction(ctx.now, deg.staleness_horizon);
            let degraded = coverage < deg.coverage_threshold;
            let margin = 1.0 + deg.max_extra_margin * (1.0 - coverage);
            if degraded {
                // Bottom rung: the pipeline ran on stale/imputed twins, so
                // trust the historical mean once it has observations.
                if let Some((rb, cy)) = self.fallback_totals() {
                    radio = rb;
                    computing = cy;
                }
            }
            Some(DegradationSignal {
                coverage,
                degraded,
                margin,
            })
        } else {
            None
        };
        Ok(Prediction {
            radio,
            computing,
            outcome: Some(outcome),
            degradation,
        })
    }

    fn attach_telemetry(&mut self, telemetry: msvs_telemetry::Telemetry) {
        DtAssistedPredictor::attach_telemetry(self, telemetry);
    }

    fn observe_actual(&mut self, radio: ResourceBlocks, computing: CpuCycles) {
        // Keep the fallback EWMA warm so the ladder has somewhere to land.
        self.observe_fallback(radio, computing);
    }

    fn pretrain(&mut self, store: &dyn TwinView, rounds: usize) -> Result<()> {
        self.pretrain_grouping(store, rounds)
    }

    fn set_embedding_backend(&mut self, backend: Box<dyn crate::cache::EmbeddingBackend>) {
        DtAssistedPredictor::set_embedding_backend(self, backend);
    }

    fn note_interval_dirty(&mut self, users: &[msvs_types::UserId]) {
        DtAssistedPredictor::note_interval_dirty(self, users);
    }
}

impl DemandPredictor for HistoricalMeanPredictor {
    fn name(&self) -> &'static str {
        "historical-mean"
    }

    fn predict(&mut self, _ctx: &PredictionContext<'_>) -> Result<Prediction> {
        let (radio, computing) = HistoricalMeanPredictor::predict(self)
            .unwrap_or((ResourceBlocks::ZERO, CpuCycles::ZERO));
        Ok(Prediction {
            radio,
            computing,
            outcome: None,
            degradation: None,
        })
    }

    fn observe_actual(&mut self, radio: ResourceBlocks, computing: CpuCycles) {
        self.observe(radio, computing);
    }
}

/// Scores one predictor while the DT pipeline still produces the grouping
/// the simulator needs to play intervals out.
///
/// The simulation requires a [`PredictionOutcome`] (groups, recommended
/// feeds) every interval regardless of which predictor's *totals* are
/// being scored. `PipelineBacked` runs the full DT pipeline for the
/// outcome, then reports the wrapped predictor's totals — exactly how the
/// historical-mean baseline is evaluated in the paper's experiments.
pub struct PipelineBacked<P> {
    pipeline: DtAssistedPredictor,
    scored: P,
}

impl<P: DemandPredictor> PipelineBacked<P> {
    /// Wraps `scored` around the pipeline that produces groupings.
    pub fn new(pipeline: DtAssistedPredictor, scored: P) -> Self {
        Self { pipeline, scored }
    }

    /// The wrapped scored predictor.
    pub fn scored(&self) -> &P {
        &self.scored
    }
}

impl<P: DemandPredictor> DemandPredictor for PipelineBacked<P> {
    fn name(&self) -> &'static str {
        self.scored.name()
    }

    fn predict(&mut self, ctx: &PredictionContext<'_>) -> Result<Prediction> {
        let outcome = DtAssistedPredictor::predict(
            &mut self.pipeline,
            ctx.store,
            ctx.catalog,
            ctx.cache,
            ctx.transcode,
            ctx.link,
        )?;
        let scored = self.scored.predict(ctx)?;
        Ok(Prediction {
            radio: scored.radio,
            computing: scored.computing,
            outcome: Some(outcome),
            degradation: scored.degradation,
        })
    }

    fn attach_telemetry(&mut self, telemetry: msvs_telemetry::Telemetry) {
        DtAssistedPredictor::attach_telemetry(&mut self.pipeline, telemetry.clone());
        self.scored.attach_telemetry(telemetry);
    }

    fn observe_actual(&mut self, radio: ResourceBlocks, computing: CpuCycles) {
        self.scored.observe_actual(radio, computing);
    }

    fn pretrain(&mut self, store: &dyn TwinView, rounds: usize) -> Result<()> {
        self.pipeline.pretrain_grouping(store, rounds)
    }

    fn set_embedding_backend(&mut self, backend: Box<dyn crate::cache::EmbeddingBackend>) {
        self.pipeline.set_embedding_backend(backend);
    }

    fn note_interval_dirty(&mut self, users: &[msvs_types::UserId]) {
        self.pipeline.note_interval_dirty(users);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn historical_mean_predicts_zero_before_observations() {
        let mut p = HistoricalMeanPredictor::new(0.5).unwrap();
        assert_eq!(DemandPredictor::name(&p), "historical-mean");
        // A context is unused by the EWMA; exercise via observe + the
        // inherent predict to keep the test self-contained.
        DemandPredictor::observe_actual(&mut p, ResourceBlocks(12.0), CpuCycles(3e9));
        let (rb, cy) = HistoricalMeanPredictor::predict(&p).unwrap();
        assert_eq!(rb.value(), 12.0);
        assert_eq!(cy.value(), 3e9);
    }

    #[test]
    fn dt_assisted_name_tracks_full_watch_flag() {
        let dt = DtAssistedPredictor::new(crate::SchemeConfig::default()).unwrap();
        assert_eq!(DemandPredictor::name(&dt), "dt-assisted");
        let mut cfg = crate::SchemeConfig::default();
        cfg.demand.assume_full_watch = true;
        let naive = DtAssistedPredictor::new(cfg).unwrap();
        assert_eq!(DemandPredictor::name(&naive), "naive-full-watch");
    }
}

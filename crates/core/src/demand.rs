//! Group-based radio and computing resource demand prediction.
//!
//! For each multicast group over the next reservation interval the
//! predictor estimates:
//!
//! - **Radio**: the average number of OFDMA resource blocks needed to carry
//!   the group's multicast stream. The BS transmits each recommended video
//!   until the *last* member swipes (plus a prefetch horizon), so the
//!   expected per-video transmission time is
//!   `E[min(len, max-of-n watch durations) + prefetch]` computed from the
//!   group's swiping abstraction — this is precisely where the paper's
//!   swiping probability distribution enters resource reservation.
//! - **Computing**: expected transcoding cycles at the edge, from the
//!   recommendation pool's cache-miss profile and the same expected
//!   transmission times.

use msvs_channel::link::cqi_efficiency;
use msvs_channel::{group_resource_demand, Link};
use msvs_edge::{TranscodeModel, VideoCache};
use msvs_types::{
    CpuCycles, Error, GroupId, Hertz, RepresentationLevel, ResourceBlocks, Result, SimDuration,
    UserId,
};
use msvs_video::Catalog;

use crate::recommend::GroupRecommendation;
use crate::swiping::SwipingAbstraction;

/// Demand-prediction parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DemandConfig {
    /// Reservation interval the prediction covers.
    pub interval: SimDuration,
    /// Resource-block bandwidth.
    pub rb_bandwidth: Hertz,
    /// Seconds of video buffered ahead of playback; transmitted even if
    /// every member swipes (the paper's over-provisioning source).
    pub prefetch_secs: f64,
    /// Segment length: transmission is quantised to whole segments (DASH
    /// short-form commonly uses 1 s segments).
    pub segment_secs: f64,
    /// Dead time between videos in the feed.
    pub swipe_gap_secs: f64,
    /// Resource blocks the scheduler is willing to give one group when
    /// choosing its representation level.
    pub group_rb_budget: f64,
    /// Safety margin on the sustainable rate when picking the level.
    pub rate_margin: f64,
    /// If `true`, ignore the swiping abstraction and assume every video is
    /// fully transmitted (the "no swiping abstraction" baseline).
    pub assume_full_watch: bool,
}

impl Default for DemandConfig {
    fn default() -> Self {
        Self {
            interval: SimDuration::from_mins(5),
            rb_bandwidth: Hertz::from_mhz(0.18),
            prefetch_secs: 3.0,
            segment_secs: 1.0,
            swipe_gap_secs: 0.5,
            group_rb_budget: 10.0,
            rate_margin: 0.8,
            assume_full_watch: false,
        }
    }
}

impl DemandConfig {
    fn validate(&self) -> Result<()> {
        if self.interval == SimDuration::ZERO {
            return Err(Error::invalid_config("interval", "must be non-zero"));
        }
        if self.rb_bandwidth.value() <= 0.0 {
            return Err(Error::invalid_config("rb_bandwidth", "must be positive"));
        }
        if self.prefetch_secs < 0.0 || self.swipe_gap_secs < 0.0 {
            return Err(Error::invalid_config(
                "prefetch/swipe gap",
                "must be non-negative",
            ));
        }
        if !(self.segment_secs > 0.0 && self.segment_secs.is_finite()) {
            return Err(Error::invalid_config(
                "segment_secs",
                "must be positive and finite",
            ));
        }
        if self.group_rb_budget <= 0.0 {
            return Err(Error::invalid_config("group_rb_budget", "must be positive"));
        }
        if !(0.0..=1.0).contains(&self.rate_margin) {
            return Err(Error::invalid_config("rate_margin", "must be in (0, 1]"));
        }
        Ok(())
    }
}

/// Predicted demand for one multicast group over one interval.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupDemandPrediction {
    /// The group.
    pub group: GroupId,
    /// Its members.
    pub members: Vec<UserId>,
    /// Representation level the group stream will use.
    pub level: RepresentationLevel,
    /// Worst member spectral efficiency, bits/s/Hz.
    pub min_efficiency: f64,
    /// Predicted average radio demand over the interval.
    pub radio: ResourceBlocks,
    /// Predicted transcoding cycles over the interval.
    pub computing: CpuCycles,
    /// Expected number of videos the group advances through.
    pub expected_slots: f64,
    /// Expected multicast traffic over the interval, megabits.
    pub expected_traffic_mb: f64,
    /// Expected prefetched-but-unplayed traffic over the interval,
    /// megabits: segments transmitted past each BS's last local swipe (the
    /// paper's "precached segments are not played" over-provisioning).
    pub expected_waste_mb: f64,
}

/// Picks the representation level a group can sustain: the highest level
/// whose nominal bitrate fits within `rate_margin` of the rate achievable
/// over `group_rb_budget` RBs at the group's worst-member SNR.
///
/// Falls back to the lowest level when even that does not fit.
pub fn choose_group_level(
    worst_snr_db: f64,
    link: &Link,
    config: &DemandConfig,
) -> RepresentationLevel {
    let capacity = link.rate_over_rbs(worst_snr_db, config.group_rb_budget);
    let budget = capacity.value() * config.rate_margin;
    RepresentationLevel::ALL
        .iter()
        .rev()
        .copied()
        .find(|l| l.nominal_bitrate().value() <= budget)
        .unwrap_or(RepresentationLevel::P240)
}

/// One group member's state at prediction time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemberState {
    /// The user.
    pub user: UserId,
    /// Channel-condition estimate from the twin, dB.
    pub snr_db: f64,
    /// Index of the serving base station (0 in single-cell setups).
    pub bs: usize,
}

impl MemberState {
    /// Builds a single-cell member state (BS 0).
    pub fn new(user: UserId, snr_db: f64) -> Self {
        Self {
            user,
            snr_db,
            bs: 0,
        }
    }
}

/// Predicts one group's radio and computing demand for the next interval.
///
/// Inputs are exactly the artifacts the scheme has abstracted: the group's
/// member states (SNR from the UDT channel series, serving BS from the
/// twin location), its swiping abstraction, and its recommendation pool,
/// plus read-only views of the catalog and edge cache.
///
/// Radio accounting is per BS: each base station multicasts the group
/// stream to its locally attached members and stops once the last *local*
/// member has swiped (plus the prefetch horizon), at the MCS of its worst
/// local member.
///
/// # Errors
/// Returns `InsufficientData` for an empty group or empty recommendation
/// pool, and `InvalidConfig` for bad parameters.
#[allow(clippy::too_many_arguments)]
pub fn predict_group_demand(
    group: GroupId,
    members: &[MemberState],
    swiping: &SwipingAbstraction,
    recommendation: &GroupRecommendation,
    catalog: &Catalog,
    cache: &VideoCache,
    transcode: &TranscodeModel,
    link: &Link,
    config: &DemandConfig,
) -> Result<GroupDemandPrediction> {
    config.validate()?;
    if members.is_empty() {
        return Err(Error::insufficient("group needs at least one member"));
    }
    if recommendation.is_empty() {
        return Err(Error::insufficient("non-empty recommendation pool"));
    }
    let n = members.len();
    let worst_snr = members
        .iter()
        .map(|m| m.snr_db)
        .fold(f64::INFINITY, f64::min);
    let min_efficiency = cqi_efficiency(worst_snr);
    let level = choose_group_level(worst_snr, link, config);

    // Per-BS membership: subset sizes and worst local efficiencies.
    let n_bs = members.iter().map(|m| m.bs).max().expect("non-empty") + 1;
    let mut bs_count = vec![0usize; n_bs];
    let mut bs_min_eff = vec![f64::INFINITY; n_bs];
    for m in members {
        bs_count[m.bs] += 1;
        bs_min_eff[m.bs] = bs_min_eff[m.bs].min(cqi_efficiency(m.snr_db));
    }

    // Expectations over the recommendation pool. Transmission is
    // quantised to whole segments; the expectation of the ceiling is
    // approximated by adding half a segment.
    let seg_bias = config.segment_secs / 2.0;
    let mut exp_slot_secs = 0.0; // feed-advance time per slot (global max)
    let mut exp_traffic_mb_per_slot = vec![0.0f64; n_bs]; // per BS
    let mut exp_waste_mb_per_slot = 0.0;
    let mut exp_cycles_per_slot = 0.0;
    for (video_id, p) in recommendation.entries() {
        let video = catalog.get(*video_id)?;
        let cap = video.duration;
        let cap_s = cap.as_secs_f64();
        let bitrate = video
            .representation(level)
            .map(|r| r.bitrate.value())
            .unwrap_or_else(|| level.nominal_bitrate().value());
        let global_tx;
        if config.assume_full_watch {
            exp_slot_secs += p * cap_s;
            global_tx = cap_s;
            for (bs, &count) in bs_count.iter().enumerate() {
                if count > 0 {
                    exp_traffic_mb_per_slot[bs] += p * bitrate * cap_s;
                }
            }
        } else {
            // E[min(cap, T + x)] = x + E[min(cap - x, T)] for the prefetch
            // lead x — the exact expectation, not min(E[T] + x, cap),
            // which overstates transmission when T concentrates near cap.
            let lead = (config.prefetch_secs + seg_bias).min(cap_s);
            let shrunk_cap = SimDuration::from_secs_f64(cap_s - lead);
            let hold = swiping
                .expected_max_engagement(video.category, n, cap)
                .as_secs_f64();
            exp_slot_secs += p * hold;
            global_tx = lead
                + swiping
                    .expected_max_engagement(video.category, n, shrunk_cap)
                    .as_secs_f64();
            for (bs, &count) in bs_count.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                // Each BS transmits until its *local* last swipe.
                let (local_hold, tx) = if count == n {
                    (hold, global_tx)
                } else {
                    (
                        swiping
                            .expected_max_engagement(video.category, count, cap)
                            .as_secs_f64(),
                        lead + swiping
                            .expected_max_engagement(video.category, count, shrunk_cap)
                            .as_secs_f64(),
                    )
                };
                exp_traffic_mb_per_slot[bs] += p * bitrate * tx;
                exp_waste_mb_per_slot += p * bitrate * (tx - local_hold).max(0.0);
            }
        }
        // Transcode cost only when the exact level is not already cached;
        // remote fetches also transcode down from the fetched top level.
        // The edge transcodes once per video regardless of BS fan-out.
        let needs_transcode = !cache.contains(*video_id, level)
            && (cache.contains_at_or_above(*video_id, level) || video.top_level() > level);
        if needs_transcode {
            exp_cycles_per_slot += p * transcode.cost_rate(level).value() * global_tx;
        }
    }
    let slot_total = exp_slot_secs + config.swipe_gap_secs;
    let interval_s = config.interval.as_secs_f64();
    let expected_slots = interval_s / slot_total.max(1e-6);
    let mut radio = ResourceBlocks::ZERO;
    let mut expected_traffic_mb = 0.0;
    for (bs, &per_slot) in exp_traffic_mb_per_slot.iter().enumerate() {
        if bs_count[bs] == 0 {
            continue;
        }
        let traffic = expected_slots * per_slot;
        expected_traffic_mb += traffic;
        let avg_rate = msvs_types::Mbps(traffic / interval_s);
        radio += group_resource_demand(avg_rate, bs_min_eff[bs], config.rb_bandwidth);
    }
    let computing = CpuCycles(expected_slots * exp_cycles_per_slot);

    Ok(GroupDemandPrediction {
        group,
        members: members.iter().map(|m| m.user).collect(),
        level,
        min_efficiency,
        radio,
        computing,
        expected_slots,
        expected_traffic_mb,
        expected_waste_mb: expected_slots * exp_waste_mb_per_slot,
    })
}

/// Prediction accuracy as defined in the paper's evaluation:
/// `1 - |predicted - actual| / actual`, clamped to `[0, 1]`.
///
/// Returns 1.0 when both are (near) zero and 0.0 when only the actual is.
pub fn prediction_accuracy(predicted: f64, actual: f64) -> f64 {
    if actual.abs() < 1e-12 {
        return if predicted.abs() < 1e-12 { 1.0 } else { 0.0 };
    }
    (1.0 - (predicted - actual).abs() / actual.abs()).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recommend::{recommend_for_group, RecommenderConfig};
    use msvs_channel::LinkConfig;
    use msvs_types::{SimDuration, VideoCategory, VideoId};
    use msvs_udt::WatchRecord;
    use msvs_video::CatalogConfig;

    fn setup() -> (
        Catalog,
        VideoCache,
        Link,
        SwipingAbstraction,
        GroupRecommendation,
    ) {
        let catalog = Catalog::generate(CatalogConfig {
            n_videos: 200,
            seed: 21,
            ..Default::default()
        })
        .unwrap();
        let mut cache = VideoCache::new(100_000.0);
        cache.warm_from(&catalog);
        let link = Link::new(LinkConfig::default());
        let mut swiping = SwipingAbstraction::new();
        for cat in VideoCategory::ALL {
            for i in 0..100 {
                swiping.ingest(
                    [WatchRecord {
                        video: VideoId(0),
                        category: cat,
                        level: RepresentationLevel::P720,
                        watched: SimDuration::from_secs_f64(2.0 + (i % 20) as f64),
                        video_duration: SimDuration::from_secs(60),
                        completed: false,
                    }]
                    .iter(),
                );
            }
        }
        let pref = vec![1.0 / 8.0; 8];
        let rec = recommend_for_group(&catalog, &pref, &RecommenderConfig::default()).unwrap();
        (catalog, cache, link, swiping, rec)
    }

    fn members(n: usize, snr: f64) -> Vec<MemberState> {
        (0..n)
            .map(|i| MemberState::new(UserId(i as u32), snr))
            .collect()
    }

    #[test]
    fn good_channel_gets_high_level() {
        let link = Link::new(LinkConfig::default());
        let cfg = DemandConfig::default();
        let high = choose_group_level(25.0, &link, &cfg);
        let low = choose_group_level(-6.5, &link, &cfg);
        assert!(high >= RepresentationLevel::P720, "got {high}");
        assert_eq!(low, RepresentationLevel::P240);
        assert!(high > low);
    }

    #[test]
    fn prediction_has_sane_shape() {
        let (catalog, cache, link, swiping, rec) = setup();
        let p = predict_group_demand(
            GroupId(0),
            &members(10, 18.0),
            &swiping,
            &rec,
            &catalog,
            &cache,
            &TranscodeModel::default(),
            &link,
            &DemandConfig::default(),
        )
        .unwrap();
        assert!(p.radio.value() > 0.0 && p.radio.value().is_finite());
        assert!(p.expected_slots > 1.0);
        assert!(p.expected_traffic_mb > 0.0);
        assert_eq!(p.members.len(), 10);
        assert!(p.min_efficiency > 0.0);
    }

    #[test]
    fn full_watch_baseline_predicts_more_traffic() {
        let (catalog, cache, link, swiping, rec) = setup();
        let base = DemandConfig::default();
        let full = DemandConfig {
            assume_full_watch: true,
            ..base
        };
        let swipe_aware = predict_group_demand(
            GroupId(0),
            &members(8, 18.0),
            &swiping,
            &rec,
            &catalog,
            &cache,
            &TranscodeModel::default(),
            &link,
            &base,
        )
        .unwrap();
        let naive = predict_group_demand(
            GroupId(0),
            &members(8, 18.0),
            &swiping,
            &rec,
            &catalog,
            &cache,
            &TranscodeModel::default(),
            &link,
            &full,
        )
        .unwrap();
        // Heavy swipers (mean ~11.5 s of <=60 s videos): naive per-slot
        // traffic must be clearly larger.
        let naive_per_slot = naive.expected_traffic_mb / naive.expected_slots;
        let aware_per_slot = swipe_aware.expected_traffic_mb / swipe_aware.expected_slots;
        assert!(
            naive_per_slot > aware_per_slot * 1.5,
            "naive {naive_per_slot:.1} vs aware {aware_per_slot:.1}"
        );
    }

    #[test]
    fn larger_groups_hold_videos_longer() {
        let (catalog, cache, link, swiping, rec) = setup();
        let cfg = DemandConfig::default();
        let small = predict_group_demand(
            GroupId(0),
            &members(2, 18.0),
            &swiping,
            &rec,
            &catalog,
            &cache,
            &TranscodeModel::default(),
            &link,
            &cfg,
        )
        .unwrap();
        let big = predict_group_demand(
            GroupId(0),
            &members(40, 18.0),
            &swiping,
            &rec,
            &catalog,
            &cache,
            &TranscodeModel::default(),
            &link,
            &cfg,
        )
        .unwrap();
        assert!(big.expected_slots < small.expected_slots);
    }

    #[test]
    fn worse_channel_needs_more_rbs() {
        let (catalog, cache, link, swiping, rec) = setup();
        let cfg = DemandConfig::default();
        let run = |snr: f64| {
            predict_group_demand(
                GroupId(0),
                &members(8, snr),
                &swiping,
                &rec,
                &catalog,
                &cache,
                &TranscodeModel::default(),
                &link,
                &cfg,
            )
            .unwrap()
        };
        let good = run(22.0);
        let bad = run(3.0);
        // Lower efficiency per RB; even at a lower level, RB/Mb is worse.
        let good_rb_per_mb = good.radio.value() / good.expected_traffic_mb;
        let bad_rb_per_mb = bad.radio.value() / bad.expected_traffic_mb;
        assert!(bad_rb_per_mb > good_rb_per_mb * 2.0);
    }

    #[test]
    fn empty_group_or_pool_errors() {
        let (catalog, cache, link, swiping, rec) = setup();
        assert!(predict_group_demand(
            GroupId(0),
            &[],
            &swiping,
            &rec,
            &catalog,
            &cache,
            &TranscodeModel::default(),
            &link,
            &DemandConfig::default(),
        )
        .is_err());
    }

    #[test]
    fn accuracy_metric() {
        assert_eq!(prediction_accuracy(100.0, 100.0), 1.0);
        assert!((prediction_accuracy(95.0, 100.0) - 0.95).abs() < 1e-12);
        assert!((prediction_accuracy(105.0, 100.0) - 0.95).abs() < 1e-12);
        assert_eq!(prediction_accuracy(300.0, 100.0), 0.0, "clamped");
        assert_eq!(prediction_accuracy(0.0, 0.0), 1.0);
        assert_eq!(prediction_accuracy(5.0, 0.0), 0.0);
    }

    #[test]
    fn rejects_invalid_config() {
        let bad = DemandConfig {
            interval: SimDuration::ZERO,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = DemandConfig {
            rate_margin: 1.5,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
    }
}

//! DT-assisted resource demand prediction for multicast short video
//! streaming.
//!
//! This crate is the paper's contribution (Huang, Wu & Shen, ICDCS 2023):
//! given user digital twins collected at the edge, it
//!
//! 1. compresses each user's time-series twin data with a **1D-CNN
//!    autoencoder** ([`compressor`]),
//! 2. constructs multicast groups with a **DDQN-selected group count**
//!    followed by **K-means++** ([`grouping`]),
//! 3. abstracts each group's **swiping probability distribution** from
//!    watching durations ([`swiping`]) and its **recommended videos** from
//!    popularity and preference ([`recommend`]), and
//! 4. predicts each group's **radio** (multicast resource blocks) and
//!    **computing** (transcoding cycles) demand for the next reservation
//!    interval ([`demand`]).
//!
//! [`scheme::DtAssistedPredictor`] wires the whole pipeline; [`baselines`]
//! holds the comparison predictors used by the experiments.
//!
//! # Examples
//!
//! See `examples/quickstart.rs` at the workspace root for the end-to-end
//! flow; unit-level examples live on the individual types.

pub mod baselines;
pub mod cache;
pub mod compressor;
pub mod demand;
pub mod features;
pub mod grouping;
pub mod predictor;
pub mod recommend;
pub mod reserve;
pub mod scheme;
pub mod swiping;

pub use baselines::HistoricalMeanPredictor;
pub use cache::{CachePlan, CachedEmbedding, EmbeddingBackend, EmbeddingCache};
pub use compressor::{CnnCompressor, CompressorConfig};
pub use demand::{
    choose_group_level, predict_group_demand, DemandConfig, GroupDemandPrediction, MemberState,
};
pub use features::{embedding_features, windows_to_tensor};
pub use grouping::{Grouping, GroupingConfig, GroupingEngine, GroupingStrategy};
pub use msvs_nn::BackendKind;
pub use predictor::{
    DegradationSignal, DemandPredictor, PipelineBacked, Prediction, PredictionContext,
};
pub use recommend::{recommend_for_group, GroupRecommendation, RecommenderConfig};
pub use reserve::{
    plan_reservation, score_reservation, GroupReservation, ReservationOutcome, ReservationPlan,
    ReservationPolicy,
};
pub use scheme::{
    DegradationConfig, DtAssistedPredictor, PredictionOutcome, SchemeConfig, SnrEstimator,
};
pub use swiping::SwipingAbstraction;

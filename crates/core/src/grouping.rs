//! Multicast group construction: DDQN-selected `K`, K-means++ clustering.
//!
//! The paper's two-step method: "a double deep Q-network (DDQN) is first
//! adopted to determine the grouping number by mining users' similarities.
//! Then, the K-means++ algorithm is utilized to perform fast user
//! clustering based on the determined grouping number."
//!
//! The DDQN sees a fixed-size summary of the embedded user population (a
//! pairwise-distance histogram plus population size and the previous
//! decision) and picks `K`. The reward trades clustering quality
//! (silhouette) against the signalling/channel overhead of more groups.

use msvs_cluster::{silhouette_sampled, KMeans, KMeansConfig};
use msvs_rl::{DdqnAgent, DdqnConfig, EpsilonSchedule, Transition};
use msvs_types::{Error, Result};

/// Number of histogram bins in the DDQN state.
const HIST_BINS: usize = 16;

/// Population-size normaliser for the state (users / this, clamped to 1).
const POP_NORM: f64 = 400.0;

/// Maps a flat index `t` into the `i < j` pair sequence (row-major: (0,1),
/// (0,2), …, (0,n-1), (1,2), …) back to `(i, j)`, in O(1): row `i` starts
/// at flat index `i·n − i·(i+1)/2`, so `i` comes from the quadratic root
/// (float guess, then exact integer adjustment) and `j` from the offset
/// within the row.
///
/// # Panics
/// Debug-asserts `t` addresses a valid pair (`t < n·(n−1)/2`).
fn pair_from_flat(t: usize, n: usize) -> (usize, usize) {
    debug_assert!(t < n * (n - 1) / 2, "flat index {t} out of range for n={n}");
    let row_start = |i: usize| i * n - i * (i + 1) / 2;
    let nf = n as f64 - 0.5;
    let guess = (nf - (nf * nf - 2.0 * t as f64).max(0.0).sqrt()).floor();
    let mut i = (guess.max(0.0) as usize).min(n - 2);
    while i + 2 < n && row_start(i + 1) <= t {
        i += 1;
    }
    while i > 0 && row_start(i) > t {
        i -= 1;
    }
    (i, i + 1 + (t - row_start(i)))
}

/// How the group count is chosen (the DDQN scheme or a baseline).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GroupingStrategy {
    /// The paper's scheme: DDQN picks `K`, learning online.
    Ddqn,
    /// Always use a fixed `K`.
    FixedK(usize),
    /// Exhaustive silhouette scan over the whole `K` range (slow oracle).
    SilhouetteScan,
    /// Elbow rule on inertia.
    Elbow,
    /// Uniform-random `K` in range (sanity floor).
    RandomK,
}

/// Configuration for the [`GroupingEngine`].
#[derive(Debug, Clone)]
pub struct GroupingConfig {
    /// Smallest admissible group count.
    pub k_min: usize,
    /// Largest admissible group count.
    pub k_max: usize,
    /// Reward penalty per extra group beyond `k_min`, spread over the
    /// range (models per-group multicast channel/signalling overhead).
    pub group_cost: f64,
    /// Strategy for picking `K`.
    pub strategy: GroupingStrategy,
    /// DDQN hidden widths.
    pub hidden: Vec<usize>,
    /// DDQN learning rate.
    pub learning_rate: f32,
    /// DDQN exploration schedule.
    pub epsilon: EpsilonSchedule,
    /// Use prioritized experience replay in the DDQN (grouping rewards are
    /// sparse and noisy; PER replays the informative transitions more).
    pub prioritized_replay: bool,
    /// Use a dueling value/advantage Q-network head (adjacent group counts
    /// share most of their value, which the dueling decomposition models
    /// directly).
    pub dueling: bool,
    /// RNG seed (agent weights, K-means seeding, random baseline).
    pub seed: u64,
    /// Worker threads for the K-means assignment step (`1` = serial,
    /// `0` = all available cores). Assignment results are identical at any
    /// thread count.
    pub threads: usize,
    /// Silhouette evaluation budget: populations larger than this score an
    /// evenly strided subsample (deterministic, no RNG) instead of the full
    /// O(n²) scan. `0` disables sampling. Populations at or below the cap
    /// — every committed experiment and test — are bit-identical either
    /// way; the cap only makes 100k-user benches tractable.
    pub silhouette_sample_cap: usize,
    /// Incremental interval pipeline: warm-start K-means from the previous
    /// interval's centroids and gate DDQN `K` re-selection on a drift
    /// score. Off by default; when off the engine is bit-identical to the
    /// classic path.
    pub incremental: bool,
    /// Drift threshold on the scale-free centroid displacement (mean
    /// centroid movement of the last warm fit over the mean centroid
    /// norm). At or above this the population has drifted.
    pub drift_displacement_threshold: f64,
    /// Drift threshold on the fraction of users re-encoded this interval
    /// (churned/restored slots). At or above this the population has
    /// drifted.
    pub drift_dirty_threshold: f64,
    /// Drift threshold on the absolute silhouette change between the last
    /// two fits. At or above this the clustering quality has drifted.
    pub drift_silhouette_threshold: f64,
}

impl Default for GroupingConfig {
    fn default() -> Self {
        Self {
            k_min: 2,
            k_max: 12,
            group_cost: 0.15,
            strategy: GroupingStrategy::Ddqn,
            hidden: vec![64, 32],
            learning_rate: 1e-3,
            epsilon: EpsilonSchedule::linear(0.6, 0.05, 400).expect("static schedule is valid"),
            prioritized_replay: false,
            dueling: false,
            seed: 0,
            threads: 1,
            silhouette_sample_cap: 4096,
            incremental: false,
            drift_displacement_threshold: 0.05,
            drift_dirty_threshold: 0.1,
            drift_silhouette_threshold: 0.05,
        }
    }
}

impl GroupingConfig {
    fn validate(&self) -> Result<()> {
        if self.k_min < 1 || self.k_max < self.k_min {
            return Err(Error::invalid_config(
                "k range",
                format!(
                    "need 1 <= k_min <= k_max, got {}..={}",
                    self.k_min, self.k_max
                ),
            ));
        }
        if self.k_max == self.k_min {
            return Err(Error::invalid_config(
                "k range",
                "need at least two candidate group counts",
            ));
        }
        if self.group_cost < 0.0 {
            return Err(Error::invalid_config("group_cost", "must be non-negative"));
        }
        if self.incremental {
            for (name, v) in [
                (
                    "drift_displacement_threshold",
                    self.drift_displacement_threshold,
                ),
                ("drift_dirty_threshold", self.drift_dirty_threshold),
                (
                    "drift_silhouette_threshold",
                    self.drift_silhouette_threshold,
                ),
            ] {
                if !(v.is_finite() && v > 0.0) {
                    return Err(Error::invalid_config(name, "must be finite and positive"));
                }
            }
        }
        Ok(())
    }
}

/// Result of one group construction.
#[derive(Debug, Clone, PartialEq)]
pub struct Grouping {
    /// Chosen group count.
    pub k: usize,
    /// Group index per user (aligned with the input feature order).
    pub assignments: Vec<usize>,
    /// Silhouette score of the clustering.
    pub silhouette: f64,
    /// Reward fed to the DDQN (quality minus group cost).
    pub reward: f64,
}

impl Grouping {
    /// Members of each group, as indices into the clustered feature set.
    pub fn members(&self) -> Vec<Vec<usize>> {
        let mut m = vec![Vec::new(); self.k];
        for (i, &a) in self.assignments.iter().enumerate() {
            m[a].push(i);
        }
        m
    }
}

/// Cached outcome of the last fit for one `(k, dim)` shape, used by the
/// incremental pipeline to warm-start the next fit of the same shape.
#[derive(Debug, Clone)]
struct WarmState {
    /// Converged centroids of the last fit.
    centroids: Vec<Vec<f64>>,
    /// Lloyd rounds the last *cold* fit of this shape took — the baseline
    /// the `kmeans_warm_rounds_saved` counter is measured against.
    cold_iterations: usize,
}

/// The learning group constructor.
pub struct GroupingEngine {
    config: GroupingConfig,
    agent: DdqnAgent,
    prev_k: Option<usize>,
    prev_reward: f64,
    calls: u64,
    telemetry: Option<msvs_telemetry::Telemetry>,
    /// Warm-start cache keyed by `(k, feature dim)`; only populated in
    /// incremental mode.
    warm: std::collections::HashMap<(usize, usize), WarmState>,
    /// Scale-free centroid displacement of the last warm fit (`None`
    /// until a warm fit has run). Lagged drift input.
    last_displacement: Option<f64>,
    /// Silhouette of the previous fit, and the delta between the last two
    /// fits. Lagged drift inputs.
    last_silhouette: Option<f64>,
    silhouette_delta: Option<f64>,
    /// Fraction of users re-encoded this interval, set by the predictor
    /// before each construction. Starts at full drift so the gate never
    /// engages before the encode layer has reported.
    dirty_fraction: f64,
    /// Pretraining bypasses the drift gate: a stationary pretrain
    /// population would otherwise gate every episode after the first and
    /// the DDQN would never learn.
    in_pretrain: bool,
    /// Set when the drift gate observed established signals *above*
    /// threshold: the population moved, so the encode layer should do a
    /// full (exact) re-encode next interval instead of serving stale
    /// embeddings. Bounds the incremental approximation under heavy
    /// churn. Consumed by [`GroupingEngine::take_refresh_hint`].
    refresh_hint: bool,
}

impl std::fmt::Debug for GroupingEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupingEngine")
            .field("strategy", &self.config.strategy)
            .field("k_range", &(self.config.k_min, self.config.k_max))
            .field("calls", &self.calls)
            .finish()
    }
}

impl GroupingEngine {
    /// Builds an engine.
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] for an invalid `K` range or DDQN
    /// hyperparameters.
    pub fn new(config: GroupingConfig) -> Result<Self> {
        config.validate()?;
        let action_count = config.k_max - config.k_min + 1;
        let agent = DdqnAgent::new(DdqnConfig {
            state_dim: HIST_BINS + 3,
            action_count,
            hidden: config.hidden.clone(),
            learning_rate: config.learning_rate,
            gamma: 0.0, // one-step decisions: pure contextual bandit
            batch_size: 32,
            replay_capacity: 4096,
            min_replay: 64,
            target_sync_every: 50,
            epsilon: config.epsilon,
            per: config.prioritized_replay.then(msvs_rl::PerConfig::default),
            dueling: config.dueling,
            seed: config.seed,
        })?;
        Ok(Self {
            config,
            agent,
            prev_k: None,
            prev_reward: 0.0,
            calls: 0,
            telemetry: None,
            warm: std::collections::HashMap::new(),
            last_displacement: None,
            last_silhouette: None,
            silhouette_delta: None,
            dirty_fraction: 1.0,
            in_pretrain: false,
            refresh_hint: false,
        })
    }

    /// Wires the engine (and its DDQN agent) into an observability
    /// pipeline: `K` selection and clustering are timed, and each
    /// construction emits a [`msvs_telemetry::Event::GroupsFormed`] event.
    pub fn attach_telemetry(&mut self, telemetry: msvs_telemetry::Telemetry) {
        self.agent.attach_telemetry(telemetry.clone());
        self.telemetry = Some(telemetry);
    }

    /// The configuration in use.
    pub fn config(&self) -> &GroupingConfig {
        &self.config
    }

    /// Number of constructions performed.
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// Reports the fraction of users re-encoded this interval (a drift
    /// input for the incremental DDQN gate). Clamped to `[0, 1]`. No-op
    /// effect outside incremental mode.
    pub fn set_dirty_fraction(&mut self, fraction: f64) {
        self.dirty_fraction = fraction.clamp(0.0, 1.0);
    }

    /// Consumes the drift detector's refresh recommendation. `true` means
    /// the last construction saw established drift signals above
    /// threshold, and the caller should run a full (exact) encode pass
    /// next interval rather than an incremental one. Resets on read.
    pub fn take_refresh_hint(&mut self) -> bool {
        std::mem::take(&mut self.refresh_hint)
    }

    /// Combined drift score: the largest of the three drift signals, each
    /// normalised by its threshold so `>= 1.0` means "drifted". Missing
    /// lagged inputs (no warm fit or no silhouette history yet) count as
    /// full drift via a large finite sentinel — finite so the telemetry
    /// gauge stays JSON-representable.
    fn drift_score(&self) -> f64 {
        const FULL_DRIFT: f64 = 1e3;
        let c = &self.config;
        let displacement = self
            .last_displacement
            .map_or(FULL_DRIFT, |d| d / c.drift_displacement_threshold);
        let dirty = self.dirty_fraction / c.drift_dirty_threshold;
        let silhouette = self
            .silhouette_delta
            .map_or(FULL_DRIFT, |d| d.abs() / c.drift_silhouette_threshold);
        displacement.max(dirty).max(silhouette)
    }

    /// Incremental drift gate: `Some(previous K)` when every lagged drift
    /// signal sits below its threshold, meaning the DDQN re-selection can
    /// be skipped this interval. Always `None` outside incremental mode
    /// and during pretraining. Emits the `drift_score` gauge whenever it
    /// evaluates, gated or not. When established signals sit *above*
    /// threshold the refresh hint is raised so the encode layer bounds
    /// embedding staleness with a full re-encode.
    fn drift_gate(&mut self) -> Option<usize> {
        if !self.config.incremental || self.in_pretrain {
            return None;
        }
        let prev_k = self.prev_k?;
        let score = self.drift_score();
        if let Some(t) = &self.telemetry {
            t.gauge("drift_score", "all").set(score);
        }
        if score < 1.0 {
            Some(prev_k)
        } else {
            // Only established signals schedule a refresh: the cold-start
            // FULL_DRIFT sentinel means the cache is young, not stale.
            self.refresh_hint = self.last_displacement.is_some() && self.silhouette_delta.is_some();
            None
        }
    }

    /// DDQN state: normalised pairwise-distance histogram + population
    /// size + previous `K` + previous reward. Pair sampling is
    /// O(samples), not O(n²): see [`pair_from_flat`].
    pub fn state_of(&self, features: &[Vec<f64>]) -> Vec<f32> {
        let mut state = vec![0f32; HIST_BINS + 3];
        let n = features.len();
        if n >= 2 {
            // Sample up to ~2000 pairs to bound cost on large populations.
            // Jump straight to the sampled flat pair indices — walking the
            // full i<j loop to skip-count them is itself O(n²) and was the
            // wall-time ceiling at 100k users. The indices (and therefore
            // the state bits) are identical to the skip-counting loop's.
            let mut dists = Vec::new();
            let total_pairs = n * (n - 1) / 2;
            let stride = (total_pairs / 2000).max(1);
            let mut t = 0usize;
            while t < total_pairs {
                let (i, j) = pair_from_flat(t, n);
                let d: f64 = features[i]
                    .iter()
                    .zip(&features[j])
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                dists.push(d);
                t += stride;
            }
            let max = dists.iter().copied().fold(f64::MIN_POSITIVE, f64::max);
            for &d in &dists {
                let bin = ((d / max) * (HIST_BINS as f64 - 1e-9)) as usize;
                state[bin.min(HIST_BINS - 1)] += 1.0;
            }
            let total: f32 = state[..HIST_BINS].iter().sum();
            if total > 0.0 {
                for s in &mut state[..HIST_BINS] {
                    *s /= total;
                }
            }
        }
        state[HIST_BINS] = ((n as f64) / POP_NORM).min(1.0) as f32;
        state[HIST_BINS + 1] = self
            .prev_k
            .map(|k| {
                (k - self.config.k_min) as f32 / (self.config.k_max - self.config.k_min) as f32
            })
            .unwrap_or(0.5);
        state[HIST_BINS + 2] = self.prev_reward as f32;
        state
    }

    fn reward_of(&self, sil: f64, k: usize) -> f64 {
        let span = (self.config.k_max - self.config.k_min) as f64;
        sil - self.config.group_cost * (k - self.config.k_min) as f64 / span
    }

    /// Constructs multicast groups for the given clustering features.
    ///
    /// With [`GroupingStrategy::Ddqn`] the agent picks `K`, the clustering
    /// runs, and the observed reward is fed back as a one-step transition
    /// (learning continues across reservation intervals).
    ///
    /// # Errors
    /// Returns [`Error::InsufficientData`] when there are fewer users than
    /// `k_min`, and propagates K-means errors.
    pub fn construct(&mut self, features: &[Vec<f64>]) -> Result<Grouping> {
        if features.len() < self.config.k_min {
            return Err(Error::insufficient(format!(
                "need at least k_min={} users, got {}",
                self.config.k_min,
                features.len()
            )));
        }
        self.calls += 1;
        let k_cap = features.len().min(self.config.k_max);
        let grouping = match self.config.strategy {
            GroupingStrategy::Ddqn => {
                if let Some(k) = self.drift_gate() {
                    // Low drift: keep the previous K and leave the agent
                    // untouched (no act, no observe — the ε schedule does
                    // not advance, so a gated interval is deterministic).
                    if let Some(t) = &self.telemetry {
                        t.counter("ddqn_selections_skipped_total", "all").add(1);
                    }
                    self.cluster(features, k.min(k_cap).max(self.config.k_min))?
                } else {
                    let state = self.state_of(features);
                    let select_scope = self
                        .telemetry
                        .as_ref()
                        .map(|t| t.stage_scope(msvs_telemetry::stages::DDQN_SELECT_K));
                    let action = self.agent.act(&state);
                    drop(select_scope);
                    let k = (self.config.k_min + action).min(k_cap);
                    let g = self.cluster(features, k)?;
                    self.agent.observe(Transition {
                        state,
                        action,
                        reward: g.reward as f32,
                        next_state: vec![0.0; HIST_BINS + 3],
                        done: true,
                    });
                    g
                }
            }
            GroupingStrategy::FixedK(k) => {
                let k = k.clamp(self.config.k_min, k_cap);
                self.cluster(features, k)?
            }
            GroupingStrategy::SilhouetteScan => {
                let (k, _) = msvs_cluster::silhouette_scan_k(
                    features,
                    self.config.k_min.max(2),
                    k_cap,
                    self.config.seed,
                )?;
                self.cluster(features, k)?
            }
            GroupingStrategy::Elbow => {
                let k = msvs_cluster::elbow_k(
                    features,
                    self.config.k_min,
                    k_cap,
                    0.15,
                    self.config.seed,
                )?;
                self.cluster(features, k)?
            }
            GroupingStrategy::RandomK => {
                use rand::Rng as _;
                use rand::SeedableRng as _;
                let mut rng =
                    rand::rngs::StdRng::seed_from_u64(self.config.seed.wrapping_add(self.calls));
                let k = rng.gen_range(self.config.k_min..=k_cap);
                self.cluster(features, k)?
            }
        };
        self.prev_k = Some(grouping.k);
        self.prev_reward = grouping.reward;
        if let Some(t) = &self.telemetry {
            t.emit(msvs_telemetry::Event::GroupsFormed {
                k: grouping.k as u64,
                silhouette: grouping.silhouette,
                reward: grouping.reward,
            });
        }
        Ok(grouping)
    }

    /// Greedy (no-exploration) choice of `K` for the given features; does
    /// not learn. Useful for inspecting a trained agent.
    pub fn greedy_k(&mut self, features: &[Vec<f64>]) -> usize {
        let state = self.state_of(features);
        let k_cap = features.len().min(self.config.k_max);
        (self.config.k_min + self.agent.act_greedy(&state)).min(k_cap.max(self.config.k_min))
    }

    /// Pretrains the DDQN by repeatedly constructing groups over the given
    /// feature sets (cycling through them) for `episodes` iterations.
    ///
    /// # Errors
    /// Propagates construction errors.
    pub fn pretrain(&mut self, feature_sets: &[Vec<Vec<f64>>], episodes: usize) -> Result<()> {
        if feature_sets.is_empty() {
            return Err(Error::insufficient("at least one feature set"));
        }
        self.in_pretrain = true;
        let mut outcome = Ok(());
        for e in 0..episodes {
            let features = &feature_sets[e % feature_sets.len()];
            if let Err(err) = self.construct(features) {
                outcome = Err(err);
                break;
            }
        }
        self.in_pretrain = false;
        outcome
    }

    fn cluster(&mut self, features: &[Vec<f64>], k: usize) -> Result<Grouping> {
        let dim = features.first().map_or(0, Vec::len);
        let shape = (k, dim);
        // Warm-start from the last converged centroids of the same shape.
        // A shape change (different K or feature dim) misses the cache and
        // the fit seeds cold via k-means++, exactly as in classic mode.
        let init = if self.config.incremental {
            self.warm
                .get(&shape)
                .map(|w| msvs_cluster::Init::Warm(w.centroids.clone()))
                .unwrap_or_default()
        } else {
            msvs_cluster::Init::default()
        };
        let scope = self
            .telemetry
            .as_ref()
            .map(|t| t.stage_scope(msvs_telemetry::stages::KMEANS_FIT));
        let fit_start = self.telemetry.as_ref().map(|t| t.span_collector().now_us());
        let fit = KMeans::new(KMeansConfig {
            k,
            seed: self.config.seed ^ 0x5EED,
            threads: self.config.threads,
            init,
            ..Default::default()
        })
        .fit(features)?;
        // Materialise one assign/update child span per Lloyd round from
        // the timings the cluster crate returns (it has no telemetry
        // dependency). The round count is seed-deterministic, so the
        // span structure stays thread-count invariant.
        if let (Some(t), Some(scope), Some(start)) = (&self.telemetry, &scope, fit_start) {
            let collector = t.span_collector();
            let parent = Some(scope.span_id());
            let mut cursor = start;
            for (round, timing) in fit.rounds.iter().enumerate() {
                let attrs = msvs_telemetry::SpanAttrs {
                    batch: Some(round as u64),
                    ..Default::default()
                };
                collector.record_manual(
                    parent,
                    msvs_telemetry::stages::KMEANS_ASSIGN,
                    cursor,
                    timing.assign_us,
                    attrs,
                );
                cursor += timing.assign_us;
                collector.record_manual(
                    parent,
                    msvs_telemetry::stages::KMEANS_UPDATE,
                    cursor,
                    timing.update_us,
                    attrs,
                );
                cursor += timing.update_us;
            }
        }
        if let Some(t) = &self.telemetry {
            t.counter("kmeans_distance_evals_skipped", "all")
                .add(fit.distance_evals_skipped);
        }
        if self.config.incremental {
            if fit.warm_started {
                let seeds = &self.warm[&shape];
                self.last_displacement =
                    Some(centroid_displacement(&seeds.centroids, &fit.centroids));
                // Rounds saved = what the last cold fit of this shape
                // cost, minus what the warm fit actually took.
                let saved = seeds.cold_iterations.saturating_sub(fit.iterations);
                if let Some(t) = &self.telemetry {
                    t.counter("kmeans_warm_rounds_saved", "all")
                        .add(saved as u64);
                }
                let entry = self.warm.get_mut(&shape).expect("warm entry just read");
                entry.centroids = fit.centroids.clone();
            } else {
                // Cold fit: record the baseline round count and reset the
                // displacement signal — there is no previous-centroid
                // frame to measure movement against.
                self.last_displacement = None;
                self.warm.insert(
                    shape,
                    WarmState {
                        centroids: fit.centroids.clone(),
                        cold_iterations: fit.iterations,
                    },
                );
            }
        }
        // Silhouette is O(n²·d) — often heavier than the fit itself — so
        // it gets its own stage instead of inflating `kmeans_fit`.
        drop(scope);
        let sil_scope = self
            .telemetry
            .as_ref()
            .map(|t| t.stage_scope(msvs_telemetry::stages::SILHOUETTE));
        let sil = silhouette_sampled(
            features,
            &fit.assignments,
            self.config.silhouette_sample_cap,
        );
        drop(sil_scope);
        if self.config.incremental {
            self.silhouette_delta = self.last_silhouette.map(|prev| sil - prev);
            self.last_silhouette = Some(sil);
        }
        Ok(Grouping {
            k,
            assignments: fit.assignments,
            silhouette: sil,
            reward: self.reward_of(sil, k),
        })
    }
}

/// Scale-free centroid displacement: mean L2 movement per centroid,
/// normalised by the mean centroid norm of the previous frame (so the
/// signal is comparable across feature scalings). A zero-norm previous
/// frame falls back to the raw movement.
fn centroid_displacement(prev: &[Vec<f64>], curr: &[Vec<f64>]) -> f64 {
    let n = prev.len().min(curr.len());
    if n == 0 {
        return 0.0;
    }
    let l2 = |a: &[f64], b: &[f64]| -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    };
    let moved: f64 = prev.iter().zip(curr).map(|(a, b)| l2(a, b)).sum::<f64>() / n as f64;
    let scale: f64 = prev
        .iter()
        .map(|c| c.iter().map(|x| x * x).sum::<f64>().sqrt())
        .sum::<f64>()
        / n as f64;
    if scale > 0.0 {
        moved / scale
    } else {
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pair_from_flat_matches_the_row_major_enumeration() {
        for n in 2..=60usize {
            let mut t = 0;
            for i in 0..n {
                for j in (i + 1)..n {
                    assert_eq!(pair_from_flat(t, n), (i, j), "t={t} n={n}");
                    t += 1;
                }
            }
        }
    }

    /// The O(samples) jump sampling must reproduce the retired
    /// skip-counting loop bit for bit — same pairs, same order.
    #[test]
    fn state_sampling_matches_the_skip_counting_reference() {
        let features = blobs(3, 70, 9); // n = 210 > 2000 pairs → stride > 1
        let n = features.len();
        let stride = ((n * (n - 1) / 2) / 2000).max(1);
        assert!(stride > 1, "population large enough to engage sampling");
        let mut reference = Vec::new();
        let mut pair = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                if pair.is_multiple_of(stride) {
                    reference.push((i, j));
                }
                pair += 1;
            }
        }
        let total_pairs = n * (n - 1) / 2;
        let sampled: Vec<(usize, usize)> = (0..total_pairs)
            .step_by(stride)
            .map(|t| pair_from_flat(t, n))
            .collect();
        assert_eq!(sampled, reference);
    }

    /// `k` well-separated blobs in 4-D.
    fn blobs(k: usize, per: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        for c in 0..k {
            let center: Vec<f64> = (0..4)
                .map(|d| ((c * 7 + d * 3) % 10) as f64 * 2.0)
                .collect();
            for _ in 0..per {
                out.push(
                    center
                        .iter()
                        .map(|&x| x + msvs_types::stats::normal(&mut rng, 0.0, 0.15))
                        .collect(),
                );
            }
        }
        out
    }

    #[test]
    fn rejects_bad_config() {
        assert!(GroupingEngine::new(GroupingConfig {
            k_min: 0,
            ..Default::default()
        })
        .is_err());
        assert!(GroupingEngine::new(GroupingConfig {
            k_min: 5,
            k_max: 5,
            ..Default::default()
        })
        .is_err());
        assert!(GroupingEngine::new(GroupingConfig {
            group_cost: -1.0,
            ..Default::default()
        })
        .is_err());
        assert!(GroupingEngine::new(GroupingConfig {
            incremental: true,
            drift_dirty_threshold: 0.0,
            ..Default::default()
        })
        .is_err());
        assert!(GroupingEngine::new(GroupingConfig {
            incremental: true,
            drift_displacement_threshold: f64::NAN,
            ..Default::default()
        })
        .is_err());
    }

    #[test]
    fn fixed_k_clusters_exactly() {
        let mut engine = GroupingEngine::new(GroupingConfig {
            strategy: GroupingStrategy::FixedK(3),
            ..Default::default()
        })
        .unwrap();
        let g = engine.construct(&blobs(3, 20, 1)).unwrap();
        assert_eq!(g.k, 3);
        assert!(g.silhouette > 0.8, "separated blobs: sil {}", g.silhouette);
        let sizes: Vec<usize> = g.members().iter().map(|m| m.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 60);
    }

    #[test]
    fn state_is_fixed_size_and_normalised() {
        let engine = GroupingEngine::new(GroupingConfig::default()).unwrap();
        for n in [2, 10, 100] {
            let s = engine.state_of(&blobs(2, n, 2));
            assert_eq!(s.len(), HIST_BINS + 3);
            let hist_sum: f32 = s[..HIST_BINS].iter().sum();
            assert!((hist_sum - 1.0).abs() < 1e-5, "histogram sums to 1");
        }
        // Degenerate single-user population.
        let s = engine.state_of(&[vec![0.0; 4]]);
        assert_eq!(s.len(), HIST_BINS + 3);
    }

    #[test]
    fn ddqn_converges_to_good_k_on_stationary_population() {
        let features = blobs(4, 15, 3);
        let mut engine = GroupingEngine::new(GroupingConfig {
            k_min: 2,
            k_max: 8,
            group_cost: 0.1,
            epsilon: EpsilonSchedule::linear(1.0, 0.02, 250).unwrap(),
            seed: 7,
            ..Default::default()
        })
        .unwrap();
        engine
            .pretrain(std::slice::from_ref(&features), 400)
            .unwrap();
        let k = engine.greedy_k(&features);
        // True structure is 4 blobs; accept 3–5 (reward is cost-penalised).
        assert!(
            (3..=5).contains(&k),
            "agent should land near k=4, chose {k}"
        );
    }

    #[test]
    fn ddqn_reward_beats_random_after_training() {
        let features = blobs(3, 20, 4);
        let mut ddqn = GroupingEngine::new(GroupingConfig {
            epsilon: EpsilonSchedule::linear(1.0, 0.02, 250).unwrap(),
            seed: 9,
            ..Default::default()
        })
        .unwrap();
        ddqn.pretrain(std::slice::from_ref(&features), 350).unwrap();
        let mut random = GroupingEngine::new(GroupingConfig {
            strategy: GroupingStrategy::RandomK,
            seed: 9,
            ..Default::default()
        })
        .unwrap();
        let ddqn_reward: f64 = (0..20)
            .map(|_| ddqn.construct(&features).unwrap().reward)
            .sum::<f64>()
            / 20.0;
        let random_reward: f64 = (0..20)
            .map(|_| random.construct(&features).unwrap().reward)
            .sum::<f64>()
            / 20.0;
        assert!(
            ddqn_reward > random_reward,
            "trained DDQN {ddqn_reward:.3} should beat random {random_reward:.3}"
        );
    }

    #[test]
    fn oracle_strategies_find_true_k() {
        let features = blobs(4, 20, 5);
        for strategy in [GroupingStrategy::SilhouetteScan, GroupingStrategy::Elbow] {
            let mut engine = GroupingEngine::new(GroupingConfig {
                strategy,
                ..Default::default()
            })
            .unwrap();
            let g = engine.construct(&features).unwrap();
            assert!(
                (3..=5).contains(&g.k),
                "{strategy:?} chose k={} for 4 blobs",
                g.k
            );
        }
    }

    #[test]
    fn too_few_users_is_an_error() {
        let mut engine = GroupingEngine::new(GroupingConfig::default()).unwrap();
        assert!(engine.construct(&blobs(1, 1, 6)).is_err());
    }

    #[test]
    fn incremental_warm_start_reproduces_the_cold_grouping() {
        let features = blobs(3, 20, 11);
        let mut cold = GroupingEngine::new(GroupingConfig {
            strategy: GroupingStrategy::FixedK(3),
            ..Default::default()
        })
        .unwrap();
        let baseline = cold.construct(&features).unwrap();
        let mut warm = GroupingEngine::new(GroupingConfig {
            strategy: GroupingStrategy::FixedK(3),
            incremental: true,
            ..Default::default()
        })
        .unwrap();
        let t = msvs_telemetry::Telemetry::new();
        warm.attach_telemetry(t.clone());
        // First incremental fit has no cached centroids: seeds cold and
        // reproduces the classic grouping bit for bit.
        let first = warm.construct(&features).unwrap();
        assert_eq!(first, baseline);
        // Second fit on unchanged points warm-starts from the converged
        // centroids: same assignments, fewer Lloyd rounds.
        let second = warm.construct(&features).unwrap();
        assert_eq!(second.assignments, baseline.assignments);
        assert!(
            t.counter("kmeans_warm_rounds_saved", "all").get() >= 1,
            "warm start should save at least one Lloyd round"
        );
    }

    #[test]
    fn incremental_drift_gate_reuses_previous_k_until_drift() {
        let features = blobs(4, 15, 13);
        let mut engine = GroupingEngine::new(GroupingConfig {
            incremental: true,
            seed: 7,
            ..Default::default()
        })
        .unwrap();
        let t = msvs_telemetry::Telemetry::new();
        engine.attach_telemetry(t.clone());
        engine.set_dirty_fraction(0.0);
        let skipped = || t.counter("ddqn_selections_skipped_total", "all").get();
        // The gate needs lagged signals: a repeat fit of the same shape
        // (for displacement) plus a silhouette delta. Construct until it
        // engages; exploration can change K, which re-cools the cache.
        let mut prev = engine.construct(&features).unwrap();
        let mut gated = None;
        for _ in 0..12 {
            let g = engine.construct(&features).unwrap();
            if skipped() > 0 {
                gated = Some((prev.k, g.k));
                break;
            }
            prev = g;
        }
        let (prev_k, gated_k) = gated.expect("gate engages on a stationary population");
        assert_eq!(gated_k, prev_k, "gated interval reuses the previous K");
        // The quiet stretch never recommended a refresh.
        assert!(
            !engine.take_refresh_hint(),
            "gated intervals must not schedule a full re-encode"
        );
        // A churn burst re-opens the gate: re-selection runs again, and the
        // detector tells the encode layer to bound staleness with a full
        // refresh. The hint resets on read.
        engine.set_dirty_fraction(1.0);
        let before = skipped();
        engine.construct(&features).unwrap();
        assert_eq!(skipped(), before, "high dirty fraction forces re-selection");
        assert!(
            engine.take_refresh_hint(),
            "detected drift must recommend a full re-encode"
        );
        assert!(!engine.take_refresh_hint(), "hint is consumed on read");
    }

    #[test]
    fn pretrain_bypasses_the_drift_gate() {
        let features = blobs(3, 15, 17);
        let mut engine = GroupingEngine::new(GroupingConfig {
            incremental: true,
            seed: 3,
            ..Default::default()
        })
        .unwrap();
        let t = msvs_telemetry::Telemetry::new();
        engine.attach_telemetry(t.clone());
        engine.set_dirty_fraction(0.0);
        engine
            .pretrain(std::slice::from_ref(&features), 30)
            .unwrap();
        assert_eq!(
            t.counter("ddqn_selections_skipped_total", "all").get(),
            0,
            "every pretrain episode must reach the agent"
        );
    }

    #[test]
    fn k_is_capped_by_population() {
        let mut engine = GroupingEngine::new(GroupingConfig {
            strategy: GroupingStrategy::FixedK(12),
            ..Default::default()
        })
        .unwrap();
        let g = engine.construct(&blobs(1, 5, 7)).unwrap();
        assert!(g.k <= 5);
    }
}

#[cfg(test)]
mod per_grouping_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blobs(k: usize, per: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        for c in 0..k {
            let center: Vec<f64> = (0..4)
                .map(|d| ((c * 7 + d * 3) % 10) as f64 * 2.0)
                .collect();
            for _ in 0..per {
                out.push(
                    center
                        .iter()
                        .map(|&x| x + msvs_types::stats::normal(&mut rng, 0.0, 0.15))
                        .collect(),
                );
            }
        }
        out
    }

    #[test]
    fn prioritized_replay_engine_converges_too() {
        let features = blobs(4, 15, 31);
        let mut engine = GroupingEngine::new(GroupingConfig {
            k_min: 2,
            k_max: 8,
            prioritized_replay: true,
            epsilon: EpsilonSchedule::linear(1.0, 0.02, 250).unwrap(),
            seed: 7,
            ..Default::default()
        })
        .unwrap();
        engine
            .pretrain(std::slice::from_ref(&features), 400)
            .unwrap();
        let k = engine.greedy_k(&features);
        assert!(
            (3..=5).contains(&k),
            "PER agent should land near k=4, chose {k}"
        );
    }
}

//! Multicast group construction: DDQN-selected `K`, K-means++ clustering.
//!
//! The paper's two-step method: "a double deep Q-network (DDQN) is first
//! adopted to determine the grouping number by mining users' similarities.
//! Then, the K-means++ algorithm is utilized to perform fast user
//! clustering based on the determined grouping number."
//!
//! The DDQN sees a fixed-size summary of the embedded user population (a
//! pairwise-distance histogram plus population size and the previous
//! decision) and picks `K`. The reward trades clustering quality
//! (silhouette) against the signalling/channel overhead of more groups.

use msvs_cluster::{silhouette_sampled, KMeans, KMeansConfig};
use msvs_rl::{DdqnAgent, DdqnConfig, EpsilonSchedule, Transition};
use msvs_types::{Error, Result};

/// Number of histogram bins in the DDQN state.
const HIST_BINS: usize = 16;

/// Population-size normaliser for the state (users / this, clamped to 1).
const POP_NORM: f64 = 400.0;

/// Maps a flat index `t` into the `i < j` pair sequence (row-major: (0,1),
/// (0,2), …, (0,n-1), (1,2), …) back to `(i, j)`, in O(1): row `i` starts
/// at flat index `i·n − i·(i+1)/2`, so `i` comes from the quadratic root
/// (float guess, then exact integer adjustment) and `j` from the offset
/// within the row.
///
/// # Panics
/// Debug-asserts `t` addresses a valid pair (`t < n·(n−1)/2`).
fn pair_from_flat(t: usize, n: usize) -> (usize, usize) {
    debug_assert!(t < n * (n - 1) / 2, "flat index {t} out of range for n={n}");
    let row_start = |i: usize| i * n - i * (i + 1) / 2;
    let nf = n as f64 - 0.5;
    let guess = (nf - (nf * nf - 2.0 * t as f64).max(0.0).sqrt()).floor();
    let mut i = (guess.max(0.0) as usize).min(n - 2);
    while i + 2 < n && row_start(i + 1) <= t {
        i += 1;
    }
    while i > 0 && row_start(i) > t {
        i -= 1;
    }
    (i, i + 1 + (t - row_start(i)))
}

/// How the group count is chosen (the DDQN scheme or a baseline).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GroupingStrategy {
    /// The paper's scheme: DDQN picks `K`, learning online.
    Ddqn,
    /// Always use a fixed `K`.
    FixedK(usize),
    /// Exhaustive silhouette scan over the whole `K` range (slow oracle).
    SilhouetteScan,
    /// Elbow rule on inertia.
    Elbow,
    /// Uniform-random `K` in range (sanity floor).
    RandomK,
}

/// Configuration for the [`GroupingEngine`].
#[derive(Debug, Clone)]
pub struct GroupingConfig {
    /// Smallest admissible group count.
    pub k_min: usize,
    /// Largest admissible group count.
    pub k_max: usize,
    /// Reward penalty per extra group beyond `k_min`, spread over the
    /// range (models per-group multicast channel/signalling overhead).
    pub group_cost: f64,
    /// Strategy for picking `K`.
    pub strategy: GroupingStrategy,
    /// DDQN hidden widths.
    pub hidden: Vec<usize>,
    /// DDQN learning rate.
    pub learning_rate: f32,
    /// DDQN exploration schedule.
    pub epsilon: EpsilonSchedule,
    /// Use prioritized experience replay in the DDQN (grouping rewards are
    /// sparse and noisy; PER replays the informative transitions more).
    pub prioritized_replay: bool,
    /// Use a dueling value/advantage Q-network head (adjacent group counts
    /// share most of their value, which the dueling decomposition models
    /// directly).
    pub dueling: bool,
    /// RNG seed (agent weights, K-means seeding, random baseline).
    pub seed: u64,
    /// Worker threads for the K-means assignment step (`1` = serial,
    /// `0` = all available cores). Assignment results are identical at any
    /// thread count.
    pub threads: usize,
    /// Silhouette evaluation budget: populations larger than this score an
    /// evenly strided subsample (deterministic, no RNG) instead of the full
    /// O(n²) scan. `0` disables sampling. Populations at or below the cap
    /// — every committed experiment and test — are bit-identical either
    /// way; the cap only makes 100k-user benches tractable.
    pub silhouette_sample_cap: usize,
}

impl Default for GroupingConfig {
    fn default() -> Self {
        Self {
            k_min: 2,
            k_max: 12,
            group_cost: 0.15,
            strategy: GroupingStrategy::Ddqn,
            hidden: vec![64, 32],
            learning_rate: 1e-3,
            epsilon: EpsilonSchedule::linear(0.6, 0.05, 400).expect("static schedule is valid"),
            prioritized_replay: false,
            dueling: false,
            seed: 0,
            threads: 1,
            silhouette_sample_cap: 4096,
        }
    }
}

impl GroupingConfig {
    fn validate(&self) -> Result<()> {
        if self.k_min < 1 || self.k_max < self.k_min {
            return Err(Error::invalid_config(
                "k range",
                format!(
                    "need 1 <= k_min <= k_max, got {}..={}",
                    self.k_min, self.k_max
                ),
            ));
        }
        if self.k_max == self.k_min {
            return Err(Error::invalid_config(
                "k range",
                "need at least two candidate group counts",
            ));
        }
        if self.group_cost < 0.0 {
            return Err(Error::invalid_config("group_cost", "must be non-negative"));
        }
        Ok(())
    }
}

/// Result of one group construction.
#[derive(Debug, Clone, PartialEq)]
pub struct Grouping {
    /// Chosen group count.
    pub k: usize,
    /// Group index per user (aligned with the input feature order).
    pub assignments: Vec<usize>,
    /// Silhouette score of the clustering.
    pub silhouette: f64,
    /// Reward fed to the DDQN (quality minus group cost).
    pub reward: f64,
}

impl Grouping {
    /// Members of each group, as indices into the clustered feature set.
    pub fn members(&self) -> Vec<Vec<usize>> {
        let mut m = vec![Vec::new(); self.k];
        for (i, &a) in self.assignments.iter().enumerate() {
            m[a].push(i);
        }
        m
    }
}

/// The learning group constructor.
pub struct GroupingEngine {
    config: GroupingConfig,
    agent: DdqnAgent,
    prev_k: Option<usize>,
    prev_reward: f64,
    calls: u64,
    telemetry: Option<msvs_telemetry::Telemetry>,
}

impl std::fmt::Debug for GroupingEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupingEngine")
            .field("strategy", &self.config.strategy)
            .field("k_range", &(self.config.k_min, self.config.k_max))
            .field("calls", &self.calls)
            .finish()
    }
}

impl GroupingEngine {
    /// Builds an engine.
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] for an invalid `K` range or DDQN
    /// hyperparameters.
    pub fn new(config: GroupingConfig) -> Result<Self> {
        config.validate()?;
        let action_count = config.k_max - config.k_min + 1;
        let agent = DdqnAgent::new(DdqnConfig {
            state_dim: HIST_BINS + 3,
            action_count,
            hidden: config.hidden.clone(),
            learning_rate: config.learning_rate,
            gamma: 0.0, // one-step decisions: pure contextual bandit
            batch_size: 32,
            replay_capacity: 4096,
            min_replay: 64,
            target_sync_every: 50,
            epsilon: config.epsilon,
            per: config.prioritized_replay.then(msvs_rl::PerConfig::default),
            dueling: config.dueling,
            seed: config.seed,
        })?;
        Ok(Self {
            config,
            agent,
            prev_k: None,
            prev_reward: 0.0,
            calls: 0,
            telemetry: None,
        })
    }

    /// Wires the engine (and its DDQN agent) into an observability
    /// pipeline: `K` selection and clustering are timed, and each
    /// construction emits a [`msvs_telemetry::Event::GroupsFormed`] event.
    pub fn attach_telemetry(&mut self, telemetry: msvs_telemetry::Telemetry) {
        self.agent.attach_telemetry(telemetry.clone());
        self.telemetry = Some(telemetry);
    }

    /// The configuration in use.
    pub fn config(&self) -> &GroupingConfig {
        &self.config
    }

    /// Number of constructions performed.
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// DDQN state: normalised pairwise-distance histogram + population
    /// size + previous `K` + previous reward. Pair sampling is
    /// O(samples), not O(n²): see [`pair_from_flat`].
    pub fn state_of(&self, features: &[Vec<f64>]) -> Vec<f32> {
        let mut state = vec![0f32; HIST_BINS + 3];
        let n = features.len();
        if n >= 2 {
            // Sample up to ~2000 pairs to bound cost on large populations.
            // Jump straight to the sampled flat pair indices — walking the
            // full i<j loop to skip-count them is itself O(n²) and was the
            // wall-time ceiling at 100k users. The indices (and therefore
            // the state bits) are identical to the skip-counting loop's.
            let mut dists = Vec::new();
            let total_pairs = n * (n - 1) / 2;
            let stride = (total_pairs / 2000).max(1);
            let mut t = 0usize;
            while t < total_pairs {
                let (i, j) = pair_from_flat(t, n);
                let d: f64 = features[i]
                    .iter()
                    .zip(&features[j])
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                dists.push(d);
                t += stride;
            }
            let max = dists.iter().copied().fold(f64::MIN_POSITIVE, f64::max);
            for &d in &dists {
                let bin = ((d / max) * (HIST_BINS as f64 - 1e-9)) as usize;
                state[bin.min(HIST_BINS - 1)] += 1.0;
            }
            let total: f32 = state[..HIST_BINS].iter().sum();
            if total > 0.0 {
                for s in &mut state[..HIST_BINS] {
                    *s /= total;
                }
            }
        }
        state[HIST_BINS] = ((n as f64) / POP_NORM).min(1.0) as f32;
        state[HIST_BINS + 1] = self
            .prev_k
            .map(|k| {
                (k - self.config.k_min) as f32 / (self.config.k_max - self.config.k_min) as f32
            })
            .unwrap_or(0.5);
        state[HIST_BINS + 2] = self.prev_reward as f32;
        state
    }

    fn reward_of(&self, sil: f64, k: usize) -> f64 {
        let span = (self.config.k_max - self.config.k_min) as f64;
        sil - self.config.group_cost * (k - self.config.k_min) as f64 / span
    }

    /// Constructs multicast groups for the given clustering features.
    ///
    /// With [`GroupingStrategy::Ddqn`] the agent picks `K`, the clustering
    /// runs, and the observed reward is fed back as a one-step transition
    /// (learning continues across reservation intervals).
    ///
    /// # Errors
    /// Returns [`Error::InsufficientData`] when there are fewer users than
    /// `k_min`, and propagates K-means errors.
    pub fn construct(&mut self, features: &[Vec<f64>]) -> Result<Grouping> {
        if features.len() < self.config.k_min {
            return Err(Error::insufficient(format!(
                "need at least k_min={} users, got {}",
                self.config.k_min,
                features.len()
            )));
        }
        self.calls += 1;
        let k_cap = features.len().min(self.config.k_max);
        let grouping = match self.config.strategy {
            GroupingStrategy::Ddqn => {
                let state = self.state_of(features);
                let select_scope = self
                    .telemetry
                    .as_ref()
                    .map(|t| t.stage_scope(msvs_telemetry::stages::DDQN_SELECT_K));
                let action = self.agent.act(&state);
                drop(select_scope);
                let k = (self.config.k_min + action).min(k_cap);
                let g = self.cluster(features, k)?;
                self.agent.observe(Transition {
                    state,
                    action,
                    reward: g.reward as f32,
                    next_state: vec![0.0; HIST_BINS + 3],
                    done: true,
                });
                g
            }
            GroupingStrategy::FixedK(k) => {
                let k = k.clamp(self.config.k_min, k_cap);
                self.cluster(features, k)?
            }
            GroupingStrategy::SilhouetteScan => {
                let (k, _) = msvs_cluster::silhouette_scan_k(
                    features,
                    self.config.k_min.max(2),
                    k_cap,
                    self.config.seed,
                )?;
                self.cluster(features, k)?
            }
            GroupingStrategy::Elbow => {
                let k = msvs_cluster::elbow_k(
                    features,
                    self.config.k_min,
                    k_cap,
                    0.15,
                    self.config.seed,
                )?;
                self.cluster(features, k)?
            }
            GroupingStrategy::RandomK => {
                use rand::Rng as _;
                use rand::SeedableRng as _;
                let mut rng =
                    rand::rngs::StdRng::seed_from_u64(self.config.seed.wrapping_add(self.calls));
                let k = rng.gen_range(self.config.k_min..=k_cap);
                self.cluster(features, k)?
            }
        };
        self.prev_k = Some(grouping.k);
        self.prev_reward = grouping.reward;
        if let Some(t) = &self.telemetry {
            t.emit(msvs_telemetry::Event::GroupsFormed {
                k: grouping.k as u64,
                silhouette: grouping.silhouette,
                reward: grouping.reward,
            });
        }
        Ok(grouping)
    }

    /// Greedy (no-exploration) choice of `K` for the given features; does
    /// not learn. Useful for inspecting a trained agent.
    pub fn greedy_k(&mut self, features: &[Vec<f64>]) -> usize {
        let state = self.state_of(features);
        let k_cap = features.len().min(self.config.k_max);
        (self.config.k_min + self.agent.act_greedy(&state)).min(k_cap.max(self.config.k_min))
    }

    /// Pretrains the DDQN by repeatedly constructing groups over the given
    /// feature sets (cycling through them) for `episodes` iterations.
    ///
    /// # Errors
    /// Propagates construction errors.
    pub fn pretrain(&mut self, feature_sets: &[Vec<Vec<f64>>], episodes: usize) -> Result<()> {
        if feature_sets.is_empty() {
            return Err(Error::insufficient("at least one feature set"));
        }
        for e in 0..episodes {
            let features = &feature_sets[e % feature_sets.len()];
            self.construct(features)?;
        }
        Ok(())
    }

    fn cluster(&self, features: &[Vec<f64>], k: usize) -> Result<Grouping> {
        let scope = self
            .telemetry
            .as_ref()
            .map(|t| t.stage_scope(msvs_telemetry::stages::KMEANS_FIT));
        let fit_start = self.telemetry.as_ref().map(|t| t.span_collector().now_us());
        let fit = KMeans::new(KMeansConfig {
            k,
            seed: self.config.seed ^ 0x5EED,
            threads: self.config.threads,
            ..Default::default()
        })
        .fit(features)?;
        // Materialise one assign/update child span per Lloyd round from
        // the timings the cluster crate returns (it has no telemetry
        // dependency). The round count is seed-deterministic, so the
        // span structure stays thread-count invariant.
        if let (Some(t), Some(scope), Some(start)) = (&self.telemetry, &scope, fit_start) {
            let collector = t.span_collector();
            let parent = Some(scope.span_id());
            let mut cursor = start;
            for (round, timing) in fit.rounds.iter().enumerate() {
                let attrs = msvs_telemetry::SpanAttrs {
                    batch: Some(round as u64),
                    ..Default::default()
                };
                collector.record_manual(
                    parent,
                    msvs_telemetry::stages::KMEANS_ASSIGN,
                    cursor,
                    timing.assign_us,
                    attrs,
                );
                cursor += timing.assign_us;
                collector.record_manual(
                    parent,
                    msvs_telemetry::stages::KMEANS_UPDATE,
                    cursor,
                    timing.update_us,
                    attrs,
                );
                cursor += timing.update_us;
            }
        }
        if let Some(t) = &self.telemetry {
            t.counter("kmeans_distance_evals_skipped", "all")
                .add(fit.distance_evals_skipped);
        }
        // Silhouette is O(n²·d) — often heavier than the fit itself — so
        // it gets its own stage instead of inflating `kmeans_fit`.
        drop(scope);
        let sil_scope = self
            .telemetry
            .as_ref()
            .map(|t| t.stage_scope(msvs_telemetry::stages::SILHOUETTE));
        let sil = silhouette_sampled(
            features,
            &fit.assignments,
            self.config.silhouette_sample_cap,
        );
        drop(sil_scope);
        Ok(Grouping {
            k,
            assignments: fit.assignments,
            silhouette: sil,
            reward: self.reward_of(sil, k),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pair_from_flat_matches_the_row_major_enumeration() {
        for n in 2..=60usize {
            let mut t = 0;
            for i in 0..n {
                for j in (i + 1)..n {
                    assert_eq!(pair_from_flat(t, n), (i, j), "t={t} n={n}");
                    t += 1;
                }
            }
        }
    }

    /// The O(samples) jump sampling must reproduce the retired
    /// skip-counting loop bit for bit — same pairs, same order.
    #[test]
    fn state_sampling_matches_the_skip_counting_reference() {
        let features = blobs(3, 70, 9); // n = 210 > 2000 pairs → stride > 1
        let n = features.len();
        let stride = ((n * (n - 1) / 2) / 2000).max(1);
        assert!(stride > 1, "population large enough to engage sampling");
        let mut reference = Vec::new();
        let mut pair = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                if pair.is_multiple_of(stride) {
                    reference.push((i, j));
                }
                pair += 1;
            }
        }
        let total_pairs = n * (n - 1) / 2;
        let sampled: Vec<(usize, usize)> = (0..total_pairs)
            .step_by(stride)
            .map(|t| pair_from_flat(t, n))
            .collect();
        assert_eq!(sampled, reference);
    }

    /// `k` well-separated blobs in 4-D.
    fn blobs(k: usize, per: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        for c in 0..k {
            let center: Vec<f64> = (0..4)
                .map(|d| ((c * 7 + d * 3) % 10) as f64 * 2.0)
                .collect();
            for _ in 0..per {
                out.push(
                    center
                        .iter()
                        .map(|&x| x + msvs_types::stats::normal(&mut rng, 0.0, 0.15))
                        .collect(),
                );
            }
        }
        out
    }

    #[test]
    fn rejects_bad_config() {
        assert!(GroupingEngine::new(GroupingConfig {
            k_min: 0,
            ..Default::default()
        })
        .is_err());
        assert!(GroupingEngine::new(GroupingConfig {
            k_min: 5,
            k_max: 5,
            ..Default::default()
        })
        .is_err());
        assert!(GroupingEngine::new(GroupingConfig {
            group_cost: -1.0,
            ..Default::default()
        })
        .is_err());
    }

    #[test]
    fn fixed_k_clusters_exactly() {
        let mut engine = GroupingEngine::new(GroupingConfig {
            strategy: GroupingStrategy::FixedK(3),
            ..Default::default()
        })
        .unwrap();
        let g = engine.construct(&blobs(3, 20, 1)).unwrap();
        assert_eq!(g.k, 3);
        assert!(g.silhouette > 0.8, "separated blobs: sil {}", g.silhouette);
        let sizes: Vec<usize> = g.members().iter().map(|m| m.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 60);
    }

    #[test]
    fn state_is_fixed_size_and_normalised() {
        let engine = GroupingEngine::new(GroupingConfig::default()).unwrap();
        for n in [2, 10, 100] {
            let s = engine.state_of(&blobs(2, n, 2));
            assert_eq!(s.len(), HIST_BINS + 3);
            let hist_sum: f32 = s[..HIST_BINS].iter().sum();
            assert!((hist_sum - 1.0).abs() < 1e-5, "histogram sums to 1");
        }
        // Degenerate single-user population.
        let s = engine.state_of(&[vec![0.0; 4]]);
        assert_eq!(s.len(), HIST_BINS + 3);
    }

    #[test]
    fn ddqn_converges_to_good_k_on_stationary_population() {
        let features = blobs(4, 15, 3);
        let mut engine = GroupingEngine::new(GroupingConfig {
            k_min: 2,
            k_max: 8,
            group_cost: 0.1,
            epsilon: EpsilonSchedule::linear(1.0, 0.02, 250).unwrap(),
            seed: 7,
            ..Default::default()
        })
        .unwrap();
        engine
            .pretrain(std::slice::from_ref(&features), 400)
            .unwrap();
        let k = engine.greedy_k(&features);
        // True structure is 4 blobs; accept 3–5 (reward is cost-penalised).
        assert!(
            (3..=5).contains(&k),
            "agent should land near k=4, chose {k}"
        );
    }

    #[test]
    fn ddqn_reward_beats_random_after_training() {
        let features = blobs(3, 20, 4);
        let mut ddqn = GroupingEngine::new(GroupingConfig {
            epsilon: EpsilonSchedule::linear(1.0, 0.02, 250).unwrap(),
            seed: 9,
            ..Default::default()
        })
        .unwrap();
        ddqn.pretrain(std::slice::from_ref(&features), 350).unwrap();
        let mut random = GroupingEngine::new(GroupingConfig {
            strategy: GroupingStrategy::RandomK,
            seed: 9,
            ..Default::default()
        })
        .unwrap();
        let ddqn_reward: f64 = (0..20)
            .map(|_| ddqn.construct(&features).unwrap().reward)
            .sum::<f64>()
            / 20.0;
        let random_reward: f64 = (0..20)
            .map(|_| random.construct(&features).unwrap().reward)
            .sum::<f64>()
            / 20.0;
        assert!(
            ddqn_reward > random_reward,
            "trained DDQN {ddqn_reward:.3} should beat random {random_reward:.3}"
        );
    }

    #[test]
    fn oracle_strategies_find_true_k() {
        let features = blobs(4, 20, 5);
        for strategy in [GroupingStrategy::SilhouetteScan, GroupingStrategy::Elbow] {
            let mut engine = GroupingEngine::new(GroupingConfig {
                strategy,
                ..Default::default()
            })
            .unwrap();
            let g = engine.construct(&features).unwrap();
            assert!(
                (3..=5).contains(&g.k),
                "{strategy:?} chose k={} for 4 blobs",
                g.k
            );
        }
    }

    #[test]
    fn too_few_users_is_an_error() {
        let mut engine = GroupingEngine::new(GroupingConfig::default()).unwrap();
        assert!(engine.construct(&blobs(1, 1, 6)).is_err());
    }

    #[test]
    fn k_is_capped_by_population() {
        let mut engine = GroupingEngine::new(GroupingConfig {
            strategy: GroupingStrategy::FixedK(12),
            ..Default::default()
        })
        .unwrap();
        let g = engine.construct(&blobs(1, 5, 7)).unwrap();
        assert!(g.k <= 5);
    }
}

#[cfg(test)]
mod per_grouping_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blobs(k: usize, per: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        for c in 0..k {
            let center: Vec<f64> = (0..4)
                .map(|d| ((c * 7 + d * 3) % 10) as f64 * 2.0)
                .collect();
            for _ in 0..per {
                out.push(
                    center
                        .iter()
                        .map(|&x| x + msvs_types::stats::normal(&mut rng, 0.0, 0.15))
                        .collect(),
                );
            }
        }
        out
    }

    #[test]
    fn prioritized_replay_engine_converges_too() {
        let features = blobs(4, 15, 31);
        let mut engine = GroupingEngine::new(GroupingConfig {
            k_min: 2,
            k_max: 8,
            prioritized_replay: true,
            epsilon: EpsilonSchedule::linear(1.0, 0.02, 250).unwrap(),
            seed: 7,
            ..Default::default()
        })
        .unwrap();
        engine
            .pretrain(std::slice::from_ref(&features), 400)
            .unwrap();
        let k = engine.greedy_k(&features);
        assert!(
            (3..=5).contains(&k),
            "PER agent should land near k=4, chose {k}"
        );
    }
}

//! The 1D-CNN time-series compressor.
//!
//! The paper: "we first utilize a one-dimensional convolution neural
//! network (1D-CNN) to compress the time-series UDTs' data." We realise
//! this as a convolutional autoencoder: the encoder (two strided `Conv1d`
//! layers plus a dense head) maps a `[channels, window]` twin history to a
//! small embedding; a dense decoder reconstructs the input, providing the
//! training signal without labels.

use std::cell::RefCell;

use msvs_nn::{
    mse_loss, Adam, BackendKind, Conv1d, Dense, Flatten, Optimizer, Relu, Scratch, Sequential,
    Tensor,
};
use msvs_par::{ParStats, Pool};
use msvs_telemetry::{stages, SpanAttrs, SpanCollector};
use msvs_types::{Error, Result};
use msvs_udt::FeatureWindow;

use crate::features::{embedding_features, windows_to_tensor};

/// Hyperparameters of the [`CnnCompressor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressorConfig {
    /// Input window length (time steps per attribute).
    pub window: usize,
    /// Number of input channels (twin attributes).
    pub channels: usize,
    /// Embedding dimensionality.
    pub embed_dim: usize,
    /// Conv filters per layer.
    pub filters: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Training epochs over the batch per `train` call.
    pub epochs: usize,
    /// Weight applied to the preference vector when forming clustering
    /// features (balances dynamics vs taste distance scales).
    pub preference_weight: f64,
    /// RNG seed for weight initialisation.
    pub seed: u64,
    /// Compute backend for the frozen encode path. Training always runs
    /// the exact scalar kernels regardless of this setting — only
    /// [`CnnCompressor::encode`] (and the paths through it) switch, so
    /// `int8` quantizes nothing the optimiser reads.
    pub backend: BackendKind,
}

impl Default for CompressorConfig {
    fn default() -> Self {
        Self {
            window: 32,
            channels: 4,
            embed_dim: 8,
            filters: 8,
            learning_rate: 2e-3,
            epochs: 60,
            preference_weight: 2.0,
            seed: 0,
            backend: BackendKind::Scalar,
        }
    }
}

impl CompressorConfig {
    fn validate(&self) -> Result<()> {
        if self.window < 8 {
            return Err(Error::invalid_config("window", "must be at least 8"));
        }
        if self.channels == 0 || self.embed_dim == 0 || self.filters == 0 {
            return Err(Error::invalid_config(
                "compressor dims",
                "channels, embed_dim and filters must be positive",
            ));
        }
        if self.learning_rate <= 0.0 {
            return Err(Error::invalid_config("learning_rate", "must be positive"));
        }
        if self.epochs == 0 {
            return Err(Error::invalid_config("epochs", "must be positive"));
        }
        if self.preference_weight < 0.0 {
            return Err(Error::invalid_config(
                "preference_weight",
                "must be non-negative",
            ));
        }
        Ok(())
    }
}

/// A trainable 1D-CNN autoencoder that compresses twin windows to
/// embeddings.
///
/// Lifecycle: [`train`](Self::train) while unfrozen, then
/// [`freeze`](Self::freeze) to enter the inference phase. Encoding takes
/// `&self`, so a frozen compressor can be shared across worker threads;
/// [`thaw`](Self::thaw) re-opens training (e.g. after
/// `invalidate_compressor`).
pub struct CnnCompressor {
    config: CompressorConfig,
    encoder: Sequential,
    decoder: Sequential,
    enc_opt: Adam,
    dec_opt: Adam,
    trained_epochs: usize,
    frozen: bool,
}

impl std::fmt::Debug for CnnCompressor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CnnCompressor")
            .field("window", &self.config.window)
            .field("embed_dim", &self.config.embed_dim)
            .field("trained_epochs", &self.trained_epochs)
            .field("frozen", &self.frozen)
            .finish()
    }
}

impl CnnCompressor {
    /// Builds an untrained compressor.
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] for out-of-range hyperparameters.
    pub fn new(config: CompressorConfig) -> Result<Self> {
        config.validate()?;
        let conv1 = Conv1d::new(config.channels, config.filters, 3, 2, config.seed ^ 0xA1);
        let l1 = conv1
            .out_len(config.window)
            .ok_or_else(|| Error::invalid_config("window", "too short for conv stack"))?;
        let conv2 = Conv1d::new(config.filters, config.filters, 3, 2, config.seed ^ 0xA2);
        let l2 = conv2
            .out_len(l1)
            .ok_or_else(|| Error::invalid_config("window", "too short for conv stack"))?;
        let flat = config.filters * l2;
        let encoder = Sequential::new(vec![
            Box::new(conv1),
            Box::new(Relu::new()),
            Box::new(conv2),
            Box::new(Relu::new()),
            Box::new(Flatten::new()),
            Box::new(Dense::new(flat, config.embed_dim, config.seed ^ 0xA3)),
        ]);
        let out = config.channels * config.window;
        let decoder = Sequential::new(vec![
            Box::new(Dense::new(config.embed_dim, flat, config.seed ^ 0xA4)),
            Box::new(Relu::new()),
            Box::new(Dense::new(flat, out, config.seed ^ 0xA5)),
        ]);
        Ok(Self {
            enc_opt: Adam::new(config.learning_rate),
            dec_opt: Adam::new(config.learning_rate),
            encoder,
            decoder,
            config,
            trained_epochs: 0,
            frozen: false,
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &CompressorConfig {
        &self.config
    }

    /// Total epochs trained so far.
    pub fn trained_epochs(&self) -> usize {
        self.trained_epochs
    }

    /// Marks the compressor read-only: subsequent [`train`](Self::train)
    /// calls fail until [`thaw`](Self::thaw). Encoding is unaffected.
    pub fn freeze(&mut self) {
        self.frozen = true;
    }

    /// Re-opens training after a [`freeze`](Self::freeze).
    pub fn thaw(&mut self) {
        self.frozen = false;
    }

    /// Whether the compressor is in the frozen (inference-only) phase.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Trains the autoencoder on a batch of windows for
    /// `config.epochs` epochs; returns the reconstruction loss per epoch.
    ///
    /// # Errors
    /// - [`Error::InvalidConfig`] if the compressor is frozen;
    /// - shape errors from malformed windows.
    pub fn train(&mut self, windows: &[FeatureWindow]) -> Result<Vec<f32>> {
        if self.frozen {
            return Err(Error::invalid_config(
                "compressor",
                "cannot train a frozen compressor; call thaw() first",
            ));
        }
        let x = windows_to_tensor(windows)?;
        self.check_input(&x)?;
        let batch = x.shape()[0];
        let flat_target = x
            .clone()
            .reshape(vec![batch, self.config.channels * self.config.window])
            .expect("same element count");
        let mut losses = Vec::with_capacity(self.config.epochs);
        for _ in 0..self.config.epochs {
            let code = self.encoder.forward(&x, true);
            let recon = self.decoder.forward(&code, true);
            let (loss, grad) = mse_loss(&recon, &flat_target);
            self.encoder.zero_grad();
            self.decoder.zero_grad();
            let grad_code = self.decoder.backward(&grad);
            self.encoder.backward(&grad_code);
            self.dec_opt.step(&mut self.decoder);
            self.enc_opt.step(&mut self.encoder);
            losses.push(loss);
            self.trained_epochs += 1;
        }
        Ok(losses)
    }

    /// Encodes windows into clustering features: CNN embedding plus the
    /// weighted preference vector (see
    /// [`embedding_features`]). Immutable — safe to call from many threads
    /// on a shared (typically frozen) compressor.
    ///
    /// # Errors
    /// Propagates shape errors from malformed windows.
    pub fn encode(&self, windows: &[FeatureWindow]) -> Result<Vec<Vec<f64>>> {
        // One scratch arena per worker thread: the pool spawns scoped
        // workers per call, and within a call every batch a worker
        // encodes reuses the same high-water-mark buffers, so the
        // steady-state encoder forward pass allocates nothing.
        thread_local! {
            static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::new());
        }
        let x = windows_to_tensor(windows)?;
        self.check_input(&x)?;
        SCRATCH.with(|cell| {
            let mut scratch = cell.borrow_mut();
            let (code, shape) =
                self.encoder
                    .infer_scratch(&x, &mut scratch, self.config.backend.handle());
            let embed = shape.dims()[1];
            Ok(windows
                .iter()
                .enumerate()
                .map(|(i, w)| {
                    let emb = &code[i * embed..(i + 1) * embed];
                    embedding_features(emb, &w.preference, self.config.preference_weight)
                })
                .collect())
        })
    }

    /// Windows per worker batch in [`encode_with`](Self::encode_with).
    /// Fixed (not derived from the thread count) so the batch fan-out —
    /// and the span tree recording it — is identical at any
    /// `MSVS_THREADS`.
    pub const ENCODE_BATCH: usize = 32;

    /// Parallel [`encode`](Self::encode): splits `windows` into
    /// fixed-size batches and encodes them on the pool's workers, merging
    /// results back in window order. Every network op is independent per
    /// batch row, so the output is bit-identical to the serial `encode`
    /// at any thread count.
    ///
    /// # Errors
    /// Propagates shape errors from malformed windows.
    pub fn encode_with(
        &self,
        windows: &[FeatureWindow],
        pool: &Pool,
    ) -> Result<(Vec<Vec<f64>>, ParStats)> {
        self.encode_traced(windows, pool, None)
    }

    /// [`encode_with`](Self::encode_with), additionally recording one
    /// `cnn_encode_batch` span per worker batch into `trace` — a
    /// `(collector, parent span id)` pair. Worker spans are recorded into
    /// per-batch scratches and adopted in batch index order after the
    /// pool joins, so the merged span structure is deterministic.
    ///
    /// # Errors
    /// Propagates shape errors from malformed windows.
    pub fn encode_traced(
        &self,
        windows: &[FeatureWindow],
        pool: &Pool,
        trace: Option<(&SpanCollector, u64)>,
    ) -> Result<(Vec<Vec<f64>>, ParStats)> {
        if windows.is_empty() {
            return Ok((
                Vec::new(),
                ParStats {
                    threads: 1,
                    tasks: 0,
                    busy: std::time::Duration::ZERO,
                    wall: std::time::Duration::ZERO,
                },
            ));
        }
        let chunks: Vec<&[FeatureWindow]> = windows.chunks(Self::ENCODE_BATCH).collect();
        let collector = trace.map(|(c, _)| c);
        let (encoded, stats) = pool.map_stats(&chunks, |i, c| match collector {
            Some(collector) => {
                let mut scratch = collector.scratch();
                let out = scratch.record(
                    stages::CNN_ENCODE_BATCH,
                    SpanAttrs {
                        batch: Some(i as u64),
                        ..Default::default()
                    },
                    |_| self.encode(c),
                );
                (out, Some(scratch))
            }
            None => (self.encode(c), None),
        });
        let mut out = Vec::with_capacity(windows.len());
        for (part, scratch) in encoded {
            if let (Some((collector, parent)), Some(scratch)) = (trace, scratch) {
                collector.adopt(Some(parent), scratch);
            }
            out.extend(part?);
        }
        Ok((out, stats))
    }

    fn check_input(&self, x: &Tensor) -> Result<()> {
        if x.shape()[1] != self.config.channels || x.shape()[2] != self.config.window {
            return Err(Error::shape(
                format!("[_, {}, {}]", self.config.channels, self.config.window),
                format!("{:?}", x.shape()),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn config() -> CompressorConfig {
        CompressorConfig {
            window: 16,
            epochs: 40,
            ..Default::default()
        }
    }

    /// Two archetypes: "campus resident near DC with good channel, long
    /// watches" vs "cell-edge commuter with poor channel, quick swipes".
    fn archetype_windows(n_per: usize, seed: u64) -> (Vec<FeatureWindow>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut windows = Vec::new();
        let mut labels = Vec::new();
        for arche in 0..2 {
            for _ in 0..n_per {
                let (snr, x, y, watch) = if arche == 0 {
                    (0.8, 0.5, 0.5, 0.7)
                } else {
                    (0.2, 0.9, 0.1, 0.15)
                };
                let noisy = |base: f64, rng: &mut StdRng| -> Vec<f32> {
                    (0..16)
                        .map(|_| (base + rng.gen::<f64>() * 0.08 - 0.04).clamp(0.0, 1.0) as f32)
                        .collect()
                };
                windows.push(FeatureWindow {
                    series: vec![
                        noisy(snr, &mut rng),
                        noisy(x, &mut rng),
                        noisy(y, &mut rng),
                        noisy(watch, &mut rng),
                    ],
                    preference: vec![0.125; 8],
                });
                labels.push(arche);
            }
        }
        (windows, labels)
    }

    #[test]
    fn rejects_invalid_config() {
        assert!(CnnCompressor::new(CompressorConfig {
            window: 4,
            ..Default::default()
        })
        .is_err());
        assert!(CnnCompressor::new(CompressorConfig {
            embed_dim: 0,
            ..Default::default()
        })
        .is_err());
        assert!(CnnCompressor::new(CompressorConfig {
            learning_rate: 0.0,
            ..Default::default()
        })
        .is_err());
    }

    #[test]
    fn training_reduces_reconstruction_loss() {
        let mut comp = CnnCompressor::new(config()).unwrap();
        let (windows, _) = archetype_windows(20, 1);
        let losses = comp.train(&windows).unwrap();
        let head: f32 = losses[..5].iter().sum::<f32>() / 5.0;
        let tail: f32 = losses[losses.len() - 5..].iter().sum::<f32>() / 5.0;
        assert!(
            tail < head * 0.6,
            "loss should drop substantially: {head} -> {tail}"
        );
        assert_eq!(comp.trained_epochs(), 40);
    }

    #[test]
    fn embeddings_separate_archetypes() {
        let mut comp = CnnCompressor::new(config()).unwrap();
        let (windows, labels) = archetype_windows(25, 2);
        comp.train(&windows).unwrap();
        let feats = comp.encode(&windows).unwrap();
        // Mean intra-class distance should be well below inter-class.
        let dist = |a: &[f64], b: &[f64]| -> f64 {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt()
        };
        let mut intra = Vec::new();
        let mut inter = Vec::new();
        for i in 0..feats.len() {
            for j in (i + 1)..feats.len() {
                let d = dist(&feats[i], &feats[j]);
                if labels[i] == labels[j] {
                    intra.push(d);
                } else {
                    inter.push(d);
                }
            }
        }
        let intra_mean = msvs_types::stats::mean(&intra);
        let inter_mean = msvs_types::stats::mean(&inter);
        assert!(
            inter_mean > intra_mean * 1.5,
            "archetypes should separate: intra {intra_mean:.4} vs inter {inter_mean:.4}"
        );
    }

    #[test]
    fn encode_output_dims() {
        let comp = CnnCompressor::new(config()).unwrap();
        let (windows, _) = archetype_windows(3, 3);
        let feats = comp.encode(&windows).unwrap();
        assert_eq!(feats.len(), 6);
        for f in &feats {
            assert_eq!(f.len(), 8 + 8, "embed_dim + preference");
        }
    }

    #[test]
    fn encode_rejects_wrong_window() {
        let comp = CnnCompressor::new(config()).unwrap();
        let bad = FeatureWindow {
            series: vec![vec![0.5; 20]; 4],
            preference: vec![0.125; 8],
        };
        assert!(comp.encode(&[bad]).is_err());
    }

    #[test]
    fn frozen_compressor_rejects_training_until_thawed() {
        let mut comp = CnnCompressor::new(config()).unwrap();
        let (windows, _) = archetype_windows(4, 5);
        comp.freeze();
        assert!(comp.is_frozen());
        assert!(comp.train(&windows).is_err());
        // Encoding still works while frozen.
        assert!(comp.encode(&windows).is_ok());
        comp.thaw();
        assert!(!comp.is_frozen());
        assert!(comp.train(&windows).is_ok());
    }

    #[test]
    fn parallel_encode_bit_identical_to_serial() {
        let mut comp = CnnCompressor::new(config()).unwrap();
        let (windows, _) = archetype_windows(30, 6);
        comp.train(&windows).unwrap();
        comp.freeze();
        let serial = comp.encode(&windows).unwrap();
        for threads in [2, 4] {
            let (par, stats) = comp.encode_with(&windows, &Pool::new(threads)).unwrap();
            assert_eq!(serial, par, "threads={threads}");
            assert!(stats.tasks >= 1, "chunk tasks recorded");
        }
        // The empty input short-circuits.
        let (empty, stats) = comp.encode_with(&[], &Pool::new(4)).unwrap();
        assert!(empty.is_empty());
        assert_eq!(stats.tasks, 0);
    }

    #[test]
    fn traced_encode_spans_one_batch_each_and_match_across_thread_counts() {
        let mut comp = CnnCompressor::new(config()).unwrap();
        let (windows, _) = archetype_windows(40, 6); // 80 windows -> 3 batches
        comp.train(&windows).unwrap();
        comp.freeze();
        let serial = comp.encode(&windows).unwrap();
        let structures: Vec<_> = [1usize, 4]
            .into_iter()
            .map(|threads| {
                let collector = SpanCollector::new();
                let parent = collector.enter(stages::CNN_FORWARD);
                let (out, _) = comp
                    .encode_traced(
                        &windows,
                        &Pool::new(threads),
                        Some((&collector, parent.id())),
                    )
                    .unwrap();
                drop(parent);
                assert_eq!(out, serial, "threads={threads}");
                let spans = collector.snapshot();
                let batches: Vec<_> = spans
                    .iter()
                    .filter(|s| s.name == stages::CNN_ENCODE_BATCH)
                    .collect();
                assert_eq!(
                    batches.len(),
                    windows.len().div_ceil(CnnCompressor::ENCODE_BATCH)
                );
                assert!(batches.iter().all(|s| s.parent == Some(0)));
                spans
                    .iter()
                    .map(msvs_telemetry::SpanRecord::structure)
                    .collect::<Vec<_>>()
            })
            .collect();
        assert_eq!(structures[0], structures[1]);
    }

    #[test]
    fn compression_ratio_is_substantial() {
        let cfg = config();
        // 4 channels x 16 steps = 64 inputs -> 8-dim embedding: 8x smaller.
        assert!(cfg.channels * cfg.window >= 8 * cfg.embed_dim);
    }
}

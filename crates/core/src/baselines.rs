//! Baseline predictors the experiments compare against.
//!
//! - the **no-swiping-abstraction** baseline is the scheme with
//!   [`crate::DemandConfig::assume_full_watch`] set (every recommended
//!   video is presumed fully transmitted);
//! - grouping baselines (fixed `K`, elbow, silhouette scan, random) are
//!   [`crate::GroupingStrategy`] variants;
//! - the **historical-mean** predictor below ignores twins entirely and
//!   extrapolates the last observed demands;
//! - the **unicast** baseline is computed by the simulator from per-user
//!   demands via [`msvs_channel::unicast_resource_demand`].

use msvs_types::{CpuCycles, ResourceBlocks};

/// Exponentially-weighted moving-average demand predictor.
///
/// Predicts the next interval's demand as the EWMA of previously *observed*
/// actual demands — the classic twin-free provisioning rule.
///
/// # Examples
/// ```
/// # use msvs_core::HistoricalMeanPredictor;
/// # use msvs_types::{ResourceBlocks, CpuCycles};
/// let mut p = HistoricalMeanPredictor::new(0.5).unwrap();
/// assert!(p.predict().is_none(), "no history yet");
/// p.observe(ResourceBlocks(10.0), CpuCycles(1e9));
/// p.observe(ResourceBlocks(20.0), CpuCycles(3e9));
/// let (rb, _) = p.predict().unwrap();
/// assert!((rb.value() - 15.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HistoricalMeanPredictor {
    alpha: f64,
    radio: Option<f64>,
    computing: Option<f64>,
    observations: u64,
}

impl HistoricalMeanPredictor {
    /// Builds a predictor with smoothing factor `alpha` in `(0, 1]`
    /// (weight on the newest observation).
    ///
    /// # Errors
    /// Returns `InvalidConfig` when `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> msvs_types::Result<Self> {
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(msvs_types::Error::invalid_config(
                "alpha",
                "must be in (0, 1]",
            ));
        }
        Ok(Self {
            alpha,
            radio: None,
            computing: None,
            observations: 0,
        })
    }

    /// Number of observations folded in.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Folds in an observed interval's actual demands.
    pub fn observe(&mut self, radio: ResourceBlocks, computing: CpuCycles) {
        self.observations += 1;
        let fold = |state: &mut Option<f64>, x: f64, alpha: f64| {
            *state = Some(match *state {
                None => x,
                Some(prev) => alpha * x + (1.0 - alpha) * prev,
            });
        };
        fold(&mut self.radio, radio.value(), self.alpha);
        fold(&mut self.computing, computing.value(), self.alpha);
    }

    /// Predicts the next interval's `(radio, computing)` demand, or `None`
    /// before the first observation.
    pub fn predict(&self) -> Option<(ResourceBlocks, CpuCycles)> {
        Some((
            ResourceBlocks(self.radio?),
            CpuCycles(self.computing.unwrap_or(0.0)),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_alpha() {
        assert!(HistoricalMeanPredictor::new(0.0).is_err());
        assert!(HistoricalMeanPredictor::new(1.1).is_err());
        assert!(HistoricalMeanPredictor::new(1.0).is_ok());
    }

    #[test]
    fn first_observation_seeds_state() {
        let mut p = HistoricalMeanPredictor::new(0.3).unwrap();
        p.observe(ResourceBlocks(40.0), CpuCycles(2e9));
        let (rb, cy) = p.predict().unwrap();
        assert_eq!(rb.value(), 40.0);
        assert_eq!(cy.value(), 2e9);
    }

    #[test]
    fn ewma_converges_to_stationary_demand() {
        let mut p = HistoricalMeanPredictor::new(0.4).unwrap();
        for _ in 0..50 {
            p.observe(ResourceBlocks(25.0), CpuCycles(1e9));
        }
        let (rb, _) = p.predict().unwrap();
        assert!((rb.value() - 25.0).abs() < 1e-9);
        assert_eq!(p.observations(), 50);
    }

    #[test]
    fn ewma_lags_a_step_change() {
        let mut p = HistoricalMeanPredictor::new(0.3).unwrap();
        for _ in 0..20 {
            p.observe(ResourceBlocks(10.0), CpuCycles(0.0));
        }
        p.observe(ResourceBlocks(100.0), CpuCycles(0.0));
        let (rb, _) = p.predict().unwrap();
        // One step after the jump the estimate is far from 100.
        assert!(rb.value() < 40.0, "ewma should lag: {}", rb.value());
        assert!(rb.value() > 10.0);
    }

    #[test]
    fn alpha_one_tracks_exactly() {
        let mut p = HistoricalMeanPredictor::new(1.0).unwrap();
        p.observe(ResourceBlocks(5.0), CpuCycles(1.0));
        p.observe(ResourceBlocks(9.0), CpuCycles(2.0));
        let (rb, cy) = p.predict().unwrap();
        assert_eq!(rb.value(), 9.0);
        assert_eq!(cy.value(), 2.0);
    }
}

//! Incremental embedding cache for the 1D-CNN compressor.
//!
//! Between reservation intervals most twins receive only a handful of new
//! samples, and many (idle users, users whose collectors are faulted)
//! receive none at all. Re-encoding an unchanged feature window produces
//! bit-identical features, so the scheme keeps the last encoding per user
//! keyed by the twin's [`TwinRevision`] and only pays the CNN forward
//! pass for users whose window content actually changed.
//!
//! Correctness rests on two invariants:
//!
//! - a twin's revision changes whenever an accepted mutation could alter
//!   its feature window (see [`UserDigitalTwin::revision`]), and churned
//!   `UserId` slots never alias thanks to the store-stamped instance
//!   nonce;
//! - the compressor is deterministic per row, so an entry cached at
//!   generation `g` (the compressor's trained-epoch count) equals what a
//!   fresh encode at generation `g` would produce. A generation change
//!   (retraining after [`thaw`]) invalidates every entry.
//!
//! [`thaw`]: crate::compressor::CnnCompressor::thaw

use std::collections::{HashMap, HashSet};

use msvs_types::UserId;
use msvs_udt::{TwinRevision, UserDigitalTwin};

/// One cached encoding: the twin revision it was computed from and the
/// resulting feature vector (embedding ++ weighted preference).
///
/// Public so cross-shard handover can carry a user's encoding between
/// per-shard caches without re-running the CNN.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedEmbedding {
    /// Twin revision the features were computed from.
    pub revision: TwinRevision,
    /// The cached feature vector (embedding ++ weighted preference).
    pub features: Vec<f64>,
}

/// Where the compressor's per-user encodings live between passes.
///
/// The default backend is a single in-process [`EmbeddingCache`];
/// multi-shard deployments install a backend that routes each twin to its
/// owning shard's cache. Any backend yields bit-identical feature
/// matrices (a cached row equals a fresh encode); only the hit/miss
/// split — and hence the `cnn_cache_*` counters — may differ.
pub trait EmbeddingBackend: std::fmt::Debug + Send {
    /// Splits a population snapshot into hits and misses for compressor
    /// `generation` (see [`EmbeddingCache::plan`]).
    fn plan(&mut self, generation: u64, twins: &[UserDigitalTwin]) -> CachePlan;

    /// Incremental-mode split: a deliberately coarser criterion than
    /// [`plan`](Self::plan) (see [`EmbeddingCache::plan_incremental`]).
    fn plan_incremental(
        &mut self,
        generation: u64,
        twins: &[UserDigitalTwin],
        dirty: &HashSet<UserId>,
    ) -> CachePlan;

    /// Stores fresh encodings for `plan`'s misses and returns the full
    /// feature matrix in snapshot order (see [`EmbeddingCache::complete`]).
    fn complete(
        &mut self,
        twins: &[UserDigitalTwin],
        plan: &CachePlan,
        fresh: Vec<Vec<f64>>,
    ) -> Vec<Vec<f64>>;
}

impl EmbeddingBackend for EmbeddingCache {
    fn plan(&mut self, generation: u64, twins: &[UserDigitalTwin]) -> CachePlan {
        EmbeddingCache::plan(self, generation, twins)
    }

    fn plan_incremental(
        &mut self,
        generation: u64,
        twins: &[UserDigitalTwin],
        dirty: &HashSet<UserId>,
    ) -> CachePlan {
        EmbeddingCache::plan_incremental(self, generation, twins, dirty)
    }

    fn complete(
        &mut self,
        twins: &[UserDigitalTwin],
        plan: &CachePlan,
        fresh: Vec<Vec<f64>>,
    ) -> Vec<Vec<f64>> {
        EmbeddingCache::complete(self, twins, plan, fresh)
    }
}

/// The lookup result for one population snapshot: which twins must be
/// re-encoded. Indices refer to the snapshot slice handed to
/// [`EmbeddingCache::plan`]; hits are every index not listed.
#[derive(Debug)]
pub struct CachePlan {
    /// Snapshot indices needing a fresh encode, in snapshot order.
    pub miss_indices: Vec<usize>,
    /// Number of twins served from the cache.
    pub hits: usize,
}

/// Per-user memo of the last CNN encoding, invalidated by twin revision
/// or compressor generation changes.
#[derive(Debug, Default)]
pub struct EmbeddingCache {
    /// Compressor generation (trained-epoch count) the entries belong to.
    generation: u64,
    entries: HashMap<UserId, CachedEmbedding>,
}

impl EmbeddingCache {
    /// Builds an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached users.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Compressor generation the current entries belong to (`0` before
    /// the first [`plan`](Self::plan)).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Removes and returns `user`'s cached encoding — the export half of
    /// cross-shard handover.
    pub fn take(&mut self, user: UserId) -> Option<CachedEmbedding> {
        self.entries.remove(&user)
    }

    /// The cached user ids, sorted (checkpoint enumeration).
    pub fn users(&self) -> Vec<UserId> {
        let mut ids: Vec<UserId> = self.entries.keys().copied().collect();
        ids.sort();
        ids
    }

    /// Aligns the cache with compressor `generation`, dropping every
    /// entry on a mismatch (a retrained compressor invalidates all
    /// cached encodings).
    pub fn sync_generation(&mut self, generation: u64) {
        if generation != self.generation {
            self.entries.clear();
            self.generation = generation;
        }
    }

    /// The cached encoding for `user`, if any (no staleness check — the
    /// caller compares revisions).
    pub fn lookup(&self, user: UserId) -> Option<&CachedEmbedding> {
        self.entries.get(&user)
    }

    /// Drops every entry whose user is not in `live` (departed-user
    /// pruning for sharded backends, where each shard sees only its own
    /// slice of the population).
    pub fn retain_users(&mut self, live: &HashSet<UserId>) {
        self.entries.retain(|user, _| live.contains(user));
    }

    /// Installs a migrated encoding computed at compressor `generation`.
    ///
    /// The entry is adopted only when the generations agree (an empty
    /// cache adopts the incoming generation); a stale-generation entry is
    /// discarded — the user simply re-encodes on the next pass, which is
    /// always correct. Returns whether the entry was installed.
    pub fn put(&mut self, generation: u64, user: UserId, entry: CachedEmbedding) -> bool {
        if self.entries.is_empty() {
            self.generation = generation;
        }
        if self.generation != generation {
            return false;
        }
        self.entries.insert(user, entry);
        true
    }

    /// Splits a population snapshot into hits and misses for compressor
    /// `generation`. A generation mismatch (the compressor was retrained)
    /// drops every entry first, so stale-generation features can never be
    /// served.
    pub fn plan(&mut self, generation: u64, twins: &[UserDigitalTwin]) -> CachePlan {
        self.sync_generation(generation);
        let miss_indices: Vec<usize> = twins
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                self.entries
                    .get(&t.user())
                    .is_none_or(|e| e.revision != t.revision())
            })
            .map(|(i, _)| i)
            .collect();
        let hits = twins.len() - miss_indices.len();
        CachePlan { miss_indices, hits }
    }

    /// Incremental-mode split: a deliberately *coarser* criterion than
    /// [`plan`](Self::plan). In a live run every twin's channel revision
    /// bumps each interval from routine uplink samples, so exact revision
    /// matching re-encodes the whole population; incremental mode instead
    /// re-encodes a user only when
    ///
    /// - no entry is cached (cold start, eviction, a handover whose
    ///   mid-flight report was lost, or crash failover), or
    /// - the compressor generation changed (retraining invalidates all), or
    /// - the cached entry's *instance* nonce differs from the twin's (a
    ///   churned slot is a brand-new user — their encoding must never be
    ///   served the predecessor's features), or
    /// - the user is in the caller's explicit `dirty` set (churned this
    ///   interval, or owned by a shard that just restored from an outage
    ///   checkpoint).
    ///
    /// Everything else reuses the cached (slightly stale) encoding — a
    /// bounded approximation that trades sub-interval feature drift for
    /// skipping the CNN forward pass, measured by experiment E15.
    pub fn plan_incremental(
        &mut self,
        generation: u64,
        twins: &[UserDigitalTwin],
        dirty: &HashSet<UserId>,
    ) -> CachePlan {
        self.sync_generation(generation);
        let miss_indices: Vec<usize> = twins
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                dirty.contains(&t.user())
                    || self
                        .entries
                        .get(&t.user())
                        .is_none_or(|e| e.revision.instance != t.revision().instance)
            })
            .map(|(i, _)| i)
            .collect();
        let hits = twins.len() - miss_indices.len();
        CachePlan { miss_indices, hits }
    }

    /// Stores the freshly-encoded features for `plan`'s misses, prunes
    /// users absent from the snapshot, and returns the full feature
    /// matrix in snapshot order (cached rows cloned, fresh rows moved).
    ///
    /// # Panics
    /// Panics if `fresh` does not match the plan's miss count — the
    /// caller must encode exactly the planned misses, in plan order.
    pub fn complete(
        &mut self,
        twins: &[UserDigitalTwin],
        plan: &CachePlan,
        fresh: Vec<Vec<f64>>,
    ) -> Vec<Vec<f64>> {
        assert_eq!(
            fresh.len(),
            plan.miss_indices.len(),
            "fresh encodings must match planned misses"
        );
        for (&i, features) in plan.miss_indices.iter().zip(fresh) {
            self.entries.insert(
                twins[i].user(),
                CachedEmbedding {
                    revision: twins[i].revision(),
                    features,
                },
            );
        }
        if self.entries.len() > twins.len() {
            let live: HashSet<UserId> = twins.iter().map(|t| t.user()).collect();
            self.entries.retain(|user, _| live.contains(user));
        }
        twins
            .iter()
            .map(|t| self.entries[&t.user()].features.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msvs_types::SimTime;

    fn twin(id: u32) -> UserDigitalTwin {
        let mut t = UserDigitalTwin::new(UserId(id));
        t.update_channel(SimTime::from_secs(1), 10.0 + id as f64);
        t
    }

    fn rows(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![i as f64; 3]).collect()
    }

    #[test]
    fn cold_cache_misses_everything_then_hits() {
        let mut cache = EmbeddingCache::new();
        let twins = vec![twin(0), twin(1), twin(2)];
        let plan = cache.plan(5, &twins);
        assert_eq!(plan.miss_indices, vec![0, 1, 2]);
        assert_eq!(plan.hits, 0);
        let features = cache.complete(&twins, &plan, rows(3));
        assert_eq!(features, rows(3));
        // Unchanged twins: all hits, same features back.
        let plan = cache.plan(5, &twins);
        assert!(plan.miss_indices.is_empty());
        assert_eq!(plan.hits, 3);
        assert_eq!(cache.complete(&twins, &plan, Vec::new()), rows(3));
    }

    #[test]
    fn mutated_twin_misses_alone() {
        let mut cache = EmbeddingCache::new();
        let mut twins = vec![twin(0), twin(1), twin(2)];
        let plan = cache.plan(1, &twins);
        cache.complete(&twins, &plan, rows(3));
        twins[1].update_channel(SimTime::from_secs(2), 3.0);
        let plan = cache.plan(1, &twins);
        assert_eq!(plan.miss_indices, vec![1]);
        assert_eq!(plan.hits, 2);
        let features = cache.complete(&twins, &plan, vec![vec![9.0; 3]]);
        assert_eq!(features[0], vec![0.0; 3]);
        assert_eq!(features[1], vec![9.0; 3]);
        assert_eq!(features[2], vec![2.0; 3]);
    }

    #[test]
    fn generation_change_clears_everything() {
        let mut cache = EmbeddingCache::new();
        let twins = vec![twin(0), twin(1)];
        let plan = cache.plan(1, &twins);
        cache.complete(&twins, &plan, rows(2));
        let plan = cache.plan(2, &twins);
        assert_eq!(plan.miss_indices, vec![0, 1], "retrain invalidates all");
    }

    #[test]
    fn departed_users_are_pruned() {
        let mut cache = EmbeddingCache::new();
        let twins = vec![twin(0), twin(1), twin(2)];
        let plan = cache.plan(1, &twins);
        cache.complete(&twins, &plan, rows(3));
        let keep = vec![twins[2].clone()];
        let plan = cache.plan(1, &keep);
        assert_eq!(plan.hits, 1);
        cache.complete(&keep, &plan, Vec::new());
        assert_eq!(cache.len(), 1, "absent users pruned");
    }

    #[test]
    fn take_and_put_migrate_entries_between_caches() {
        let mut origin = EmbeddingCache::new();
        let mut dest = EmbeddingCache::new();
        let twins = vec![twin(0), twin(1)];
        let plan = origin.plan(7, &twins);
        origin.complete(&twins, &plan, rows(2));
        let entry = origin.take(UserId(1)).expect("cached entry");
        assert_eq!(origin.len(), 1);
        assert!(origin.take(UserId(1)).is_none(), "take removes");
        // Empty destination adopts the origin generation.
        assert!(dest.put(7, UserId(1), entry));
        assert_eq!(dest.generation(), 7);
        // The migrated entry is a hit: planning the moved twin at the
        // same generation re-encodes nothing.
        let moved = vec![twins[1].clone()];
        let plan = dest.plan(7, &moved);
        assert_eq!(plan.hits, 1, "migrated entry must keep hitting");
        assert_eq!(
            dest.complete(&moved, &plan, Vec::new()),
            vec![rows(2)[1].clone()]
        );
    }

    #[test]
    fn put_discards_stale_generation_entries() {
        let mut dest = EmbeddingCache::new();
        let twins = vec![twin(0)];
        let plan = dest.plan(3, &twins);
        dest.complete(&twins, &plan, rows(1));
        let stale = CachedEmbedding {
            revision: twin(5).revision(),
            features: vec![1.0],
        };
        assert!(!dest.put(9, UserId(5), stale), "generation mismatch");
        assert_eq!(dest.len(), 1);
    }

    #[test]
    fn incremental_plan_serves_stale_revisions() {
        let mut cache = EmbeddingCache::new();
        let mut twins = vec![twin(0), twin(1)];
        let plan = cache.plan(1, &twins);
        cache.complete(&twins, &plan, rows(2));
        // Routine channel sample: the exact plan misses, the incremental
        // plan keeps serving the (slightly stale) cached encoding.
        twins[0].update_channel(SimTime::from_secs(2), 4.0);
        let none = HashSet::new();
        assert_eq!(cache.plan(1, &twins).miss_indices, vec![0]);
        let plan = cache.plan_incremental(1, &twins, &none);
        assert!(plan.miss_indices.is_empty());
        assert_eq!(plan.hits, 2);
    }

    #[test]
    fn incremental_plan_misses_on_instance_dirty_and_generation() {
        let mut cache = EmbeddingCache::new();
        let twins = vec![twin(0), twin(1)];
        let plan = cache.plan(1, &twins);
        cache.complete(&twins, &plan, rows(2));
        let none = HashSet::new();
        // Churned slot: the cached entry carries the predecessor's
        // instance nonce, so the successor twin must re-encode.
        let mut entry = cache.take(UserId(0)).unwrap();
        entry.revision.instance = 99;
        cache.put(1, UserId(0), entry);
        let plan = cache.plan_incremental(1, &twins, &none);
        assert_eq!(plan.miss_indices, vec![0]);
        // Explicit dirty set: re-encode even with a matching entry.
        let dirty: HashSet<UserId> = [UserId(1)].into();
        let plan = cache.plan_incremental(1, &twins, &dirty);
        assert_eq!(plan.miss_indices, vec![0, 1]);
        // Generation change still invalidates everything.
        let plan = cache.plan_incremental(2, &twins, &none);
        assert_eq!(plan.miss_indices, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "fresh encodings must match planned misses")]
    fn mismatched_fresh_rows_panic() {
        let mut cache = EmbeddingCache::new();
        let twins = vec![twin(0)];
        let plan = cache.plan(1, &twins);
        cache.complete(&twins, &plan, Vec::new());
    }
}

//! Incremental embedding cache for the 1D-CNN compressor.
//!
//! Between reservation intervals most twins receive only a handful of new
//! samples, and many (idle users, users whose collectors are faulted)
//! receive none at all. Re-encoding an unchanged feature window produces
//! bit-identical features, so the scheme keeps the last encoding per user
//! keyed by the twin's [`TwinRevision`] and only pays the CNN forward
//! pass for users whose window content actually changed.
//!
//! Correctness rests on two invariants:
//!
//! - a twin's revision changes whenever an accepted mutation could alter
//!   its feature window (see [`UserDigitalTwin::revision`]), and churned
//!   `UserId` slots never alias thanks to the store-stamped instance
//!   nonce;
//! - the compressor is deterministic per row, so an entry cached at
//!   generation `g` (the compressor's trained-epoch count) equals what a
//!   fresh encode at generation `g` would produce. A generation change
//!   (retraining after [`thaw`]) invalidates every entry.
//!
//! [`thaw`]: crate::compressor::CnnCompressor::thaw

use std::collections::{HashMap, HashSet};

use msvs_types::UserId;
use msvs_udt::{TwinRevision, UserDigitalTwin};

/// One cached encoding: the twin revision it was computed from and the
/// resulting feature vector (embedding ++ weighted preference).
#[derive(Debug, Clone)]
struct Entry {
    revision: TwinRevision,
    features: Vec<f64>,
}

/// The lookup result for one population snapshot: which twins must be
/// re-encoded. Indices refer to the snapshot slice handed to
/// [`EmbeddingCache::plan`]; hits are every index not listed.
#[derive(Debug)]
pub struct CachePlan {
    /// Snapshot indices needing a fresh encode, in snapshot order.
    pub miss_indices: Vec<usize>,
    /// Number of twins served from the cache.
    pub hits: usize,
}

/// Per-user memo of the last CNN encoding, invalidated by twin revision
/// or compressor generation changes.
#[derive(Debug, Default)]
pub struct EmbeddingCache {
    /// Compressor generation (trained-epoch count) the entries belong to.
    generation: u64,
    entries: HashMap<UserId, Entry>,
}

impl EmbeddingCache {
    /// Builds an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached users.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Splits a population snapshot into hits and misses for compressor
    /// `generation`. A generation mismatch (the compressor was retrained)
    /// drops every entry first, so stale-generation features can never be
    /// served.
    pub fn plan(&mut self, generation: u64, twins: &[UserDigitalTwin]) -> CachePlan {
        if generation != self.generation {
            self.entries.clear();
            self.generation = generation;
        }
        let miss_indices: Vec<usize> = twins
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                self.entries
                    .get(&t.user())
                    .is_none_or(|e| e.revision != t.revision())
            })
            .map(|(i, _)| i)
            .collect();
        let hits = twins.len() - miss_indices.len();
        CachePlan { miss_indices, hits }
    }

    /// Stores the freshly-encoded features for `plan`'s misses, prunes
    /// users absent from the snapshot, and returns the full feature
    /// matrix in snapshot order (cached rows cloned, fresh rows moved).
    ///
    /// # Panics
    /// Panics if `fresh` does not match the plan's miss count — the
    /// caller must encode exactly the planned misses, in plan order.
    pub fn complete(
        &mut self,
        twins: &[UserDigitalTwin],
        plan: &CachePlan,
        fresh: Vec<Vec<f64>>,
    ) -> Vec<Vec<f64>> {
        assert_eq!(
            fresh.len(),
            plan.miss_indices.len(),
            "fresh encodings must match planned misses"
        );
        for (&i, features) in plan.miss_indices.iter().zip(fresh) {
            self.entries.insert(
                twins[i].user(),
                Entry {
                    revision: twins[i].revision(),
                    features,
                },
            );
        }
        if self.entries.len() > twins.len() {
            let live: HashSet<UserId> = twins.iter().map(|t| t.user()).collect();
            self.entries.retain(|user, _| live.contains(user));
        }
        twins
            .iter()
            .map(|t| self.entries[&t.user()].features.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msvs_types::SimTime;

    fn twin(id: u32) -> UserDigitalTwin {
        let mut t = UserDigitalTwin::new(UserId(id));
        t.update_channel(SimTime::from_secs(1), 10.0 + id as f64);
        t
    }

    fn rows(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![i as f64; 3]).collect()
    }

    #[test]
    fn cold_cache_misses_everything_then_hits() {
        let mut cache = EmbeddingCache::new();
        let twins = vec![twin(0), twin(1), twin(2)];
        let plan = cache.plan(5, &twins);
        assert_eq!(plan.miss_indices, vec![0, 1, 2]);
        assert_eq!(plan.hits, 0);
        let features = cache.complete(&twins, &plan, rows(3));
        assert_eq!(features, rows(3));
        // Unchanged twins: all hits, same features back.
        let plan = cache.plan(5, &twins);
        assert!(plan.miss_indices.is_empty());
        assert_eq!(plan.hits, 3);
        assert_eq!(cache.complete(&twins, &plan, Vec::new()), rows(3));
    }

    #[test]
    fn mutated_twin_misses_alone() {
        let mut cache = EmbeddingCache::new();
        let mut twins = vec![twin(0), twin(1), twin(2)];
        let plan = cache.plan(1, &twins);
        cache.complete(&twins, &plan, rows(3));
        twins[1].update_channel(SimTime::from_secs(2), 3.0);
        let plan = cache.plan(1, &twins);
        assert_eq!(plan.miss_indices, vec![1]);
        assert_eq!(plan.hits, 2);
        let features = cache.complete(&twins, &plan, vec![vec![9.0; 3]]);
        assert_eq!(features[0], vec![0.0; 3]);
        assert_eq!(features[1], vec![9.0; 3]);
        assert_eq!(features[2], vec![2.0; 3]);
    }

    #[test]
    fn generation_change_clears_everything() {
        let mut cache = EmbeddingCache::new();
        let twins = vec![twin(0), twin(1)];
        let plan = cache.plan(1, &twins);
        cache.complete(&twins, &plan, rows(2));
        let plan = cache.plan(2, &twins);
        assert_eq!(plan.miss_indices, vec![0, 1], "retrain invalidates all");
    }

    #[test]
    fn departed_users_are_pruned() {
        let mut cache = EmbeddingCache::new();
        let twins = vec![twin(0), twin(1), twin(2)];
        let plan = cache.plan(1, &twins);
        cache.complete(&twins, &plan, rows(3));
        let keep = vec![twins[2].clone()];
        let plan = cache.plan(1, &keep);
        assert_eq!(plan.hits, 1);
        cache.complete(&keep, &plan, Vec::new());
        assert_eq!(cache.len(), 1, "absent users pruned");
    }

    #[test]
    #[should_panic(expected = "fresh encodings must match planned misses")]
    fn mismatched_fresh_rows_panic() {
        let mut cache = EmbeddingCache::new();
        let twins = vec![twin(0)];
        let plan = cache.plan(1, &twins);
        cache.complete(&twins, &plan, Vec::new());
    }
}

//! Feature assembly: digital-twin windows → network tensors → clustering
//! features.

use msvs_nn::Tensor;
use msvs_types::{Error, Result};
use msvs_udt::FeatureWindow;

/// Stacks per-user feature windows into a `[batch, channels, window]`
/// tensor for the 1D-CNN.
///
/// # Errors
/// Returns [`Error::InsufficientData`] for an empty batch,
/// [`Error::ShapeMismatch`] when windows disagree in shape, and
/// [`Error::ShapeMismatch`] when any value is non-finite — a single NaN
/// fed forward would poison every embedding in the batch.
pub fn windows_to_tensor(windows: &[FeatureWindow]) -> Result<Tensor> {
    let first = windows
        .first()
        .ok_or_else(|| Error::insufficient("at least one feature window"))?;
    let channels = first.series.len();
    let len = first.window_len();
    if len == 0 {
        return Err(Error::insufficient("non-empty feature windows"));
    }
    let mut data = Vec::with_capacity(windows.len() * channels * len);
    for w in windows {
        if w.series.len() != channels || w.window_len() != len {
            return Err(Error::shape(
                format!("{channels} channels x {len}"),
                format!("{} channels x {}", w.series.len(), w.window_len()),
            ));
        }
        for ch in &w.series {
            if ch.iter().any(|v| !v.is_finite()) {
                return Err(Error::shape(
                    "finite feature values".to_string(),
                    "non-finite value in feature window".to_string(),
                ));
            }
            data.extend_from_slice(ch);
        }
    }
    Tensor::from_vec(data, vec![windows.len(), channels, len])
}

/// Combines a CNN embedding with the (weighted) preference vector into the
/// final clustering feature for one user.
///
/// The CNN captures dynamics (channel, movement, engagement rhythm); the
/// preference distribution captures taste. `preference_weight` balances the
/// two distance scales (the paper clusters on "user status", which includes
/// both).
pub fn embedding_features(
    embedding: &[f32],
    preference: &[f32],
    preference_weight: f64,
) -> Vec<f64> {
    let mut out: Vec<f64> = embedding.iter().map(|&v| v as f64).collect();
    out.extend(preference.iter().map(|&p| p as f64 * preference_weight));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(c: usize, l: usize, fill: f32) -> FeatureWindow {
        FeatureWindow {
            series: vec![vec![fill; l]; c],
            preference: vec![0.125; 8],
        }
    }

    #[test]
    fn stacks_batch_in_order() {
        let t = windows_to_tensor(&[window(4, 8, 0.25), window(4, 8, 0.75)]).unwrap();
        assert_eq!(t.shape(), &[2, 4, 8]);
        assert_eq!(t.get3(0, 0, 0), 0.25);
        assert_eq!(t.get3(1, 3, 7), 0.75);
    }

    #[test]
    fn rejects_empty_and_ragged() {
        assert!(windows_to_tensor(&[]).is_err());
        assert!(windows_to_tensor(&[window(4, 8, 0.0), window(4, 9, 0.0)]).is_err());
        assert!(windows_to_tensor(&[window(4, 8, 0.0), window(3, 8, 0.0)]).is_err());
        assert!(windows_to_tensor(&[window(4, 0, 0.0)]).is_err());
    }

    #[test]
    fn rejects_non_finite_values() {
        let mut poisoned = window(4, 8, 0.5);
        poisoned.series[2][3] = f32::NAN;
        assert!(windows_to_tensor(&[window(4, 8, 0.1), poisoned]).is_err());
        let mut inf = window(4, 8, 0.5);
        inf.series[0][0] = f32::INFINITY;
        assert!(windows_to_tensor(&[inf]).is_err());
    }

    #[test]
    fn embedding_features_concatenates_and_weights() {
        let f = embedding_features(&[1.0, 2.0], &[0.5, 0.5], 2.0);
        assert_eq!(f, vec![1.0, 2.0, 1.0, 1.0]);
        let f0 = embedding_features(&[1.0], &[0.3], 0.0);
        assert_eq!(f0, vec![1.0, 0.0], "zero weight erases preference");
    }
}

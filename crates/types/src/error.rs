//! Workspace-wide error type.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors shared by the msvs crates.
///
/// Substrate crates return this type from fallible constructors and
/// operations so that callers can propagate failures with `?` across crate
/// boundaries without conversion boilerplate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A configuration value was outside its legal range.
    InvalidConfig {
        /// Name of the offending parameter.
        field: &'static str,
        /// Human-readable explanation of the violation.
        reason: String,
    },
    /// An entity id was not found in the relevant registry.
    NotFound {
        /// Kind of entity (e.g. `"user"`, `"video"`).
        entity: &'static str,
        /// Display form of the missing id.
        id: String,
    },
    /// Input data had an unexpected shape (dimension mismatch etc.).
    ShapeMismatch {
        /// What the operation expected.
        expected: String,
        /// What it received.
        actual: String,
    },
    /// There was not enough data to perform the operation.
    InsufficientData {
        /// What the operation needed.
        needed: String,
    },
}

impl Error {
    /// Builds an [`Error::InvalidConfig`].
    pub fn invalid_config(field: &'static str, reason: impl Into<String>) -> Self {
        Error::InvalidConfig {
            field,
            reason: reason.into(),
        }
    }

    /// Builds an [`Error::NotFound`].
    pub fn not_found(entity: &'static str, id: impl fmt::Display) -> Self {
        Error::NotFound {
            entity,
            id: id.to_string(),
        }
    }

    /// Builds an [`Error::ShapeMismatch`].
    pub fn shape(expected: impl Into<String>, actual: impl Into<String>) -> Self {
        Error::ShapeMismatch {
            expected: expected.into(),
            actual: actual.into(),
        }
    }

    /// Builds an [`Error::InsufficientData`].
    pub fn insufficient(needed: impl Into<String>) -> Self {
        Error::InsufficientData {
            needed: needed.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidConfig { field, reason } => {
                write!(f, "invalid configuration for `{field}`: {reason}")
            }
            Error::NotFound { entity, id } => write!(f, "{entity} `{id}` not found"),
            Error::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected}, got {actual}")
            }
            Error::InsufficientData { needed } => {
                write!(f, "insufficient data: {needed}")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = Error::invalid_config("k_max", "must be >= k_min");
        assert_eq!(
            e.to_string(),
            "invalid configuration for `k_max`: must be >= k_min"
        );
        let e = Error::not_found("user", "u9");
        assert_eq!(e.to_string(), "user `u9` not found");
        let e = Error::shape("3x4", "3x5");
        assert_eq!(e.to_string(), "shape mismatch: expected 3x4, got 3x5");
        let e = Error::insufficient("at least 2 samples");
        assert_eq!(e.to_string(), "insufficient data: at least 2 samples");
    }

    #[test]
    fn is_std_error_send_sync() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<Error>();
    }
}

//! Planar geometry for the campus scenario.

use std::fmt;
use std::ops::{Add, Mul, Sub};

use serde::{Deserialize, Serialize};

use crate::units::Meters;

/// A point (or displacement) in the 2-D campus plane, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Position {
    /// East-west coordinate in metres.
    pub x: f64,
    /// North-south coordinate in metres.
    pub y: f64,
}

impl Position {
    /// The origin of the campus plane.
    pub const ORIGIN: Self = Self { x: 0.0, y: 0.0 };

    /// Builds a position from raw coordinates.
    ///
    /// # Examples
    /// ```
    /// # use msvs_types::Position;
    /// let p = Position::new(3.0, 4.0);
    /// assert_eq!(p.distance_to(Position::ORIGIN).value(), 5.0);
    /// ```
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to another position.
    pub fn distance_to(self, other: Position) -> Meters {
        Meters(((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt())
    }

    /// Squared Euclidean distance (avoids the square root for comparisons).
    pub fn distance_sq(self, other: Position) -> f64 {
        (self.x - other.x).powi(2) + (self.y - other.y).powi(2)
    }

    /// Length of this position interpreted as a vector from the origin.
    pub fn norm(self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Unit vector in the direction of this vector, or zero if degenerate.
    pub fn normalized(self) -> Position {
        let n = self.norm();
        if n <= f64::EPSILON {
            Position::ORIGIN
        } else {
            Position::new(self.x / n, self.y / n)
        }
    }

    /// Linear interpolation between `self` (t = 0) and `other` (t = 1).
    ///
    /// `t` is clamped to `[0, 1]`.
    pub fn lerp(self, other: Position, t: f64) -> Position {
        let t = t.clamp(0.0, 1.0);
        Position::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Clamps the position into the axis-aligned rectangle
    /// `[0, width] x [0, height]`.
    pub fn clamp_to(self, width: f64, height: f64) -> Position {
        Position::new(self.x.clamp(0.0, width), self.y.clamp(0.0, height))
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}, {:.1})", self.x, self.y)
    }
}

impl Add for Position {
    type Output = Position;
    fn add(self, rhs: Position) -> Position {
        Position::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Position {
    type Output = Position;
    fn sub(self, rhs: Position) -> Position {
        Position::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Position {
    type Output = Position;
    fn mul(self, rhs: f64) -> Position {
        Position::new(self.x * rhs, self.y * rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pythagorean_distance() {
        let d = Position::new(0.0, 0.0).distance_to(Position::new(3.0, 4.0));
        assert!((d.value() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn distance_sq_matches_distance() {
        let a = Position::new(1.0, 2.0);
        let b = Position::new(-2.0, 6.0);
        assert!((a.distance_sq(b) - a.distance_to(b).value().powi(2)).abs() < 1e-9);
    }

    #[test]
    fn lerp_endpoints_and_clamp() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(10.0, 20.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Position::new(5.0, 10.0));
        assert_eq!(a.lerp(b, 2.0), b, "t is clamped above");
        assert_eq!(a.lerp(b, -1.0), a, "t is clamped below");
    }

    #[test]
    fn normalized_is_unit_or_zero() {
        let v = Position::new(3.0, 4.0).normalized();
        assert!((v.norm() - 1.0).abs() < 1e-12);
        assert_eq!(Position::ORIGIN.normalized(), Position::ORIGIN);
    }

    #[test]
    fn clamp_to_bounds() {
        let p = Position::new(-5.0, 300.0).clamp_to(100.0, 200.0);
        assert_eq!(p, Position::new(0.0, 200.0));
    }

    #[test]
    fn vector_arithmetic() {
        let a = Position::new(1.0, 2.0);
        let b = Position::new(3.0, 5.0);
        assert_eq!(a + b, Position::new(4.0, 7.0));
        assert_eq!(b - a, Position::new(2.0, 3.0));
        assert_eq!(a * 2.0, Position::new(2.0, 4.0));
    }
}

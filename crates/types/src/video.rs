//! Video-domain vocabulary: categories and bitrate representations.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::units::Mbps;

/// Content category of a short video.
///
/// The paper's evaluation groups videos by preference label; Fig. 3 shows
/// `News` being watched the longest and `Game` the shortest in multicast
/// group 1. We model eight categories, matching the label set of the
/// short-video-streaming-challenge dataset family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum VideoCategory {
    /// Current-affairs clips; typically high retention.
    News,
    /// Sports highlights.
    Sports,
    /// Music and dance clips.
    Music,
    /// Gaming clips; typically low retention for non-gamers.
    Game,
    /// Comedy sketches.
    Comedy,
    /// Educational shorts.
    Education,
    /// Fashion and lifestyle.
    Fashion,
    /// Food and cooking.
    Food,
}

impl VideoCategory {
    /// All categories, in stable index order.
    pub const ALL: [VideoCategory; 8] = [
        VideoCategory::News,
        VideoCategory::Sports,
        VideoCategory::Music,
        VideoCategory::Game,
        VideoCategory::Comedy,
        VideoCategory::Education,
        VideoCategory::Fashion,
        VideoCategory::Food,
    ];

    /// Number of categories.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable index of this category in [`VideoCategory::ALL`].
    ///
    /// # Examples
    /// ```
    /// # use msvs_types::VideoCategory;
    /// assert_eq!(VideoCategory::News.index(), 0);
    /// assert_eq!(VideoCategory::ALL[VideoCategory::Food.index()], VideoCategory::Food);
    /// ```
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&c| c == self)
            .expect("category is a member of ALL")
    }

    /// Looks a category up by its stable index.
    ///
    /// Returns `None` if `index >= VideoCategory::COUNT`.
    pub fn from_index(index: usize) -> Option<VideoCategory> {
        Self::ALL.get(index).copied()
    }

    /// Short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            VideoCategory::News => "News",
            VideoCategory::Sports => "Sports",
            VideoCategory::Music => "Music",
            VideoCategory::Game => "Game",
            VideoCategory::Comedy => "Comedy",
            VideoCategory::Education => "Education",
            VideoCategory::Fashion => "Fashion",
            VideoCategory::Food => "Food",
        }
    }
}

impl fmt::Display for VideoCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Quality level of a transcoded representation, lowest to highest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RepresentationLevel {
    /// 240p, minimum quality.
    P240,
    /// 360p.
    P360,
    /// 480p.
    P480,
    /// 720p.
    P720,
    /// 1080p, the highest representation stored at the edge.
    P1080,
}

impl RepresentationLevel {
    /// All levels from lowest to highest quality.
    pub const ALL: [RepresentationLevel; 5] = [
        RepresentationLevel::P240,
        RepresentationLevel::P360,
        RepresentationLevel::P480,
        RepresentationLevel::P720,
        RepresentationLevel::P1080,
    ];

    /// Number of ladder levels.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable index (0 = lowest quality).
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&l| l == self)
            .expect("level is a member of ALL")
    }

    /// Looks a level up by index.
    pub fn from_index(index: usize) -> Option<RepresentationLevel> {
        Self::ALL.get(index).copied()
    }

    /// The next lower level, or `None` at the bottom of the ladder.
    pub fn step_down(self) -> Option<RepresentationLevel> {
        self.index().checked_sub(1).and_then(Self::from_index)
    }

    /// Nominal encoded bitrate of this level for short-form video.
    ///
    /// Values follow common DASH ladders (H.264, 30 fps, 9:16 vertical).
    pub fn nominal_bitrate(self) -> Mbps {
        match self {
            RepresentationLevel::P240 => Mbps(0.4),
            RepresentationLevel::P360 => Mbps(0.8),
            RepresentationLevel::P480 => Mbps(1.2),
            RepresentationLevel::P720 => Mbps(2.5),
            RepresentationLevel::P1080 => Mbps(4.5),
        }
    }
}

impl fmt::Display for RepresentationLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RepresentationLevel::P240 => "240p",
            RepresentationLevel::P360 => "360p",
            RepresentationLevel::P480 => "480p",
            RepresentationLevel::P720 => "720p",
            RepresentationLevel::P1080 => "1080p",
        };
        f.write_str(s)
    }
}

/// A concrete representation: a ladder level with its actual encoded bitrate
/// (which varies per video around the nominal ladder value).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Representation {
    /// Quality level on the ladder.
    pub level: RepresentationLevel,
    /// Actual average encoded bitrate of this video at this level.
    pub bitrate: Mbps,
}

impl Representation {
    /// Builds a representation with the level's nominal bitrate.
    pub fn nominal(level: RepresentationLevel) -> Self {
        Self {
            level,
            bitrate: level.nominal_bitrate(),
        }
    }
}

impl fmt::Display for Representation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.level, self.bitrate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_index_round_trips() {
        for (i, c) in VideoCategory::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(VideoCategory::from_index(i), Some(*c));
        }
        assert_eq!(VideoCategory::from_index(VideoCategory::COUNT), None);
    }

    #[test]
    fn level_ladder_is_monotone_in_bitrate() {
        let rates: Vec<f64> = RepresentationLevel::ALL
            .iter()
            .map(|l| l.nominal_bitrate().value())
            .collect();
        assert!(rates.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn step_down_walks_the_ladder() {
        assert_eq!(
            RepresentationLevel::P1080.step_down(),
            Some(RepresentationLevel::P720)
        );
        assert_eq!(RepresentationLevel::P240.step_down(), None);
    }

    #[test]
    fn level_ordering_matches_quality() {
        assert!(RepresentationLevel::P240 < RepresentationLevel::P1080);
        assert!(RepresentationLevel::P480 < RepresentationLevel::P720);
    }

    #[test]
    fn displays() {
        assert_eq!(VideoCategory::News.to_string(), "News");
        assert_eq!(RepresentationLevel::P720.to_string(), "720p");
        let r = Representation::nominal(RepresentationLevel::P360);
        assert_eq!(r.to_string(), "360p@0.800 Mbps");
    }
}

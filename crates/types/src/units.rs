//! Physical unit newtypes.
//!
//! Radio and compute quantities flow through many layers of the system; the
//! unit wrappers here keep megabits, hertz, metres, cycles, and resource
//! blocks statically distinct (C-NEWTYPE) while staying `Copy` and cheap.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

macro_rules! unit_newtype {
    ($(#[$doc:meta])* $name:ident, $unit:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize,
        )]
        pub struct $name(pub f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Returns the raw value in the canonical unit.
            pub fn value(self) -> f64 {
                self.0
            }

            /// Returns the larger of two quantities.
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of two quantities.
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns `true` when the quantity is a finite, non-negative number.
            pub fn is_valid(self) -> bool {
                self.0.is_finite() && self.0 >= 0.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!("{:.3} ", $unit), self.0)
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|x| x.0).sum())
            }
        }
    };
}

unit_newtype!(
    /// Data rate in megabits per second.
    Mbps,
    "Mbps"
);
unit_newtype!(
    /// Frequency or bandwidth in hertz.
    Hertz,
    "Hz"
);
unit_newtype!(
    /// Distance in metres.
    Meters,
    "m"
);
unit_newtype!(
    /// Transmit power in watts.
    Watts,
    "W"
);
unit_newtype!(
    /// Compute work in CPU cycles.
    CpuCycles,
    "cycles"
);
unit_newtype!(
    /// Radio resource demand in OFDMA resource blocks (may be fractional
    /// when expressing an average demand over an interval).
    ResourceBlocks,
    "RB"
);

impl Mbps {
    /// Converts the rate to bits per second.
    ///
    /// # Examples
    /// ```
    /// # use msvs_types::Mbps;
    /// assert_eq!(Mbps(1.5).as_bits_per_sec(), 1_500_000.0);
    /// ```
    pub fn as_bits_per_sec(self) -> f64 {
        self.0 * 1e6
    }

    /// Builds a rate from bits per second.
    pub fn from_bits_per_sec(bps: f64) -> Self {
        Self(bps / 1e6)
    }
}

impl Hertz {
    /// Builds a frequency from megahertz.
    pub fn from_mhz(mhz: f64) -> Self {
        Self(mhz * 1e6)
    }

    /// Returns the frequency in megahertz.
    pub fn as_mhz(self) -> f64 {
        self.0 / 1e6
    }

    /// Builds a frequency from gigahertz.
    pub fn from_ghz(ghz: f64) -> Self {
        Self(ghz * 1e9)
    }
}

impl Watts {
    /// Converts the power to dBm.
    ///
    /// # Panics
    /// Panics if the power is not strictly positive.
    pub fn as_dbm(self) -> f64 {
        assert!(self.0 > 0.0, "power must be positive to express in dBm");
        10.0 * (self.0 * 1000.0).log10()
    }

    /// Builds a power level from dBm.
    pub fn from_dbm(dbm: f64) -> Self {
        Self(10f64.powf(dbm / 10.0) / 1000.0)
    }
}

impl CpuCycles {
    /// Converts cycles to gigacycles (a convenient display scale).
    pub fn as_gigacycles(self) -> f64 {
        self.0 / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mbps_bit_conversions_round_trip() {
        let r = Mbps(3.25);
        assert!((Mbps::from_bits_per_sec(r.as_bits_per_sec()).value() - 3.25).abs() < 1e-12);
    }

    #[test]
    fn dbm_round_trip() {
        let p = Watts::from_dbm(30.0); // 1 W
        assert!((p.value() - 1.0).abs() < 1e-9);
        assert!((p.as_dbm() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = ResourceBlocks(2.0) + ResourceBlocks(3.0);
        assert_eq!(a, ResourceBlocks(5.0));
        assert_eq!(a - ResourceBlocks(1.0), ResourceBlocks(4.0));
        assert_eq!(a * 2.0, ResourceBlocks(10.0));
        assert_eq!(a / 5.0, ResourceBlocks(1.0));
        let total: ResourceBlocks = vec![ResourceBlocks(1.0); 4].into_iter().sum();
        assert_eq!(total, ResourceBlocks(4.0));
    }

    #[test]
    fn min_max_and_validity() {
        assert_eq!(Mbps(1.0).max(Mbps(2.0)), Mbps(2.0));
        assert_eq!(Mbps(1.0).min(Mbps(2.0)), Mbps(1.0));
        assert!(Mbps(0.0).is_valid());
        assert!(!Mbps(f64::NAN).is_valid());
        assert!(!Mbps(-1.0).is_valid());
    }

    #[test]
    fn hertz_scaling() {
        assert_eq!(Hertz::from_mhz(20.0).value(), 20e6);
        assert_eq!(Hertz::from_ghz(2.6).value(), 2.6e9);
        assert!((Hertz::from_mhz(180e-3).as_mhz() - 0.18).abs() < 1e-12);
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(Mbps(1.5).to_string(), "1.500 Mbps");
        assert_eq!(Meters(10.0).to_string(), "10.000 m");
    }

    #[test]
    #[should_panic(expected = "power must be positive")]
    fn zero_power_has_no_dbm() {
        let _ = Watts(0.0).as_dbm();
    }
}

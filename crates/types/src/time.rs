//! Simulation clock primitives.
//!
//! The simulator advances in discrete steps; [`SimTime`] is an absolute
//! instant and [`SimDuration`] a span, both stored as whole milliseconds so
//! that time arithmetic is exact and platform-independent.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// An absolute instant on the simulation clock (milliseconds since start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time (milliseconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: Self = Self(0);

    /// Builds an instant from whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        Self(secs * 1000)
    }

    /// Builds an instant from whole minutes.
    pub fn from_mins(mins: u64) -> Self {
        Self::from_secs(mins * 60)
    }

    /// Returns the instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Returns the instant in whole milliseconds.
    pub fn as_millis(self) -> u64 {
        self.0
    }

    /// Duration elapsed since `earlier`.
    ///
    /// Saturates to zero if `earlier` is in the future.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: Self = Self(0);

    /// Builds a span from whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        Self(ms)
    }

    /// Builds a span from whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        Self(secs * 1000)
    }

    /// Builds a span from fractional seconds (rounded to milliseconds).
    pub fn from_secs_f64(secs: f64) -> Self {
        Self((secs.max(0.0) * 1000.0).round() as u64)
    }

    /// Builds a span from whole minutes.
    pub fn from_mins(mins: u64) -> Self {
        Self::from_secs(mins * 60)
    }

    /// Returns the span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Returns the span in whole milliseconds.
    pub fn as_millis(self) -> u64 {
        self.0
    }

    /// Integer number of times `step` fits in this span.
    ///
    /// # Panics
    /// Panics if `step` is zero.
    pub fn steps(self, step: SimDuration) -> u64 {
        assert!(step.0 > 0, "step duration must be non-zero");
        self.0 / step.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: Self) -> Self {
        Self(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> Self {
        Self(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> Self {
        Self(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        Self(iter.map(|d| d.0).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_mins(5), SimTime::from_secs(300));
        assert_eq!(SimDuration::from_mins(5), SimDuration::from_secs(300));
        assert_eq!(
            SimDuration::from_secs_f64(1.5),
            SimDuration::from_millis(1500)
        );
    }

    #[test]
    fn since_saturates() {
        let early = SimTime::from_secs(10);
        let late = SimTime::from_secs(25);
        assert_eq!(late.since(early), SimDuration::from_secs(15));
        assert_eq!(early.since(late), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10) + SimDuration::from_secs(5);
        assert_eq!(t, SimTime::from_secs(15));
        assert_eq!(t - SimDuration::from_secs(20), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs(4) * 3, SimDuration::from_secs(12));
        assert_eq!(SimDuration::from_secs(12) / 4, SimDuration::from_secs(3));
    }

    #[test]
    fn steps_counts_whole_fits() {
        let interval = SimDuration::from_mins(5);
        assert_eq!(SimDuration::from_mins(60).steps(interval), 12);
        assert_eq!(SimDuration::from_secs(299).steps(interval), 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_step_panics() {
        let _ = SimDuration::from_secs(1).steps(SimDuration::ZERO);
    }

    #[test]
    fn negative_float_span_clamps() {
        assert_eq!(SimDuration::from_secs_f64(-2.0), SimDuration::ZERO);
    }
}

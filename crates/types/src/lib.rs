//! Shared vocabulary for the `msvs` workspace.
//!
//! This crate defines the identifiers, physical units, video categories,
//! geometric primitives, simulation clock, and statistical samplers used by
//! every other crate in the workspace. Everything here is plain data:
//! deterministic, serializable, and free of I/O.
//!
//! # Examples
//!
//! ```
//! use msvs_types::{UserId, Mbps, VideoCategory};
//!
//! let user = UserId(7);
//! let rate = Mbps(2.5);
//! assert_eq!(rate.as_bits_per_sec(), 2_500_000.0);
//! assert_eq!(VideoCategory::ALL.len(), 8);
//! println!("{user} watches {:?} at {rate}", VideoCategory::News);
//! ```

pub mod error;
pub mod ids;
pub mod position;
pub mod stats;
pub mod time;
pub mod units;
pub mod video;

pub use error::{Error, Result};
pub use ids::{BsId, GroupId, SegmentId, UserId, VideoId};
pub use position::Position;
pub use time::{SimDuration, SimTime};
pub use units::{CpuCycles, Hertz, Mbps, Meters, ResourceBlocks, Watts};
pub use video::{Representation, RepresentationLevel, VideoCategory};

//! Strongly-typed identifiers.
//!
//! Every entity in the simulation (user, video, multicast group, base
//! station, segment) has its own newtype id so that the compiler rejects
//! accidental cross-wiring, e.g. passing a [`VideoId`] where a [`UserId`] is
//! expected.

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index value.
            ///
            /// # Examples
            /// ```
            /// # use msvs_types::ids::UserId;
            /// assert_eq!(UserId(3).index(), 3);
            /// ```
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u32 {
            fn from(id: $name) -> u32 {
                id.0
            }
        }
    };
}

id_newtype!(
    /// Identifier of a streaming user (and of its digital twin).
    UserId,
    "u"
);
id_newtype!(
    /// Identifier of a short video in the catalog.
    VideoId,
    "v"
);
id_newtype!(
    /// Identifier of a multicast group produced by group construction.
    GroupId,
    "g"
);
id_newtype!(
    /// Identifier of a base station.
    BsId,
    "bs"
);
id_newtype!(
    /// Identifier of a segment within a video (segment 0 is the first).
    SegmentId,
    "s"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefix() {
        assert_eq!(UserId(4).to_string(), "u4");
        assert_eq!(VideoId(0).to_string(), "v0");
        assert_eq!(GroupId(2).to_string(), "g2");
        assert_eq!(BsId(1).to_string(), "bs1");
        assert_eq!(SegmentId(9).to_string(), "s9");
    }

    #[test]
    fn round_trips_through_u32() {
        let id = UserId::from(77u32);
        assert_eq!(u32::from(id), 77);
        assert_eq!(id.index(), 77);
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(UserId(1) < UserId(2));
        let mut v = vec![GroupId(3), GroupId(1), GroupId(2)];
        v.sort();
        assert_eq!(v, vec![GroupId(1), GroupId(2), GroupId(3)]);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(UserId::default(), UserId(0));
    }
}

//! Statistical samplers and descriptive statistics.
//!
//! Implemented on top of `rand`'s uniform source so the workspace needs no
//! extra distribution crates. All samplers are deterministic given the
//! caller-supplied RNG, which keeps simulations reproducible.

use rand::Rng;

/// Draws from a standard normal distribution via the Box–Muller transform.
///
/// # Examples
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let z = msvs_types::stats::standard_normal(&mut rng);
/// assert!(z.is_finite());
/// ```
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid u1 == 0 which would send ln to -inf.
    let u1: f64 = loop {
        let u = rng.gen::<f64>();
        if u > f64::MIN_POSITIVE {
            break u;
        }
    };
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draws from `N(mean, std_dev^2)`.
///
/// # Panics
/// Panics if `std_dev` is negative or either argument is non-finite.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    assert!(
        mean.is_finite() && std_dev.is_finite(),
        "normal parameters must be finite"
    );
    assert!(std_dev >= 0.0, "standard deviation must be non-negative");
    mean + std_dev * standard_normal(rng)
}

/// Draws from a log-normal distribution where the *underlying* normal has
/// the given mean and standard deviation (both in log-space).
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Draws from an exponential distribution with the given rate `lambda`.
///
/// # Panics
/// Panics if `lambda` is not strictly positive.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> f64 {
    assert!(lambda > 0.0, "exponential rate must be positive");
    let u: f64 = loop {
        let u = rng.gen::<f64>();
        if u > f64::MIN_POSITIVE {
            break u;
        }
    };
    -u.ln() / lambda
}

/// Draws from a Gamma(shape, scale) distribution.
///
/// Uses Marsaglia–Tsang for `shape >= 1` and the boost trick
/// `Gamma(a) = Gamma(a+1) * U^(1/a)` for `shape < 1`.
///
/// # Panics
/// Panics if `shape` or `scale` is not strictly positive.
pub fn gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64, scale: f64) -> f64 {
    assert!(shape > 0.0, "gamma shape must be positive");
    assert!(scale > 0.0, "gamma scale must be positive");
    if shape < 1.0 {
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        return gamma(rng, shape + 1.0, scale) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v * scale;
        }
    }
}

/// Draws a probability vector from a symmetric Dirichlet with concentration
/// `alpha` over `dim` components.
///
/// Smaller `alpha` yields spikier (more opinionated) preference vectors.
///
/// # Panics
/// Panics if `dim == 0` or `alpha <= 0`.
pub fn dirichlet<R: Rng + ?Sized>(rng: &mut R, alpha: f64, dim: usize) -> Vec<f64> {
    assert!(dim > 0, "dirichlet dimension must be positive");
    assert!(alpha > 0.0, "dirichlet concentration must be positive");
    let mut draws: Vec<f64> = (0..dim).map(|_| gamma(rng, alpha, 1.0)).collect();
    let total: f64 = draws.iter().sum();
    if total <= 0.0 {
        // Numerically degenerate; fall back to uniform.
        return vec![1.0 / dim as f64; dim];
    }
    for d in &mut draws {
        *d /= total;
    }
    draws
}

/// Zipf sampler over ranks `0..n` with exponent `s` (rank 0 most popular).
///
/// Uses an inverse-CDF table; construction is `O(n)`, sampling `O(log n)`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a Zipf distribution over `n` ranks with exponent `s`.
    ///
    /// # Errors
    /// Returns an error if `n == 0` or `s < 0` or `s` is non-finite.
    pub fn new(n: usize, s: f64) -> crate::Result<Self> {
        if n == 0 {
            return Err(crate::Error::invalid_config("n", "must be positive"));
        }
        if !s.is_finite() || s < 0.0 {
            return Err(crate::Error::invalid_config(
                "s",
                "exponent must be finite and non-negative",
            ));
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += (rank as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Ok(Self { cdf })
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Returns `true` when the distribution has a single rank.
    pub fn is_empty(&self) -> bool {
        false // construction guarantees n >= 1
    }

    /// Probability mass of a given rank (0-based).
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank >= self.cdf.len() {
            return 0.0;
        }
        let hi = self.cdf[rank];
        let lo = if rank == 0 { 0.0 } else { self.cdf[rank - 1] };
        hi - lo
    }

    /// Samples a rank (0-based, rank 0 most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// Samples an index proportionally to the given non-negative weights.
///
/// Returns `None` when the weights are empty or sum to zero.
pub fn weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> Option<usize> {
    let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
    if total <= 0.0 {
        return None;
    }
    let mut target = rng.gen::<f64>() * total;
    let mut last_valid = None;
    for (i, &w) in weights.iter().enumerate() {
        if !w.is_finite() || w <= 0.0 {
            continue;
        }
        last_valid = Some(i);
        if target < w {
            return Some(i);
        }
        target -= w;
    }
    last_valid
}

/// Arithmetic mean; returns 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation; returns 0.0 for fewer than two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Linear-interpolated percentile, `p` in `[0, 100]`.
///
/// Returns 0.0 for an empty slice.
///
/// # Panics
/// Panics if `p` is outside `[0, 100]` or any sample is NaN.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not be NaN"));
    let idx = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = idx.floor() as usize;
    let hi = idx.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = idx - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Empirical cumulative distribution function over observed samples.
///
/// Used by the swiping-probability abstraction: `F(t)` is the fraction of
/// sessions that ended (swiped) at or before watch duration `t`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from samples (NaNs are dropped).
    pub fn new(samples: impl IntoIterator<Item = f64>) -> Self {
        let mut sorted: Vec<f64> = samples.into_iter().filter(|x| x.is_finite()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaNs filtered"));
        Self { sorted }
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Returns `true` when no samples were retained.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(x)`: fraction of samples `<= x`. Returns 0.0 when empty.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&s| s <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF (quantile); `q` clamped to `[0, 1]`. Returns 0.0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((q * self.sorted.len() as f64).ceil() as usize).max(1) - 1;
        self.sorted[idx.min(self.sorted.len() - 1)]
    }

    /// Mean of the underlying samples.
    pub fn mean(&self) -> f64 {
        mean(&self.sorted)
    }

    /// Expected value of `min(X, cap)` — the mean sample truncated at `cap`.
    ///
    /// This is the expected engagement time when playback cannot exceed the
    /// video length `cap`.
    pub fn truncated_mean(&self, cap: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let s: f64 = self.sorted.iter().map(|&x| x.min(cap)).sum();
        s / self.sorted.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn normal_has_right_moments() {
        let mut r = rng();
        let xs: Vec<f64> = (0..20_000).map(|_| normal(&mut r, 5.0, 2.0)).collect();
        assert!((mean(&xs) - 5.0).abs() < 0.1, "mean {}", mean(&xs));
        assert!((std_dev(&xs) - 2.0).abs() < 0.1, "std {}", std_dev(&xs));
    }

    #[test]
    fn exponential_has_right_mean() {
        let mut r = rng();
        let xs: Vec<f64> = (0..20_000).map(|_| exponential(&mut r, 0.5)).collect();
        assert!((mean(&xs) - 2.0).abs() < 0.1);
        assert!(xs.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn gamma_has_right_mean_and_variance() {
        let mut r = rng();
        let (shape, scale) = (3.0, 2.0);
        let xs: Vec<f64> = (0..20_000).map(|_| gamma(&mut r, shape, scale)).collect();
        assert!((mean(&xs) - shape * scale).abs() < 0.2);
        let var = std_dev(&xs).powi(2);
        assert!((var - shape * scale * scale).abs() < 1.0, "var {var}");
    }

    #[test]
    fn gamma_small_shape_is_positive() {
        let mut r = rng();
        for _ in 0..1000 {
            assert!(gamma(&mut r, 0.3, 1.0) > 0.0);
        }
    }

    #[test]
    fn dirichlet_sums_to_one() {
        let mut r = rng();
        for _ in 0..100 {
            let p = dirichlet(&mut r, 0.5, 8);
            assert_eq!(p.len(), 8);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn zipf_pmf_is_monotone_decreasing() {
        let z = Zipf::new(100, 1.1).unwrap();
        for rank in 1..100 {
            assert!(z.pmf(rank) <= z.pmf(rank - 1));
        }
        let total: f64 = (0..100).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(z.pmf(100), 0.0);
    }

    #[test]
    fn zipf_sampling_matches_pmf() {
        let z = Zipf::new(10, 1.0).unwrap();
        let mut r = rng();
        let mut counts = [0usize; 10];
        let n = 50_000;
        for _ in 0..n {
            counts[z.sample(&mut r)] += 1;
        }
        for (rank, &count) in counts.iter().enumerate() {
            let emp = count as f64 / n as f64;
            assert!(
                (emp - z.pmf(rank)).abs() < 0.01,
                "rank {rank}: emp {emp} pmf {}",
                z.pmf(rank)
            );
        }
    }

    #[test]
    fn zipf_rejects_bad_config() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(5, -1.0).is_err());
        assert!(Zipf::new(5, f64::NAN).is_err());
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let z = Zipf::new(4, 0.0).unwrap();
        for rank in 0..4 {
            assert!((z.pmf(rank) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = rng();
        let w = [0.0, 3.0, 1.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[weighted_index(&mut r, &w).unwrap()] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[1] as f64 / counts[2] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn weighted_index_degenerate_cases() {
        let mut r = rng();
        assert_eq!(weighted_index(&mut r, &[]), None);
        assert_eq!(weighted_index(&mut r, &[0.0, 0.0]), None);
        assert_eq!(weighted_index(&mut r, &[f64::NAN, 1.0]), Some(1));
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn ecdf_eval_and_quantile() {
        let e = Ecdf::new([1.0, 2.0, 2.0, 4.0]);
        assert_eq!(e.len(), 4);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(2.0), 0.75);
        assert_eq!(e.eval(10.0), 1.0);
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.quantile(1.0), 4.0);
        assert_eq!(e.quantile(0.5), 2.0);
    }

    #[test]
    fn ecdf_truncated_mean() {
        let e = Ecdf::new([1.0, 3.0, 5.0]);
        assert!((e.truncated_mean(3.0) - (1.0 + 3.0 + 3.0) / 3.0).abs() < 1e-12);
        assert!((e.truncated_mean(100.0) - 3.0).abs() < 1e-12);
        assert_eq!(Ecdf::default().truncated_mean(3.0), 0.0);
    }

    #[test]
    fn ecdf_drops_nans() {
        let e = Ecdf::new([f64::NAN, 1.0, f64::INFINITY]);
        assert_eq!(e.len(), 1);
    }
}

//! Multicast and unicast radio resource accounting.
//!
//! Conventional multicast transmits one stream per group at a rate every
//! member can decode, so the *worst* member's spectral efficiency governs
//! the resource-block cost. Unicast (the baseline) sends a private stream
//! per user at that user's own efficiency.

use msvs_types::{Hertz, Mbps, ResourceBlocks};

/// The lowest spectral efficiency among group members.
///
/// Returns `None` for an empty group. Members in outage (efficiency 0)
/// dominate and yield `Some(0.0)`.
pub fn worst_user_efficiency(efficiencies: &[f64]) -> Option<f64> {
    efficiencies
        .iter()
        .copied()
        .fold(None, |acc: Option<f64>, e| {
            Some(match acc {
                None => e,
                Some(a) => a.min(e),
            })
        })
}

/// Resource blocks needed to multicast `rate` to a group whose worst member
/// has spectral efficiency `min_efficiency` (bits/s/Hz) over RBs of width
/// `rb_bandwidth`.
///
/// Returns `ResourceBlocks(f64::INFINITY)` when the group is in outage
/// (`min_efficiency <= 0`) but traffic is non-zero — the caller decides how
/// to handle infeasible groups.
///
/// # Panics
/// Panics if `rate` is negative or `rb_bandwidth` is not positive.
pub fn group_resource_demand(
    rate: Mbps,
    min_efficiency: f64,
    rb_bandwidth: Hertz,
) -> ResourceBlocks {
    assert!(rate.value() >= 0.0, "rate must be non-negative");
    assert!(rb_bandwidth.value() > 0.0, "rb bandwidth must be positive");
    if rate.value() == 0.0 {
        return ResourceBlocks::ZERO;
    }
    if min_efficiency <= 0.0 {
        return ResourceBlocks(f64::INFINITY);
    }
    ResourceBlocks(rate.as_bits_per_sec() / (min_efficiency * rb_bandwidth.value()))
}

/// Resource blocks needed to unicast per-user rates at per-user
/// efficiencies (the non-multicast baseline).
///
/// Users in outage contribute `f64::INFINITY`.
///
/// # Panics
/// Panics if slice lengths differ or `rb_bandwidth` is not positive.
pub fn unicast_resource_demand(
    rates: &[Mbps],
    efficiencies: &[f64],
    rb_bandwidth: Hertz,
) -> ResourceBlocks {
    assert_eq!(
        rates.len(),
        efficiencies.len(),
        "one efficiency per user rate"
    );
    rates
        .iter()
        .zip(efficiencies)
        .map(|(&r, &e)| group_resource_demand(r, e, rb_bandwidth))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    const RB: Hertz = Hertz(180_000.0);

    #[test]
    fn worst_user_rules() {
        assert_eq!(worst_user_efficiency(&[2.0, 0.5, 3.0]), Some(0.5));
        assert_eq!(worst_user_efficiency(&[]), None);
        assert_eq!(worst_user_efficiency(&[1.0, 0.0]), Some(0.0));
    }

    #[test]
    fn demand_matches_hand_calc() {
        // 1.8 Mbps at 2 bits/s/Hz over 180 kHz RBs: 1.8e6 / (2*1.8e5) = 5 RB.
        let d = group_resource_demand(Mbps(1.8), 2.0, RB);
        assert!((d.value() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn zero_rate_needs_nothing_even_in_outage() {
        assert_eq!(
            group_resource_demand(Mbps(0.0), 0.0, RB),
            ResourceBlocks::ZERO
        );
    }

    #[test]
    fn outage_with_traffic_is_infinite() {
        assert!(group_resource_demand(Mbps(1.0), 0.0, RB)
            .value()
            .is_infinite());
    }

    #[test]
    fn multicast_beats_unicast_for_identical_users() {
        // 10 users all wanting the same 2 Mbps stream at efficiency 2.0.
        let rates = vec![Mbps(2.0); 10];
        let effs = vec![2.0; 10];
        let uni = unicast_resource_demand(&rates, &effs, RB);
        let multi = group_resource_demand(Mbps(2.0), 2.0, RB);
        assert!((uni.value() - 10.0 * multi.value()).abs() < 1e-9);
    }

    #[test]
    fn multicast_degrades_with_one_bad_user() {
        let good = group_resource_demand(Mbps(2.0), 4.0, RB);
        let min_eff = worst_user_efficiency(&[4.0, 4.0, 0.5]).unwrap();
        let degraded = group_resource_demand(Mbps(2.0), min_eff, RB);
        assert!(degraded.value() > good.value() * 7.0);
    }

    #[test]
    #[should_panic(expected = "one efficiency per user")]
    fn unicast_length_mismatch_panics() {
        let _ = unicast_resource_demand(&[Mbps(1.0)], &[1.0, 2.0], RB);
    }
}

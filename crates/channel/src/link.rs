//! Link budget: SNR and spectral efficiency.

use msvs_types::{Hertz, Meters, Watts};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::fading::{Fading, RayleighFading, RicianFading};
use crate::pathloss::PathLossModel;

/// Which small-scale fading process the link applies to SNR samples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FadingKind {
    /// No small-scale fading (shadowing only).
    None,
    /// Rayleigh (non-line-of-sight), the default for urban campuses.
    Rayleigh,
    /// Rician with the given K factor (line-of-sight links).
    Rician(f64),
}

/// Static radio parameters of a base-station downlink.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// BS transmit power (per resource block's share of the carrier).
    pub tx_power: Watts,
    /// Large-scale propagation model.
    pub path_loss: PathLossModel,
    /// OFDMA resource-block bandwidth (LTE/NR numerology 0: 180 kHz).
    pub rb_bandwidth: Hertz,
    /// Receiver noise figure, dB.
    pub noise_figure_db: f64,
    /// Small-scale fading applied by [`Link::sample_snr_db`].
    pub fading: FadingKind,
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self {
            // 46 dBm carrier power shared across 100 RBs -> ~26 dBm per RB.
            tx_power: Watts::from_dbm(26.0),
            path_loss: PathLossModel::default(),
            rb_bandwidth: Hertz::from_mhz(0.18),
            noise_figure_db: 7.0,
            fading: FadingKind::Rayleigh,
        }
    }
}

/// Thermal noise density, dBm/Hz.
const THERMAL_NOISE_DBM_HZ: f64 = -174.0;

/// A downlink between a BS and a user; computes SNR and spectral
/// efficiency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    config: LinkConfig,
}

impl Link {
    /// Builds a link evaluator.
    pub fn new(config: LinkConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Noise power over one resource block, dBm.
    pub fn noise_power_dbm(&self) -> f64 {
        THERMAL_NOISE_DBM_HZ
            + 10.0 * self.config.rb_bandwidth.value().log10()
            + self.config.noise_figure_db
    }

    /// Mean (fading-averaged, median-shadowing) SNR at `distance`, dB.
    pub fn mean_snr_db(&self, distance: Meters) -> f64 {
        let rx_dbm = self.config.tx_power.as_dbm() - self.config.path_loss.median_loss_db(distance);
        rx_dbm - self.noise_power_dbm()
    }

    /// Instantaneous SNR sample at `distance`, dB: shadowing plus the
    /// configured small-scale fading applied.
    pub fn sample_snr_db<R: Rng + ?Sized>(&self, rng: &mut R, distance: Meters) -> f64 {
        let loss = self.config.path_loss.sample_loss_db(rng, distance);
        let gain = match self.config.fading {
            FadingKind::None => 1.0,
            FadingKind::Rayleigh => RayleighFading::new().sample_power_gain(rng),
            FadingKind::Rician(k) => RicianFading::new(k).sample_power_gain(rng),
        };
        let fade_db = 10.0 * gain.max(1e-12).log10();
        self.config.tx_power.as_dbm() - loss + fade_db - self.noise_power_dbm()
    }

    /// Achievable spectral efficiency at the given SNR, bits/s/Hz, via the
    /// CQI table.
    pub fn spectral_efficiency(&self, snr_db: f64) -> f64 {
        cqi_efficiency(snr_db)
    }

    /// Sustainable rate over `n_rb` resource blocks at `snr_db`.
    pub fn rate_over_rbs(&self, snr_db: f64, n_rb: f64) -> msvs_types::Mbps {
        let bps = self.spectral_efficiency(snr_db) * self.config.rb_bandwidth.value() * n_rb;
        msvs_types::Mbps::from_bits_per_sec(bps)
    }
}

/// 3GPP-style CQI table (15 entries, TS 36.213 table 7.2.3-1): SNR
/// thresholds (dB) and the corresponding modulation-and-coding spectral
/// efficiency (bits/s/Hz). Below the first threshold the link is in outage
/// (efficiency 0).
const CQI_TABLE: [(f64, f64); 15] = [
    (-6.7, 0.1523),
    (-4.7, 0.2344),
    (-2.3, 0.3770),
    (0.2, 0.6016),
    (2.4, 0.8770),
    (4.3, 1.1758),
    (5.9, 1.4766),
    (8.1, 1.9141),
    (10.3, 2.4063),
    (11.7, 2.7305),
    (14.1, 3.3223),
    (16.3, 3.9023),
    (18.7, 4.5234),
    (21.0, 5.1152),
    (22.7, 5.5547),
];

/// Spectral efficiency for a given SNR from the CQI lookup table.
///
/// # Examples
/// ```
/// # use msvs_channel::link::cqi_efficiency;
/// assert_eq!(cqi_efficiency(-10.0), 0.0); // outage
/// assert!(cqi_efficiency(25.0) > 5.0);    // top MCS
/// ```
pub fn cqi_efficiency(snr_db: f64) -> f64 {
    let mut eff = 0.0;
    for (threshold, e) in CQI_TABLE {
        if snr_db >= threshold {
            eff = e;
        } else {
            break;
        }
    }
    eff
}

/// Shannon-capacity spectral efficiency (upper bound used in ablations).
pub fn shannon_efficiency(snr_db: f64) -> f64 {
    (1.0 + 10f64.powf(snr_db / 10.0)).log2()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn noise_power_matches_hand_calc() {
        let link = Link::new(LinkConfig::default());
        // -174 + 10log10(180e3) + 7 = -174 + 52.55 + 7 ≈ -114.4 dBm.
        assert!((link.noise_power_dbm() + 114.45).abs() < 0.1);
    }

    #[test]
    fn snr_decreases_with_distance() {
        let link = Link::new(LinkConfig::default());
        let snrs: Vec<f64> = [10.0, 50.0, 150.0, 400.0, 900.0]
            .iter()
            .map(|&d| link.mean_snr_db(Meters(d)))
            .collect();
        assert!(snrs.windows(2).all(|w| w[1] < w[0]));
    }

    #[test]
    fn campus_cell_edge_is_usable() {
        // A user ~350 m from the BS should still get a positive-efficiency MCS.
        let link = Link::new(LinkConfig::default());
        let snr = link.mean_snr_db(Meters(350.0));
        assert!(
            link.spectral_efficiency(snr) > 0.0,
            "cell edge in outage: snr {snr} dB"
        );
    }

    #[test]
    fn cqi_table_is_monotone() {
        let mut prev = -1.0;
        for snr in (-10..30).map(|x| x as f64) {
            let e = cqi_efficiency(snr);
            assert!(e >= prev, "efficiency must be monotone in SNR");
            prev = e;
        }
    }

    #[test]
    fn cqi_below_shannon() {
        for snr in (-6..25).map(|x| x as f64) {
            assert!(
                cqi_efficiency(snr) <= shannon_efficiency(snr) + 1e-9,
                "CQI cannot beat Shannon at {snr} dB"
            );
        }
    }

    #[test]
    fn rate_scales_linearly_with_rbs() {
        let link = Link::new(LinkConfig::default());
        let r1 = link.rate_over_rbs(15.0, 1.0);
        let r10 = link.rate_over_rbs(15.0, 10.0);
        assert!((r10.value() - 10.0 * r1.value()).abs() < 1e-9);
    }

    #[test]
    fn sampled_snr_is_centered_near_mean() {
        let link = Link::new(LinkConfig::default());
        let mut rng = StdRng::seed_from_u64(4);
        let samples: Vec<f64> = (0..20_000)
            .map(|_| link.sample_snr_db(&mut rng, Meters(100.0)))
            .collect();
        let mean_sample = msvs_types::stats::mean(&samples);
        let mean = link.mean_snr_db(Meters(100.0));
        // Rayleigh fading in dB has mean ~ -2.5 dB (Euler-Mascheroni), so
        // the sampled mean sits a little below the fading-averaged mean.
        assert!(
            (mean_sample - (mean - 2.5)).abs() < 0.5,
            "sampled {mean_sample}, analytic {mean}"
        );
    }
}

#[cfg(test)]
mod fading_kind_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spread(kind: FadingKind) -> f64 {
        let link = Link::new(LinkConfig {
            fading: kind,
            path_loss: crate::pathloss::PathLossModel {
                shadowing_sigma_db: 0.0,
                ..Default::default()
            },
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(9);
        let xs: Vec<f64> = (0..5000)
            .map(|_| link.sample_snr_db(&mut rng, Meters(100.0)))
            .collect();
        msvs_types::stats::std_dev(&xs)
    }

    #[test]
    fn fading_kinds_order_by_variability() {
        let none = spread(FadingKind::None);
        let rician = spread(FadingKind::Rician(10.0));
        let rayleigh = spread(FadingKind::Rayleigh);
        assert!(none < 1e-9, "no fading means deterministic SNR, got {none}");
        assert!(rician < rayleigh, "LOS fades less: {rician} vs {rayleigh}");
        assert!(rician > 0.1, "rician still fades");
    }

    #[test]
    fn no_fading_matches_mean_snr() {
        let link = Link::new(LinkConfig {
            fading: FadingKind::None,
            path_loss: crate::pathloss::PathLossModel {
                shadowing_sigma_db: 0.0,
                ..Default::default()
            },
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(10);
        let s = link.sample_snr_db(&mut rng, Meters(200.0));
        assert!((s - link.mean_snr_db(Meters(200.0))).abs() < 1e-9);
    }
}

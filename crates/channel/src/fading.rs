//! Small-scale fading.

use rand::Rng;

/// A small-scale fading process producing multiplicative *power* gains
/// (linear, mean 1).
pub trait Fading: Send {
    /// Draws one power gain sample (linear scale, `E[g] = 1`).
    fn sample_power_gain<R: Rng + ?Sized>(&self, rng: &mut R) -> f64
    where
        Self: Sized;

    /// The gain averaged over fading (always 1 for normalised processes).
    fn mean_power_gain(&self) -> f64 {
        1.0
    }
}

/// Rayleigh fading: no line of sight; power gain is Exp(1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RayleighFading;

impl RayleighFading {
    /// Builds a Rayleigh fading process.
    pub fn new() -> Self {
        Self
    }
}

impl Fading for RayleighFading {
    fn sample_power_gain<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        msvs_types::stats::exponential(rng, 1.0)
    }
}

/// Rician fading with factor `k` (ratio of line-of-sight to scattered
/// power). `k = 0` degenerates to Rayleigh; large `k` approaches a constant
/// unit gain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RicianFading {
    k: f64,
}

impl RicianFading {
    /// Builds a Rician process with factor `k >= 0`.
    ///
    /// # Panics
    /// Panics if `k` is negative or non-finite.
    pub fn new(k: f64) -> Self {
        assert!(k.is_finite() && k >= 0.0, "rician k must be non-negative");
        Self { k }
    }

    /// The Rician K factor.
    pub fn k(&self) -> f64 {
        self.k
    }
}

impl Fading for RicianFading {
    fn sample_power_gain<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Complex Gaussian with LOS component, normalised to unit mean power:
        // h = sqrt(k/(k+1)) + CN(0, 1/(k+1)); gain = |h|^2.
        let los = (self.k / (self.k + 1.0)).sqrt();
        let sigma = (1.0 / (2.0 * (self.k + 1.0))).sqrt();
        let re = los + sigma * msvs_types::stats::standard_normal(rng);
        let im = sigma * msvs_types::stats::standard_normal(rng);
        re * re + im * im
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn empirical_mean<F: Fading>(f: &F, n: usize) -> f64 {
        let mut rng = StdRng::seed_from_u64(3);
        let xs: Vec<f64> = (0..n).map(|_| f.sample_power_gain(&mut rng)).collect();
        msvs_types::stats::mean(&xs)
    }

    #[test]
    fn rayleigh_power_gain_has_unit_mean() {
        let m = empirical_mean(&RayleighFading::new(), 40_000);
        assert!((m - 1.0).abs() < 0.03, "mean {m}");
    }

    #[test]
    fn rician_power_gain_has_unit_mean() {
        for k in [0.0, 1.0, 5.0, 20.0] {
            let m = empirical_mean(&RicianFading::new(k), 40_000);
            assert!((m - 1.0).abs() < 0.03, "k={k} mean {m}");
        }
    }

    #[test]
    fn rician_variance_shrinks_with_k() {
        let variance = |k: f64| {
            let mut rng = StdRng::seed_from_u64(5);
            let f = RicianFading::new(k);
            let xs: Vec<f64> = (0..20_000).map(|_| f.sample_power_gain(&mut rng)).collect();
            msvs_types::stats::std_dev(&xs).powi(2)
        };
        let v0 = variance(0.0);
        let v10 = variance(10.0);
        assert!(
            v10 < v0 / 3.0,
            "k=10 var {v10} should be far below k=0 var {v0}"
        );
    }

    #[test]
    fn gains_are_nonnegative() {
        let mut rng = StdRng::seed_from_u64(6);
        let ray = RayleighFading::new();
        let ric = RicianFading::new(3.0);
        for _ in 0..1000 {
            assert!(ray.sample_power_gain(&mut rng) >= 0.0);
            assert!(ric.sample_power_gain(&mut rng) >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_k_panics() {
        let _ = RicianFading::new(-1.0);
    }
}

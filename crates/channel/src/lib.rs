//! Wireless channel substrate.
//!
//! Radio resource demand in the paper is "how many resource blocks must be
//! reserved to carry a multicast group's video traffic". That number falls
//! out of a standard link-budget chain, which this crate implements from
//! textbook models:
//!
//! 1. [`pathloss`] — log-distance path loss with log-normal shadowing;
//! 2. [`fading`] — small-scale Rayleigh/Rician power fading;
//! 3. [`link`] — SNR computation and the 3GPP-style CQI table mapping SNR
//!    to spectral efficiency;
//! 4. [`multicast`] — conventional multicast (group rate limited by the
//!    worst member) and the unicast baseline.
//!
//! # Examples
//!
//! ```
//! use msvs_channel::{LinkConfig, Link};
//! use msvs_types::Meters;
//!
//! let link = Link::new(LinkConfig::default());
//! let near = link.mean_snr_db(Meters(50.0));
//! let far = link.mean_snr_db(Meters(500.0));
//! assert!(near > far, "SNR degrades with distance");
//! ```

pub mod fading;
pub mod link;
pub mod multicast;
pub mod pathloss;

pub use fading::{Fading, RayleighFading, RicianFading};
pub use link::{FadingKind, Link, LinkConfig};
pub use multicast::{group_resource_demand, unicast_resource_demand, worst_user_efficiency};
pub use pathloss::PathLossModel;

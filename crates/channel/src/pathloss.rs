//! Large-scale path loss.

use msvs_types::Meters;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Log-distance path loss with optional log-normal shadowing.
///
/// `PL(d) = PL(d0) + 10 n log10(d / d0) + X_sigma`, the standard urban
/// macro model. Defaults follow a 2.6 GHz campus deployment: reference loss
/// 38 dB at 1 m, exponent 3.5, shadowing σ = 6 dB.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathLossModel {
    /// Path loss at the reference distance, dB.
    pub reference_loss_db: f64,
    /// Reference distance, metres.
    pub reference_distance: f64,
    /// Path-loss exponent `n` (2 free space, 3–4 urban).
    pub exponent: f64,
    /// Log-normal shadowing standard deviation, dB.
    pub shadowing_sigma_db: f64,
}

impl Default for PathLossModel {
    fn default() -> Self {
        Self {
            reference_loss_db: 38.0,
            reference_distance: 1.0,
            exponent: 3.5,
            shadowing_sigma_db: 6.0,
        }
    }
}

impl PathLossModel {
    /// Free-space variant (exponent 2, no shadowing) for tests/calibration.
    pub fn free_space() -> Self {
        Self {
            reference_loss_db: 38.0,
            reference_distance: 1.0,
            exponent: 2.0,
            shadowing_sigma_db: 0.0,
        }
    }

    /// Deterministic (median) path loss at `distance`, in dB.
    ///
    /// Distances below the reference distance clamp to it.
    pub fn median_loss_db(&self, distance: Meters) -> f64 {
        let d = distance.value().max(self.reference_distance);
        self.reference_loss_db + 10.0 * self.exponent * (d / self.reference_distance).log10()
    }

    /// Path loss with a fresh shadowing draw, in dB.
    pub fn sample_loss_db<R: Rng + ?Sized>(&self, rng: &mut R, distance: Meters) -> f64 {
        self.median_loss_db(distance) + msvs_types::stats::normal(rng, 0.0, self.shadowing_sigma_db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn loss_increases_with_distance() {
        let m = PathLossModel::default();
        let mut prev = 0.0;
        for d in [1.0, 10.0, 50.0, 200.0, 800.0] {
            let loss = m.median_loss_db(Meters(d));
            assert!(loss > prev, "loss must grow with distance");
            prev = loss;
        }
    }

    #[test]
    fn reference_distance_clamps() {
        let m = PathLossModel::default();
        assert_eq!(
            m.median_loss_db(Meters(0.001)),
            m.median_loss_db(Meters(1.0))
        );
    }

    #[test]
    fn free_space_slope_is_20db_per_decade() {
        let m = PathLossModel::free_space();
        let l10 = m.median_loss_db(Meters(10.0));
        let l100 = m.median_loss_db(Meters(100.0));
        assert!((l100 - l10 - 20.0).abs() < 1e-9);
    }

    #[test]
    fn shadowing_has_configured_spread() {
        let m = PathLossModel::default();
        let mut rng = StdRng::seed_from_u64(8);
        let samples: Vec<f64> = (0..5000)
            .map(|_| m.sample_loss_db(&mut rng, Meters(100.0)))
            .collect();
        let median = m.median_loss_db(Meters(100.0));
        let mean = msvs_types::stats::mean(&samples);
        let sd = msvs_types::stats::std_dev(&samples);
        assert!((mean - median).abs() < 0.3, "shadowing is zero-mean");
        assert!((sd - 6.0).abs() < 0.3, "sigma should be ~6 dB, got {sd}");
    }

    #[test]
    fn zero_sigma_is_deterministic() {
        let m = PathLossModel {
            shadowing_sigma_db: 0.0,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            m.sample_loss_db(&mut rng, Meters(100.0)),
            m.median_loss_db(Meters(100.0))
        );
    }
}

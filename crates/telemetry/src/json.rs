//! A minimal JSON value type with emitter and parser.
//!
//! The workspace runs in environments without `serde_json`, and the
//! telemetry subsystem only needs flat objects of scalars (one journal
//! entry per line), so a ~200-line hand-rolled implementation keeps the
//! crate dependency-free while staying interoperable with standard JSONL
//! tooling.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value. Objects use a [`BTreeMap`] so emission order is
/// deterministic regardless of insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Self {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// The value under `key` if this is an object holding it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Numeric view of this value.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Integer view (rejects non-integral numbers).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// String view of this value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Parses one JSON document from `input`.
    ///
    /// # Errors
    /// Returns a human-readable message on malformed input or trailing
    /// non-whitespace.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b" \t\r\n".contains(b))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || b"+-.eE".contains(&b))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    // Bulk-consume a run of plain ASCII; validating from
                    // `pos` to end-of-input per character is quadratic on
                    // megabyte-scale documents (checkpoint lines).
                    let start = self.pos;
                    while self
                        .peek()
                        .is_some_and(|b| b != b'"' && b != b'\\' && b < 0x80)
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("ascii bytes are valid utf-8"),
                    );
                }
                Some(_) => {
                    // Decode one multi-byte UTF-8 character from a bounded
                    // window (a code point is at most four bytes).
                    let end = (self.pos + 4).min(self.bytes.len());
                    let c = match std::str::from_utf8(&self.bytes[self.pos..end]) {
                        Ok(s) => s.chars().next().unwrap(),
                        // A trailing char may leave a partial neighbour in
                        // the window; valid_up_to > 0 means the first char
                        // itself decoded cleanly.
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&self.bytes[self.pos..self.pos + e.valid_up_to()])
                                .expect("validated prefix")
                                .chars()
                                .next()
                                .unwrap()
                        }
                        Err(_) => return Err("invalid utf-8 in string".to_string()),
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_flat_object() {
        let v = Json::obj([
            ("name", Json::Str("GroupsFormed".into())),
            ("k", Json::Num(4.0)),
            ("silhouette", Json::Num(0.518)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
        ]);
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn escapes_and_unescapes_strings() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}".into());
        let text = v.to_string();
        assert_eq!(text, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_nested_structures_and_numbers() {
        let v = Json::parse(r#"{"a":[1,2.5,-3e2],"b":{"c":null}}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap(),
            &Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Num(-300.0)])
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Null));
    }

    #[test]
    fn integers_emit_without_fraction() {
        assert_eq!(Json::Num(42.0).to_string(), "42");
        assert_eq!(Json::Num(42.5).to_string(), "42.5");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,2").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"open").is_err());
    }
}

//! Declarative service-level objectives and the deterministic watchdog
//! that judges a run against them.
//!
//! An [`SloPolicy`] mirrors the fault-profile pattern (JSON profiles +
//! named builtins): a small set of optional rules over signals the
//! simulation produces at every interval boundary. The
//! [`SloWatchdog`] evaluates the policy once per interval and returns
//! [`SloTransition`]s — breach/recovery edges — that the caller turns
//! into journal events and counters. Evaluation is a pure function of
//! the sim-time [`SloSignals`], so the breach stream is bit-identical
//! across thread and shard counts.
//!
//! One rule family is intentionally *not* deterministic: stage-p99
//! latency ceilings judge **wall-clock** histograms, so their breach
//! edges vary run to run. They are still evaluated at interval
//! boundaries (latency regressions should page like any other
//! objective), but determinism tests use policies without them.

use std::collections::BTreeMap;

use crate::json::Json;

/// Rule identity for the per-shard availability floor.
pub const RULE_AVAILABILITY: &str = "availability";
/// Rule identity for the twin-coverage floor.
pub const RULE_COVERAGE: &str = "coverage";
/// Rule identity for the degraded-interval budget.
pub const RULE_DEGRADED: &str = "degraded_budget";
/// Rule-identity prefix for stage-p99 latency ceilings.
pub const RULE_STAGE_P99_PREFIX: &str = "stage_p99:";

/// Counter family bumped once per rule breach edge.
pub const SLO_BREACHES_TOTAL: &str = "slo_breaches_total";

/// A declarative SLO policy over per-interval simulation signals.
///
/// Every rule is optional; [`SloPolicy::none`] (all rules absent) is
/// the noop policy and is guaranteed not to change a run in any
/// observable way. Policies are loaded from JSON profiles or named
/// builtins, mirroring `msvs-faults::FaultPlan`.
#[derive(Debug, Clone, PartialEq)]
pub struct SloPolicy {
    /// Minimum per-shard availability (worst shard is judged). Breached
    /// on any interval where some shard's cumulative availability drops
    /// below the floor. Inert on single-shard runs, which report no
    /// per-shard availability.
    pub availability_floor: Option<f64>,
    /// Minimum fresh-twin coverage entering prediction.
    pub coverage_floor: Option<f64>,
    /// Maximum cumulative degraded (fallback-path) intervals.
    pub degraded_budget: Option<u64>,
    /// Wall-clock p99 ceilings, milliseconds, per stage name. Judged
    /// against the live `stage_ms` histograms — **not deterministic**.
    pub stage_p99_ms: BTreeMap<String, f64>,
    /// Burn budget: how many rule-breach intervals the run may accrue
    /// before the policy is considered hard-breached (per rule).
    pub breach_budget: u64,
}

impl Default for SloPolicy {
    fn default() -> Self {
        Self::none()
    }
}

impl SloPolicy {
    /// The empty policy: no rules, bit-identical to no policy at all.
    pub fn none() -> Self {
        SloPolicy {
            availability_floor: None,
            coverage_floor: None,
            degraded_budget: None,
            stage_p99_ms: BTreeMap::new(),
            breach_budget: 0,
        }
    }

    /// Whether the policy holds no rules and can be dropped outright.
    pub fn is_noop(&self) -> bool {
        self.availability_floor.is_none()
            && self.coverage_floor.is_none()
            && self.degraded_budget.is_none()
            && self.stage_p99_ms.is_empty()
    }

    /// Validates every rule bound.
    ///
    /// # Errors
    /// Returns `(field, reason)` for the first out-of-range bound.
    pub fn validate(&self) -> Result<(), (String, String)> {
        let unit = |field: &str, v: f64| {
            if (0.0..=1.0).contains(&v) {
                Ok(())
            } else {
                Err((format!("slo.{field}"), "must be in [0, 1]".to_string()))
            }
        };
        if let Some(v) = self.availability_floor {
            unit("availability_floor", v)?;
        }
        if let Some(v) = self.coverage_floor {
            unit("coverage_floor", v)?;
        }
        for (stage, ceiling) in &self.stage_p99_ms {
            if stage.is_empty() {
                return Err((
                    "slo.stage_p99_ms".to_string(),
                    "stage name must be non-empty".to_string(),
                ));
            }
            if !ceiling.is_finite() || *ceiling <= 0.0 {
                return Err((
                    format!("slo.stage_p99_ms.{stage}"),
                    "ceiling must be finite and positive".to_string(),
                ));
            }
        }
        Ok(())
    }

    /// Names of the built-in policies accepted by [`SloPolicy::builtin`].
    pub const BUILTINS: [&'static str; 2] = ["strict", "lenient"];

    /// A named built-in policy, or `None` for an unknown name.
    pub fn builtin(name: &str) -> Option<Self> {
        match name {
            // Zero tolerance: any shard dip, coverage loss, or degraded
            // interval is an immediate hard breach.
            "strict" => Some(SloPolicy {
                availability_floor: Some(0.999),
                coverage_floor: Some(0.95),
                degraded_budget: Some(0),
                breach_budget: 0,
                ..Self::none()
            }),
            // Tolerates transient outages and fallback predictions but
            // still catches sustained erosion.
            "lenient" => Some(SloPolicy {
                availability_floor: Some(0.90),
                coverage_floor: Some(0.50),
                degraded_budget: Some(2),
                breach_budget: 4,
                ..Self::none()
            }),
            _ => None,
        }
    }

    /// Serialises the policy as a JSON profile.
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(&'static str, Json)> =
            vec![("breach_budget", Json::Num(self.breach_budget as f64))];
        if let Some(v) = self.availability_floor {
            pairs.push(("availability_floor", Json::Num(v)));
        }
        if let Some(v) = self.coverage_floor {
            pairs.push(("coverage_floor", Json::Num(v)));
        }
        if let Some(v) = self.degraded_budget {
            pairs.push(("degraded_budget", Json::Num(v as f64)));
        }
        if !self.stage_p99_ms.is_empty() {
            pairs.push((
                "stage_p99_ms",
                Json::Obj(
                    self.stage_p99_ms
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ));
        }
        Json::obj(pairs)
    }

    /// Builds a policy from a parsed JSON profile. Absent fields keep
    /// their [`SloPolicy::none`] defaults, so `{}` is the empty policy.
    ///
    /// # Errors
    /// Returns a message naming the malformed or unknown key.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        const KNOWN_KEYS: [&str; 5] = [
            "availability_floor",
            "coverage_floor",
            "degraded_budget",
            "stage_p99_ms",
            "breach_budget",
        ];
        let map = match json {
            Json::Obj(map) => map,
            _ => return Err("SLO profile must be a JSON object".to_string()),
        };
        for key in map.keys() {
            if !KNOWN_KEYS.contains(&key.as_str()) {
                return Err(format!("unknown key `{key}` in profile"));
            }
        }
        let bad = |key: &str, reason: &str| format!("`{key}` {reason}");
        let mut policy = SloPolicy::none();
        if let Some(v) = map.get("availability_floor") {
            policy.availability_floor = Some(
                v.as_f64()
                    .ok_or_else(|| bad("availability_floor", "must be a number"))?,
            );
        }
        if let Some(v) = map.get("coverage_floor") {
            policy.coverage_floor = Some(
                v.as_f64()
                    .ok_or_else(|| bad("coverage_floor", "must be a number"))?,
            );
        }
        if let Some(v) = map.get("degraded_budget") {
            policy.degraded_budget = Some(
                v.as_u64()
                    .ok_or_else(|| bad("degraded_budget", "must be a non-negative integer"))?,
            );
        }
        if let Some(v) = map.get("stage_p99_ms") {
            let obj = match v {
                Json::Obj(obj) => obj,
                _ => return Err(bad("stage_p99_ms", "must be an object of stage -> ms")),
            };
            for (stage, ceiling) in obj {
                let ms = ceiling
                    .as_f64()
                    .ok_or_else(|| bad("stage_p99_ms", "ceilings must be numbers"))?;
                policy.stage_p99_ms.insert(stage.clone(), ms);
            }
        }
        if let Some(v) = map.get("breach_budget") {
            policy.breach_budget = v
                .as_u64()
                .ok_or_else(|| bad("breach_budget", "must be a non-negative integer"))?;
        }
        policy
            .validate()
            .map_err(|(field, reason)| format!("{field} {reason}"))?;
        Ok(policy)
    }

    /// Parses a JSON profile document.
    ///
    /// # Errors
    /// Returns a message for malformed JSON or an invalid profile.
    pub fn parse(text: &str) -> Result<Self, String> {
        let json = Json::parse(text).map_err(|e| format!("invalid JSON profile: {e}"))?;
        Self::from_json(&json)
    }
}

/// The per-interval signals an [`SloWatchdog`] judges.
///
/// All fields except `stage_p99_ms` are pure functions of the seeded
/// simulation state, so the resulting breach stream is deterministic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SloSignals {
    /// The interval just completed.
    pub interval: u64,
    /// Worst per-shard cumulative availability, or `None` on
    /// single-shard runs (the rule is inert without shards).
    pub min_shard_availability: Option<f64>,
    /// Fresh-twin coverage entering this interval's prediction.
    pub twin_coverage: Option<f64>,
    /// Cumulative degraded (fallback-path) intervals so far.
    pub degraded_intervals: u64,
    /// Observed wall-clock p99 per stage, milliseconds. Only stages
    /// with a configured ceiling need to be present.
    pub stage_p99_ms: BTreeMap<String, f64>,
}

/// Direction of an SLO edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloEdge {
    /// The rule crossed from meeting to violating its objective.
    Breached,
    /// The rule returned within its objective.
    Recovered,
}

/// One breach or recovery edge produced by [`SloWatchdog::observe`].
#[derive(Debug, Clone, PartialEq)]
pub struct SloTransition {
    /// The interval the edge was observed at.
    pub interval: u64,
    /// Rule identity (`availability`, `coverage`, `degraded_budget`,
    /// or `stage_p99:<stage>`).
    pub slo: String,
    /// The observed signal value.
    pub value: f64,
    /// The policy bound it was judged against.
    pub threshold: f64,
    pub edge: SloEdge,
}

#[derive(Debug, Clone, Default)]
struct RuleState {
    breached: bool,
    breach_intervals: u64,
    worst_value: Option<f64>,
}

/// Stateful evaluator: feeds interval signals through an
/// [`SloPolicy`], tracking breach edges and burn accounting.
#[derive(Debug, Clone)]
pub struct SloWatchdog {
    policy: SloPolicy,
    rules: BTreeMap<String, RuleState>,
    intervals_evaluated: u64,
}

impl SloWatchdog {
    /// Builds a watchdog for `policy`.
    pub fn new(policy: SloPolicy) -> Self {
        SloWatchdog {
            policy,
            rules: BTreeMap::new(),
            intervals_evaluated: 0,
        }
    }

    /// The policy under evaluation.
    pub fn policy(&self) -> &SloPolicy {
        &self.policy
    }

    /// Evaluates every configured rule against `signals`, returning the
    /// breach/recovery edges in a fixed rule order (availability,
    /// coverage, degraded budget, then stage ceilings sorted by stage).
    pub fn observe(&mut self, signals: &SloSignals) -> Vec<SloTransition> {
        self.intervals_evaluated += 1;
        let mut edges = Vec::new();
        // (identity, observed value, threshold, violated; lower-is-bad
        // rules pass `value < floor`, budget rules `value > ceiling`).
        let mut checks: Vec<(String, f64, f64, bool)> = Vec::new();
        if let Some(floor) = self.policy.availability_floor {
            if let Some(avail) = signals.min_shard_availability {
                checks.push((RULE_AVAILABILITY.to_string(), avail, floor, avail < floor));
            }
        }
        if let Some(floor) = self.policy.coverage_floor {
            if let Some(coverage) = signals.twin_coverage {
                checks.push((RULE_COVERAGE.to_string(), coverage, floor, coverage < floor));
            }
        }
        if let Some(budget) = self.policy.degraded_budget {
            let used = signals.degraded_intervals as f64;
            checks.push((
                RULE_DEGRADED.to_string(),
                used,
                budget as f64,
                signals.degraded_intervals > budget,
            ));
        }
        for (stage, ceiling) in &self.policy.stage_p99_ms {
            if let Some(p99) = signals.stage_p99_ms.get(stage) {
                checks.push((
                    format!("{RULE_STAGE_P99_PREFIX}{stage}"),
                    *p99,
                    *ceiling,
                    *p99 > *ceiling,
                ));
            }
        }
        for (slo, value, threshold, violated) in checks {
            let state = self.rules.entry(slo.clone()).or_default();
            if violated {
                state.breach_intervals += 1;
                // "Worst" tracks the most violating observation seen.
                let worse = match (
                    state.worst_value,
                    slo.starts_with(RULE_STAGE_P99_PREFIX) || slo == RULE_DEGRADED,
                ) {
                    (None, _) => true,
                    (Some(w), true) => value > w, // ceilings: higher is worse
                    (Some(w), false) => value < w, // floors: lower is worse
                };
                if worse {
                    state.worst_value = Some(value);
                }
            }
            if violated != state.breached {
                state.breached = violated;
                edges.push(SloTransition {
                    interval: signals.interval,
                    slo,
                    value,
                    threshold,
                    edge: if violated {
                        SloEdge::Breached
                    } else {
                        SloEdge::Recovered
                    },
                });
            }
        }
        edges
    }

    /// Whether any rule has burned past the policy's breach budget.
    pub fn hard_breached(&self) -> bool {
        self.rules
            .values()
            .any(|s| s.breach_intervals > self.policy.breach_budget)
    }

    /// End-of-run accounting for the report.
    pub fn report(&self) -> SloReport {
        SloReport {
            breach_budget: self.policy.breach_budget,
            intervals_evaluated: self.intervals_evaluated,
            hard_breached: self.hard_breached(),
            rules: self
                .rules
                .iter()
                .map(|(slo, s)| SloRuleReport {
                    slo: slo.clone(),
                    breach_intervals: s.breach_intervals,
                    burn_rate: s.breach_intervals as f64
                        / (self.policy.breach_budget.max(1)) as f64,
                    worst_value: s.worst_value,
                    breached_at_end: s.breached,
                })
                .collect(),
        }
    }
}

/// Per-rule accounting in an [`SloReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct SloRuleReport {
    /// Rule identity.
    pub slo: String,
    /// Intervals this rule spent in violation.
    pub breach_intervals: u64,
    /// `breach_intervals / max(breach_budget, 1)` — ≥ 1.0 means the
    /// budget is exhausted.
    pub burn_rate: f64,
    /// Most violating observation, or `None` if the rule never fired.
    pub worst_value: Option<f64>,
    /// Whether the rule was still in violation at the final interval.
    pub breached_at_end: bool,
}

/// End-of-run SLO accounting attached to the simulation report.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// Allowed breach intervals per rule before a hard breach.
    pub breach_budget: u64,
    /// Intervals the watchdog judged.
    pub intervals_evaluated: u64,
    /// Whether any rule burned past the budget.
    pub hard_breached: bool,
    /// Per-rule accounting for every rule that was ever evaluated.
    pub rules: Vec<SloRuleReport>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signals(interval: u64, avail: f64, coverage: f64, degraded: u64) -> SloSignals {
        SloSignals {
            interval,
            min_shard_availability: Some(avail),
            twin_coverage: Some(coverage),
            degraded_intervals: degraded,
            stage_p99_ms: BTreeMap::new(),
        }
    }

    #[test]
    fn empty_policy_is_noop_and_round_trips() {
        let policy = SloPolicy::none();
        assert!(policy.is_noop());
        assert_eq!(SloPolicy::parse("{}").unwrap(), policy);
        let text = policy.to_json().to_string();
        assert_eq!(SloPolicy::parse(&text).unwrap(), policy);
    }

    #[test]
    fn builtins_resolve_validate_and_round_trip() {
        for name in SloPolicy::BUILTINS {
            let policy = SloPolicy::builtin(name).unwrap();
            assert!(!policy.is_noop(), "{name} must hold rules");
            policy.validate().unwrap();
            let text = policy.to_json().to_string();
            assert_eq!(SloPolicy::parse(&text).unwrap(), policy, "{name}");
        }
        assert!(SloPolicy::builtin("nope").is_none());
    }

    #[test]
    fn profiles_reject_unknown_keys_and_bad_bounds() {
        let err = SloPolicy::parse(r#"{"availability_flor":0.9}"#).unwrap_err();
        assert!(err.contains("unknown key"), "{err}");
        let err = SloPolicy::parse(r#"{"coverage_floor":1.5}"#).unwrap_err();
        assert!(err.contains("[0, 1]"), "{err}");
        let err = SloPolicy::parse(r#"{"stage_p99_ms":{"kmeans_fit":-1}}"#).unwrap_err();
        assert!(err.contains("positive"), "{err}");
        assert!(SloPolicy::parse("not json").is_err());
    }

    #[test]
    fn watchdog_emits_breach_and_recovery_edges_once() {
        let policy = SloPolicy {
            availability_floor: Some(0.95),
            ..SloPolicy::none()
        };
        let mut dog = SloWatchdog::new(policy);
        assert!(dog.observe(&signals(0, 1.0, 1.0, 0)).is_empty());
        let edges = dog.observe(&signals(1, 0.5, 1.0, 0));
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].slo, RULE_AVAILABILITY);
        assert_eq!(edges[0].edge, SloEdge::Breached);
        assert_eq!(edges[0].value, 0.5);
        assert_eq!(edges[0].threshold, 0.95);
        // Still breached: no new edge, but burn keeps accruing.
        assert!(dog.observe(&signals(2, 0.6, 1.0, 0)).is_empty());
        let edges = dog.observe(&signals(3, 1.0, 1.0, 0));
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].edge, SloEdge::Recovered);
        let report = dog.report();
        assert_eq!(report.rules.len(), 1);
        assert_eq!(report.rules[0].breach_intervals, 2);
        assert_eq!(report.rules[0].worst_value, Some(0.5));
        assert!(!report.rules[0].breached_at_end);
    }

    #[test]
    fn burn_budget_gates_hard_breach() {
        let policy = SloPolicy {
            coverage_floor: Some(0.9),
            breach_budget: 1,
            ..SloPolicy::none()
        };
        let mut dog = SloWatchdog::new(policy);
        dog.observe(&signals(0, 1.0, 0.5, 0));
        assert!(!dog.hard_breached(), "one breach interval is within budget");
        dog.observe(&signals(1, 1.0, 0.5, 0));
        assert!(dog.hard_breached(), "second breach interval burns past it");
        let report = dog.report();
        assert!(report.hard_breached);
        assert_eq!(report.rules[0].burn_rate, 2.0);
    }

    #[test]
    fn degraded_budget_judges_cumulative_count() {
        let policy = SloPolicy {
            degraded_budget: Some(1),
            ..SloPolicy::none()
        };
        let mut dog = SloWatchdog::new(policy);
        assert!(dog.observe(&signals(0, 1.0, 1.0, 1)).is_empty());
        let edges = dog.observe(&signals(1, 1.0, 1.0, 2));
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].slo, RULE_DEGRADED);
        assert_eq!(edges[0].edge, SloEdge::Breached);
    }

    #[test]
    fn availability_rule_is_inert_without_shard_signal() {
        let policy = SloPolicy {
            availability_floor: Some(0.999),
            ..SloPolicy::none()
        };
        let mut dog = SloWatchdog::new(policy);
        let mut s = signals(0, 0.0, 1.0, 0);
        s.min_shard_availability = None;
        assert!(dog.observe(&s).is_empty());
        assert!(dog.report().rules.is_empty());
    }

    #[test]
    fn stage_ceilings_fire_on_observed_p99() {
        let mut policy = SloPolicy::none();
        policy.stage_p99_ms.insert("kmeans_fit".into(), 5.0);
        let mut dog = SloWatchdog::new(policy);
        let mut s = signals(0, 1.0, 1.0, 0);
        s.stage_p99_ms.insert("kmeans_fit".into(), 9.0);
        let edges = dog.observe(&s);
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].slo, "stage_p99:kmeans_fit");
        assert_eq!(edges[0].edge, SloEdge::Breached);
        assert_eq!(dog.report().rules[0].worst_value, Some(9.0));
    }
}

//! RAII stage timers feeding latency histograms.

use std::time::Instant;

use crate::registry::Histogram;

/// Measures wall-clock time from construction until [`stop`](Self::stop)
/// or drop, recording the elapsed **milliseconds** into a [`Histogram`].
///
/// ```
/// use msvs_telemetry::{Registry, ScopedTimer};
/// let reg = Registry::new();
/// {
///     let _t = ScopedTimer::new(reg.histogram("stage_ms", "kmeans_fit"));
///     // ... timed work ...
/// }
/// assert_eq!(reg.histogram("stage_ms", "kmeans_fit").count(), 1);
/// ```
#[derive(Debug)]
pub struct ScopedTimer {
    start: Instant,
    sink: Option<Histogram>,
}

impl ScopedTimer {
    /// Starts timing into `sink`.
    pub fn new(sink: Histogram) -> Self {
        Self {
            start: Instant::now(),
            sink: Some(sink),
        }
    }

    /// Elapsed milliseconds so far, without stopping the timer.
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }

    /// Stops the timer, records the elapsed time, and returns it in
    /// milliseconds. Dropping without calling `stop` records too; `stop`
    /// exists for callers that also want the value.
    pub fn stop(mut self) -> f64 {
        self.finish()
    }

    /// Abandons the timer without recording anything.
    pub fn cancel(mut self) {
        self.sink = None;
    }

    fn finish(&mut self) -> f64 {
        let elapsed = self.elapsed_ms();
        if let Some(sink) = self.sink.take() {
            sink.record(elapsed);
        }
        elapsed
    }
}

impl Drop for ScopedTimer {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::stages as stage;

    #[test]
    fn drop_records_once() {
        let reg = Registry::new();
        let h = reg.histogram("stage_ms", stage::KMEANS_FIT);
        {
            let _t = ScopedTimer::new(h.clone());
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(h.count(), 1);
        assert!(h.max() >= 1.0, "slept ~2ms, recorded {}", h.max());
    }

    #[test]
    fn stop_returns_elapsed_and_does_not_double_record() {
        let reg = Registry::new();
        let h = reg.histogram("stage_ms", stage::CNN_FORWARD);
        let t = ScopedTimer::new(h.clone());
        let ms = t.stop();
        assert!(ms >= 0.0);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn cancel_records_nothing() {
        let reg = Registry::new();
        let h = reg.histogram("stage_ms", stage::TRANSCODE);
        ScopedTimer::new(h.clone()).cancel();
        assert_eq!(h.count(), 0);
    }
}

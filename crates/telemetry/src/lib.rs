//! # msvs-telemetry
//!
//! Zero-dependency observability for the msvs workspace:
//!
//! - [`Registry`] — named counters, gauges, and log-bucketed histograms
//!   backed by atomics; hot paths hold pre-resolved handles and pay one
//!   relaxed atomic op per update.
//! - [`ScopedTimer`] — RAII wall-clock timers recording stage latencies
//!   (milliseconds) into histograms; canonical stage names in [`stages`].
//! - [`SpanCollector`] — hierarchical tracing spans with deterministic
//!   structure at any thread count; exportable as Chrome-trace JSON via
//!   [`chrome_trace`] for Perfetto / `chrome://tracing`.
//! - [`EventJournal`] — typed [`Event`]s stamped with simulation time,
//!   exportable as JSONL/CSV and parseable back for offline reporting.
//! - [`RunManifest`] — config, seed, and git version of a run.
//!
//! The [`Telemetry`] handle bundles a registry, a journal, and a span
//! collector and is cheap to clone into every subsystem;
//! [`TelemetrySummary`] condenses the registry into the percentile table
//! embedded in simulation reports. [`Telemetry::stage_scope`] is the
//! one-call instrumentation point: one RAII guard feeds both the stage
//! histogram and the span tree.

pub mod expo;
pub mod flame;
mod journal;
mod json;
mod manifest;
mod registry;
pub mod slo;
mod span;
pub mod stages;
mod timer;
pub mod trace;

pub use expo::{render_prometheus, HealthBoard, HealthSnapshot, MetricsServer, ShardHealth};
pub use journal::{Entry, Event, EventJournal, ParseReport};
pub use json::Json;
pub use manifest::RunManifest;
pub use registry::{Counter, Gauge, Histogram, HistogramStats, Registry};
pub use slo::{SloEdge, SloPolicy, SloReport, SloSignals, SloTransition, SloWatchdog};
pub use span::{SpanAttrs, SpanCollector, SpanGuard, SpanRecord, SpanScratch, DRIVER_LANE};
pub use timer::ScopedTimer;
pub use trace::{chrome_trace, chrome_trace_with_counters, validate_chrome_trace, GaugeSample};

/// Back-compat alias for [`stages`] (the constants used to live under
/// `timer::stage`).
pub use stages as stage;

/// Metric family name for stage-latency histograms; the label is the
/// stage name from [`stage`].
pub const STAGE_MS: &str = "stage_ms";

/// Shared handle bundling a metric [`Registry`], an [`EventJournal`], and
/// the simulation clock events are stamped with.
///
/// Cloning is cheap (three `Arc` bumps); every subsystem holds its own
/// clone and writes concurrently. The driver advances the clock with
/// [`set_now_ms`](Self::set_now_ms); subsystems emit events against it via
/// [`emit`](Self::emit), which keeps journals deterministic for a fixed
/// seed (wall-clock never leaks into timestamps).
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    registry: Registry,
    journal: EventJournal,
    spans: SpanCollector,
    now_ms: std::sync::Arc<std::sync::atomic::AtomicU64>,
    gauge_samples: std::sync::Arc<std::sync::Mutex<Vec<GaugeSample>>>,
}

impl Telemetry {
    /// Builds a fresh registry + journal pair.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the shared simulation clock (milliseconds).
    pub fn set_now_ms(&self, t_ms: u64) {
        self.now_ms
            .store(t_ms, std::sync::atomic::Ordering::Relaxed);
    }

    /// Current simulation clock, milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.now_ms.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Records `event` at the current simulation clock, bumping the
    /// `events_total{<name>}` counter.
    pub fn emit(&self, event: Event) {
        self.counter("events_total", event.name()).inc();
        self.journal.record(self.now_ms(), event);
    }

    /// The metric registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The event journal.
    pub fn journal(&self) -> &EventJournal {
        &self.journal
    }

    /// Starts a [`ScopedTimer`] recording into the `stage_ms{stage}`
    /// histogram.
    pub fn stage_timer(&self, stage: &'static str) -> ScopedTimer {
        ScopedTimer::new(self.registry.histogram(STAGE_MS, stage))
    }

    /// Opens a tracing span without touching the stage histograms.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        self.spans.enter(name)
    }

    /// Opens a [`StageScope`]: one guard that both times the stage into
    /// its `stage_ms{stage}` histogram and records a tracing span of the
    /// same name, parented to the innermost open span.
    pub fn stage_scope(&self, stage: &'static str) -> StageScope {
        StageScope {
            timer: self.stage_timer(stage),
            span: self.spans.enter(stage),
        }
    }

    /// The span collector (for scratch buffers, manual spans, exports).
    pub fn span_collector(&self) -> &SpanCollector {
        &self.spans
    }

    /// Snapshot of every recorded span in id order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.spans.snapshot()
    }

    /// Resolves the counter `name{label}`.
    pub fn counter(&self, name: &'static str, label: impl Into<String>) -> Counter {
        self.registry.counter(name, label)
    }

    /// Resolves the gauge `name{label}`.
    pub fn gauge(&self, name: &'static str, label: impl Into<String>) -> Gauge {
        self.registry.gauge(name, label)
    }

    /// Records `event` at simulation time `t_ms`.
    pub fn event(&self, t_ms: u64, event: Event) {
        self.journal.record(t_ms, event);
    }

    /// Snapshots every registered gauge at the current span-collector
    /// clock into the counter-sample buffer, one [`GaugeSample`] per
    /// gauge. The driver calls this once per interval so `--trace`
    /// exports carry Perfetto counter tracks; the buffer never feeds
    /// [`TelemetrySummary`], so sampling cannot perturb reports.
    pub fn sample_gauges(&self) {
        let t_us = self.spans.now_us();
        let mut buffer = self
            .gauge_samples
            .lock()
            .expect("gauge sample buffer lock poisoned");
        for (name, label, value) in self.registry.gauge_values() {
            buffer.push(GaugeSample {
                t_us,
                name: name.to_string(),
                label,
                value,
            });
        }
    }

    /// Snapshot of every gauge sample recorded so far, in record order.
    pub fn gauge_samples(&self) -> Vec<GaugeSample> {
        self.gauge_samples
            .lock()
            .expect("gauge sample buffer lock poisoned")
            .clone()
    }

    /// Condenses the registry into a [`TelemetrySummary`].
    pub fn summary(&self) -> TelemetrySummary {
        TelemetrySummary::from_registry(&self.registry)
    }
}

/// RAII guard pairing a stage-latency timer with a tracing span: drop it
/// (or call [`stop`](Self::stop)) to record into both surfaces at once.
#[derive(Debug)]
pub struct StageScope {
    timer: ScopedTimer,
    span: SpanGuard,
}

impl StageScope {
    /// The underlying span's id, usable as an adoption/manual parent.
    pub fn span_id(&self) -> u64 {
        self.span.id()
    }

    /// Sets the span's scored-interval attribute.
    pub fn set_interval(&mut self, interval: u64) {
        self.span.set_interval(interval);
    }

    /// Sets the span's multicast-group attribute.
    pub fn set_group(&mut self, group: u64) {
        self.span.set_group(group);
    }

    /// Sets the span's fan-out batch attribute.
    pub fn set_batch(&mut self, batch: u64) {
        self.span.set_batch(batch);
    }

    /// Builder-style [`set_interval`](Self::set_interval).
    pub fn with_interval(mut self, interval: u64) -> Self {
        self.set_interval(interval);
        self
    }

    /// Builder-style [`set_group`](Self::set_group).
    pub fn with_group(mut self, group: u64) -> Self {
        self.set_group(group);
        self
    }

    /// Closes both surfaces and returns the elapsed milliseconds the
    /// histogram recorded.
    pub fn stop(self) -> f64 {
        let StageScope { timer, span } = self;
        span.end();
        timer.stop()
    }
}

/// Latency summary of one pipeline stage, milliseconds.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StageStats {
    pub stage: String,
    pub count: u64,
    pub mean_ms: f64,
    pub p50_ms: f64,
    pub p90_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
    pub max_ms: f64,
}

/// Registry snapshot embedded in simulation reports: per-stage latency
/// percentiles plus every counter.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetrySummary {
    /// One row per [`STAGE_MS`] histogram, sorted by stage name.
    pub stages: Vec<StageStats>,
    /// Every counter as `(name, label, value)`, sorted.
    pub counters: Vec<(String, String, u64)>,
}

impl TelemetrySummary {
    /// Snapshots `registry` into a summary.
    pub fn from_registry(registry: &Registry) -> Self {
        let stages = registry
            .histogram_stats()
            .into_iter()
            .filter(|(name, _, _)| *name == STAGE_MS)
            .map(|(_, stage, s)| StageStats {
                stage,
                count: s.count,
                mean_ms: s.mean,
                p50_ms: s.p50,
                p90_ms: s.p90,
                p95_ms: s.p95,
                p99_ms: s.p99,
                max_ms: s.max,
            })
            .collect();
        let counters = registry
            .counter_values()
            .into_iter()
            .map(|(n, l, v)| (n.to_string(), l, v))
            .collect();
        Self { stages, counters }
    }

    /// Copy with every wall-clock field zeroed, keeping event/stage
    /// counts. Wall-clock timings vary run to run even under a fixed
    /// seed, so determinism tests compare zeroed summaries.
    pub fn with_zeroed_timings(&self) -> Self {
        Self {
            stages: self
                .stages
                .iter()
                .map(|s| StageStats {
                    stage: s.stage.clone(),
                    count: s.count,
                    ..Default::default()
                })
                .collect(),
            counters: self.counters.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_collects_stage_histograms_and_counters() {
        let t = Telemetry::new();
        t.stage_timer(stage::KMEANS_FIT).stop();
        t.stage_timer(stage::KMEANS_FIT).stop();
        t.stage_timer(stage::CNN_FORWARD).stop();
        // A non-stage histogram must not leak into the stage table.
        t.registry().histogram("other", "x").record(1.0);
        t.counter("events_total", "GroupsFormed").add(2);
        let s = t.summary();
        assert_eq!(s.stages.len(), 2);
        assert_eq!(s.stages[0].stage, stage::CNN_FORWARD);
        assert_eq!(s.stages[1].stage, stage::KMEANS_FIT);
        assert_eq!(s.stages[1].count, 2);
        assert_eq!(
            s.counters,
            vec![("events_total".to_string(), "GroupsFormed".to_string(), 2)]
        );
    }

    #[test]
    fn zeroed_timings_are_equal_across_runs() {
        let mk = || {
            let t = Telemetry::new();
            t.stage_timer(stage::INTERVAL).stop();
            t.counter("intervals_total", "").inc();
            t.summary().with_zeroed_timings()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn clones_share_state() {
        let t = Telemetry::new();
        let clone = t.clone();
        clone.counter("n", "").inc();
        clone.event(10, Event::IntervalStarted { interval: 0 });
        assert_eq!(t.counter("n", "").get(), 1);
        assert_eq!(t.journal().len(), 1);
    }

    #[test]
    fn stage_scope_feeds_histogram_and_span_tree() {
        let t = Telemetry::new();
        {
            let mut outer = t.stage_scope(stage::INTERVAL);
            outer.set_interval(2);
            let inner = t.stage_scope(stage::SCHEME_PREDICT);
            let ms = inner.stop();
            assert!(ms >= 0.0);
        }
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, stage::INTERVAL);
        assert_eq!(spans[0].attrs.interval, Some(2));
        assert_eq!(spans[1].parent, Some(0));
        let s = t.summary();
        assert_eq!(s.stages.len(), 2);
        assert!(s.stages.iter().all(|st| st.count == 1));
        assert!(s.stages.iter().all(|st| st.p90_ms <= st.p99_ms));
    }

    #[test]
    fn emit_stamps_shared_clock_and_counts() {
        let t = Telemetry::new();
        let clone = t.clone();
        t.set_now_ms(1234);
        clone.emit(Event::IntervalStarted { interval: 3 });
        let entries = t.journal().entries();
        assert_eq!(entries[0].t_ms, 1234);
        assert_eq!(t.counter("events_total", "IntervalStarted").get(), 1);
    }
}

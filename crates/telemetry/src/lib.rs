//! # msvs-telemetry
//!
//! Zero-dependency observability for the msvs workspace:
//!
//! - [`Registry`] — named counters, gauges, and log-bucketed histograms
//!   backed by atomics; hot paths hold pre-resolved handles and pay one
//!   relaxed atomic op per update.
//! - [`ScopedTimer`] — RAII wall-clock timers recording stage latencies
//!   (milliseconds) into histograms; canonical stage names in [`stage`].
//! - [`EventJournal`] — typed [`Event`]s stamped with simulation time,
//!   exportable as JSONL/CSV and parseable back for offline reporting.
//! - [`RunManifest`] — config, seed, and git version of a run.
//!
//! The [`Telemetry`] handle bundles a registry and a journal and is cheap
//! to clone into every subsystem; [`TelemetrySummary`] condenses the
//! registry into the percentile table embedded in simulation reports.

mod journal;
mod json;
mod manifest;
mod registry;
mod timer;

pub use journal::{Entry, Event, EventJournal};
pub use json::Json;
pub use manifest::RunManifest;
pub use registry::{Counter, Gauge, Histogram, HistogramStats, Registry};
pub use timer::{stage, ScopedTimer};

/// Metric family name for stage-latency histograms; the label is the
/// stage name from [`stage`].
pub const STAGE_MS: &str = "stage_ms";

/// Shared handle bundling a metric [`Registry`], an [`EventJournal`], and
/// the simulation clock events are stamped with.
///
/// Cloning is cheap (three `Arc` bumps); every subsystem holds its own
/// clone and writes concurrently. The driver advances the clock with
/// [`set_now_ms`](Self::set_now_ms); subsystems emit events against it via
/// [`emit`](Self::emit), which keeps journals deterministic for a fixed
/// seed (wall-clock never leaks into timestamps).
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    registry: Registry,
    journal: EventJournal,
    now_ms: std::sync::Arc<std::sync::atomic::AtomicU64>,
}

impl Telemetry {
    /// Builds a fresh registry + journal pair.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the shared simulation clock (milliseconds).
    pub fn set_now_ms(&self, t_ms: u64) {
        self.now_ms
            .store(t_ms, std::sync::atomic::Ordering::Relaxed);
    }

    /// Current simulation clock, milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.now_ms.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Records `event` at the current simulation clock, bumping the
    /// `events_total{<name>}` counter.
    pub fn emit(&self, event: Event) {
        self.counter("events_total", event.name()).inc();
        self.journal.record(self.now_ms(), event);
    }

    /// The metric registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The event journal.
    pub fn journal(&self) -> &EventJournal {
        &self.journal
    }

    /// Starts a [`ScopedTimer`] recording into the `stage_ms{stage}`
    /// histogram.
    pub fn stage_timer(&self, stage: &'static str) -> ScopedTimer {
        ScopedTimer::new(self.registry.histogram(STAGE_MS, stage))
    }

    /// Resolves the counter `name{label}`.
    pub fn counter(&self, name: &'static str, label: impl Into<String>) -> Counter {
        self.registry.counter(name, label)
    }

    /// Resolves the gauge `name{label}`.
    pub fn gauge(&self, name: &'static str, label: impl Into<String>) -> Gauge {
        self.registry.gauge(name, label)
    }

    /// Records `event` at simulation time `t_ms`.
    pub fn event(&self, t_ms: u64, event: Event) {
        self.journal.record(t_ms, event);
    }

    /// Condenses the registry into a [`TelemetrySummary`].
    pub fn summary(&self) -> TelemetrySummary {
        TelemetrySummary::from_registry(&self.registry)
    }
}

/// Latency summary of one pipeline stage, milliseconds.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StageStats {
    pub stage: String,
    pub count: u64,
    pub mean_ms: f64,
    pub p50_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
    pub max_ms: f64,
}

/// Registry snapshot embedded in simulation reports: per-stage latency
/// percentiles plus every counter.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetrySummary {
    /// One row per [`STAGE_MS`] histogram, sorted by stage name.
    pub stages: Vec<StageStats>,
    /// Every counter as `(name, label, value)`, sorted.
    pub counters: Vec<(String, String, u64)>,
}

impl TelemetrySummary {
    /// Snapshots `registry` into a summary.
    pub fn from_registry(registry: &Registry) -> Self {
        let stages = registry
            .histogram_stats()
            .into_iter()
            .filter(|(name, _, _)| *name == STAGE_MS)
            .map(|(_, stage, s)| StageStats {
                stage,
                count: s.count,
                mean_ms: s.mean,
                p50_ms: s.p50,
                p95_ms: s.p95,
                p99_ms: s.p99,
                max_ms: s.max,
            })
            .collect();
        let counters = registry
            .counter_values()
            .into_iter()
            .map(|(n, l, v)| (n.to_string(), l, v))
            .collect();
        Self { stages, counters }
    }

    /// Copy with every wall-clock field zeroed, keeping event/stage
    /// counts. Wall-clock timings vary run to run even under a fixed
    /// seed, so determinism tests compare zeroed summaries.
    pub fn with_zeroed_timings(&self) -> Self {
        Self {
            stages: self
                .stages
                .iter()
                .map(|s| StageStats {
                    stage: s.stage.clone(),
                    count: s.count,
                    ..Default::default()
                })
                .collect(),
            counters: self.counters.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_collects_stage_histograms_and_counters() {
        let t = Telemetry::new();
        t.stage_timer(stage::KMEANS_FIT).stop();
        t.stage_timer(stage::KMEANS_FIT).stop();
        t.stage_timer(stage::CNN_FORWARD).stop();
        // A non-stage histogram must not leak into the stage table.
        t.registry().histogram("other", "x").record(1.0);
        t.counter("events_total", "GroupsFormed").add(2);
        let s = t.summary();
        assert_eq!(s.stages.len(), 2);
        assert_eq!(s.stages[0].stage, stage::CNN_FORWARD);
        assert_eq!(s.stages[1].stage, stage::KMEANS_FIT);
        assert_eq!(s.stages[1].count, 2);
        assert_eq!(
            s.counters,
            vec![("events_total".to_string(), "GroupsFormed".to_string(), 2)]
        );
    }

    #[test]
    fn zeroed_timings_are_equal_across_runs() {
        let mk = || {
            let t = Telemetry::new();
            t.stage_timer(stage::INTERVAL).stop();
            t.counter("intervals_total", "").inc();
            t.summary().with_zeroed_timings()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn clones_share_state() {
        let t = Telemetry::new();
        let clone = t.clone();
        clone.counter("n", "").inc();
        clone.event(10, Event::IntervalStarted { interval: 0 });
        assert_eq!(t.counter("n", "").get(), 1);
        assert_eq!(t.journal().len(), 1);
    }

    #[test]
    fn emit_stamps_shared_clock_and_counts() {
        let t = Telemetry::new();
        let clone = t.clone();
        t.set_now_ms(1234);
        clone.emit(Event::IntervalStarted { interval: 3 });
        let entries = t.journal().entries();
        assert_eq!(entries[0].t_ms, 1234);
        assert_eq!(t.counter("events_total", "IntervalStarted").get(), 1);
    }
}

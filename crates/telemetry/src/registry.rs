//! Cheap, atomic-backed metric primitives and the registry that names them.
//!
//! Hot paths hold a pre-resolved handle ([`Counter`], [`Gauge`],
//! [`Histogram`]) and pay one relaxed atomic operation per update; the
//! registry's lock is touched only when a handle is first resolved or a
//! snapshot is taken.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins floating-point gauge (stored as `f64` bits).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(Arc::new(AtomicU64::new(0.0f64.to_bits())))
    }
}

impl Gauge {
    /// Overwrites the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Bucket layout shared by every [`Histogram`].
///
/// Buckets grow geometrically by [`GROWTH`] starting at [`FIRST_BOUND`]:
/// bucket `i` holds values in `(FIRST_BOUND * GROWTH^(i-1), FIRST_BOUND *
/// GROWTH^i]`, bucket 0 holds everything at or below [`FIRST_BOUND`], and
/// the final bucket holds the overflow tail. With 8 buckets per doubling
/// the relative quantile error is bounded by `2^(1/8) - 1` (~9%).
pub const BUCKETS: usize = 256;
/// Upper bound of the first bucket. Values are unit-agnostic; for the
/// simulator they are milliseconds, so the range spans 1 µs … ~4.7e6 s.
pub const FIRST_BOUND: f64 = 1e-3;
/// Geometric growth factor between consecutive bucket bounds.
pub const GROWTH: f64 = 1.090_507_732_665_257_7; // 2^(1/8)

/// Upper bound of bucket `i`.
fn bucket_bound(i: usize) -> f64 {
    FIRST_BOUND * GROWTH.powi(i as i32)
}

/// The bucket a value lands in.
fn bucket_index(value: f64) -> usize {
    // NaN and anything at or below the first bound land in bucket 0.
    if value.is_nan() || value <= FIRST_BOUND {
        return 0;
    }
    let i = (value / FIRST_BOUND).log2() * 8.0;
    // `ceil` maps values exactly on a bound into that bound's bucket.
    (i.ceil() as usize).min(BUCKETS - 1)
}

#[derive(Debug)]
struct HistogramCore {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of recorded values, in nanounits, so `fetch_add` stays a single
    /// relaxed integer op (no CAS loop). Saturates far beyond any run.
    sum_nano: AtomicU64,
    /// Maximum recorded value as orderable `f64` bits (values are
    /// non-negative, so the bit pattern ordering matches numeric order).
    max_bits: AtomicU64,
}

/// A lock-free histogram over non-negative values with geometric buckets.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramCore {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_nano: AtomicU64::new(0),
            max_bits: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// Records one observation. Negative or non-finite values are clamped
    /// to zero rather than poisoning the distribution.
    pub fn record(&self, value: f64) {
        let v = if value.is_finite() && value > 0.0 {
            value
        } else {
            0.0
        };
        let core = &*self.0;
        core.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        core.sum_nano.fetch_add((v * 1e9) as u64, Ordering::Relaxed);
        core.max_bits.fetch_max(v.to_bits(), Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Mean of observations (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.0.sum_nano.load(Ordering::Relaxed) as f64 / 1e9 / n as f64
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        f64::from_bits(self.0.max_bits.load(Ordering::Relaxed))
    }

    /// Approximate quantile `q` in `[0, 1]` via bucket walk; the returned
    /// value is the geometric midpoint of the bucket holding the target
    /// rank (relative error bounded by the bucket growth factor).
    pub fn quantile(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.0.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                if i == 0 {
                    // Sub-resolution bucket: bound is more honest than a
                    // midpoint that implies precision we don't have.
                    return FIRST_BOUND;
                }
                let lo = bucket_bound(i - 1);
                let hi = bucket_bound(i).min(self.max());
                return (lo * hi.max(lo)).sqrt();
            }
        }
        self.max()
    }

    /// Immutable summary of the current distribution.
    pub fn stats(&self) -> HistogramStats {
        HistogramStats {
            count: self.count(),
            mean: self.mean(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            max: self.max(),
        }
    }
}

/// Point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramStats {
    pub count: u64,
    pub mean: f64,
    pub p50: f64,
    pub p90: f64,
    pub p95: f64,
    pub p99: f64,
    pub max: f64,
}

/// Fully-qualified metric key: static family name plus free-form label.
pub type MetricKey = (&'static str, String);

/// Named home of every metric. Cloning shares the underlying maps.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: Arc<Mutex<HashMap<MetricKey, Counter>>>,
    gauges: Arc<Mutex<HashMap<MetricKey, Gauge>>>,
    histograms: Arc<Mutex<HashMap<MetricKey, Histogram>>>,
}

impl Registry {
    /// Builds an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolves (registering on first use) the counter `name{label}`.
    pub fn counter(&self, name: &'static str, label: impl Into<String>) -> Counter {
        let mut map = self.counters.lock().expect("registry lock poisoned");
        map.entry((name, label.into())).or_default().clone()
    }

    /// Resolves (registering on first use) the gauge `name{label}`.
    pub fn gauge(&self, name: &'static str, label: impl Into<String>) -> Gauge {
        let mut map = self.gauges.lock().expect("registry lock poisoned");
        map.entry((name, label.into())).or_default().clone()
    }

    /// Resolves (registering on first use) the histogram `name{label}`.
    pub fn histogram(&self, name: &'static str, label: impl Into<String>) -> Histogram {
        let mut map = self.histograms.lock().expect("registry lock poisoned");
        map.entry((name, label.into())).or_default().clone()
    }

    /// Sorted snapshot of every counter as `(name, label, value)`.
    pub fn counter_values(&self) -> Vec<(&'static str, String, u64)> {
        let map = self.counters.lock().expect("registry lock poisoned");
        let mut out: Vec<_> = map
            .iter()
            .map(|((n, l), c)| (*n, l.clone(), c.get()))
            .collect();
        out.sort();
        out
    }

    /// Sorted snapshot of every gauge as `(name, label, value)`.
    pub fn gauge_values(&self) -> Vec<(&'static str, String, f64)> {
        let map = self.gauges.lock().expect("registry lock poisoned");
        let mut out: Vec<_> = map
            .iter()
            .map(|((n, l), g)| (*n, l.clone(), g.get()))
            .collect();
        out.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        out
    }

    /// Sorted snapshot of every histogram as `(name, label, stats)`.
    pub fn histogram_stats(&self) -> Vec<(&'static str, String, HistogramStats)> {
        let map = self.histograms.lock().expect("registry lock poisoned");
        let mut out: Vec<_> = map
            .iter()
            .map(|((n, l), h)| (*n, l.clone(), h.stats()))
            .collect();
        out.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_and_monotone() {
        // Everything at or below the first bound lands in bucket 0.
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(FIRST_BOUND), 0);
        assert_eq!(bucket_index(FIRST_BOUND * 0.5), 0);
        // A value just above a bound lands in the next bucket; a value
        // exactly on bound i lands in bucket i.
        for i in 1..40 {
            let bound = bucket_bound(i);
            assert_eq!(bucket_index(bound * 1.0001), i + 1, "just above bound {i}");
            assert!(bucket_index(bound * 0.999) <= i, "below bound {i}");
        }
        // Index is monotone in the value.
        let mut prev = 0;
        let mut v = FIRST_BOUND / 2.0;
        while v < 1e6 {
            let i = bucket_index(v);
            assert!(i >= prev);
            prev = i;
            v *= 1.37;
        }
        // Overflow clamps to the last bucket.
        assert_eq!(bucket_index(f64::MAX / 2.0), BUCKETS - 1);
    }

    #[test]
    fn quantiles_track_known_distribution() {
        let h = Histogram::default();
        // 1..=100 ms, uniformly.
        for v in 1..=100 {
            h.record(v as f64);
        }
        assert_eq!(h.count(), 100);
        assert!((h.mean() - 50.5).abs() < 1e-6);
        assert_eq!(h.max(), 100.0);
        // Log-bucketed quantiles carry ~9% relative error per bound.
        let p50 = h.quantile(0.50);
        assert!((45.0..=56.0).contains(&p50), "p50 {p50}");
        let p90 = h.quantile(0.90);
        assert!((81.0..=100.0).contains(&p90), "p90 {p90}");
        let p95 = h.quantile(0.95);
        assert!((86.0..=105.0).contains(&p95), "p95 {p95}");
        let p99 = h.quantile(0.99);
        assert!((90.0..=110.0).contains(&p99), "p99 {p99}");
        // Degenerate quantiles stay in range.
        assert!(h.quantile(0.0) >= 1.0 * (1.0 - 0.1));
        assert!(h.quantile(1.0) <= 100.0 * 1.1);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::default();
        let s = h.stats();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.p99, 0.0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn negative_and_nan_records_are_clamped() {
        let h = Histogram::default();
        h.record(-5.0);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn counters_and_gauges_concurrent_updates_are_exact() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 10_000;
        let reg = Registry::new();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let reg = reg.clone();
                scope.spawn(move || {
                    let c = reg.counter("ops_total", "concurrent");
                    let h = reg.histogram("latency", "concurrent");
                    for i in 0..PER_THREAD {
                        c.inc();
                        h.record((i % 100) as f64 + 1.0);
                    }
                    reg.gauge("last_thread", "concurrent").set(t as f64);
                });
            }
        });
        assert_eq!(
            reg.counter("ops_total", "concurrent").get(),
            THREADS * PER_THREAD
        );
        let h = reg.histogram("latency", "concurrent");
        assert_eq!(h.count(), THREADS * PER_THREAD);
        assert!((h.mean() - 50.5).abs() < 1e-6);
        let g = reg.gauge("last_thread", "concurrent").get();
        assert!((0.0..THREADS as f64).contains(&g));
    }

    #[test]
    fn handles_share_state_with_registry() {
        let reg = Registry::new();
        let a = reg.counter("x", "");
        let b = reg.counter("x", "");
        a.add(3);
        b.add(4);
        assert_eq!(reg.counter("x", "").get(), 7);
        // Different label → different counter.
        assert_eq!(reg.counter("x", "other").get(), 0);
        let snap = reg.counter_values();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0], ("x", String::new(), 7));
    }
}

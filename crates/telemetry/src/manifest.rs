//! Reproducibility manifest for a simulation run.

use std::collections::BTreeMap;
use std::path::Path;
use std::process::Command;

use crate::json::Json;

/// Everything needed to reproduce (or at least identify) a run: the
/// configuration that produced it, the seed, the code version, and how
/// long each pipeline stage took in wall-clock terms.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunManifest {
    /// Human-readable scheme name (e.g. `dt-assisted`).
    pub scheme: String,
    /// Master RNG seed of the run.
    pub seed: u64,
    /// `git describe --always --dirty` of the working tree, or `unknown`
    /// when the binary runs outside a git checkout.
    pub git_describe: String,
    /// Wall-clock start, seconds since the Unix epoch.
    pub started_unix_s: u64,
    /// Flattened configuration key/value pairs.
    pub config: BTreeMap<String, String>,
    /// Total wall-clock milliseconds spent per pipeline stage.
    pub stage_wall_ms: BTreeMap<String, f64>,
}

impl RunManifest {
    /// Builds a manifest stamped with the current git version and wall
    /// clock.
    pub fn new(scheme: impl Into<String>, seed: u64) -> Self {
        Self {
            scheme: scheme.into(),
            seed,
            git_describe: git_describe(),
            started_unix_s: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            config: BTreeMap::new(),
            stage_wall_ms: BTreeMap::new(),
        }
    }

    /// Records one configuration key/value pair (builder style).
    pub fn with_config(mut self, key: impl Into<String>, value: impl ToString) -> Self {
        self.config.insert(key.into(), value.to_string());
        self
    }

    /// Accumulates wall-clock time against a stage.
    pub fn add_stage_wall_ms(&mut self, stage: impl Into<String>, wall_ms: f64) {
        *self.stage_wall_ms.entry(stage.into()).or_insert(0.0) += wall_ms;
    }

    /// The manifest as a single JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("scheme", Json::Str(self.scheme.clone())),
            ("seed", Json::Num(self.seed as f64)),
            ("git_describe", Json::Str(self.git_describe.clone())),
            ("started_unix_s", Json::Num(self.started_unix_s as f64)),
            (
                "config",
                Json::Obj(
                    self.config
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                        .collect(),
                ),
            ),
            (
                "stage_wall_ms",
                Json::Obj(
                    self.stage_wall_ms
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ),
        ])
    }

    /// Writes the manifest as pretty-enough JSON to `path`.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write_to(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, format!("{}\n", self.to_json()))
    }
}

/// Best-effort `git describe`; never fails, returns `unknown` instead.
fn git_describe() -> String {
    Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_serialises_config_and_stages() {
        let mut m = RunManifest::new("dt-assisted", 7)
            .with_config("n_users", 40)
            .with_config("intervals", 12);
        m.add_stage_wall_ms(crate::stages::KMEANS_FIT, 1.5);
        m.add_stage_wall_ms(crate::stages::KMEANS_FIT, 2.5);
        let j = m.to_json();
        assert_eq!(j.get("scheme").unwrap().as_str(), Some("dt-assisted"));
        assert_eq!(j.get("seed").unwrap().as_u64(), Some(7));
        assert_eq!(
            j.get("config").unwrap().get("n_users").unwrap().as_str(),
            Some("40")
        );
        assert_eq!(
            j.get("stage_wall_ms")
                .unwrap()
                .get(crate::stages::KMEANS_FIT)
                .unwrap()
                .as_f64(),
            Some(4.0)
        );
        // Round-trips through the parser.
        assert_eq!(Json::parse(&j.to_string()).unwrap(), j);
    }

    #[test]
    fn git_describe_never_panics() {
        let v = git_describe();
        assert!(!v.is_empty());
    }
}

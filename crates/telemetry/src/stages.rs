//! Canonical pipeline stage names.
//!
//! Single source of truth for every stage-name string in the workspace:
//! span names, `stage_ms{...}` histogram labels, `StageCompleted` journal
//! payloads, and the `msvs report` table all draw from these constants so
//! spellings cannot drift between the instrumentation site and the
//! reporting site.

/// UDT data ingestion (base-station collection sweep).
pub const UDT_INGEST: &str = "udt_ingest";
/// Fault-injection accounting after the collection sweep.
pub const FAULT_INJECT: &str = "fault_inject";
/// 1D-CNN feature compression forward pass.
pub const CNN_FORWARD: &str = "cnn_forward";
/// One worker-side batch of the CNN encode fan-out.
pub const CNN_ENCODE_BATCH: &str = "cnn_encode_batch";
/// 1D-CNN autoencoder training.
pub const CNN_TRAIN: &str = "cnn_train";
/// DDQN action selection for the cluster count K.
pub const DDQN_SELECT_K: &str = "ddqn_select_k";
/// DDQN minibatch training step.
pub const DDQN_TRAIN: &str = "ddqn_train";
/// K-means++ clustering fit.
pub const KMEANS_FIT: &str = "kmeans_fit";
/// One Lloyd-iteration assignment sweep inside a K-means fit.
pub const KMEANS_ASSIGN: &str = "kmeans_assign";
/// One Lloyd-iteration centroid update inside a K-means fit.
pub const KMEANS_UPDATE: &str = "kmeans_update";
/// Silhouette scoring of a finished clustering (O(n²·d); scoped apart
/// from `kmeans_fit` so the fit latency reflects Lloyd's algorithm).
pub const SILHOUETTE: &str = "silhouette";
/// Swiping-abstraction construction + engagement prediction.
pub const SWIPING_ABSTRACTION: &str = "swiping_abstraction";
/// Per-group resource demand prediction.
pub const DEMAND_PREDICT: &str = "demand_predict";
/// End-to-end scheme prediction (all of the above).
pub const SCHEME_PREDICT: &str = "scheme_predict";
/// Edge transcoding work.
pub const TRANSCODE: &str = "transcode";
/// Playback phase of a simulated interval.
pub const PLAYBACK: &str = "playback";
/// Playback of one multicast group within an interval.
pub const PLAYBACK_GROUP: &str = "playback_group";
/// One whole simulated interval.
pub const INTERVAL: &str = "interval";
/// Cross-shard handover sweep at the start of a sharded interval
/// (ownership re-evaluation + twin/tracker/embedding migration).
pub const SHARD_REBALANCE: &str = "shard_rebalance";
/// Merging per-shard twin snapshots into the canonical population view
/// (one child span per shard).
pub const SHARD_GATHER: &str = "shard_gather";
/// Folding per-group demand predictions into per-shard aggregator rows.
pub const SHARD_AGGREGATE: &str = "shard_aggregate";
/// One shard's slice of a sharded sweep (span-only child; the batch
/// attribute carries the shard index).
pub const SHARD_SLICE: &str = "shard_slice";
/// A shard going down (checkpoint capture + crash failover sweep).
pub const SHARD_OUTAGE: &str = "shard_outage";
/// A shard coming back (checkpoint-anchored recovery resync).
pub const SHARD_RESTORE: &str = "shard_restore";

/// Every stage name, for exhaustive report tables and schema checks.
pub const ALL: &[&str] = &[
    UDT_INGEST,
    FAULT_INJECT,
    CNN_FORWARD,
    CNN_ENCODE_BATCH,
    CNN_TRAIN,
    DDQN_SELECT_K,
    DDQN_TRAIN,
    KMEANS_FIT,
    KMEANS_ASSIGN,
    KMEANS_UPDATE,
    SILHOUETTE,
    SWIPING_ABSTRACTION,
    DEMAND_PREDICT,
    SCHEME_PREDICT,
    TRANSCODE,
    PLAYBACK,
    PLAYBACK_GROUP,
    INTERVAL,
    SHARD_REBALANCE,
    SHARD_GATHER,
    SHARD_AGGREGATE,
    SHARD_SLICE,
    SHARD_OUTAGE,
    SHARD_RESTORE,
];

#[cfg(test)]
mod tests {
    use super::ALL;

    #[test]
    fn names_are_unique_snake_case() {
        let mut seen = std::collections::BTreeSet::new();
        for name in ALL {
            assert!(seen.insert(*name), "duplicate stage name {name}");
            assert!(
                name.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
                "stage name {name} is not snake_case"
            );
        }
    }
}

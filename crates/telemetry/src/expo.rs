//! Prometheus text exposition and the embedded scrape endpoint.
//!
//! [`render_prometheus`] turns a [`Registry`] snapshot into the
//! Prometheus text format (version 0.0.4): counters and gauges as-is,
//! the `stage_ms` histograms as summaries with `quantile` labels.
//! [`MetricsServer`] serves it over plain HTTP/1.1 on a background
//! thread (`GET /metrics`), next to a `GET /healthz` JSON snapshot
//! published by the runner through a [`HealthBoard`].
//!
//! Everything here is **strictly read-only** over shared atomic
//! snapshots: scraping cannot perturb the simulation, so reports stay
//! bit-identical with the server on or off.

use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::json::Json;
use crate::registry::Registry;
use crate::STAGE_MS;

/// Quantiles exposed for each stage summary.
const QUANTILES: [(f64, &str); 3] = [(0.50, "0.5"), (0.90, "0.9"), (0.99, "0.99")];

/// Sanitises `name` into a legal Prometheus metric name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): illegal characters become `_`, and a
/// leading digit gains a `_` prefix.
pub fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let legal =
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if legal {
            out.push(c);
        } else if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline must be escaped inside the quotes.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// The label key a metric family's free-form label is exposed under:
/// stage histograms use `stage`, everything else the generic `label`.
fn label_key(family: &str) -> &'static str {
    if family == STAGE_MS {
        "stage"
    } else {
        "label"
    }
}

fn sample(out: &mut String, name: &str, labels: &[(&str, &str)], value: f64) {
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
        }
        out.push('}');
    }
    let _ = writeln!(out, " {value}");
}

fn header(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Renders a registry snapshot in the Prometheus text exposition
/// format. Counters and gauges keep their family names; stage
/// histograms render as summaries with p50/p90/p99 `quantile` labels
/// plus `_count` and `_sum` series. Output is deterministic (families
/// and labels sorted).
pub fn render_prometheus(registry: &Registry) -> String {
    let mut out = String::new();
    let mut last_family = None;
    for (family, label, value) in registry.counter_values() {
        let name = metric_name(family);
        if last_family.as_ref() != Some(&name) {
            header(&mut out, &name, "counter", "msvs counter");
            last_family = Some(name.clone());
        }
        let labels: Vec<(&str, &str)> = if label.is_empty() {
            vec![]
        } else {
            vec![(label_key(family), label.as_str())]
        };
        sample(&mut out, &name, &labels, value as f64);
    }
    last_family = None;
    for (family, label, value) in registry.gauge_values() {
        let name = metric_name(family);
        if last_family.as_ref() != Some(&name) {
            header(&mut out, &name, "gauge", "msvs gauge");
            last_family = Some(name.clone());
        }
        let labels: Vec<(&str, &str)> = if label.is_empty() {
            vec![]
        } else {
            vec![(label_key(family), label.as_str())]
        };
        sample(&mut out, &name, &labels, value);
    }
    last_family = None;
    for (family, label, stats) in registry.histogram_stats() {
        let name = metric_name(family);
        if last_family.as_ref() != Some(&name) {
            header(&mut out, &name, "summary", "msvs stage wall time");
            last_family = Some(name.clone());
        }
        let key = label_key(family);
        let quantile_of = |q: f64| {
            if q == 0.50 {
                stats.p50
            } else if q == 0.90 {
                stats.p90
            } else {
                stats.p99
            }
        };
        for (q, tag) in QUANTILES {
            let mut labels: Vec<(&str, &str)> = Vec::new();
            if !label.is_empty() {
                labels.push((key, label.as_str()));
            }
            labels.push(("quantile", tag));
            sample(&mut out, &name, &labels, quantile_of(q));
        }
        let labels: Vec<(&str, &str)> = if label.is_empty() {
            vec![]
        } else {
            vec![(key, label.as_str())]
        };
        sample(
            &mut out,
            &format!("{name}_count"),
            &labels,
            stats.count as f64,
        );
        sample(
            &mut out,
            &format!("{name}_sum"),
            &labels,
            stats.mean * stats.count as f64,
        );
    }
    out
}

/// Per-shard row in a [`HealthSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardHealth {
    pub shard: u64,
    /// Cumulative availability in `[0, 1]`.
    pub availability: f64,
    /// Intervals this shard spent down so far.
    pub down_intervals: u64,
}

/// Point-in-time run health, published by the simulation at each
/// interval boundary and rendered as the `/healthz` JSON body.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HealthSnapshot {
    /// `"idle"`, `"running"`, or `"finished"`.
    pub state: String,
    /// Scored intervals completed so far.
    pub intervals_completed: u64,
    /// Scored intervals the run will execute.
    pub intervals_total: u64,
    /// Live twin population.
    pub users: u64,
    /// Fresh-twin coverage entering the latest prediction.
    pub twin_coverage: Option<f64>,
    /// Whether the latest interval used the degraded prediction path.
    pub degraded: bool,
    /// Cumulative degraded intervals.
    pub degraded_intervals: u64,
    /// Per-shard availability (empty on single-shard runs).
    pub shards: Vec<ShardHealth>,
    /// Cumulative SLO breach edges (0 without a policy).
    pub slo_breaches: u64,
    /// Whether any SLO rule is currently in violation.
    pub slo_breached: bool,
}

impl HealthSnapshot {
    /// Renders the snapshot as a JSON object.
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(&'static str, Json)> = vec![
            ("state", Json::Str(self.state.clone())),
            (
                "intervals_completed",
                Json::Num(self.intervals_completed as f64),
            ),
            ("intervals_total", Json::Num(self.intervals_total as f64)),
            ("users", Json::Num(self.users as f64)),
            ("degraded", Json::Bool(self.degraded)),
            (
                "degraded_intervals",
                Json::Num(self.degraded_intervals as f64),
            ),
            ("slo_breaches", Json::Num(self.slo_breaches as f64)),
            ("slo_breached", Json::Bool(self.slo_breached)),
        ];
        pairs.push((
            "twin_coverage",
            self.twin_coverage.map_or(Json::Null, Json::Num),
        ));
        pairs.push((
            "shards",
            Json::Arr(
                self.shards
                    .iter()
                    .map(|s| {
                        Json::obj([
                            ("shard", Json::Num(s.shard as f64)),
                            ("availability", Json::Num(s.availability)),
                            ("down_intervals", Json::Num(s.down_intervals as f64)),
                        ])
                    })
                    .collect(),
            ),
        ));
        Json::obj(pairs)
    }
}

/// Shared, last-write-wins home of the current [`HealthSnapshot`].
/// Cloning shares the underlying slot; the runner publishes, the
/// metrics server reads.
#[derive(Debug, Clone, Default)]
pub struct HealthBoard {
    slot: Arc<Mutex<HealthSnapshot>>,
}

impl HealthBoard {
    /// Builds a board holding the default (idle) snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the current snapshot.
    pub fn publish(&self, snapshot: HealthSnapshot) {
        *self.slot.lock().expect("health board lock poisoned") = snapshot;
    }

    /// A copy of the current snapshot.
    pub fn snapshot(&self) -> HealthSnapshot {
        self.slot
            .lock()
            .expect("health board lock poisoned")
            .clone()
    }
}

/// A minimal HTTP/1.1 scrape endpoint on a background thread.
///
/// Serves `GET /metrics` (Prometheus text format) and `GET /healthz`
/// (JSON), both rendered on demand from shared read-only handles. The
/// listener thread is joined on [`stop`](MetricsServer::stop) or drop.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9100`; port 0 picks a free port)
    /// and starts serving `registry` and `health`.
    ///
    /// # Errors
    /// Returns a message when the address cannot be parsed or bound.
    pub fn bind(addr: &str, registry: Registry, health: HealthBoard) -> Result<Self, String> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| format!("cannot bind metrics server on {addr}: {e}"))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("metrics server local_addr: {e}"))?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("msvs-metrics".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if thread_stop.load(Ordering::Acquire) {
                        break;
                    }
                    if let Ok(stream) = stream {
                        // One request per connection; errors only drop
                        // the scrape, never the server.
                        let _ = serve_one(stream, &registry, &health);
                    }
                }
            })
            .map_err(|e| format!("cannot spawn metrics server thread: {e}"))?;
        Ok(MetricsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener thread and joins it. Idempotent.
    pub fn stop(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::Release);
            // Unblock the accept loop with a throwaway connection.
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve_one(
    mut stream: TcpStream,
    registry: &Registry,
    health: &HealthBoard,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    // Read up to the end of the request head; scrape requests have no
    // body, so a bounded single pass is enough.
    let mut buf = [0u8; 4096];
    let mut head = Vec::new();
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 64 * 1024 {
            break;
        }
    }
    let request = String::from_utf8_lossy(&head);
    let mut parts = request.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                render_prometheus(registry),
            ),
            "/healthz" => (
                "200 OK",
                "application/json; charset=utf-8",
                format!("{}\n", health.snapshot().to_json()),
            ),
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "not found; try /metrics or /healthz\n".to_string(),
            ),
        }
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

/// Issues one blocking `GET path` against `addr` and returns the raw
/// response body. Test/CLI helper — not a general HTTP client.
///
/// # Errors
/// Returns a message on connection or protocol failure.
pub fn http_get(addr: impl ToSocketAddrs, path: &str) -> Result<String, String> {
    let addr = addr
        .to_socket_addrs()
        .map_err(|e| format!("bad address: {e}"))?
        .next()
        .ok_or("address resolved to nothing")?;
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))
        .map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(2)))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: msvs\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .map_err(|e| format!("write: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("read: {e}"))?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or("malformed HTTP response")?;
    let status = head.lines().next().unwrap_or("");
    if !status.contains("200") {
        return Err(format!("non-200 response: {status}"));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_names_are_sanitised() {
        assert_eq!(metric_name("events_total"), "events_total");
        assert_eq!(metric_name("stage.ms"), "stage_ms");
        assert_eq!(metric_name("9lives"), "_9lives");
        assert_eq!(metric_name("a-b c"), "a_b_c");
        assert_eq!(metric_name(""), "_");
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\"b"), "a\\\"b");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
    }

    #[test]
    fn exposition_covers_counters_gauges_and_summaries() {
        let reg = Registry::new();
        reg.counter("events_total", "GroupsFormed").add(3);
        reg.counter("events_total", "IntervalStarted").add(5);
        reg.gauge("par_utilisation", "udt_ingest").set(0.75);
        reg.gauge("bare_gauge", "").set(1.5);
        let h = reg.histogram(STAGE_MS, "kmeans_fit");
        for v in 1..=100 {
            h.record(v as f64);
        }
        let text = render_prometheus(&reg);
        assert!(text.contains("# TYPE events_total counter"), "{text}");
        assert!(
            text.contains("events_total{label=\"GroupsFormed\"} 3"),
            "{text}"
        );
        assert!(text.contains("# TYPE par_utilisation gauge"), "{text}");
        assert!(
            text.contains("par_utilisation{label=\"udt_ingest\"} 0.75"),
            "{text}"
        );
        assert!(text.contains("bare_gauge 1.5"), "{text}");
        assert!(text.contains("# TYPE stage_ms summary"), "{text}");
        assert!(
            text.contains("stage_ms{stage=\"kmeans_fit\",quantile=\"0.5\"}"),
            "{text}"
        );
        assert!(
            text.contains("stage_ms_count{stage=\"kmeans_fit\"} 100"),
            "{text}"
        );
        assert!(
            text.contains("stage_ms_sum{stage=\"kmeans_fit\"}"),
            "{text}"
        );
        // One HELP/TYPE pair per family, ahead of its samples.
        assert_eq!(text.matches("# TYPE events_total counter").count(), 1);
    }

    #[test]
    fn every_exposed_line_is_format_conformant() {
        let reg = Registry::new();
        reg.counter("events_total", "with\"quote").inc();
        reg.gauge("shard_imbalance", "").set(0.2);
        reg.histogram(STAGE_MS, "cnn_forward").record(2.0);
        for line in render_prometheus(&reg).lines() {
            if line.starts_with('#') {
                assert!(
                    line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                    "bad comment line: {line}"
                );
                continue;
            }
            let name_end = line.find(['{', ' ']).unwrap_or(line.len());
            let name = &line[..name_end];
            assert!(!name.is_empty(), "unnamed sample: {line}");
            for (i, c) in name.chars().enumerate() {
                let ok = c.is_ascii_alphabetic()
                    || c == '_'
                    || c == ':'
                    || (i > 0 && c.is_ascii_digit());
                assert!(ok, "illegal metric name char {c:?} in: {line}");
            }
            let value = line.rsplit(' ').next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "unparsable value in: {line}");
        }
    }

    #[test]
    fn health_snapshot_renders_json() {
        let board = HealthBoard::new();
        board.publish(HealthSnapshot {
            state: "running".into(),
            intervals_completed: 2,
            intervals_total: 8,
            users: 100,
            twin_coverage: Some(0.97),
            degraded: false,
            degraded_intervals: 0,
            shards: vec![ShardHealth {
                shard: 1,
                availability: 0.5,
                down_intervals: 1,
            }],
            slo_breaches: 1,
            slo_breached: true,
        });
        let text = board.snapshot().to_json().to_string();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed.get("state").and_then(Json::as_str), Some("running"));
        assert_eq!(
            parsed.get("intervals_completed").and_then(Json::as_u64),
            Some(2)
        );
        assert_eq!(
            parsed.get("twin_coverage").and_then(Json::as_f64),
            Some(0.97)
        );
        assert_eq!(parsed.get("slo_breached"), Some(&Json::Bool(true)));
        match parsed.get("shards") {
            Some(Json::Arr(rows)) => {
                assert_eq!(rows.len(), 1);
                assert_eq!(
                    rows[0].get("availability").and_then(Json::as_f64),
                    Some(0.5)
                );
            }
            other => panic!("shards not an array: {other:?}"),
        }
    }

    #[test]
    fn server_serves_metrics_and_healthz_then_stops() {
        let reg = Registry::new();
        reg.counter("events_total", "IntervalStarted").add(7);
        let board = HealthBoard::new();
        board.publish(HealthSnapshot {
            state: "running".into(),
            ..HealthSnapshot::default()
        });
        let mut server = MetricsServer::bind("127.0.0.1:0", reg, board).unwrap();
        let addr = server.addr();
        let metrics = http_get(addr, "/metrics").unwrap();
        assert!(metrics.contains("events_total{label=\"IntervalStarted\"} 7"));
        let health = http_get(addr, "/healthz").unwrap();
        let parsed = Json::parse(health.trim()).unwrap();
        assert_eq!(parsed.get("state").and_then(Json::as_str), Some("running"));
        assert!(http_get(addr, "/nope").is_err(), "404 path must error");
        server.stop();
        server.stop(); // idempotent
        assert!(http_get(addr, "/metrics").is_err(), "server must be down");
    }
}

//! Flamegraph export: collapse the span tree into folded stacks.
//!
//! Produces the classic `a;b;c <self_us>` "folded" format consumed by
//! inferno, `flamegraph.pl`, and speedscope. Each line is a root-to-leaf
//! stack with that frame's **self time** (its duration minus the
//! duration of its children, clamped at zero, in microseconds), so the
//! flamegraph shows where time is actually spent rather than
//! double-counting parents. Identical stacks are merged; output order
//! is lexicographic, so the export is deterministic for a fixed span
//! tree.
//!
//! Sources: live [`SpanRecord`]s from a run, or a Chrome-trace JSON
//! file previously written by `msvs run --trace` (the `"X"` events
//! carry ids and parent links in `args`).

use std::collections::BTreeMap;

use crate::json::Json;
use crate::span::SpanRecord;

/// One frame of a flame tree, decoupled from the live span types so
/// traces parsed back from disk use the same path.
#[derive(Debug, Clone, PartialEq)]
pub struct FlameNode {
    pub id: u64,
    pub parent: Option<u64>,
    pub name: String,
    pub dur_us: u64,
}

/// Converts live span records into flame nodes.
pub fn from_spans(spans: &[SpanRecord]) -> Vec<FlameNode> {
    spans
        .iter()
        .map(|s| FlameNode {
            id: s.id,
            parent: s.parent,
            name: s.name.to_string(),
            dur_us: s.dur_us,
        })
        .collect()
}

/// Extracts flame nodes from a Chrome-trace JSON array written by
/// [`chrome_trace`](crate::trace::chrome_trace): every `"X"` event's
/// name, duration, and `args.id`/`args.parent`.
///
/// # Errors
/// Returns a message when the document is not a trace array or an
/// `"X"` event is missing its id.
pub fn from_chrome_trace(trace: &Json) -> Result<Vec<FlameNode>, String> {
    let events = match trace {
        Json::Arr(events) => events,
        _ => return Err("trace root must be a JSON array of events".into()),
    };
    let mut nodes = Vec::new();
    for (i, event) in events.iter().enumerate() {
        if event.get("ph").and_then(Json::as_str) != Some("X") {
            continue;
        }
        let name = event
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing 'name'"))?
            .to_string();
        let dur_us = event
            .get("dur")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event {i}: missing numeric 'dur'"))?
            as u64;
        let args = event
            .get("args")
            .ok_or_else(|| format!("event {i}: missing 'args'"))?;
        let id = args
            .get("id")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event {i}: missing 'args.id'"))?;
        let parent = args.get("parent").and_then(Json::as_u64);
        nodes.push(FlameNode {
            id,
            parent,
            name,
            dur_us,
        });
    }
    if nodes.is_empty() {
        return Err("trace holds no 'X' (complete) events".into());
    }
    Ok(nodes)
}

/// Collapses `nodes` into folded stacks with self-time rollup. Orphan
/// parents (a dangling `parent` id) are treated as roots rather than
/// dropped, so a truncated trace still produces a usable graph.
pub fn folded_stacks(nodes: &[FlameNode]) -> String {
    let by_id: BTreeMap<u64, &FlameNode> = nodes.iter().map(|n| (n.id, n)).collect();
    // Children duration rollup for self time.
    let mut child_dur: BTreeMap<u64, u64> = BTreeMap::new();
    for node in nodes {
        if let Some(parent) = node.parent {
            if by_id.contains_key(&parent) {
                *child_dur.entry(parent).or_default() += node.dur_us;
            }
        }
    }
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for node in nodes {
        let self_us = node
            .dur_us
            .saturating_sub(child_dur.get(&node.id).copied().unwrap_or(0));
        if self_us == 0 {
            continue;
        }
        // Walk to the root; a cycle or over-deep chain degrades to a
        // truncated stack instead of hanging.
        let mut frames = vec![node.name.as_str()];
        let mut cursor = node.parent;
        let mut depth = 0;
        while let Some(id) = cursor {
            let Some(parent) = by_id.get(&id) else { break };
            frames.push(parent.name.as_str());
            cursor = parent.parent;
            depth += 1;
            if depth > 1024 {
                break;
            }
        }
        frames.reverse();
        *folded.entry(frames.join(";")).or_default() += self_us;
    }
    let mut out = String::new();
    for (stack, us) in folded {
        out.push_str(&stack);
        out.push(' ');
        out.push_str(&us.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanCollector;
    use crate::stages;
    use crate::trace::chrome_trace;

    fn node(id: u64, parent: Option<u64>, name: &str, dur_us: u64) -> FlameNode {
        FlameNode {
            id,
            parent,
            name: name.to_string(),
            dur_us,
        }
    }

    #[test]
    fn self_time_subtracts_children_and_merges_stacks() {
        let nodes = vec![
            node(0, None, "interval", 100),
            node(1, Some(0), "collect", 60),
            node(2, Some(0), "predict", 30),
            node(3, Some(1), "cnn_forward", 25),
            // Second interval with an identical shape merges in.
            node(4, None, "interval", 50),
            node(5, Some(4), "collect", 50),
        ];
        let folded = folded_stacks(&nodes);
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(
            lines,
            vec![
                "interval 10",
                "interval;collect 85",
                "interval;collect;cnn_forward 25",
                "interval;predict 30",
            ]
        );
    }

    #[test]
    fn zero_self_frames_are_elided_but_descendants_survive() {
        let nodes = vec![node(0, None, "root", 10), node(1, Some(0), "leaf", 10)];
        let folded = folded_stacks(&nodes);
        assert_eq!(folded, "root;leaf 10\n");
    }

    #[test]
    fn dangling_parents_degrade_to_roots() {
        let nodes = vec![node(7, Some(999), "orphan", 5)];
        assert_eq!(folded_stacks(&nodes), "orphan 5\n");
    }

    #[test]
    fn live_spans_and_reparsed_trace_collapse_identically() {
        let c = SpanCollector::new();
        {
            let _root = c.enter(stages::INTERVAL).with_interval(0);
            let _child = c.enter(stages::KMEANS_FIT);
            // Guarantee a non-zero child duration at µs resolution so
            // the stack survives the zero-self elision.
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let spans = c.snapshot();
        let live = folded_stacks(&from_spans(&spans));
        assert!(live.contains(&format!("{};{}", stages::INTERVAL, stages::KMEANS_FIT)));

        let trace = chrome_trace(&spans, "msvs test");
        let reparsed = Json::parse(&trace.to_string()).unwrap();
        let from_trace = folded_stacks(&from_chrome_trace(&reparsed).unwrap());
        // Chrome export floors durations at 1 µs; both must still hold
        // the same stacks.
        let stacks = |s: &str| -> Vec<String> {
            s.lines()
                .map(|l| l.rsplit_once(' ').unwrap().0.to_string())
                .collect()
        };
        assert_eq!(stacks(&from_trace), stacks(&live));
    }

    #[test]
    fn chrome_parse_rejects_non_traces() {
        assert!(from_chrome_trace(&Json::Num(1.0)).is_err());
        assert!(from_chrome_trace(&Json::Arr(vec![])).is_err());
    }
}

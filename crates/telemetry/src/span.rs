//! Hierarchical tracing spans with deterministic structure.
//!
//! A [`SpanCollector`] records a tree of [`SpanRecord`]s. On the driver
//! thread, [`SpanCollector::enter`] pushes a span onto an implicit stack,
//! so nested guards parent naturally (interval → stage → per-group
//! children). Worker threads never touch the collector: they record into
//! a private [`SpanScratch`] inside the pool closure, and the driver
//! [`adopt`](SpanCollector::adopt)s each scratch **in item index order**
//! after the pool joins — so span ids, parents, names, and attributes are
//! identical at any `MSVS_THREADS`, while wall-clock timings (and the
//! lane a worker span ran on) are free to vary.
//!
//! [`SpanRecord::structure`] projects out exactly the invariant part;
//! determinism tests compare structures, the Chrome-trace exporter
//! ([`crate::trace`]) emits everything.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Optional attributes carried by a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanAttrs {
    /// Scored-interval index (`None` during warm-up / pretraining).
    pub interval: Option<u64>,
    /// Multicast group id.
    pub group: Option<u64>,
    /// Fan-out batch index (e.g. CNN encode batch).
    pub batch: Option<u64>,
}

/// One recorded span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Dense id; equals the span's index in [`SpanCollector::snapshot`].
    pub id: u64,
    /// Parent span id, `None` for roots.
    pub parent: Option<u64>,
    /// Stage name, from [`crate::stages`].
    pub name: &'static str,
    /// Start offset from the collector epoch, microseconds.
    pub t0_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
    /// Execution lane: 0 is the driver thread; worker threads get stable
    /// per-thread ids. Scheduling-dependent, so excluded from
    /// [`structure`](Self::structure).
    pub lane: u32,
    pub attrs: SpanAttrs,
}

impl SpanRecord {
    /// The thread-count-invariant projection of this span: id, parent,
    /// name, and attributes — everything except wall-clock and lane.
    pub fn structure(&self) -> (u64, Option<u64>, &'static str, SpanAttrs) {
        (self.id, self.parent, self.name, self.attrs)
    }
}

#[derive(Debug, Default)]
struct Inner {
    spans: Vec<SpanRecord>,
    /// Driver-side stack of open span ids; the top is the implicit parent
    /// of the next [`SpanCollector::enter`].
    stack: Vec<u64>,
}

#[derive(Debug)]
struct Core {
    epoch: Instant,
    inner: Mutex<Inner>,
}

/// Shared collector of hierarchical spans. Cloning shares the buffer.
#[derive(Debug, Clone)]
pub struct SpanCollector(Arc<Core>);

impl Default for SpanCollector {
    fn default() -> Self {
        SpanCollector(Arc::new(Core {
            epoch: Instant::now(),
            inner: Mutex::new(Inner::default()),
        }))
    }
}

/// Driver lane id.
pub const DRIVER_LANE: u32 = 0;

static NEXT_LANE: AtomicU32 = AtomicU32::new(1);
thread_local! {
    static LANE: u32 = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
}

impl SpanCollector {
    /// Builds an empty collector whose epoch is "now".
    pub fn new() -> Self {
        Self::default()
    }

    /// Microseconds elapsed since the collector epoch.
    pub fn now_us(&self) -> u64 {
        self.0.epoch.elapsed().as_micros() as u64
    }

    /// Opens a span parented to the innermost open span on the driver
    /// stack. Close it by dropping (or [`end`](SpanGuard::end)ing) the
    /// returned guard.
    pub fn enter(&self, name: &'static str) -> SpanGuard {
        let t0 = self.now_us();
        let mut inner = self.0.inner.lock().expect("span lock poisoned");
        let id = inner.spans.len() as u64;
        let parent = inner.stack.last().copied();
        inner.spans.push(SpanRecord {
            id,
            parent,
            name,
            t0_us: t0,
            dur_us: 0,
            lane: DRIVER_LANE,
            attrs: SpanAttrs::default(),
        });
        inner.stack.push(id);
        SpanGuard {
            collector: self.clone(),
            id,
            attrs: SpanAttrs::default(),
            closed: false,
        }
    }

    fn exit(&self, id: u64, attrs: SpanAttrs) {
        let end = self.now_us();
        let mut inner = self.0.inner.lock().expect("span lock poisoned");
        // Guards usually close innermost-first, but a caller can hold two
        // and drop them out of order; remove by id rather than popping.
        if let Some(pos) = inner.stack.iter().rposition(|&open| open == id) {
            inner.stack.remove(pos);
        }
        let span = &mut inner.spans[id as usize];
        span.dur_us = end.saturating_sub(span.t0_us);
        span.attrs = attrs;
    }

    /// Records an already-measured span without RAII, for timings
    /// produced inside crates that have no telemetry dependency (e.g.
    /// per-round K-means timings surfaced through `KMeansResult`).
    /// Returns the new span's id.
    pub fn record_manual(
        &self,
        parent: Option<u64>,
        name: &'static str,
        t0_us: u64,
        dur_us: u64,
        attrs: SpanAttrs,
    ) -> u64 {
        let mut inner = self.0.inner.lock().expect("span lock poisoned");
        let id = inner.spans.len() as u64;
        inner.spans.push(SpanRecord {
            id,
            parent,
            name,
            t0_us,
            dur_us,
            lane: DRIVER_LANE,
            attrs,
        });
        id
    }

    /// Starts a worker-local scratch buffer sharing this collector's
    /// epoch. Pass the scratch out of the pool closure and [`adopt`]
    /// (Self::adopt) it after the join.
    pub fn scratch(&self) -> SpanScratch {
        SpanScratch {
            epoch: self.0.epoch,
            lane: LANE.with(|l| *l),
            spans: Vec::new(),
            stack: Vec::new(),
        }
    }

    /// Appends every span from `scratch` under `parent`, assigning global
    /// ids in scratch order. Calling this serially in item index order
    /// after a pool join makes the merged structure identical at any
    /// thread count.
    pub fn adopt(&self, parent: Option<u64>, scratch: SpanScratch) {
        let mut inner = self.0.inner.lock().expect("span lock poisoned");
        let base = inner.spans.len() as u64;
        for (i, s) in scratch.spans.into_iter().enumerate() {
            inner.spans.push(SpanRecord {
                id: base + i as u64,
                parent: match s.local_parent {
                    Some(p) => Some(base + p as u64),
                    None => parent,
                },
                name: s.name,
                t0_us: s.t0_us,
                dur_us: s.dur_us,
                lane: s.lane,
                attrs: s.attrs,
            });
        }
    }

    /// Snapshot of every recorded span, in id order.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        self.0
            .inner
            .lock()
            .expect("span lock poisoned")
            .spans
            .clone()
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.0.inner.lock().expect("span lock poisoned").spans.len()
    }

    /// Whether no span has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// RAII handle for an open span; closing (drop or [`end`](Self::end))
/// stamps the duration and attributes into the collector.
#[derive(Debug)]
pub struct SpanGuard {
    collector: SpanCollector,
    id: u64,
    attrs: SpanAttrs,
    closed: bool,
}

impl SpanGuard {
    /// The span's id, usable as [`SpanCollector::record_manual`] parent
    /// or [`SpanCollector::adopt`] anchor.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Sets the scored-interval attribute.
    pub fn set_interval(&mut self, interval: u64) {
        self.attrs.interval = Some(interval);
    }

    /// Sets the multicast-group attribute.
    pub fn set_group(&mut self, group: u64) {
        self.attrs.group = Some(group);
    }

    /// Sets the fan-out batch attribute.
    pub fn set_batch(&mut self, batch: u64) {
        self.attrs.batch = Some(batch);
    }

    /// Builder-style [`set_interval`](Self::set_interval).
    pub fn with_interval(mut self, interval: u64) -> Self {
        self.set_interval(interval);
        self
    }

    /// Builder-style [`set_group`](Self::set_group).
    pub fn with_group(mut self, group: u64) -> Self {
        self.set_group(group);
        self
    }

    /// Builder-style [`set_batch`](Self::set_batch).
    pub fn with_batch(mut self, batch: u64) -> Self {
        self.set_batch(batch);
        self
    }

    /// Closes the span now instead of at scope end.
    pub fn end(mut self) {
        self.close();
    }

    fn close(&mut self) {
        if !self.closed {
            self.closed = true;
            self.collector.exit(self.id, self.attrs);
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.close();
    }
}

#[derive(Debug)]
struct ScratchSpan {
    local_parent: Option<usize>,
    name: &'static str,
    t0_us: u64,
    dur_us: u64,
    lane: u32,
    attrs: SpanAttrs,
}

/// Lock-free, worker-local span buffer for recording inside pool
/// closures. Spans nest through the [`record`](Self::record) closure API
/// and are merged into the collector by [`SpanCollector::adopt`].
#[derive(Debug)]
pub struct SpanScratch {
    epoch: Instant,
    lane: u32,
    spans: Vec<ScratchSpan>,
    stack: Vec<usize>,
}

impl SpanScratch {
    /// Runs `work` inside a span named `name` carrying `attrs`. The
    /// scratch is passed back into the closure so spans can nest.
    pub fn record<T>(
        &mut self,
        name: &'static str,
        attrs: SpanAttrs,
        work: impl FnOnce(&mut Self) -> T,
    ) -> T {
        let idx = self.spans.len();
        let t0 = self.epoch.elapsed().as_micros() as u64;
        self.spans.push(ScratchSpan {
            local_parent: self.stack.last().copied(),
            name,
            t0_us: t0,
            dur_us: 0,
            lane: self.lane,
            attrs,
        });
        self.stack.push(idx);
        let out = work(self);
        self.stack.pop();
        let end = self.epoch.elapsed().as_micros() as u64;
        self.spans[idx].dur_us = end.saturating_sub(t0);
        out
    }

    /// Number of spans recorded so far.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether no span has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stages;

    fn structures(c: &SpanCollector) -> Vec<(u64, Option<u64>, &'static str, SpanAttrs)> {
        c.snapshot().iter().map(SpanRecord::structure).collect()
    }

    #[test]
    fn guards_nest_on_the_driver_stack() {
        let c = SpanCollector::new();
        {
            let outer = c.enter(stages::INTERVAL).with_interval(3);
            {
                let _mid = c.enter(stages::SCHEME_PREDICT);
                let _leaf = c.enter(stages::KMEANS_FIT);
            }
            let _sibling = c.enter(stages::PLAYBACK).with_group(1);
            drop(outer);
        }
        let spans = c.snapshot();
        assert_eq!(spans.len(), 4);
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[0].attrs.interval, Some(3));
        assert_eq!(spans[1].parent, Some(0));
        assert_eq!(spans[2].parent, Some(1));
        assert_eq!(spans[3].parent, Some(0));
        assert_eq!(spans[3].attrs.group, Some(1));
        assert!(spans.iter().all(|s| s.lane == DRIVER_LANE));
    }

    #[test]
    fn out_of_order_guard_drop_keeps_parents_sane() {
        let c = SpanCollector::new();
        let a = c.enter(stages::INTERVAL);
        let b = c.enter(stages::PLAYBACK);
        drop(a); // outer closes first
        let d = c.enter(stages::TRANSCODE); // parents to still-open b
        drop(d);
        drop(b);
        let spans = c.snapshot();
        assert_eq!(spans[2].parent, Some(1));
    }

    #[test]
    fn adopt_assigns_ids_in_scratch_order() {
        let c = SpanCollector::new();
        let parent = c.enter(stages::CNN_FORWARD);
        let pid = parent.id();
        // Simulate two workers finishing in reverse order; the driver
        // adopts in item index order regardless.
        let scratches: Vec<SpanScratch> = (0..2)
            .map(|i| {
                let mut s = c.scratch();
                s.record(
                    stages::CNN_ENCODE_BATCH,
                    SpanAttrs {
                        batch: Some(i),
                        ..Default::default()
                    },
                    |_| {},
                );
                s
            })
            .collect();
        for s in scratches {
            c.adopt(Some(pid), s);
        }
        drop(parent);
        let spans = c.snapshot();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[1].name, stages::CNN_ENCODE_BATCH);
        assert_eq!(spans[1].parent, Some(pid));
        assert_eq!(spans[1].attrs.batch, Some(0));
        assert_eq!(spans[2].attrs.batch, Some(1));
    }

    #[test]
    fn scratch_spans_nest_locally_and_return_the_closure_value() {
        let c = SpanCollector::new();
        let mut s = c.scratch();
        let out = s.record(stages::CNN_ENCODE_BATCH, SpanAttrs::default(), |s| {
            s.record(stages::KMEANS_ASSIGN, SpanAttrs::default(), |_| ());
            42
        });
        assert_eq!(out, 42);
        assert_eq!(s.len(), 2);
        c.adopt(Some(7), s);
        let spans = c.snapshot();
        assert_eq!(spans[0].parent, Some(7));
        assert_eq!(
            spans[1].parent,
            Some(0),
            "nested scratch span re-parents locally"
        );
    }

    #[test]
    fn structure_ignores_timing_and_lane() {
        let mk = || {
            let c = SpanCollector::new();
            {
                let _g = c.enter(stages::INTERVAL).with_interval(0);
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
            structures(&c)
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn record_manual_takes_explicit_parent() {
        let c = SpanCollector::new();
        let fit = c.enter(stages::KMEANS_FIT);
        let fit_id = fit.id();
        let id = c.record_manual(
            Some(fit_id),
            stages::KMEANS_ASSIGN,
            10,
            5,
            SpanAttrs {
                batch: Some(0),
                ..Default::default()
            },
        );
        drop(fit);
        let spans = c.snapshot();
        assert_eq!(spans[id as usize].parent, Some(fit_id));
        assert_eq!(spans[id as usize].dur_us, 5);
    }
}

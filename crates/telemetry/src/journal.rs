//! Structured, in-memory event journal with JSONL/CSV export.
//!
//! Events are typed (not free-form strings) so tests can assert on the
//! exact sequence a simulation emits, and timestamps are **simulation
//! time** so journals are deterministic for a fixed seed.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use crate::json::Json;

/// One structured telemetry event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A simulation run began.
    RunStarted { scheme: String, seed: u64 },
    /// A scored interval began.
    IntervalStarted { interval: u64 },
    /// The UDT collection sweep for an interval finished.
    CollectionCompleted { interval: u64, users: u64 },
    /// A named pipeline stage finished (`wall_ms` of host time).
    StageCompleted { stage: String, wall_ms: f64 },
    /// The grouping engine produced multicast groups.
    GroupsFormed {
        k: u64,
        silhouette: f64,
        reward: f64,
    },
    /// The scheme predicted aggregate resource demand.
    DemandPredicted {
        groups: u64,
        total_rb: f64,
        traffic_mb: f64,
    },
    /// A reservation was scored against realised demand.
    ReservationScored {
        predicted_rb: f64,
        used_rb: f64,
        over_rb: f64,
        under_rb: f64,
    },
    /// The edge cache evicted an entry under pressure.
    CacheEvicted { video: u64, level: String },
    /// The DDQN agent completed a training step.
    TrainingStepped { loss: f64, epsilon: f64 },
    /// A scored interval finished.
    IntervalCompleted {
        interval: u64,
        qoe: f64,
        hit_ratio: f64,
    },
    /// One uplink status report was faulted (timestamp = report time).
    FaultInjected {
        user: u64,
        attribute: String,
        kind: String,
    },
    /// Per-interval fault-injection tallies after the collection sweep.
    FaultsInjected {
        interval: u64,
        lost: u64,
        delayed: u64,
        corrupted: u64,
        rejected: u64,
        retried: u64,
        overflowed: u64,
    },
    /// A scheduled churn burst replaced part of the population.
    ChurnBurst { interval: u64, replaced: u64 },
    /// The edge cache capacity changed for a brownout window.
    BrownoutApplied { interval: u64, capacity_scale: f64 },
    /// The predictor fell back to its degraded path for an interval.
    PredictionDegraded {
        interval: u64,
        coverage: f64,
        margin: f64,
    },
    /// A shard went down (crash or partition). `failed_over` counts the
    /// twins migrated to live neighbours (crash only);
    /// `checkpoint_bytes` is the size of the boundary checkpoint.
    ShardDown {
        interval: u64,
        shard: u64,
        mode: String,
        failed_over: u64,
        checkpoint_bytes: u64,
    },
    /// A shard came back at the end of its outage window. `recovered`
    /// counts the users in the checkpoint anchoring the resync.
    ShardRestored {
        interval: u64,
        shard: u64,
        mode: String,
        recovered: u64,
    },
    /// An SLO rule crossed from meeting to breaching its objective at
    /// an interval boundary. `value` is the observed signal, `threshold`
    /// the policy bound it violated.
    SloBreached {
        interval: u64,
        slo: String,
        value: f64,
        threshold: f64,
    },
    /// A previously breached SLO rule returned within its objective.
    SloRecovered {
        interval: u64,
        slo: String,
        value: f64,
        threshold: f64,
    },
}

impl Event {
    /// Stable event name used as the JSONL/CSV discriminant.
    pub fn name(&self) -> &'static str {
        match self {
            Event::RunStarted { .. } => "RunStarted",
            Event::IntervalStarted { .. } => "IntervalStarted",
            Event::CollectionCompleted { .. } => "CollectionCompleted",
            Event::StageCompleted { .. } => "StageCompleted",
            Event::GroupsFormed { .. } => "GroupsFormed",
            Event::DemandPredicted { .. } => "DemandPredicted",
            Event::ReservationScored { .. } => "ReservationScored",
            Event::CacheEvicted { .. } => "CacheEvicted",
            Event::TrainingStepped { .. } => "TrainingStepped",
            Event::IntervalCompleted { .. } => "IntervalCompleted",
            Event::FaultInjected { .. } => "FaultInjected",
            Event::FaultsInjected { .. } => "FaultsInjected",
            Event::ChurnBurst { .. } => "ChurnBurst",
            Event::BrownoutApplied { .. } => "BrownoutApplied",
            Event::PredictionDegraded { .. } => "PredictionDegraded",
            Event::ShardDown { .. } => "ShardDown",
            Event::ShardRestored { .. } => "ShardRestored",
            Event::SloBreached { .. } => "SloBreached",
            Event::SloRecovered { .. } => "SloRecovered",
        }
    }

    fn fields(&self) -> Vec<(&'static str, Json)> {
        match self {
            Event::RunStarted { scheme, seed } => vec![
                ("scheme", Json::Str(scheme.clone())),
                ("seed", Json::Num(*seed as f64)),
            ],
            Event::IntervalStarted { interval } => {
                vec![("interval", Json::Num(*interval as f64))]
            }
            Event::CollectionCompleted { interval, users } => vec![
                ("interval", Json::Num(*interval as f64)),
                ("users", Json::Num(*users as f64)),
            ],
            Event::StageCompleted { stage, wall_ms } => vec![
                ("stage", Json::Str(stage.clone())),
                ("wall_ms", Json::Num(*wall_ms)),
            ],
            Event::GroupsFormed {
                k,
                silhouette,
                reward,
            } => vec![
                ("k", Json::Num(*k as f64)),
                ("silhouette", Json::Num(*silhouette)),
                ("reward", Json::Num(*reward)),
            ],
            Event::DemandPredicted {
                groups,
                total_rb,
                traffic_mb,
            } => vec![
                ("groups", Json::Num(*groups as f64)),
                ("total_rb", Json::Num(*total_rb)),
                ("traffic_mb", Json::Num(*traffic_mb)),
            ],
            Event::ReservationScored {
                predicted_rb,
                used_rb,
                over_rb,
                under_rb,
            } => vec![
                ("predicted_rb", Json::Num(*predicted_rb)),
                ("used_rb", Json::Num(*used_rb)),
                ("over_rb", Json::Num(*over_rb)),
                ("under_rb", Json::Num(*under_rb)),
            ],
            Event::CacheEvicted { video, level } => vec![
                ("video", Json::Num(*video as f64)),
                ("level", Json::Str(level.clone())),
            ],
            Event::TrainingStepped { loss, epsilon } => {
                vec![("loss", Json::Num(*loss)), ("epsilon", Json::Num(*epsilon))]
            }
            Event::IntervalCompleted {
                interval,
                qoe,
                hit_ratio,
            } => vec![
                ("interval", Json::Num(*interval as f64)),
                ("qoe", Json::Num(*qoe)),
                ("hit_ratio", Json::Num(*hit_ratio)),
            ],
            Event::FaultInjected {
                user,
                attribute,
                kind,
            } => vec![
                ("user", Json::Num(*user as f64)),
                ("attribute", Json::Str(attribute.clone())),
                ("kind", Json::Str(kind.clone())),
            ],
            Event::FaultsInjected {
                interval,
                lost,
                delayed,
                corrupted,
                rejected,
                retried,
                overflowed,
            } => vec![
                ("interval", Json::Num(*interval as f64)),
                ("lost", Json::Num(*lost as f64)),
                ("delayed", Json::Num(*delayed as f64)),
                ("corrupted", Json::Num(*corrupted as f64)),
                ("rejected", Json::Num(*rejected as f64)),
                ("retried", Json::Num(*retried as f64)),
                ("overflowed", Json::Num(*overflowed as f64)),
            ],
            Event::ChurnBurst { interval, replaced } => vec![
                ("interval", Json::Num(*interval as f64)),
                ("replaced", Json::Num(*replaced as f64)),
            ],
            Event::BrownoutApplied {
                interval,
                capacity_scale,
            } => vec![
                ("interval", Json::Num(*interval as f64)),
                ("capacity_scale", Json::Num(*capacity_scale)),
            ],
            Event::PredictionDegraded {
                interval,
                coverage,
                margin,
            } => vec![
                ("interval", Json::Num(*interval as f64)),
                ("coverage", Json::Num(*coverage)),
                ("margin", Json::Num(*margin)),
            ],
            Event::ShardDown {
                interval,
                shard,
                mode,
                failed_over,
                checkpoint_bytes,
            } => vec![
                ("interval", Json::Num(*interval as f64)),
                ("shard", Json::Num(*shard as f64)),
                ("mode", Json::Str(mode.clone())),
                ("failed_over", Json::Num(*failed_over as f64)),
                ("checkpoint_bytes", Json::Num(*checkpoint_bytes as f64)),
            ],
            Event::ShardRestored {
                interval,
                shard,
                mode,
                recovered,
            } => vec![
                ("interval", Json::Num(*interval as f64)),
                ("shard", Json::Num(*shard as f64)),
                ("mode", Json::Str(mode.clone())),
                ("recovered", Json::Num(*recovered as f64)),
            ],
            Event::SloBreached {
                interval,
                slo,
                value,
                threshold,
            }
            | Event::SloRecovered {
                interval,
                slo,
                value,
                threshold,
            } => vec![
                ("interval", Json::Num(*interval as f64)),
                ("slo", Json::Str(slo.clone())),
                ("value", Json::Num(*value)),
                ("threshold", Json::Num(*threshold)),
            ],
        }
    }

    fn from_json(name: &str, obj: &Json) -> Result<Event, String> {
        let num = |k: &str| {
            obj.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("{name}: missing numeric field '{k}'"))
        };
        let int = |k: &str| num(k).map(|v| v as u64);
        let text = |k: &str| {
            obj.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("{name}: missing string field '{k}'"))
        };
        Ok(match name {
            "RunStarted" => Event::RunStarted {
                scheme: text("scheme")?,
                seed: int("seed")?,
            },
            "IntervalStarted" => Event::IntervalStarted {
                interval: int("interval")?,
            },
            "CollectionCompleted" => Event::CollectionCompleted {
                interval: int("interval")?,
                users: int("users")?,
            },
            "StageCompleted" => Event::StageCompleted {
                stage: text("stage")?,
                wall_ms: num("wall_ms")?,
            },
            "GroupsFormed" => Event::GroupsFormed {
                k: int("k")?,
                silhouette: num("silhouette")?,
                reward: num("reward")?,
            },
            "DemandPredicted" => Event::DemandPredicted {
                groups: int("groups")?,
                total_rb: num("total_rb")?,
                traffic_mb: num("traffic_mb")?,
            },
            "ReservationScored" => Event::ReservationScored {
                predicted_rb: num("predicted_rb")?,
                used_rb: num("used_rb")?,
                over_rb: num("over_rb")?,
                under_rb: num("under_rb")?,
            },
            "CacheEvicted" => Event::CacheEvicted {
                video: int("video")?,
                level: text("level")?,
            },
            "TrainingStepped" => Event::TrainingStepped {
                loss: num("loss")?,
                epsilon: num("epsilon")?,
            },
            "IntervalCompleted" => Event::IntervalCompleted {
                interval: int("interval")?,
                qoe: num("qoe")?,
                hit_ratio: num("hit_ratio")?,
            },
            "FaultInjected" => Event::FaultInjected {
                user: int("user")?,
                attribute: text("attribute")?,
                kind: text("kind")?,
            },
            "FaultsInjected" => Event::FaultsInjected {
                interval: int("interval")?,
                lost: int("lost")?,
                delayed: int("delayed")?,
                corrupted: int("corrupted")?,
                rejected: int("rejected")?,
                retried: int("retried")?,
                overflowed: int("overflowed")?,
            },
            "ChurnBurst" => Event::ChurnBurst {
                interval: int("interval")?,
                replaced: int("replaced")?,
            },
            "BrownoutApplied" => Event::BrownoutApplied {
                interval: int("interval")?,
                capacity_scale: num("capacity_scale")?,
            },
            "PredictionDegraded" => Event::PredictionDegraded {
                interval: int("interval")?,
                coverage: num("coverage")?,
                margin: num("margin")?,
            },
            "ShardDown" => Event::ShardDown {
                interval: int("interval")?,
                shard: int("shard")?,
                mode: text("mode")?,
                failed_over: int("failed_over")?,
                checkpoint_bytes: int("checkpoint_bytes")?,
            },
            "ShardRestored" => Event::ShardRestored {
                interval: int("interval")?,
                shard: int("shard")?,
                mode: text("mode")?,
                recovered: int("recovered")?,
            },
            "SloBreached" => Event::SloBreached {
                interval: int("interval")?,
                slo: text("slo")?,
                value: num("value")?,
                threshold: num("threshold")?,
            },
            "SloRecovered" => Event::SloRecovered {
                interval: int("interval")?,
                slo: text("slo")?,
                value: num("value")?,
                threshold: num("threshold")?,
            },
            other => return Err(format!("unknown event '{other}'")),
        })
    }
}

/// A journal entry: an [`Event`] stamped with simulation time.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// Simulation time of the event, milliseconds.
    pub t_ms: u64,
    pub event: Event,
}

impl Entry {
    /// One JSONL line for this entry.
    pub fn to_json(&self) -> Json {
        let mut map: BTreeMap<String, Json> = BTreeMap::new();
        map.insert("t_ms".into(), Json::Num(self.t_ms as f64));
        map.insert("event".into(), Json::Str(self.event.name().into()));
        for (k, v) in self.event.fields() {
            map.insert(k.into(), v);
        }
        Json::Obj(map)
    }

    /// Parses one JSONL line.
    ///
    /// # Errors
    /// Returns a message naming the malformed or missing field.
    pub fn parse(line: &str) -> Result<Entry, String> {
        let obj = Json::parse(line)?;
        let t_ms = obj
            .get("t_ms")
            .and_then(Json::as_u64)
            .ok_or("missing 't_ms'")?;
        let name = obj
            .get("event")
            .and_then(Json::as_str)
            .ok_or("missing 'event'")?
            .to_string();
        Ok(Entry {
            t_ms,
            event: Event::from_json(&name, &obj)?,
        })
    }
}

/// Append-only, thread-safe journal of [`Entry`]s. Cloning shares the
/// underlying buffer.
#[derive(Debug, Clone, Default)]
pub struct EventJournal {
    entries: Arc<Mutex<Vec<Entry>>>,
}

impl EventJournal {
    /// Builds an empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends `event` at simulation time `t_ms`.
    pub fn record(&self, t_ms: u64, event: Event) {
        self.entries
            .lock()
            .expect("journal lock poisoned")
            .push(Entry { t_ms, event });
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("journal lock poisoned").len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of every entry in record order.
    pub fn entries(&self) -> Vec<Entry> {
        self.entries.lock().expect("journal lock poisoned").clone()
    }

    /// Serialises the journal as JSONL (one entry per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.entries() {
            let _ = writeln!(out, "{}", e.to_json());
        }
        out
    }

    /// Serialises the journal as CSV with columns
    /// `t_ms,event,fields` where `fields` packs `key=value` pairs.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t_ms,event,fields\n");
        for e in self.entries() {
            let fields: Vec<String> = e
                .event
                .fields()
                .iter()
                .map(|(k, v)| match v {
                    Json::Str(s) => format!("{k}={s}"),
                    other => format!("{k}={other}"),
                })
                .collect();
            let _ = writeln!(
                out,
                "{},{},\"{}\"",
                e.t_ms,
                e.event.name(),
                fields.join(";").replace('"', "\"\"")
            );
        }
        out
    }

    /// Parses a JSONL document produced by [`to_jsonl`](Self::to_jsonl)
    /// into a fresh journal. Blank lines are skipped.
    ///
    /// # Errors
    /// Returns the first malformed line's number and message.
    pub fn parse_jsonl(text: &str) -> Result<EventJournal, String> {
        let journal = EventJournal::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let entry = Entry::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            journal.record(entry.t_ms, entry.event);
        }
        Ok(journal)
    }

    /// Parses a JSONL document, skipping malformed lines instead of
    /// failing, and accounts for every skip in the returned
    /// [`ParseReport`]. A malformed **final** line additionally sets
    /// [`ParseReport::truncated`] — the signature of an export cut off
    /// mid-write — so callers can escalate it to a hard error.
    pub fn parse_jsonl_lossy(text: &str) -> (EventJournal, ParseReport) {
        let journal = EventJournal::new();
        let mut report = ParseReport::default();
        let mut last_line = None;
        let mut last_bad = None;
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            last_line = Some(i);
            match Entry::parse(line) {
                Ok(entry) => journal.record(entry.t_ms, entry.event),
                Err(e) => {
                    report.skipped.push((i + 1, e));
                    last_bad = Some(i);
                }
            }
        }
        report.truncated = last_bad.is_some() && last_bad == last_line;
        (journal, report)
    }
}

/// Accounting from [`EventJournal::parse_jsonl_lossy`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParseReport {
    /// `(1-based line number, error)` for every skipped line.
    pub skipped: Vec<(usize, String)>,
    /// Whether the final non-blank line failed to parse (truncated or
    /// corrupt export).
    pub truncated: bool,
}

impl ParseReport {
    /// Whether every line parsed.
    pub fn clean(&self) -> bool {
        self.skipped.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entries() -> Vec<Entry> {
        vec![
            Entry {
                t_ms: 0,
                event: Event::RunStarted {
                    scheme: "dt-assisted".into(),
                    seed: 7,
                },
            },
            Entry {
                t_ms: 300_000,
                event: Event::IntervalStarted { interval: 1 },
            },
            Entry {
                t_ms: 300_000,
                event: Event::GroupsFormed {
                    k: 3,
                    silhouette: 0.42,
                    reward: -1.5,
                },
            },
            Entry {
                t_ms: 300_500,
                event: Event::StageCompleted {
                    stage: crate::stages::KMEANS_FIT.into(),
                    wall_ms: 1.25,
                },
            },
            Entry {
                t_ms: 301_000,
                event: Event::CacheEvicted {
                    video: 17,
                    level: "P720".into(),
                },
            },
            Entry {
                t_ms: 600_000,
                event: Event::IntervalCompleted {
                    interval: 1,
                    qoe: 0.91,
                    hit_ratio: 0.75,
                },
            },
        ]
    }

    #[test]
    fn jsonl_round_trip_preserves_every_event() {
        let journal = EventJournal::new();
        for e in sample_entries() {
            journal.record(e.t_ms, e.event);
        }
        let text = journal.to_jsonl();
        let parsed = EventJournal::parse_jsonl(&text).unwrap();
        assert_eq!(parsed.entries(), journal.entries());
    }

    #[test]
    fn every_event_variant_round_trips() {
        let variants = vec![
            Event::RunStarted {
                scheme: "s".into(),
                seed: 1,
            },
            Event::IntervalStarted { interval: 2 },
            Event::CollectionCompleted {
                interval: 2,
                users: 40,
            },
            Event::StageCompleted {
                stage: crate::stages::CNN_FORWARD.into(),
                wall_ms: 0.5,
            },
            Event::GroupsFormed {
                k: 4,
                silhouette: 0.1,
                reward: 2.0,
            },
            Event::DemandPredicted {
                groups: 4,
                total_rb: 120.5,
                traffic_mb: 88.0,
            },
            Event::ReservationScored {
                predicted_rb: 100.0,
                used_rb: 90.0,
                over_rb: 10.0,
                under_rb: 0.0,
            },
            Event::CacheEvicted {
                video: 3,
                level: "P1080".into(),
            },
            Event::TrainingStepped {
                loss: 0.03,
                epsilon: 0.2,
            },
            Event::IntervalCompleted {
                interval: 2,
                qoe: 0.8,
                hit_ratio: 0.6,
            },
            Event::FaultInjected {
                user: 7,
                attribute: "channel".into(),
                kind: "lose".into(),
            },
            Event::FaultsInjected {
                interval: 2,
                lost: 10,
                delayed: 4,
                corrupted: 1,
                rejected: 1,
                retried: 6,
                overflowed: 2,
            },
            Event::ChurnBurst {
                interval: 2,
                replaced: 12,
            },
            Event::BrownoutApplied {
                interval: 2,
                capacity_scale: 0.35,
            },
            Event::PredictionDegraded {
                interval: 2,
                coverage: 0.6,
                margin: 1.2,
            },
            Event::ShardDown {
                interval: 2,
                shard: 1,
                mode: "crash".into(),
                failed_over: 25,
                checkpoint_bytes: 4096,
            },
            Event::ShardRestored {
                interval: 4,
                shard: 1,
                mode: "crash".into(),
                recovered: 25,
            },
            Event::SloBreached {
                interval: 2,
                slo: "availability".into(),
                value: 0.75,
                threshold: 0.95,
            },
            Event::SloRecovered {
                interval: 3,
                slo: "availability".into(),
                value: 1.0,
                threshold: 0.95,
            },
        ];
        for event in variants {
            let entry = Entry { t_ms: 42, event };
            let parsed = Entry::parse(&entry.to_json().to_string()).unwrap();
            assert_eq!(parsed, entry);
        }
    }

    #[test]
    fn parse_reports_line_numbers() {
        let err = EventJournal::parse_jsonl("{\"t_ms\":1,\"event\":\"Nope\"}\n").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        assert!(err.contains("Nope"), "{err}");
    }

    #[test]
    fn lossy_parse_counts_skips_and_flags_a_corrupt_final_line() {
        let journal = EventJournal::new();
        for e in sample_entries() {
            journal.record(e.t_ms, e.event);
        }
        // Hand-damage the middle: drop a field from line 3, garble line 5.
        let mut lines: Vec<String> = journal.to_jsonl().lines().map(str::to_string).collect();
        lines[2] = lines[2].replace("\"silhouette\":0.42,", "");
        lines[4] = "{not json at all".into();
        let damaged = lines.join("\n");
        let (parsed, report) = EventJournal::parse_jsonl_lossy(&damaged);
        assert_eq!(parsed.len(), journal.len() - 2);
        assert_eq!(report.skipped.len(), 2);
        assert_eq!(report.skipped[0].0, 3);
        assert_eq!(report.skipped[1].0, 5);
        assert!(!report.truncated, "damage was not on the final line");
        assert!(!report.clean());

        // Truncate the final line mid-record: lossy parse flags it.
        let mut truncated = journal.to_jsonl();
        truncated.truncate(truncated.len() - 20);
        let (parsed, report) = EventJournal::parse_jsonl_lossy(&truncated);
        assert_eq!(parsed.len(), journal.len() - 1);
        assert!(report.truncated);
        assert_eq!(report.skipped.len(), 1);
    }

    #[test]
    fn lossy_parse_of_a_clean_journal_is_clean() {
        let journal = EventJournal::new();
        for e in sample_entries() {
            journal.record(e.t_ms, e.event);
        }
        let (parsed, report) = EventJournal::parse_jsonl_lossy(&journal.to_jsonl());
        assert_eq!(parsed.entries(), journal.entries());
        assert!(report.clean());
        assert!(!report.truncated);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let journal = EventJournal::new();
        journal.record(5, Event::IntervalStarted { interval: 9 });
        let text = format!("\n{}\n\n", journal.to_jsonl());
        assert_eq!(EventJournal::parse_jsonl(&text).unwrap().len(), 1);
    }

    #[test]
    fn csv_has_header_and_one_row_per_entry() {
        let journal = EventJournal::new();
        for e in sample_entries() {
            journal.record(e.t_ms, e.event);
        }
        let csv = journal.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + journal.len());
        assert_eq!(lines[0], "t_ms,event,fields");
        assert!(lines[3].contains("silhouette=0.42"));
    }
}

//! Chrome-trace (Perfetto / `chrome://tracing`) JSON export.
//!
//! Emits the *JSON array format*: one `"M"` (metadata) event naming the
//! process and each lane, then one `"X"` (complete) event per span with
//! microsecond `ts`/`dur` and the span id/parent/attributes under
//! `args`, plus optional `"C"` (counter) events turning periodic gauge
//! samples into Perfetto time-series tracks. Load the file in
//! <https://ui.perfetto.dev> or `chrome://tracing` directly — no
//! conversion step needed.

use std::collections::BTreeSet;

use crate::json::Json;
use crate::span::{SpanRecord, DRIVER_LANE};

/// Trace-event category stamped on every span event.
const CATEGORY: &str = "msvs";

/// One periodic gauge observation destined for a `"C"` counter track.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSample {
    /// Microseconds since the span-collector epoch.
    pub t_us: u64,
    /// Gauge family name (e.g. `par_utilisation`).
    pub name: String,
    /// Free-form label; empty labels render as the bare family name.
    pub label: String,
    pub value: f64,
}

impl GaugeSample {
    /// The counter-track name this sample lands on.
    fn track(&self) -> String {
        if self.label.is_empty() {
            self.name.clone()
        } else {
            format!("{}:{}", self.name, self.label)
        }
    }
}

/// Renders `spans` as a Chrome-trace JSON array.
pub fn chrome_trace(spans: &[SpanRecord], process_name: &str) -> Json {
    chrome_trace_with_counters(spans, &[], process_name)
}

/// Renders `spans` plus periodic gauge `samples` as a Chrome-trace JSON
/// array: spans become `"X"` slices, each sample a `"C"` counter event
/// so Perfetto draws gauge time-series tracks alongside the span tree.
pub fn chrome_trace_with_counters(
    spans: &[SpanRecord],
    samples: &[GaugeSample],
    process_name: &str,
) -> Json {
    let mut events = Vec::with_capacity(spans.len() + 8);
    events.push(metadata_event(
        "process_name",
        0,
        Json::obj([("name", Json::Str(process_name.into()))]),
    ));
    let lanes: BTreeSet<u32> = spans.iter().map(|s| s.lane).collect();
    for lane in lanes {
        let name = if lane == DRIVER_LANE {
            "driver".to_string()
        } else {
            format!("worker-{lane}")
        };
        let mut meta = metadata_event("thread_name", lane, Json::obj([("name", Json::Str(name))]));
        if let Json::Obj(map) = &mut meta {
            // Perfetto sorts lanes by this index; keep the driver on top.
            map.insert("ts".into(), Json::Num(0.0));
        }
        events.push(meta);
    }
    for span in spans {
        events.push(span_event(span));
    }
    for sample in samples {
        events.push(counter_event(sample));
    }
    Json::Arr(events)
}

fn counter_event(sample: &GaugeSample) -> Json {
    Json::obj([
        ("ph", Json::Str("C".into())),
        ("cat", Json::Str(CATEGORY.into())),
        ("name", Json::Str(sample.track())),
        ("ts", Json::Num(sample.t_us as f64)),
        ("pid", Json::Num(0.0)),
        ("tid", Json::Num(DRIVER_LANE as f64)),
        ("args", Json::obj([("value", Json::Num(sample.value))])),
    ])
}

fn metadata_event(name: &str, tid: u32, args: Json) -> Json {
    Json::obj([
        ("ph", Json::Str("M".into())),
        ("pid", Json::Num(0.0)),
        ("tid", Json::Num(tid as f64)),
        ("name", Json::Str(name.into())),
        ("args", args),
    ])
}

fn span_event(span: &SpanRecord) -> Json {
    let mut args = vec![("id", Json::Num(span.id as f64))];
    if let Some(parent) = span.parent {
        args.push(("parent", Json::Num(parent as f64)));
    }
    if let Some(interval) = span.attrs.interval {
        args.push(("interval", Json::Num(interval as f64)));
    }
    if let Some(group) = span.attrs.group {
        args.push(("group", Json::Num(group as f64)));
    }
    if let Some(batch) = span.attrs.batch {
        args.push(("batch", Json::Num(batch as f64)));
    }
    Json::obj([
        ("ph", Json::Str("X".into())),
        ("cat", Json::Str(CATEGORY.into())),
        ("name", Json::Str(span.name.into())),
        ("ts", Json::Num(span.t0_us as f64)),
        // Zero-duration slices are invisible in viewers; floor at 1 µs.
        ("dur", Json::Num(span.dur_us.max(1) as f64)),
        ("pid", Json::Num(0.0)),
        ("tid", Json::Num(span.lane as f64)),
        ("args", Json::obj(args)),
    ])
}

/// Validates `trace` against the Chrome-trace array schema this crate
/// emits: a JSON array whose elements all carry `ph`/`pid`/`tid`/`name`,
/// where `"X"` events add finite `ts`/`dur` and an `args.id`, `"C"`
/// events add a finite `ts` and a numeric `args.value`, and every
/// `args.parent` refers to an `args.id` present in the trace.
///
/// # Errors
/// Returns a message naming the first offending event.
pub fn validate_chrome_trace(trace: &Json) -> Result<(), String> {
    let events = match trace {
        Json::Arr(events) => events,
        _ => return Err("trace root must be a JSON array of events".into()),
    };
    let mut ids = BTreeSet::new();
    let mut parents = Vec::new();
    let mut saw_complete = false;
    for (i, event) in events.iter().enumerate() {
        let ph = event
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing 'ph'"))?;
        for key in ["pid", "tid"] {
            event
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("event {i}: missing numeric '{key}'"))?;
        }
        event
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing 'name'"))?;
        match ph {
            "M" => {}
            "X" => {
                saw_complete = true;
                for key in ["ts", "dur"] {
                    let v = event
                        .get(key)
                        .and_then(Json::as_f64)
                        .ok_or_else(|| format!("event {i}: missing numeric '{key}'"))?;
                    if !v.is_finite() || v < 0.0 {
                        return Err(format!("event {i}: '{key}' must be finite and >= 0"));
                    }
                }
                let args = event
                    .get("args")
                    .ok_or_else(|| format!("event {i}: missing 'args'"))?;
                let id = args
                    .get("id")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("event {i}: missing 'args.id'"))?;
                ids.insert(id);
                if let Some(parent) = args.get("parent") {
                    let parent = parent
                        .as_u64()
                        .ok_or_else(|| format!("event {i}: non-integer 'args.parent'"))?;
                    parents.push((i, parent));
                }
            }
            "C" => {
                let ts = event
                    .get("ts")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("event {i}: missing numeric 'ts'"))?;
                if !ts.is_finite() || ts < 0.0 {
                    return Err(format!("event {i}: 'ts' must be finite and >= 0"));
                }
                let value = event
                    .get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("event {i}: missing numeric 'args.value'"))?;
                if !value.is_finite() {
                    return Err(format!("event {i}: 'args.value' must be finite"));
                }
            }
            other => return Err(format!("event {i}: unknown phase '{other}'")),
        }
    }
    if !saw_complete {
        return Err("trace holds no 'X' (complete) events".into());
    }
    for (i, parent) in parents {
        if !ids.contains(&parent) {
            return Err(format!("event {i}: parent {parent} not present in trace"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanCollector;
    use crate::stages;

    fn sample_trace() -> Json {
        let c = SpanCollector::new();
        {
            let _root = c.enter(stages::INTERVAL).with_interval(0);
            let _child = c.enter(stages::SCHEME_PREDICT);
        }
        chrome_trace(&c.snapshot(), "msvs test")
    }

    #[test]
    fn export_is_an_array_that_validates_and_round_trips() {
        let trace = sample_trace();
        validate_chrome_trace(&trace).unwrap();
        let reparsed = Json::parse(&trace.to_string()).unwrap();
        validate_chrome_trace(&reparsed).unwrap();
        assert!(matches!(reparsed, Json::Arr(_)));
    }

    #[test]
    fn spans_keep_parent_links_in_args() {
        let trace = sample_trace();
        let Json::Arr(events) = &trace else {
            panic!("not an array")
        };
        let child = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some(stages::SCHEME_PREDICT))
            .unwrap();
        assert_eq!(
            child
                .get("args")
                .and_then(|a| a.get("parent"))
                .and_then(Json::as_u64),
            Some(0)
        );
        let root = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some(stages::INTERVAL))
            .unwrap();
        assert_eq!(
            root.get("args")
                .and_then(|a| a.get("interval"))
                .and_then(Json::as_u64),
            Some(0)
        );
    }

    #[test]
    fn counter_events_render_and_validate() {
        let c = SpanCollector::new();
        {
            let _root = c.enter(stages::INTERVAL);
        }
        let samples = vec![
            GaugeSample {
                t_us: 10,
                name: "par_utilisation".into(),
                label: stages::UDT_INGEST.into(),
                value: 0.8,
            },
            GaugeSample {
                t_us: 20,
                name: "twin_coverage".into(),
                label: String::new(),
                value: 0.97,
            },
        ];
        let trace = chrome_trace_with_counters(&c.snapshot(), &samples, "msvs test");
        validate_chrome_trace(&trace).unwrap();
        let reparsed = Json::parse(&trace.to_string()).unwrap();
        validate_chrome_trace(&reparsed).unwrap();
        let Json::Arr(events) = &reparsed else {
            panic!("not an array")
        };
        let counters: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("C"))
            .collect();
        assert_eq!(counters.len(), 2);
        assert_eq!(
            counters[0].get("name").and_then(Json::as_str),
            Some(format!("par_utilisation:{}", stages::UDT_INGEST).as_str())
        );
        assert_eq!(
            counters[1]
                .get("args")
                .and_then(|a| a.get("value"))
                .and_then(Json::as_f64),
            Some(0.97)
        );
        // A counter event without a value is rejected.
        let mut broken = events.clone();
        broken.push(Json::obj([
            ("ph", Json::Str("C".into())),
            ("pid", Json::Num(0.0)),
            ("tid", Json::Num(0.0)),
            ("name", Json::Str("broken".into())),
            ("ts", Json::Num(1.0)),
            ("args", Json::obj([])),
        ]));
        let err = validate_chrome_trace(&Json::Arr(broken)).unwrap_err();
        assert!(err.contains("args.value"), "{err}");
    }

    #[test]
    fn validation_rejects_broken_traces() {
        assert!(validate_chrome_trace(&Json::Num(3.0)).is_err());
        // Dangling parent.
        let bad = Json::Arr(vec![Json::obj([
            ("ph", Json::Str("X".into())),
            ("pid", Json::Num(0.0)),
            ("tid", Json::Num(0.0)),
            ("name", Json::Str("x".into())),
            ("ts", Json::Num(0.0)),
            ("dur", Json::Num(1.0)),
            (
                "args",
                Json::obj([("id", Json::Num(5.0)), ("parent", Json::Num(99.0))]),
            ),
        ])]);
        let err = validate_chrome_trace(&bad).unwrap_err();
        assert!(err.contains("parent 99"), "{err}");
    }
}

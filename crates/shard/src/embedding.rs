//! Sharded embedding-cache backend for the DT-assisted predictor.
//!
//! Routes each twin's cached CNN encoding to the cache slice owned by
//! the user's shard, so a handover can migrate the entry alongside the
//! twin and the cache stays hit-correct after a move. Feature matrices
//! are bit-identical to the single-cache backend (a cached row equals a
//! fresh encode); only the hit/miss split can differ.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex, RwLock};

use msvs_core::cache::{CachePlan, CachedEmbedding, EmbeddingBackend, EmbeddingCache};
use msvs_types::UserId;
use msvs_udt::UserDigitalTwin;

/// The predictor-side view of the per-shard embedding caches.
///
/// Shares the cache slices (via `Arc<Mutex<_>>`) and the ownership map
/// (via `Arc<RwLock<_>>`) with the `ShardCoordinator`, which mutates
/// both during the serial handover sweep between intervals.
#[derive(Debug)]
pub struct ShardedEmbeddingBackend {
    caches: Vec<Arc<Mutex<EmbeddingCache>>>,
    owner: Arc<RwLock<HashMap<UserId, usize>>>,
}

impl ShardedEmbeddingBackend {
    /// Builds a backend over per-shard cache slices and the shared
    /// ownership map.
    ///
    /// # Panics
    /// Panics on an empty cache set — a deployment has at least one
    /// shard.
    pub fn new(
        caches: Vec<Arc<Mutex<EmbeddingCache>>>,
        owner: Arc<RwLock<HashMap<UserId, usize>>>,
    ) -> Self {
        assert!(!caches.is_empty(), "backend needs at least one shard cache");
        Self { caches, owner }
    }

    /// The owning shard for `user`; unknown users (mid-churn) fall to
    /// shard 0 deterministically, mirroring the aggregator.
    fn shard_of(&self, owner: &HashMap<UserId, usize>, user: UserId) -> usize {
        owner
            .get(&user)
            .copied()
            .unwrap_or(0)
            .min(self.caches.len() - 1)
    }
}

impl EmbeddingBackend for ShardedEmbeddingBackend {
    fn plan(&mut self, generation: u64, twins: &[UserDigitalTwin]) -> CachePlan {
        for cache in &self.caches {
            cache
                .lock()
                .expect("embedding cache lock poisoned")
                .sync_generation(generation);
        }
        let owner = self.owner.read().expect("owner map lock poisoned");
        let miss_indices: Vec<usize> = twins
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                let shard = self.shard_of(&owner, t.user());
                self.caches[shard]
                    .lock()
                    .expect("embedding cache lock poisoned")
                    .lookup(t.user())
                    .is_none_or(|e| e.revision != t.revision())
            })
            .map(|(i, _)| i)
            .collect();
        let hits = twins.len() - miss_indices.len();
        CachePlan { miss_indices, hits }
    }

    fn plan_incremental(
        &mut self,
        generation: u64,
        twins: &[UserDigitalTwin],
        dirty: &HashSet<UserId>,
    ) -> CachePlan {
        for cache in &self.caches {
            cache
                .lock()
                .expect("embedding cache lock poisoned")
                .sync_generation(generation);
        }
        let owner = self.owner.read().expect("owner map lock poisoned");
        // Same coarse criterion as `EmbeddingCache::plan_incremental`:
        // absence, instance mismatch, or explicit dirtiness — routine
        // revision bumps keep serving the cached encoding.
        let miss_indices: Vec<usize> = twins
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                dirty.contains(&t.user()) || {
                    let shard = self.shard_of(&owner, t.user());
                    self.caches[shard]
                        .lock()
                        .expect("embedding cache lock poisoned")
                        .lookup(t.user())
                        .is_none_or(|e| e.revision.instance != t.revision().instance)
                }
            })
            .map(|(i, _)| i)
            .collect();
        let hits = twins.len() - miss_indices.len();
        CachePlan { miss_indices, hits }
    }

    fn complete(
        &mut self,
        twins: &[UserDigitalTwin],
        plan: &CachePlan,
        fresh: Vec<Vec<f64>>,
    ) -> Vec<Vec<f64>> {
        assert_eq!(
            fresh.len(),
            plan.miss_indices.len(),
            "fresh encodings must match planned misses"
        );
        let owner = self.owner.read().expect("owner map lock poisoned");
        for (&i, features) in plan.miss_indices.iter().zip(fresh) {
            let user = twins[i].user();
            let shard = self.shard_of(&owner, user);
            let mut cache = self.caches[shard]
                .lock()
                .expect("embedding cache lock poisoned");
            let generation = cache.generation();
            cache.put(
                generation,
                user,
                CachedEmbedding {
                    revision: twins[i].revision(),
                    features,
                },
            );
        }
        // Prune departed users per shard so churned slots cannot leak
        // entries, then assemble the matrix in snapshot order.
        let mut live: Vec<HashSet<UserId>> = vec![HashSet::new(); self.caches.len()];
        for t in twins {
            live[self.shard_of(&owner, t.user())].insert(t.user());
        }
        for (cache, live) in self.caches.iter().zip(&live) {
            let mut cache = cache.lock().expect("embedding cache lock poisoned");
            if cache.len() > live.len() {
                cache.retain_users(live);
            }
        }
        twins
            .iter()
            .map(|t| {
                let shard = self.shard_of(&owner, t.user());
                self.caches[shard]
                    .lock()
                    .expect("embedding cache lock poisoned")
                    .lookup(t.user())
                    .expect("entry just installed or hit")
                    .features
                    .clone()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msvs_types::SimTime;

    fn twin(id: u32) -> UserDigitalTwin {
        let mut t = UserDigitalTwin::new(UserId(id));
        t.update_channel(SimTime::from_secs(1), 10.0 + id as f64);
        t
    }

    fn backend(n: usize, owner: &[(u32, usize)]) -> ShardedEmbeddingBackend {
        let caches = (0..n)
            .map(|_| Arc::new(Mutex::new(EmbeddingCache::new())))
            .collect();
        let owner = Arc::new(RwLock::new(
            owner.iter().map(|&(u, s)| (UserId(u), s)).collect(),
        ));
        ShardedEmbeddingBackend::new(caches, owner)
    }

    #[test]
    fn routes_entries_to_owner_shards_and_hits_after() {
        let mut b = backend(2, &[(0, 0), (1, 1), (2, 1)]);
        let twins = vec![twin(0), twin(1), twin(2)];
        let plan = b.plan(4, &twins);
        assert_eq!(plan.miss_indices, vec![0, 1, 2]);
        let rows: Vec<Vec<f64>> = (0..3).map(|i| vec![i as f64; 2]).collect();
        let features = b.complete(&twins, &plan, rows.clone());
        assert_eq!(features, rows);
        assert_eq!(b.caches[0].lock().unwrap().len(), 1);
        assert_eq!(b.caches[1].lock().unwrap().len(), 2);
        // Unchanged twins: all hits, identical matrix.
        let plan = b.plan(4, &twins);
        assert_eq!(plan.hits, 3);
        assert_eq!(b.complete(&twins, &plan, Vec::new()), rows);
    }

    #[test]
    fn migrated_entry_hits_in_the_new_shard() {
        let mut b = backend(2, &[(5, 0)]);
        let twins = vec![twin(5)];
        let plan = b.plan(1, &twins);
        b.complete(&twins, &plan, vec![vec![9.0]]);
        // Simulate the coordinator's handover: move the entry and flip
        // ownership.
        let entry = b.caches[0].lock().unwrap().take(UserId(5)).unwrap();
        b.caches[1].lock().unwrap().put(1, UserId(5), entry);
        b.owner.write().unwrap().insert(UserId(5), 1);
        let plan = b.plan(1, &twins);
        assert_eq!(plan.hits, 1, "cache stays hit-correct after the move");
    }

    #[test]
    fn incremental_plan_survives_revision_bumps_but_not_handover_drops() {
        let mut b = backend(2, &[(0, 0), (1, 1)]);
        let mut twins = vec![twin(0), twin(1)];
        let plan = b.plan(1, &twins);
        b.complete(&twins, &plan, vec![vec![0.0], vec![1.0]]);
        // Routine revision bump: incremental keeps the cached row.
        twins[0].update_channel(SimTime::from_secs(2), 3.0);
        let none = HashSet::new();
        let plan = b.plan_incremental(1, &twins, &none);
        assert_eq!(plan.hits, 2);
        // A handover whose report was lost drops the entry: absence
        // forces a re-encode even in incremental mode.
        b.caches[1].lock().unwrap().take(UserId(1));
        b.owner.write().unwrap().insert(UserId(1), 0);
        let plan = b.plan_incremental(1, &twins, &none);
        assert_eq!(plan.miss_indices, vec![1]);
        // Explicit dirty set wins over a cached entry.
        let dirty: HashSet<UserId> = [UserId(0)].into();
        let plan = b.plan_incremental(1, &twins, &dirty);
        assert_eq!(plan.miss_indices, vec![0, 1]);
    }

    #[test]
    fn generation_change_invalidates_every_shard() {
        let mut b = backend(2, &[(0, 0), (1, 1)]);
        let twins = vec![twin(0), twin(1)];
        let plan = b.plan(1, &twins);
        b.complete(&twins, &plan, vec![vec![0.0], vec![1.0]]);
        let plan = b.plan(2, &twins);
        assert_eq!(plan.miss_indices, vec![0, 1]);
    }
}

//! One base-station shard: twin registry, embedding-cache slice, and a
//! shard-local video cache tier.

use std::sync::{Arc, Mutex, MutexGuard};

use msvs_core::cache::{CachedEmbedding, EmbeddingCache};
use msvs_edge::VideoCache;
use msvs_types::{RepresentationLevel, UserId};
use msvs_udt::{SyncTracker, UdtStore, UserDigitalTwin};
use msvs_video::Video;

/// Shard instance nonces live in disjoint namespaces: the shard id sits
/// above this bit, so shard 0 reproduces the single-store nonce sequence
/// (base 1) exactly and no two shards can ever stamp the same nonce.
const INSTANCE_SHIFT: u32 = 40;

/// Everything that travels with a twin during a cross-shard handover.
///
/// The twin (with its full revision, including the origin store's
/// instance nonce), the user's sync-tracker retry state, and the cached
/// CNN embedding move as one unit so the destination shard's caches stay
/// hit-correct after the move.
#[derive(Debug, Clone)]
pub struct TwinExport {
    /// The migrating twin, revision intact.
    pub twin: UserDigitalTwin,
    /// The user's uplink sync state (per-attribute due times, pending
    /// retries). Carried verbatim — a handover neither resets backoff
    /// nor schedules extra reports.
    pub tracker: SyncTracker,
    /// The user's cached encoding and the compressor generation it was
    /// computed at, when the origin shard had one.
    pub embedding: Option<(u64, CachedEmbedding)>,
}

/// One cell's slice of the sharded deployment.
///
/// Owns the authoritative twin registry for its users (an [`UdtStore`]
/// with a shard-disjoint instance-nonce namespace), its slice of the
/// embedding cache (shared with the predictor's sharded backend), and a
/// shard-local [`VideoCache`] tier fed by group playback.
#[derive(Debug)]
pub struct Shard {
    id: usize,
    store: UdtStore,
    embeddings: Arc<Mutex<EmbeddingCache>>,
    video_cache: VideoCache,
}

impl Shard {
    /// Builds shard `id` with a `video_cache_mb` local cache tier.
    pub fn new(id: usize, video_cache_mb: f64) -> Self {
        Self {
            id,
            store: UdtStore::with_instance_base(((id as u64) << INSTANCE_SHIFT) | 1),
            embeddings: Arc::new(Mutex::new(EmbeddingCache::new())),
            video_cache: VideoCache::new(video_cache_mb),
        }
    }

    /// This shard's index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The shard's twin registry.
    pub fn store(&self) -> &UdtStore {
        &self.store
    }

    /// Shared handle to the shard's embedding-cache slice (the sharded
    /// predictor backend holds the other reference).
    pub fn embeddings(&self) -> Arc<Mutex<EmbeddingCache>> {
        Arc::clone(&self.embeddings)
    }

    fn lock_embeddings(&self) -> MutexGuard<'_, EmbeddingCache> {
        self.embeddings
            .lock()
            .expect("embedding cache lock poisoned")
    }

    /// The shard-local video cache tier.
    pub fn video_cache(&self) -> &VideoCache {
        &self.video_cache
    }

    /// Records one group-playback access against the local video cache
    /// tier, admitting the representation on a miss (LRU evicts as
    /// needed). Returns whether it was a local hit.
    pub fn record_playback(&mut self, video: &Video, level: RepresentationLevel) -> bool {
        if self.video_cache.lookup(video.id, level) {
            true
        } else {
            self.video_cache.insert(video, level);
            false
        }
    }

    /// Number of twins this shard owns.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the shard owns no twins.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Extracts `user` for migration: twin out of the registry, cached
    /// embedding out of the cache slice, `tracker` bundled alongside.
    /// Returns `None` (and leaves the tracker untouched conceptually —
    /// the caller keeps its copy) when the shard does not own `user`.
    pub fn export(&mut self, user: UserId, tracker: SyncTracker) -> Option<TwinExport> {
        let twin = self.store.remove(user)?;
        let embedding = {
            let mut cache = self.lock_embeddings();
            let generation = cache.generation();
            cache.take(user).map(|entry| (generation, entry))
        };
        Some(TwinExport {
            twin,
            tracker,
            embedding,
        })
    }

    /// Installs a migrated twin. The twin always lands (registry import
    /// preserves the instance nonce, so this is transactional with the
    /// origin's `export`); the cached embedding is installed only when
    /// `keep_embedding` is set — a lost mid-handover report degrades by
    /// dropping the cached encoding (the user simply re-encodes on the
    /// next pass), never the twin. Returns the migrated tracker for the
    /// caller to re-install.
    pub fn import(&mut self, export: TwinExport, keep_embedding: bool) -> SyncTracker {
        let TwinExport {
            twin,
            tracker,
            embedding,
        } = export;
        let user = twin.user();
        self.store.import(twin);
        if keep_embedding {
            if let Some((generation, entry)) = embedding {
                self.lock_embeddings().put(generation, user, entry);
            }
        }
        tracker
    }

    /// Drops any cached embedding for `user` (churned slots must not
    /// serve the departed user's encoding).
    pub fn evict_embedding(&mut self, user: UserId) {
        self.lock_embeddings().take(user);
    }

    /// User ids with a cached embedding on this shard, sorted
    /// (checkpoint capture).
    pub fn embedding_users(&self) -> Vec<UserId> {
        self.lock_embeddings().users()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msvs_types::SimTime;

    #[test]
    fn instance_namespaces_are_disjoint_and_shard_zero_is_legacy() {
        let s0 = Shard::new(0, 1000.0);
        let s1 = Shard::new(1, 1000.0);
        s0.store().insert(UserDigitalTwin::new(UserId(1)));
        s1.store().insert(UserDigitalTwin::new(UserId(2)));
        let r0 = s0.store().with_twin(UserId(1), |t| t.revision()).unwrap();
        let r1 = s1.store().with_twin(UserId(2), |t| t.revision()).unwrap();
        assert_eq!(r0.instance, 1, "shard 0 stamps the legacy sequence");
        assert_eq!(r1.instance, (1u64 << 40) | 1);
    }

    #[test]
    fn export_import_round_trips_twin_tracker_and_embedding() {
        let mut from = Shard::new(0, 1000.0);
        let mut to = Shard::new(1, 1000.0);
        from.store().insert(UserDigitalTwin::new(UserId(7)));
        from.store()
            .update_channel(UserId(7), SimTime::from_secs(1), 9.0)
            .unwrap();
        let rev = from.store().with_twin(UserId(7), |t| t.revision()).unwrap();
        from.lock_embeddings().put(
            3,
            UserId(7),
            CachedEmbedding {
                revision: rev,
                features: vec![1.0, 2.0],
            },
        );
        let mut tracker = SyncTracker::default();
        tracker.mark_channel(SimTime::from_secs(1));
        let sent_before = tracker.updates_sent();

        let export = from.export(UserId(7), tracker.clone()).expect("owned");
        assert!(from.is_empty());
        assert!(from.lock_embeddings().lookup(UserId(7)).is_none());

        let back = to.import(export, true);
        assert_eq!(back, tracker, "tracker state must survive verbatim");
        assert_eq!(back.updates_sent(), sent_before);
        assert_eq!(
            to.store().with_twin(UserId(7), |t| t.revision()).unwrap(),
            rev,
            "revision (instance nonce included) must survive the move"
        );
        let cache = to.lock_embeddings();
        assert_eq!(
            cache.lookup(UserId(7)).map(|e| e.features.clone()),
            Some(vec![1.0, 2.0])
        );
    }

    #[test]
    fn lost_handover_report_drops_only_the_embedding() {
        let mut from = Shard::new(0, 1000.0);
        let mut to = Shard::new(1, 1000.0);
        from.store().insert(UserDigitalTwin::new(UserId(4)));
        let rev = from.store().with_twin(UserId(4), |t| t.revision()).unwrap();
        from.lock_embeddings().put(
            1,
            UserId(4),
            CachedEmbedding {
                revision: rev,
                features: vec![5.0],
            },
        );
        let export = from.export(UserId(4), SyncTracker::default()).unwrap();
        to.import(export, false);
        assert!(to.store().contains(UserId(4)), "twin always arrives");
        assert!(
            to.lock_embeddings().lookup(UserId(4)).is_none(),
            "degraded handover re-encodes instead of serving the cache"
        );
    }

    #[test]
    fn exporting_a_stranger_returns_none() {
        let mut shard = Shard::new(0, 100.0);
        assert!(shard.export(UserId(9), SyncTracker::default()).is_none());
    }
}

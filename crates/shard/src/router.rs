//! Deterministic position-based user→shard routing.

use msvs_types::Position;

/// Maps positions to shards through the nearest base station.
///
/// Base station `b` belongs to shard `b % n_shards`, so any number of
/// shards from one up to the BS count yields a total, deterministic
/// mapping — and one shard reproduces the paper's single-edge-server
/// deployment exactly.
#[derive(Debug, Clone)]
pub struct ShardRouter {
    bs_positions: Vec<Position>,
    n_shards: usize,
}

impl ShardRouter {
    /// Builds a router over `bs_positions` for `n_shards` shards.
    ///
    /// # Panics
    /// Panics when there are no base stations or no shards — a
    /// deployment without either cannot route anyone.
    pub fn new(bs_positions: Vec<Position>, n_shards: usize) -> Self {
        assert!(
            !bs_positions.is_empty(),
            "router needs at least one base station"
        );
        assert!(n_shards >= 1, "router needs at least one shard");
        Self {
            bs_positions,
            n_shards,
        }
    }

    /// Number of shards routed to.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// The base stations the router maps through.
    pub fn bs_positions(&self) -> &[Position] {
        &self.bs_positions
    }

    /// Index of the base station nearest to `pos`.
    ///
    /// `total_cmp` sorts NaN above every finite distance, so a corrupted
    /// position degrades to an arbitrary-but-deterministic choice
    /// instead of a panic.
    pub fn nearest_bs(&self, pos: Position) -> usize {
        self.bs_positions
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| pos.distance_sq(**a).total_cmp(&pos.distance_sq(**b)))
            .map(|(i, _)| i)
            .expect("router holds at least one BS")
    }

    /// The shard that owns base station `bs`.
    pub fn shard_of_bs(&self, bs: usize) -> usize {
        bs % self.n_shards
    }

    /// The shard that owns a user at `pos`.
    pub fn shard_of(&self, pos: Position) -> usize {
        self.shard_of_bs(self.nearest_bs(pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Vec<Position> {
        vec![
            Position::new(0.0, 0.0),
            Position::new(100.0, 0.0),
            Position::new(0.0, 100.0),
            Position::new(100.0, 100.0),
        ]
    }

    #[test]
    fn routes_to_nearest_bs_modulo_shards() {
        let router = ShardRouter::new(grid(), 2);
        assert_eq!(router.nearest_bs(Position::new(1.0, 2.0)), 0);
        assert_eq!(router.nearest_bs(Position::new(99.0, 98.0)), 3);
        assert_eq!(router.shard_of(Position::new(1.0, 2.0)), 0);
        assert_eq!(router.shard_of(Position::new(99.0, 98.0)), 1);
        assert_eq!(router.shard_of(Position::new(99.0, 1.0)), 1);
        assert_eq!(router.shard_of(Position::new(1.0, 99.0)), 0);
    }

    #[test]
    fn single_shard_owns_everything() {
        let router = ShardRouter::new(grid(), 1);
        for pos in [Position::new(3.0, 4.0), Position::new(90.0, 90.0)] {
            assert_eq!(router.shard_of(pos), 0);
        }
    }

    #[test]
    fn corrupted_position_routes_deterministically() {
        let router = ShardRouter::new(grid(), 4);
        let nan = Position::new(f64::NAN, 5.0);
        assert_eq!(router.shard_of(nan), router.shard_of(nan));
    }

    #[test]
    #[should_panic(expected = "at least one base station")]
    fn empty_bs_set_panics() {
        ShardRouter::new(Vec::new(), 1);
    }
}

//! Deterministic position-based user→shard routing.

use msvs_types::Position;

/// Maps positions to shards through the nearest base station.
///
/// Base station `b` belongs to shard `b % n_shards`, so any number of
/// shards from one up to the BS count yields a total, deterministic
/// mapping — and one shard reproduces the paper's single-edge-server
/// deployment exactly.
#[derive(Debug, Clone)]
pub struct ShardRouter {
    bs_positions: Vec<Position>,
    n_shards: usize,
}

impl ShardRouter {
    /// Builds a router over `bs_positions` for `n_shards` shards.
    ///
    /// # Panics
    /// Panics when there are no base stations or no shards — a
    /// deployment without either cannot route anyone.
    pub fn new(bs_positions: Vec<Position>, n_shards: usize) -> Self {
        assert!(
            !bs_positions.is_empty(),
            "router needs at least one base station"
        );
        assert!(n_shards >= 1, "router needs at least one shard");
        Self {
            bs_positions,
            n_shards,
        }
    }

    /// Number of shards routed to.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// The base stations the router maps through.
    pub fn bs_positions(&self) -> &[Position] {
        &self.bs_positions
    }

    /// Index of the base station nearest to `pos`.
    ///
    /// `total_cmp` sorts NaN above every finite distance, so a corrupted
    /// position degrades to an arbitrary-but-deterministic choice
    /// instead of a panic.
    pub fn nearest_bs(&self, pos: Position) -> usize {
        self.bs_positions
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| pos.distance_sq(**a).total_cmp(&pos.distance_sq(**b)))
            .map(|(i, _)| i)
            .expect("router holds at least one BS")
    }

    /// The shard that owns base station `bs`.
    pub fn shard_of_bs(&self, bs: usize) -> usize {
        bs % self.n_shards
    }

    /// The shard that owns a user at `pos`.
    pub fn shard_of(&self, pos: Position) -> usize {
        self.shard_of_bs(self.nearest_bs(pos))
    }

    /// Index of the nearest base station whose shard is live, or `None`
    /// when every shard is down. `live[s]` says whether shard `s` is
    /// up; ties break by BS index through the same `total_cmp` ordering
    /// as [`nearest_bs`](Self::nearest_bs), so the failover overlay is
    /// exactly the base routing with dead cells masked out.
    pub fn nearest_live_bs(&self, pos: Position, live: &[bool]) -> Option<usize> {
        self.bs_positions
            .iter()
            .enumerate()
            .filter(|(b, _)| live.get(self.shard_of_bs(*b)).copied().unwrap_or(false))
            .min_by(|(_, a), (_, b)| pos.distance_sq(**a).total_cmp(&pos.distance_sq(**b)))
            .map(|(b, _)| b)
    }

    /// The live shard that adopts a user at `pos` while its home cell
    /// is down, or `None` when no shard is live.
    pub fn shard_of_live(&self, pos: Position, live: &[bool]) -> Option<usize> {
        self.nearest_live_bs(pos, live).map(|b| self.shard_of_bs(b))
    }

    /// The next live shard after `from` on the shard ring — the
    /// deterministic fallback for users with no reported position yet.
    pub fn next_live_shard(&self, from: usize, live: &[bool]) -> Option<usize> {
        (1..=self.n_shards)
            .map(|step| (from + step) % self.n_shards)
            .find(|&s| live.get(s).copied().unwrap_or(false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Vec<Position> {
        vec![
            Position::new(0.0, 0.0),
            Position::new(100.0, 0.0),
            Position::new(0.0, 100.0),
            Position::new(100.0, 100.0),
        ]
    }

    #[test]
    fn routes_to_nearest_bs_modulo_shards() {
        let router = ShardRouter::new(grid(), 2);
        assert_eq!(router.nearest_bs(Position::new(1.0, 2.0)), 0);
        assert_eq!(router.nearest_bs(Position::new(99.0, 98.0)), 3);
        assert_eq!(router.shard_of(Position::new(1.0, 2.0)), 0);
        assert_eq!(router.shard_of(Position::new(99.0, 98.0)), 1);
        assert_eq!(router.shard_of(Position::new(99.0, 1.0)), 1);
        assert_eq!(router.shard_of(Position::new(1.0, 99.0)), 0);
    }

    #[test]
    fn single_shard_owns_everything() {
        let router = ShardRouter::new(grid(), 1);
        for pos in [Position::new(3.0, 4.0), Position::new(90.0, 90.0)] {
            assert_eq!(router.shard_of(pos), 0);
        }
    }

    #[test]
    fn corrupted_position_routes_deterministically() {
        let router = ShardRouter::new(grid(), 4);
        let nan = Position::new(f64::NAN, 5.0);
        assert_eq!(router.shard_of(nan), router.shard_of(nan));
    }

    #[test]
    #[should_panic(expected = "at least one base station")]
    fn empty_bs_set_panics() {
        ShardRouter::new(Vec::new(), 1);
    }

    #[test]
    fn live_overlay_masks_dead_cells() {
        // 4 BSs on 2 shards: BS 0/2 -> shard 0, BS 1/3 -> shard 1.
        let router = ShardRouter::new(grid(), 2);
        let pos = Position::new(99.0, 1.0); // nearest BS 1 (shard 1)
        assert_eq!(router.shard_of(pos), 1);
        assert_eq!(router.shard_of_live(pos, &[true, false]), Some(0));
        assert_eq!(
            router.nearest_live_bs(pos, &[true, false]),
            Some(0),
            "BS 0 is the nearest cell on a live shard"
        );
        assert_eq!(router.shard_of_live(pos, &[true, true]), Some(1));
        assert_eq!(router.shard_of_live(pos, &[false, false]), None);
    }

    #[test]
    fn ring_fallback_finds_the_next_live_shard() {
        let router = ShardRouter::new(grid(), 4);
        assert_eq!(
            router.next_live_shard(1, &[true, false, true, true]),
            Some(2)
        );
        assert_eq!(
            router.next_live_shard(3, &[true, false, false, false]),
            Some(0)
        );
        assert_eq!(router.next_live_shard(0, &[false; 4]), None);
    }

    #[test]
    fn boundary_tie_breaks_identically_with_and_without_overlay() {
        // Exactly equidistant between BS 0 and BS 1: both overloads must
        // pick the same winner (lowest BS index) so an outage overlay
        // never flaps a boundary user between owners.
        let router = ShardRouter::new(grid(), 4);
        let mid = Position::new(50.0, 0.0);
        assert_eq!(router.nearest_bs(mid), 0);
        assert_eq!(router.nearest_live_bs(mid, &[true; 4]), Some(0));
        // With BS 0's shard dead, the tie falls deterministically to BS 1.
        assert_eq!(
            router.nearest_live_bs(mid, &[false, true, true, true]),
            Some(1)
        );
    }
}

//! The shard set: routed twin writes, merged snapshots, and the serial
//! cross-shard handover sweep.

use std::collections::{BTreeSet, HashMap};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use msvs_core::GroupDemandPrediction;
use msvs_par::Pool;
use msvs_telemetry::{stages, Telemetry};
use msvs_types::{Error, Position, RepresentationLevel, Result, SimDuration, SimTime, UserId};
use msvs_udt::{SyncTracker, TwinView, UserDigitalTwin, WatchRecord};
use msvs_video::Video;

use crate::aggregate::{ReservationAggregator, ShardDemandRow, ShardSummary};
use crate::embedding::ShardedEmbeddingBackend;
use crate::router::ShardRouter;
use crate::shard::Shard;

/// One user's handover-relevant state, borrowed from the simulation for
/// the duration of a [`ShardCoordinator::rebalance`] sweep.
#[derive(Debug)]
pub struct HandoverUser<'a> {
    /// The user.
    pub user: UserId,
    /// The user's uplink sync state; migrated (verbatim) with the twin
    /// when the user changes shards.
    pub tracker: &'a mut SyncTracker,
}

/// What one rebalance sweep did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HandoverStats {
    /// Twins migrated between shards.
    pub moved: usize,
    /// Migrations whose mid-flight report was lost: the cached embedding
    /// was dropped (degrading that user to a re-encode), the twin and
    /// tracker still arrived intact.
    pub embeddings_dropped: usize,
}

/// Runs the per-interval stages across a set of per-BS [`Shard`]s and
/// presents them to the rest of the pipeline as one population.
///
/// Write paths mirror the [`msvs_udt::UdtStore`] API (routed through the
/// ownership map, so the parallel collection sweep works unchanged);
/// read paths implement [`TwinView`] by merging per-shard snapshots on
/// the worker pool into the canonical user-sorted order the predictor
/// consumes. With one shard the coordinator is a transparent facade over
/// a single store — same instance nonces, no shard telemetry — so the
/// legacy single-cell deployment is reproduced bit for bit.
#[derive(Debug)]
pub struct ShardCoordinator {
    shards: Vec<Shard>,
    router: ShardRouter,
    owner: Arc<RwLock<HashMap<UserId, usize>>>,
    aggregator: ReservationAggregator,
    pool: Pool,
    telemetry: Option<Telemetry>,
    handovers_total: u64,
    embeddings_dropped_total: u64,
    peak_imbalance: f64,
}

impl ShardCoordinator {
    /// Builds the shard set `router` maps into, each shard with a
    /// `video_cache_mb_per_shard` local cache tier.
    pub fn new(router: ShardRouter, pool: Pool, video_cache_mb_per_shard: f64) -> Self {
        let n = router.n_shards();
        Self {
            shards: (0..n)
                .map(|i| Shard::new(i, video_cache_mb_per_shard))
                .collect(),
            router,
            owner: Arc::new(RwLock::new(HashMap::new())),
            aggregator: ReservationAggregator::new(n),
            pool,
            telemetry: None,
            handovers_total: 0,
            embeddings_dropped_total: 0,
            peak_imbalance: 1.0,
        }
    }

    /// Wires the shard plane into an observability pipeline. Stages and
    /// counters are only emitted when more than one shard runs, so a
    /// one-shard deployment's telemetry is identical to the unsharded
    /// path.
    pub fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = Some(telemetry);
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Whether the deployment is actually partitioned (shard telemetry
    /// and the handover sweep only run when it is).
    pub fn sharded(&self) -> bool {
        self.shards.len() > 1
    }

    /// The shards themselves (read-only).
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// The router mapping positions to shards.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    fn owner_read(&self) -> RwLockReadGuard<'_, HashMap<UserId, usize>> {
        self.owner.read().expect("owner map lock poisoned")
    }

    fn owner_write(&self) -> RwLockWriteGuard<'_, HashMap<UserId, usize>> {
        self.owner.write().expect("owner map lock poisoned")
    }

    /// The shard currently owning `user`, if registered.
    pub fn owner_of(&self, user: UserId) -> Option<usize> {
        self.owner_read().get(&user).copied()
    }

    /// Registers (or replaces, on a churned slot) a twin, routed by the
    /// user's position. A replaced slot's old twin and cached embedding
    /// are evicted from whichever shard held them first, so a churned
    /// `UserId` can never exist in two shards at once.
    pub fn insert(&mut self, twin: UserDigitalTwin, pos: Position) {
        let user = twin.user();
        if let Some(prev) = self.owner_of(user) {
            self.shards[prev].store().remove(user);
            self.shards[prev].evict_embedding(user);
        }
        let shard = self.router.shard_of(pos);
        self.shards[shard].store().insert(twin);
        self.owner_write().insert(user, shard);
    }

    /// Removes a twin, returning it if present.
    pub fn remove(&mut self, user: UserId) -> Option<UserDigitalTwin> {
        let shard = self.owner_write().remove(&user)?;
        self.shards[shard].evict_embedding(user);
        self.shards[shard].store().remove(user)
    }

    /// Whether a twin exists for `user`.
    pub fn contains(&self, user: UserId) -> bool {
        self.owner_of(user)
            .is_some_and(|s| self.shards[s].store().contains(user))
    }

    /// All registered user ids (sorted for determinism).
    pub fn user_ids(&self) -> Vec<UserId> {
        let mut ids: Vec<UserId> = self.owner_read().keys().copied().collect();
        ids.sort();
        ids
    }

    fn routed<T>(&self, user: UserId, f: impl FnOnce(&Shard) -> Result<T>) -> Result<T> {
        match self.owner_of(user) {
            Some(s) => f(&self.shards[s]),
            None => Err(Error::not_found("user twin", user)),
        }
    }

    /// Runs `f` with shared access to a twin (see
    /// [`msvs_udt::UdtStore::with_twin`]).
    ///
    /// # Errors
    /// Returns [`Error::NotFound`] for an unregistered user.
    pub fn with_twin<T>(&self, user: UserId, f: impl FnOnce(&UserDigitalTwin) -> T) -> Result<T> {
        self.routed(user, |s| s.store().with_twin(user, f))
    }

    /// Runs `f` with exclusive access to a twin.
    ///
    /// # Errors
    /// Returns [`Error::NotFound`] for an unregistered user.
    pub fn with_twin_mut<T>(
        &self,
        user: UserId,
        f: impl FnOnce(&mut UserDigitalTwin) -> T,
    ) -> Result<T> {
        self.routed(user, |s| s.store().with_twin_mut(user, f))
    }

    /// Records a channel sample (see [`msvs_udt::UdtStore::update_channel`]).
    ///
    /// # Errors
    /// Returns [`Error::NotFound`] for an unregistered user.
    pub fn update_channel(&self, user: UserId, at: SimTime, snr_db: f64) -> Result<bool> {
        self.routed(user, |s| s.store().update_channel(user, at, snr_db))
    }

    /// Records a location sample.
    ///
    /// # Errors
    /// Returns [`Error::NotFound`] for an unregistered user.
    pub fn update_location(&self, user: UserId, at: SimTime, position: Position) -> Result<bool> {
        self.routed(user, |s| s.store().update_location(user, at, position))
    }

    /// Records a watch record.
    ///
    /// # Errors
    /// Returns [`Error::NotFound`] for an unregistered user.
    pub fn record_watch(&self, user: UserId, at: SimTime, record: WatchRecord) -> Result<()> {
        self.routed(user, |s| s.store().record_watch(user, at, record))
    }

    /// Total twins across every shard.
    pub fn len(&self) -> usize {
        self.shards.iter().map(Shard::len).sum()
    }

    /// Whether no shard holds any twin.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fresh-twin coverage pooled across shards — integer counts are
    /// summed before dividing, so the fraction is bit-identical to one
    /// store holding the same twins.
    pub fn fresh_fraction(&self, now: SimTime, horizon: SimDuration) -> f64 {
        let (fresh, total) = self.shards.iter().fold((0usize, 0usize), |(f, t), shard| {
            let (sf, st) = shard.store().fresh_count(now, horizon);
            (f + sf, t + st)
        });
        if total == 0 {
            0.0
        } else {
            fresh as f64 / total as f64
        }
    }

    /// The canonical population view: per-shard snapshots taken on the
    /// worker pool, merged into user-sorted order — identical to the
    /// snapshot of one store holding every twin. Emits a `shard_gather`
    /// stage with one child span per shard when sharded.
    pub fn snapshot(&self) -> Vec<UserDigitalTwin> {
        if !self.sharded() {
            return self.shards[0].store().snapshot();
        }
        let scope = self
            .telemetry
            .as_ref()
            .map(|t| t.stage_scope(stages::SHARD_GATHER));
        let (parts, stats) = self
            .pool
            .map_stats(&self.shards, |_, shard| shard.store().snapshot());
        if let (Some(t), Some(_scope)) = (&self.telemetry, scope.as_ref()) {
            for (i, part) in parts.iter().enumerate() {
                let mut span = t.span(stages::SHARD_SLICE);
                span.set_batch(i as u64);
                let _ = part;
                span.end();
            }
            t.gauge("par_threads", stages::SHARD_GATHER)
                .set(stats.threads as f64);
            t.gauge("par_utilisation", stages::SHARD_GATHER)
                .set(stats.utilisation());
        }
        let mut twins: Vec<UserDigitalTwin> = parts.into_iter().flatten().collect();
        twins.sort_by_key(|t| t.user());
        twins
    }

    /// Re-evaluates ownership for every user (in the given order — the
    /// caller passes its deterministic user vector) and migrates twins
    /// whose reported position crossed a cell boundary. `lost` is the
    /// fault plane's verdict on the mid-handover report: a lost report
    /// degrades that user's cached embedding (dropped, re-encoded next
    /// pass) but the twin and tracker always arrive — a handover never
    /// duplicates or drops a twin.
    ///
    /// Serial by design: migrations mutate two shards and the ownership
    /// map, and the sweep must be bit-identical at any thread count.
    pub fn rebalance(
        &mut self,
        users: &mut [HandoverUser<'_>],
        mut lost: impl FnMut(UserId) -> bool,
    ) -> HandoverStats {
        let mut stats = HandoverStats::default();
        if !self.sharded() {
            return stats;
        }
        let before = self.len();
        let scope = self
            .telemetry
            .as_ref()
            .map(|t| t.stage_scope(stages::SHARD_REBALANCE));
        let mut per_shard_in = vec![0u64; self.shards.len()];
        for hu in users.iter_mut() {
            let user = hu.user;
            let Some(from) = self.owner_of(user) else {
                continue;
            };
            let Some(pos) = self.shards[from]
                .store()
                .with_twin(user, |t| t.latest_position())
                .ok()
                .flatten()
            else {
                continue; // no reported position yet — stays put
            };
            let to = self.router.shard_of(pos);
            if to == from {
                continue;
            }
            let tracker = std::mem::take(hu.tracker);
            let export = self.shards[from]
                .export(user, tracker)
                .expect("owner map said this shard holds the twin");
            let lost_report = lost(user);
            *hu.tracker = self.shards[to].import(export, !lost_report);
            self.owner_write().insert(user, to);
            per_shard_in[to] += 1;
            stats.moved += 1;
            if lost_report {
                stats.embeddings_dropped += 1;
            }
        }
        debug_assert_eq!(self.len(), before, "handover must conserve twins");
        self.handovers_total += stats.moved as u64;
        self.embeddings_dropped_total += stats.embeddings_dropped as u64;
        let imbalance = self.imbalance();
        self.peak_imbalance = self.peak_imbalance.max(imbalance);
        if let (Some(t), Some(_scope)) = (&self.telemetry, scope.as_ref()) {
            for (i, &arrivals) in per_shard_in.iter().enumerate() {
                let mut span = t.span(stages::SHARD_SLICE);
                span.set_batch(i as u64);
                let _ = arrivals;
                span.end();
            }
            t.counter("handovers_total", "all").add(stats.moved as u64);
            t.counter("handover_embeddings_dropped_total", "all")
                .add(stats.embeddings_dropped as u64);
            t.gauge("shard_imbalance", "all").set(imbalance);
        }
        stats
    }

    /// Current load factor: the largest shard population over the ideal
    /// (uniform) population. `1.0` means perfectly balanced; an empty
    /// deployment reports `1.0`.
    pub fn imbalance(&self) -> f64 {
        let total = self.len();
        if total == 0 {
            return 1.0;
        }
        let max = self.shards.iter().map(Shard::len).max().unwrap_or(0);
        let ideal = total as f64 / self.shards.len() as f64;
        max as f64 / ideal
    }

    /// Folds one interval's per-group demand predictions into the global
    /// reservation aggregator's per-shard rows (no-op unsharded).
    pub fn fold_demand(&mut self, groups: &[GroupDemandPrediction]) {
        if !self.sharded() {
            return;
        }
        let _scope = self
            .telemetry
            .as_ref()
            .map(|t| t.stage_scope(stages::SHARD_AGGREGATE));
        let owner = self.owner.read().expect("owner map lock poisoned");
        self.aggregator.fold(groups, &owner);
    }

    /// Records one multicast group playback against the local video
    /// cache tier of every shard with a member in the group — each
    /// shard's BS fetches the stream once (no-op unsharded).
    pub fn record_group_playback(
        &mut self,
        members: &[UserId],
        video: &Video,
        level: RepresentationLevel,
    ) {
        if !self.sharded() {
            return;
        }
        let shards: BTreeSet<usize> = {
            let owner = self.owner_read();
            members
                .iter()
                .filter_map(|u| owner.get(u).copied())
                .collect()
        };
        for s in shards {
            self.shards[s].record_playback(video, level);
        }
    }

    /// A predictor backend over the per-shard embedding caches, sharing
    /// the cache slices and ownership map with this coordinator.
    pub fn embedding_backend(&self) -> ShardedEmbeddingBackend {
        ShardedEmbeddingBackend::new(
            self.shards.iter().map(Shard::embeddings).collect(),
            Arc::clone(&self.owner),
        )
    }

    /// Cumulative handovers across the run.
    pub fn handovers_total(&self) -> u64 {
        self.handovers_total
    }

    /// End-of-run shard-plane summary for the simulation report.
    pub fn summary(&self) -> ShardSummary {
        ShardSummary {
            shards: self.shards.len(),
            handovers_total: self.handovers_total,
            embeddings_dropped_total: self.embeddings_dropped_total,
            peak_imbalance: self.peak_imbalance,
            demand: self
                .shards
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    let (hits, misses) = s.video_cache().stats();
                    ShardDemandRow {
                        shard: i,
                        users: s.len(),
                        radio: self.aggregator.radio()[i],
                        computing: self.aggregator.computing()[i],
                        video_cache_hits: hits,
                        video_cache_misses: misses,
                    }
                })
                .collect(),
        }
    }
}

impl TwinView for ShardCoordinator {
    fn len(&self) -> usize {
        ShardCoordinator::len(self)
    }

    fn fresh_fraction(&self, now: SimTime, horizon: SimDuration) -> f64 {
        ShardCoordinator::fresh_fraction(self, now, horizon)
    }

    fn snapshot(&self) -> Vec<UserDigitalTwin> {
        ShardCoordinator::snapshot(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Vec<Position> {
        vec![
            Position::new(0.0, 0.0),
            Position::new(100.0, 0.0),
            Position::new(0.0, 100.0),
            Position::new(100.0, 100.0),
        ]
    }

    fn coordinator(n_shards: usize) -> ShardCoordinator {
        ShardCoordinator::new(ShardRouter::new(grid(), n_shards), Pool::serial(), 10_000.0)
    }

    fn insert_at(c: &mut ShardCoordinator, id: u32, x: f64, y: f64) {
        let twin = UserDigitalTwin::new(UserId(id));
        c.insert(twin, Position::new(x, y));
        c.update_location(UserId(id), SimTime::ZERO, Position::new(x, y))
            .unwrap();
    }

    #[test]
    fn routes_writes_to_the_owning_shard() {
        let mut c = coordinator(2);
        insert_at(&mut c, 0, 1.0, 1.0); // bs 0 -> shard 0
        insert_at(&mut c, 1, 99.0, 1.0); // bs 1 -> shard 1
        assert_eq!(c.owner_of(UserId(0)), Some(0));
        assert_eq!(c.owner_of(UserId(1)), Some(1));
        assert_eq!(c.len(), 2);
        assert!(c.contains(UserId(0)));
        c.update_channel(UserId(0), SimTime::ZERO, 8.0).unwrap();
        assert_eq!(
            c.with_twin(UserId(0), |t| t.latest_snr_db()).unwrap(),
            Some(8.0)
        );
        assert!(c.update_channel(UserId(9), SimTime::ZERO, 1.0).is_err());
        assert_eq!(c.shards()[0].len(), 1);
        assert_eq!(c.shards()[1].len(), 1);
    }

    #[test]
    fn merged_snapshot_is_user_sorted_across_shards() {
        let mut c = coordinator(4);
        insert_at(&mut c, 7, 99.0, 99.0);
        insert_at(&mut c, 1, 1.0, 1.0);
        insert_at(&mut c, 3, 99.0, 1.0);
        let snap = TwinView::snapshot(&c);
        let ids: Vec<u32> = snap.iter().map(|t| t.user().into()).collect();
        assert_eq!(ids, vec![1, 3, 7]);
    }

    #[test]
    fn rebalance_moves_boundary_crossers_and_conserves_twins() {
        let mut c = coordinator(2);
        insert_at(&mut c, 0, 1.0, 1.0);
        insert_at(&mut c, 1, 99.0, 1.0);
        // User 0 reports a position in BS 1's cell.
        c.update_location(UserId(0), SimTime::from_secs(5), Position::new(98.0, 2.0))
            .unwrap();
        let mut t0 = SyncTracker::default();
        let mut t1 = SyncTracker::default();
        let mut users = vec![
            HandoverUser {
                user: UserId(0),
                tracker: &mut t0,
            },
            HandoverUser {
                user: UserId(1),
                tracker: &mut t1,
            },
        ];
        let stats = c.rebalance(&mut users, |_| false);
        assert_eq!(stats.moved, 1);
        assert_eq!(stats.embeddings_dropped, 0);
        assert_eq!(c.owner_of(UserId(0)), Some(1));
        assert_eq!(c.len(), 2, "handover conserves twins");
        assert_eq!(c.handovers_total(), 1);
        // Idempotent: nobody crosses on the second sweep.
        let stats = c.rebalance(&mut users, |_| false);
        assert_eq!(stats.moved, 0);
    }

    #[test]
    fn lost_handover_report_degrades_but_never_drops_a_twin() {
        let mut c = coordinator(2);
        insert_at(&mut c, 0, 1.0, 1.0);
        c.update_location(UserId(0), SimTime::from_secs(5), Position::new(98.0, 2.0))
            .unwrap();
        let mut t0 = SyncTracker::default();
        let mut users = vec![HandoverUser {
            user: UserId(0),
            tracker: &mut t0,
        }];
        let stats = c.rebalance(&mut users, |_| true);
        assert_eq!(stats.moved, 1);
        assert_eq!(stats.embeddings_dropped, 1);
        assert_eq!(c.len(), 1, "twin arrived despite the lost report");
        assert!(c.contains(UserId(0)));
    }

    #[test]
    fn churned_slot_cannot_exist_in_two_shards() {
        let mut c = coordinator(2);
        insert_at(&mut c, 0, 1.0, 1.0);
        // Churn: same id, new user spawning in the other cell.
        let twin = UserDigitalTwin::new(UserId(0));
        c.insert(twin, Position::new(99.0, 1.0));
        assert_eq!(c.len(), 1);
        assert_eq!(c.owner_of(UserId(0)), Some(1));
        assert!(c.shards()[0].store().is_empty());
    }

    #[test]
    fn single_shard_is_a_transparent_facade() {
        let mut c = coordinator(1);
        insert_at(&mut c, 0, 1.0, 1.0);
        insert_at(&mut c, 1, 99.0, 99.0);
        assert!(!c.sharded());
        let mut trackers = [SyncTracker::default(), SyncTracker::default()];
        let [ref mut tr0, ref mut tr1] = trackers;
        let mut users = vec![
            HandoverUser {
                user: UserId(0),
                tracker: tr0,
            },
            HandoverUser {
                user: UserId(1),
                tracker: tr1,
            },
        ];
        assert_eq!(c.rebalance(&mut users, |_| true), HandoverStats::default());
        // Legacy nonce sequence: 1, 2, ...
        assert_eq!(
            c.with_twin(UserId(0), |t| t.revision().instance).unwrap(),
            1
        );
        assert_eq!(
            c.with_twin(UserId(1), |t| t.revision().instance).unwrap(),
            2
        );
    }

    #[test]
    fn imbalance_tracks_the_largest_shard() {
        let mut c = coordinator(2);
        assert_eq!(c.imbalance(), 1.0);
        insert_at(&mut c, 0, 1.0, 1.0);
        insert_at(&mut c, 1, 2.0, 1.0);
        insert_at(&mut c, 2, 1.0, 2.0);
        insert_at(&mut c, 3, 99.0, 1.0);
        // 3 vs 1 users on 2 shards: max 3 over ideal 2.
        assert!((c.imbalance() - 1.5).abs() < 1e-12);
    }
}

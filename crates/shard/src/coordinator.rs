//! The shard set: routed twin writes, merged snapshots, and the serial
//! cross-shard handover sweep.

use std::collections::{BTreeSet, HashMap};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use msvs_core::GroupDemandPrediction;
use msvs_faults::OutageMode;
use msvs_par::Pool;
use msvs_telemetry::{stages, Telemetry};
use msvs_types::{Error, Position, RepresentationLevel, Result, SimDuration, SimTime, UserId};
use msvs_udt::{SyncTracker, TwinView, UserDigitalTwin, WatchRecord};
use msvs_video::Video;

use crate::aggregate::{ReservationAggregator, ShardDemandRow, ShardSummary};
use crate::checkpoint::ShardCheckpoint;
use crate::embedding::ShardedEmbeddingBackend;
use crate::router::ShardRouter;
use crate::shard::Shard;

/// One user's handover-relevant state, borrowed from the simulation for
/// the duration of a [`ShardCoordinator::rebalance`] sweep.
#[derive(Debug)]
pub struct HandoverUser<'a> {
    /// The user.
    pub user: UserId,
    /// The user's uplink sync state; migrated (verbatim) with the twin
    /// when the user changes shards.
    pub tracker: &'a mut SyncTracker,
}

/// What one rebalance sweep did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HandoverStats {
    /// Twins migrated between shards.
    pub moved: usize,
    /// Migrations whose mid-flight report was lost: the cached embedding
    /// was dropped (degrading that user to a re-encode), the twin and
    /// tracker still arrived intact.
    pub embeddings_dropped: usize,
}

/// Which end of an outage window a transition marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutagePhase {
    /// The shard just went down (checkpoint captured; crash mode also
    /// ran the failover sweep).
    Down,
    /// The outage window ended and the shard is live again.
    Restored,
}

/// One shard health transition from an
/// [`ShardCoordinator::apply_outages`] sweep, returned so the runner can
/// journal it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutageTransition {
    /// The shard that changed state.
    pub shard: usize,
    /// The outage mode (a window's mode is pinned at its down
    /// transition; overlapping specs of the other mode do not flip it).
    pub mode: OutageMode,
    /// Down or restored.
    pub phase: OutagePhase,
    /// Twins migrated to live neighbours (crash down transitions only).
    pub failed_over: u64,
    /// Serialized size of the boundary checkpoint (down transitions).
    pub checkpoint_bytes: u64,
    /// Users captured in the checkpoint anchoring this window.
    pub checkpoint_users: u64,
}

/// Runs the per-interval stages across a set of per-BS [`Shard`]s and
/// presents them to the rest of the pipeline as one population.
///
/// Write paths mirror the [`msvs_udt::UdtStore`] API (routed through the
/// ownership map, so the parallel collection sweep works unchanged);
/// read paths implement [`TwinView`] by merging per-shard snapshots on
/// the worker pool into the canonical user-sorted order the predictor
/// consumes. With one shard the coordinator is a transparent facade over
/// a single store — same instance nonces, no shard telemetry — so the
/// legacy single-cell deployment is reproduced bit for bit.
#[derive(Debug)]
pub struct ShardCoordinator {
    shards: Vec<Shard>,
    router: ShardRouter,
    owner: Arc<RwLock<HashMap<UserId, usize>>>,
    aggregator: ReservationAggregator,
    pool: Pool,
    telemetry: Option<Telemetry>,
    handovers_total: u64,
    embeddings_dropped_total: u64,
    peak_imbalance: f64,
    /// Per-shard health: `Some(mode)` while the shard is inside an
    /// outage window. Mutated only on the serial driver thread.
    down: Vec<Option<OutageMode>>,
    /// Last boundary checkpoint per shard (captured at each down
    /// transition, anchors the recovery resync).
    checkpoints: Vec<Option<ShardCheckpoint>>,
    down_intervals: Vec<u64>,
    intervals_observed: u64,
    outages_total: u64,
    failover_handovers_total: u64,
    checkpoint_bytes_total: u64,
    /// Users whose encoding must be refreshed by the next incremental
    /// prediction pass: churned/inserted slots and users of a shard that
    /// just restored from its outage checkpoint. Cleared by
    /// [`drain_dirty`](Self::drain_dirty). Ordered so the drain is
    /// deterministic. Cheap to maintain, so it is tracked whether or not
    /// the predictor runs incrementally.
    dirty: BTreeSet<UserId>,
}

impl ShardCoordinator {
    /// Builds the shard set `router` maps into, each shard with a
    /// `video_cache_mb_per_shard` local cache tier.
    pub fn new(router: ShardRouter, pool: Pool, video_cache_mb_per_shard: f64) -> Self {
        let n = router.n_shards();
        Self {
            shards: (0..n)
                .map(|i| Shard::new(i, video_cache_mb_per_shard))
                .collect(),
            router,
            owner: Arc::new(RwLock::new(HashMap::new())),
            aggregator: ReservationAggregator::new(n),
            pool,
            telemetry: None,
            handovers_total: 0,
            embeddings_dropped_total: 0,
            peak_imbalance: 1.0,
            down: vec![None; n],
            checkpoints: vec![None; n],
            down_intervals: vec![0; n],
            intervals_observed: 0,
            outages_total: 0,
            failover_handovers_total: 0,
            checkpoint_bytes_total: 0,
            dirty: BTreeSet::new(),
        }
    }

    /// Wires the shard plane into an observability pipeline. Stages and
    /// counters are only emitted when more than one shard runs, so a
    /// one-shard deployment's telemetry is identical to the unsharded
    /// path.
    pub fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = Some(telemetry);
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Whether the deployment is actually partitioned (shard telemetry
    /// and the handover sweep only run when it is).
    pub fn sharded(&self) -> bool {
        self.shards.len() > 1
    }

    /// The shards themselves (read-only).
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// The router mapping positions to shards.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    fn owner_read(&self) -> RwLockReadGuard<'_, HashMap<UserId, usize>> {
        self.owner.read().expect("owner map lock poisoned")
    }

    fn owner_write(&self) -> RwLockWriteGuard<'_, HashMap<UserId, usize>> {
        self.owner.write().expect("owner map lock poisoned")
    }

    /// The shard currently owning `user`, if registered.
    pub fn owner_of(&self, user: UserId) -> Option<usize> {
        self.owner_read().get(&user).copied()
    }

    /// The outage mode `shard` is currently inside, if any.
    pub fn outage_mode(&self, shard: usize) -> Option<OutageMode> {
        self.down.get(shard).copied().flatten()
    }

    /// Whether `shard` is currently inside an outage window.
    pub fn is_down(&self, shard: usize) -> bool {
        self.outage_mode(shard).is_some()
    }

    /// The last boundary checkpoint captured for `shard`, if an outage
    /// has hit it.
    pub fn last_checkpoint(&self, shard: usize) -> Option<&ShardCheckpoint> {
        self.checkpoints.get(shard).and_then(Option::as_ref)
    }

    fn live_mask(&self) -> Vec<bool> {
        self.down.iter().map(Option::is_none).collect()
    }

    /// Routes `pos` to a live shard. With every shard up this is exactly
    /// [`ShardRouter::shard_of`] (bit-identical to the pre-outage
    /// routing); during an outage the nearest live cell adopts the user.
    fn route_live(&self, pos: Position) -> usize {
        if self.down.iter().all(Option::is_none) {
            return self.router.shard_of(pos);
        }
        self.router
            .shard_of_live(pos, &self.live_mask())
            // Unreachable: apply_outages never downs the last live shard.
            .unwrap_or_else(|| self.router.shard_of(pos))
    }

    /// For each user (in caller order), whether their owning shard is
    /// inside a partition window — the fault plane forces those uplink
    /// reports lost. Computed serially so the parallel collection sweep
    /// can consume a plain slice.
    pub fn partitioned_users(&self, users: &[UserId]) -> Vec<bool> {
        let owner = self.owner_read();
        users
            .iter()
            .map(|u| {
                owner
                    .get(u)
                    .is_some_and(|&s| matches!(self.down[s], Some(OutageMode::Partition)))
            })
            .collect()
    }

    /// Registers (or replaces, on a churned slot) a twin, routed by the
    /// user's position. A replaced slot's old twin and cached embedding
    /// are evicted from whichever shard held them first, so a churned
    /// `UserId` can never exist in two shards at once.
    pub fn insert(&mut self, twin: UserDigitalTwin, pos: Position) {
        let user = twin.user();
        if let Some(prev) = self.owner_of(user) {
            self.shards[prev].store().remove(user);
            self.shards[prev].evict_embedding(user);
        }
        let shard = self.route_live(pos);
        self.shards[shard].store().insert(twin);
        self.owner_write().insert(user, shard);
        // A fresh or churned slot is a brand-new user: their next
        // encoding must come from the CNN, never a cached predecessor.
        self.dirty.insert(user);
    }

    /// Takes (and clears) the set of users the next incremental
    /// prediction pass must re-encode, in sorted order. Marking happens
    /// on the serial driver thread (insert/churn and outage restores),
    /// so the drained set is bit-identical at any thread count, and in a
    /// fault-free run at any shard count.
    pub fn drain_dirty(&mut self) -> Vec<UserId> {
        std::mem::take(&mut self.dirty).into_iter().collect()
    }

    /// Removes a twin, returning it if present.
    pub fn remove(&mut self, user: UserId) -> Option<UserDigitalTwin> {
        let shard = self.owner_write().remove(&user)?;
        self.shards[shard].evict_embedding(user);
        self.shards[shard].store().remove(user)
    }

    /// Whether a twin exists for `user`.
    pub fn contains(&self, user: UserId) -> bool {
        self.owner_of(user)
            .is_some_and(|s| self.shards[s].store().contains(user))
    }

    /// All registered user ids (sorted for determinism).
    pub fn user_ids(&self) -> Vec<UserId> {
        let mut ids: Vec<UserId> = self.owner_read().keys().copied().collect();
        ids.sort();
        ids
    }

    fn routed<T>(&self, user: UserId, f: impl FnOnce(&Shard) -> Result<T>) -> Result<T> {
        match self.owner_of(user) {
            Some(s) => f(&self.shards[s]),
            None => Err(Error::not_found("user twin", user)),
        }
    }

    /// Runs `f` with shared access to a twin (see
    /// [`msvs_udt::UdtStore::with_twin`]).
    ///
    /// # Errors
    /// Returns [`Error::NotFound`] for an unregistered user.
    pub fn with_twin<T>(&self, user: UserId, f: impl FnOnce(&UserDigitalTwin) -> T) -> Result<T> {
        self.routed(user, |s| s.store().with_twin(user, f))
    }

    /// Runs `f` with exclusive access to a twin.
    ///
    /// # Errors
    /// Returns [`Error::NotFound`] for an unregistered user.
    pub fn with_twin_mut<T>(
        &self,
        user: UserId,
        f: impl FnOnce(&mut UserDigitalTwin) -> T,
    ) -> Result<T> {
        self.routed(user, |s| s.store().with_twin_mut(user, f))
    }

    /// Records a channel sample (see [`msvs_udt::UdtStore::update_channel`]).
    ///
    /// # Errors
    /// Returns [`Error::NotFound`] for an unregistered user.
    pub fn update_channel(&self, user: UserId, at: SimTime, snr_db: f64) -> Result<bool> {
        self.routed(user, |s| s.store().update_channel(user, at, snr_db))
    }

    /// Records a location sample.
    ///
    /// # Errors
    /// Returns [`Error::NotFound`] for an unregistered user.
    pub fn update_location(&self, user: UserId, at: SimTime, position: Position) -> Result<bool> {
        self.routed(user, |s| s.store().update_location(user, at, position))
    }

    /// Records a watch record.
    ///
    /// # Errors
    /// Returns [`Error::NotFound`] for an unregistered user.
    pub fn record_watch(&self, user: UserId, at: SimTime, record: WatchRecord) -> Result<()> {
        self.routed(user, |s| s.store().record_watch(user, at, record))
    }

    /// Total twins across every shard.
    pub fn len(&self) -> usize {
        self.shards.iter().map(Shard::len).sum()
    }

    /// Whether no shard holds any twin.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fresh-twin coverage pooled across shards — integer counts are
    /// summed before dividing, so the fraction is bit-identical to one
    /// store holding the same twins.
    pub fn fresh_fraction(&self, now: SimTime, horizon: SimDuration) -> f64 {
        let (fresh, total) = self.shards.iter().fold((0usize, 0usize), |(f, t), shard| {
            let (sf, st) = shard.store().fresh_count(now, horizon);
            (f + sf, t + st)
        });
        if total == 0 {
            0.0
        } else {
            fresh as f64 / total as f64
        }
    }

    /// The canonical population view: per-shard snapshots taken on the
    /// worker pool, merged into user-sorted order — identical to the
    /// snapshot of one store holding every twin. Emits a `shard_gather`
    /// stage with one child span per shard when sharded.
    pub fn snapshot(&self) -> Vec<UserDigitalTwin> {
        if !self.sharded() {
            return self.shards[0].store().snapshot();
        }
        let scope = self
            .telemetry
            .as_ref()
            .map(|t| t.stage_scope(stages::SHARD_GATHER));
        let (parts, stats) = self
            .pool
            .map_stats(&self.shards, |_, shard| shard.store().snapshot());
        if let (Some(t), Some(_scope)) = (&self.telemetry, scope.as_ref()) {
            for (i, part) in parts.iter().enumerate() {
                let mut span = t.span(stages::SHARD_SLICE);
                span.set_batch(i as u64);
                let _ = part;
                span.end();
            }
            t.gauge("par_threads", stages::SHARD_GATHER)
                .set(stats.threads as f64);
            t.gauge("par_utilisation", stages::SHARD_GATHER)
                .set(stats.utilisation());
        }
        let mut twins: Vec<UserDigitalTwin> = parts.into_iter().flatten().collect();
        twins.sort_by_key(|t| t.user());
        twins
    }

    /// Re-evaluates ownership for every user (in the given order — the
    /// caller passes its deterministic user vector) and migrates twins
    /// whose reported position crossed a cell boundary. `lost` is the
    /// fault plane's verdict on the mid-handover report: a lost report
    /// degrades that user's cached embedding (dropped, re-encoded next
    /// pass) but the twin and tracker always arrive — a handover never
    /// duplicates or drops a twin.
    ///
    /// Serial by design: migrations mutate two shards and the ownership
    /// map, and the sweep must be bit-identical at any thread count.
    pub fn rebalance(
        &mut self,
        users: &mut [HandoverUser<'_>],
        mut lost: impl FnMut(UserId) -> bool,
    ) -> HandoverStats {
        let mut stats = HandoverStats::default();
        if !self.sharded() {
            return stats;
        }
        let before = self.len();
        let scope = self
            .telemetry
            .as_ref()
            .map(|t| t.stage_scope(stages::SHARD_REBALANCE));
        let mut per_shard_in = vec![0u64; self.shards.len()];
        for hu in users.iter_mut() {
            let user = hu.user;
            let Some(from) = self.owner_of(user) else {
                continue;
            };
            if self.down[from].is_some() {
                continue; // partitioned cell: no reports cross, users stay
            }
            let Some(pos) = self.shards[from]
                .store()
                .with_twin(user, |t| t.latest_position())
                .ok()
                .flatten()
            else {
                continue; // no reported position yet — stays put
            };
            let to = self.route_live(pos);
            if to == from {
                continue;
            }
            let tracker = std::mem::take(hu.tracker);
            let export = self.shards[from]
                .export(user, tracker)
                .expect("owner map said this shard holds the twin");
            let lost_report = lost(user);
            *hu.tracker = self.shards[to].import(export, !lost_report);
            self.owner_write().insert(user, to);
            per_shard_in[to] += 1;
            stats.moved += 1;
            if lost_report {
                stats.embeddings_dropped += 1;
            }
        }
        debug_assert_eq!(self.len(), before, "handover must conserve twins");
        self.handovers_total += stats.moved as u64;
        self.embeddings_dropped_total += stats.embeddings_dropped as u64;
        let imbalance = self.imbalance();
        self.peak_imbalance = self.peak_imbalance.max(imbalance);
        if let (Some(t), Some(_scope)) = (&self.telemetry, scope.as_ref()) {
            for (i, &arrivals) in per_shard_in.iter().enumerate() {
                let mut span = t.span(stages::SHARD_SLICE);
                span.set_batch(i as u64);
                let _ = arrivals;
                span.end();
            }
            t.counter("handovers_total", "all").add(stats.moved as u64);
            t.counter("handover_embeddings_dropped_total", "all")
                .add(stats.embeddings_dropped as u64);
            t.gauge("shard_imbalance", "all").set(imbalance);
        }
        stats
    }

    /// Applies one interval's shard-outage schedule and accounts
    /// availability. `target(shard)` is the fault plan's verdict for the
    /// interval (e.g. [`msvs_faults::FaultPlan::outage_at`]); `users` is
    /// the caller's deterministic user vector, borrowed exactly as for
    /// [`rebalance`](Self::rebalance).
    ///
    /// Transitions are serial and interval-scheduled, so the whole
    /// lifecycle is bit-identical at any thread count:
    ///
    /// - **down** (`None -> Some(mode)`): a boundary [`ShardCheckpoint`]
    ///   is captured and round-tripped through its JSON codec (any
    ///   lossiness fails loud here, not at restore). `Crash` then runs
    ///   the failover sweep — every owned twin is exported through the
    ///   normal handover path to the nearest live cell (ring-next shard
    ///   for users with no reported position), cached embeddings dying
    ///   with the BS — and the store ends empty. `Partition` leaves the
    ///   twins in place; the runner forces those users' uplink reports
    ///   lost, which engages the sync-tracker retry/backoff and the
    ///   prediction degradation ladder.
    /// - **restored** (`Some(mode) -> None` once the window ends): the
    ///   store's instance-nonce counter resumes monotonically from the
    ///   checkpoint so a recovered shard can never re-stamp a nonce, and
    ///   the next [`rebalance`](Self::rebalance) sweep takes the shard's
    ///   users back through the same handover path (the interval delta
    ///   rides the live twins; a partitioned shard replays its backlog
    ///   through the trackers' pending retries).
    ///
    /// A transition that would down the **last live shard** is ignored
    /// deterministically — its users would have nowhere to go. While a
    /// shard is down, overlapping specs of the other mode do not flip
    /// the window's pinned mode. Twin conservation holds across the
    /// whole kill/failover/restore cycle: a failover moves twins, never
    /// duplicates or drops them.
    pub fn apply_outages(
        &mut self,
        interval: u64,
        target: impl Fn(usize) -> Option<OutageMode>,
        users: &mut [HandoverUser<'_>],
    ) -> Vec<OutageTransition> {
        let mut transitions = Vec::new();
        if !self.sharded() {
            return transitions;
        }
        let before = self.len();
        for i in 0..self.shards.len() {
            match (self.down[i], target(i)) {
                (None, Some(mode)) => {
                    let live_after = self
                        .down
                        .iter()
                        .enumerate()
                        .filter(|(j, d)| *j != i && d.is_none())
                        .count();
                    if live_after == 0 {
                        continue; // never down the last live shard
                    }
                    let scope = self
                        .telemetry
                        .as_ref()
                        .map(|t| t.stage_scope(stages::SHARD_OUTAGE));
                    let trackers: HashMap<UserId, SyncTracker> = {
                        let owner = self.owner_read();
                        users
                            .iter()
                            .filter(|hu| owner.get(&hu.user) == Some(&i))
                            .map(|hu| (hu.user, hu.tracker.clone()))
                            .collect()
                    };
                    let ckpt = ShardCheckpoint::capture(&self.shards[i], interval, |u| {
                        trackers.get(&u).cloned().unwrap_or_default()
                    });
                    let encoded = ckpt.to_json().to_string();
                    let ckpt = ShardCheckpoint::parse(&encoded)
                        .expect("checkpoint codec must round-trip its own output");
                    let bytes = encoded.len() as u64;
                    self.down[i] = Some(mode);
                    let mut failed_over = 0u64;
                    if mode == OutageMode::Crash {
                        let mask = self.live_mask();
                        for hu in users.iter_mut() {
                            if self.owner_of(hu.user) != Some(i) {
                                continue;
                            }
                            let pos = self.shards[i]
                                .store()
                                .with_twin(hu.user, |t| t.latest_position())
                                .ok()
                                .flatten();
                            let to = pos
                                .and_then(|p| self.router.shard_of_live(p, &mask))
                                .or_else(|| self.router.next_live_shard(i, &mask))
                                .expect("a live shard exists (guarded above)");
                            let tracker = std::mem::take(hu.tracker);
                            let export = self.shards[i]
                                .export(hu.user, tracker)
                                .expect("owner map said this shard holds the twin");
                            *hu.tracker = self.shards[to].import(export, false);
                            self.owner_write().insert(hu.user, to);
                            failed_over += 1;
                        }
                        debug_assert!(
                            self.shards[i].is_empty(),
                            "crash failover must evacuate every twin"
                        );
                    }
                    self.outages_total += 1;
                    self.failover_handovers_total += failed_over;
                    self.checkpoint_bytes_total += bytes;
                    transitions.push(OutageTransition {
                        shard: i,
                        mode,
                        phase: OutagePhase::Down,
                        failed_over,
                        checkpoint_bytes: bytes,
                        checkpoint_users: ckpt.len() as u64,
                    });
                    self.checkpoints[i] = Some(ckpt);
                    if let (Some(t), Some(_scope)) = (&self.telemetry, scope.as_ref()) {
                        t.counter("shard_outages_total", mode.label()).add(1);
                        t.counter("checkpoint_bytes_total", "all").add(bytes);
                        t.counter("failover_handovers_total", "all")
                            .add(failed_over);
                    }
                }
                (Some(mode), None) => {
                    let _scope = self
                        .telemetry
                        .as_ref()
                        .map(|t| t.stage_scope(stages::SHARD_RESTORE));
                    let checkpoint_users = self.checkpoints[i]
                        .as_ref()
                        .map(|c| {
                            self.shards[i]
                                .store()
                                .restore_next_instance(c.next_instance);
                            // A restored shard's users replayed their
                            // backlog (or failed over and will return):
                            // their encodings are suspect, so the next
                            // incremental pass re-encodes them.
                            self.dirty.extend(c.twins.iter().map(|e| e.twin.user()));
                            c.len() as u64
                        })
                        .unwrap_or(0);
                    self.down[i] = None;
                    transitions.push(OutageTransition {
                        shard: i,
                        mode,
                        phase: OutagePhase::Restored,
                        failed_over: 0,
                        checkpoint_bytes: 0,
                        checkpoint_users,
                    });
                }
                // Steady state; a mode change while down keeps the
                // window's pinned mode.
                _ => {}
            }
        }
        debug_assert_eq!(self.len(), before, "outage transitions must conserve twins");
        self.intervals_observed += 1;
        for (i, d) in self.down.iter().enumerate() {
            if d.is_some() {
                self.down_intervals[i] += 1;
            }
        }
        transitions
    }

    /// Current load factor: the largest shard population over the ideal
    /// (uniform) population. `1.0` means perfectly balanced; an empty
    /// deployment reports `1.0`.
    pub fn imbalance(&self) -> f64 {
        let total = self.len();
        if total == 0 {
            return 1.0;
        }
        let max = self.shards.iter().map(Shard::len).max().unwrap_or(0);
        let ideal = total as f64 / self.shards.len() as f64;
        max as f64 / ideal
    }

    /// Folds one interval's per-group demand predictions into the global
    /// reservation aggregator's per-shard rows (no-op unsharded).
    pub fn fold_demand(&mut self, groups: &[GroupDemandPrediction]) {
        if !self.sharded() {
            return;
        }
        let _scope = self
            .telemetry
            .as_ref()
            .map(|t| t.stage_scope(stages::SHARD_AGGREGATE));
        let owner = self.owner.read().expect("owner map lock poisoned");
        self.aggregator.fold(groups, &owner);
    }

    /// Records one multicast group playback against the local video
    /// cache tier of every shard with a member in the group — each
    /// shard's BS fetches the stream once (no-op unsharded).
    pub fn record_group_playback(
        &mut self,
        members: &[UserId],
        video: &Video,
        level: RepresentationLevel,
    ) {
        if !self.sharded() {
            return;
        }
        let shards: BTreeSet<usize> = {
            let owner = self.owner_read();
            members
                .iter()
                .filter_map(|u| owner.get(u).copied())
                .collect()
        };
        for s in shards {
            self.shards[s].record_playback(video, level);
        }
    }

    /// A predictor backend over the per-shard embedding caches, sharing
    /// the cache slices and ownership map with this coordinator.
    pub fn embedding_backend(&self) -> ShardedEmbeddingBackend {
        ShardedEmbeddingBackend::new(
            self.shards.iter().map(Shard::embeddings).collect(),
            Arc::clone(&self.owner),
        )
    }

    /// Cumulative handovers across the run.
    pub fn handovers_total(&self) -> u64 {
        self.handovers_total
    }

    /// Cumulative crash failover handovers across the run.
    pub fn failover_handovers_total(&self) -> u64 {
        self.failover_handovers_total
    }

    /// End-of-run shard-plane summary for the simulation report.
    pub fn summary(&self) -> ShardSummary {
        ShardSummary {
            shards: self.shards.len(),
            handovers_total: self.handovers_total,
            embeddings_dropped_total: self.embeddings_dropped_total,
            peak_imbalance: self.peak_imbalance,
            outages_total: self.outages_total,
            failover_handovers_total: self.failover_handovers_total,
            checkpoint_bytes_total: self.checkpoint_bytes_total,
            intervals_observed: self.intervals_observed,
            demand: self
                .shards
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    let (hits, misses) = s.video_cache().stats();
                    ShardDemandRow {
                        shard: i,
                        users: s.len(),
                        radio: self.aggregator.radio()[i],
                        computing: self.aggregator.computing()[i],
                        video_cache_hits: hits,
                        video_cache_misses: misses,
                        down_intervals: self.down_intervals[i],
                        availability: if self.intervals_observed == 0 {
                            1.0
                        } else {
                            1.0 - self.down_intervals[i] as f64 / self.intervals_observed as f64
                        },
                    }
                })
                .collect(),
        }
    }
}

impl TwinView for ShardCoordinator {
    fn len(&self) -> usize {
        ShardCoordinator::len(self)
    }

    fn fresh_fraction(&self, now: SimTime, horizon: SimDuration) -> f64 {
        ShardCoordinator::fresh_fraction(self, now, horizon)
    }

    fn snapshot(&self) -> Vec<UserDigitalTwin> {
        ShardCoordinator::snapshot(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Vec<Position> {
        vec![
            Position::new(0.0, 0.0),
            Position::new(100.0, 0.0),
            Position::new(0.0, 100.0),
            Position::new(100.0, 100.0),
        ]
    }

    fn coordinator(n_shards: usize) -> ShardCoordinator {
        ShardCoordinator::new(ShardRouter::new(grid(), n_shards), Pool::serial(), 10_000.0)
    }

    fn insert_at(c: &mut ShardCoordinator, id: u32, x: f64, y: f64) {
        let twin = UserDigitalTwin::new(UserId(id));
        c.insert(twin, Position::new(x, y));
        c.update_location(UserId(id), SimTime::ZERO, Position::new(x, y))
            .unwrap();
    }

    #[test]
    fn routes_writes_to_the_owning_shard() {
        let mut c = coordinator(2);
        insert_at(&mut c, 0, 1.0, 1.0); // bs 0 -> shard 0
        insert_at(&mut c, 1, 99.0, 1.0); // bs 1 -> shard 1
        assert_eq!(c.owner_of(UserId(0)), Some(0));
        assert_eq!(c.owner_of(UserId(1)), Some(1));
        assert_eq!(c.len(), 2);
        assert!(c.contains(UserId(0)));
        c.update_channel(UserId(0), SimTime::ZERO, 8.0).unwrap();
        assert_eq!(
            c.with_twin(UserId(0), |t| t.latest_snr_db()).unwrap(),
            Some(8.0)
        );
        assert!(c.update_channel(UserId(9), SimTime::ZERO, 1.0).is_err());
        assert_eq!(c.shards()[0].len(), 1);
        assert_eq!(c.shards()[1].len(), 1);
    }

    #[test]
    fn merged_snapshot_is_user_sorted_across_shards() {
        let mut c = coordinator(4);
        insert_at(&mut c, 7, 99.0, 99.0);
        insert_at(&mut c, 1, 1.0, 1.0);
        insert_at(&mut c, 3, 99.0, 1.0);
        let snap = TwinView::snapshot(&c);
        let ids: Vec<u32> = snap.iter().map(|t| t.user().into()).collect();
        assert_eq!(ids, vec![1, 3, 7]);
    }

    #[test]
    fn rebalance_moves_boundary_crossers_and_conserves_twins() {
        let mut c = coordinator(2);
        insert_at(&mut c, 0, 1.0, 1.0);
        insert_at(&mut c, 1, 99.0, 1.0);
        // User 0 reports a position in BS 1's cell.
        c.update_location(UserId(0), SimTime::from_secs(5), Position::new(98.0, 2.0))
            .unwrap();
        let mut t0 = SyncTracker::default();
        let mut t1 = SyncTracker::default();
        let mut users = vec![
            HandoverUser {
                user: UserId(0),
                tracker: &mut t0,
            },
            HandoverUser {
                user: UserId(1),
                tracker: &mut t1,
            },
        ];
        let stats = c.rebalance(&mut users, |_| false);
        assert_eq!(stats.moved, 1);
        assert_eq!(stats.embeddings_dropped, 0);
        assert_eq!(c.owner_of(UserId(0)), Some(1));
        assert_eq!(c.len(), 2, "handover conserves twins");
        assert_eq!(c.handovers_total(), 1);
        // Idempotent: nobody crosses on the second sweep.
        let stats = c.rebalance(&mut users, |_| false);
        assert_eq!(stats.moved, 0);
    }

    #[test]
    fn lost_handover_report_degrades_but_never_drops_a_twin() {
        let mut c = coordinator(2);
        insert_at(&mut c, 0, 1.0, 1.0);
        c.update_location(UserId(0), SimTime::from_secs(5), Position::new(98.0, 2.0))
            .unwrap();
        let mut t0 = SyncTracker::default();
        let mut users = vec![HandoverUser {
            user: UserId(0),
            tracker: &mut t0,
        }];
        let stats = c.rebalance(&mut users, |_| true);
        assert_eq!(stats.moved, 1);
        assert_eq!(stats.embeddings_dropped, 1);
        assert_eq!(c.len(), 1, "twin arrived despite the lost report");
        assert!(c.contains(UserId(0)));
    }

    #[test]
    fn churned_slot_cannot_exist_in_two_shards() {
        let mut c = coordinator(2);
        insert_at(&mut c, 0, 1.0, 1.0);
        // Churn: same id, new user spawning in the other cell.
        let twin = UserDigitalTwin::new(UserId(0));
        c.insert(twin, Position::new(99.0, 1.0));
        assert_eq!(c.len(), 1);
        assert_eq!(c.owner_of(UserId(0)), Some(1));
        assert!(c.shards()[0].store().is_empty());
    }

    #[test]
    fn single_shard_is_a_transparent_facade() {
        let mut c = coordinator(1);
        insert_at(&mut c, 0, 1.0, 1.0);
        insert_at(&mut c, 1, 99.0, 99.0);
        assert!(!c.sharded());
        let mut trackers = [SyncTracker::default(), SyncTracker::default()];
        let [ref mut tr0, ref mut tr1] = trackers;
        let mut users = vec![
            HandoverUser {
                user: UserId(0),
                tracker: tr0,
            },
            HandoverUser {
                user: UserId(1),
                tracker: tr1,
            },
        ];
        assert_eq!(c.rebalance(&mut users, |_| true), HandoverStats::default());
        // Legacy nonce sequence: 1, 2, ...
        assert_eq!(
            c.with_twin(UserId(0), |t| t.revision().instance).unwrap(),
            1
        );
        assert_eq!(
            c.with_twin(UserId(1), |t| t.revision().instance).unwrap(),
            2
        );
    }

    fn handover_users<'a>(trackers: &'a mut [(UserId, SyncTracker)]) -> Vec<HandoverUser<'a>> {
        trackers
            .iter_mut()
            .map(|(user, tracker)| HandoverUser {
                user: *user,
                tracker,
            })
            .collect()
    }

    #[test]
    fn crash_kill_failover_restore_conserves_twins() {
        let mut c = coordinator(2);
        insert_at(&mut c, 0, 1.0, 1.0); // shard 0
        insert_at(&mut c, 1, 99.0, 1.0); // shard 1
        insert_at(&mut c, 2, 98.0, 2.0); // shard 1
        let mut trackers: Vec<(UserId, SyncTracker)> = (0..3)
            .map(|i| (UserId(i), SyncTracker::default()))
            .collect();

        // Interval 1: shard 1 crashes. Its users fail over to shard 0.
        let mut users = handover_users(&mut trackers);
        let t = c.apply_outages(1, |s| (s == 1).then_some(OutageMode::Crash), &mut users);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].phase, OutagePhase::Down);
        assert_eq!(t[0].failed_over, 2);
        assert_eq!(t[0].checkpoint_users, 2);
        assert!(t[0].checkpoint_bytes > 0);
        assert!(c.is_down(1));
        assert_eq!(c.len(), 3, "failover conserves twins");
        assert_eq!(c.owner_of(UserId(1)), Some(0));
        assert_eq!(c.owner_of(UserId(2)), Some(0));
        assert!(c.shards()[1].is_empty());
        assert_eq!(c.failover_handovers_total(), 2);

        // Mid-outage: churn arrivals route around the dead cell.
        let twin = UserDigitalTwin::new(UserId(9));
        c.insert(twin, Position::new(99.0, 1.0));
        assert_eq!(c.owner_of(UserId(9)), Some(0));
        c.remove(UserId(9));

        // Mid-outage rebalance must not move anyone back yet.
        let mut users = handover_users(&mut trackers);
        assert_eq!(c.rebalance(&mut users, |_| false).moved, 0);

        // Interval 3: the window ends; the next sweep takes them back.
        let mut users = handover_users(&mut trackers);
        let t = c.apply_outages(3, |_| None, &mut users);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].phase, OutagePhase::Restored);
        assert_eq!(t[0].checkpoint_users, 2);
        assert!(!c.is_down(1));
        let mut users = handover_users(&mut trackers);
        let stats = c.rebalance(&mut users, |_| false);
        assert_eq!(stats.moved, 2, "recovered shard takes its users back");
        assert_eq!(c.owner_of(UserId(1)), Some(1));
        assert_eq!(c.len(), 3, "conservation holds across the whole cycle");
    }

    #[test]
    fn restored_store_never_restamps_a_pre_outage_nonce() {
        let mut c = coordinator(2);
        insert_at(&mut c, 1, 99.0, 1.0); // shard 1
        insert_at(&mut c, 0, 1.0, 1.0); // shard 0 (keeps a live target)
        let nonce_before = c.shards()[1].store().next_instance();
        let mut trackers: Vec<(UserId, SyncTracker)> = (0..2)
            .map(|i| (UserId(i), SyncTracker::default()))
            .collect();
        let mut users = handover_users(&mut trackers);
        c.apply_outages(1, |s| (s == 1).then_some(OutageMode::Crash), &mut users);
        let mut users = handover_users(&mut trackers);
        c.apply_outages(2, |_| None, &mut users);
        assert!(c.shards()[1].store().next_instance() >= nonce_before);
        // A fresh insert on the recovered shard stamps a new nonce.
        let twin = UserDigitalTwin::new(UserId(7));
        c.insert(twin, Position::new(99.0, 1.0));
        let rev = c.with_twin(UserId(7), |t| t.revision()).unwrap();
        assert!(rev.instance >= nonce_before);
    }

    #[test]
    fn partition_pins_users_in_place_and_reports_them() {
        let mut c = coordinator(2);
        insert_at(&mut c, 0, 1.0, 1.0);
        insert_at(&mut c, 1, 99.0, 1.0);
        let mut trackers: Vec<(UserId, SyncTracker)> = (0..2)
            .map(|i| (UserId(i), SyncTracker::default()))
            .collect();
        let mut users = handover_users(&mut trackers);
        let t = c.apply_outages(1, |s| (s == 1).then_some(OutageMode::Partition), &mut users);
        assert_eq!(t[0].failed_over, 0, "partition does not move twins");
        assert_eq!(c.owner_of(UserId(1)), Some(1));
        assert_eq!(
            c.partitioned_users(&[UserId(0), UserId(1)]),
            vec![false, true]
        );
        // The partitioned user cannot hand over even if their last
        // report put them across the boundary.
        c.update_location(UserId(1), SimTime::from_secs(9), Position::new(1.0, 2.0))
            .unwrap();
        let mut users = handover_users(&mut trackers);
        assert_eq!(c.rebalance(&mut users, |_| false).moved, 0);
        // Heal: the backlog user hands over on the next sweep.
        let mut users = handover_users(&mut trackers);
        c.apply_outages(2, |_| None, &mut users);
        assert_eq!(c.partitioned_users(&[UserId(1)]), vec![false]);
        let mut users = handover_users(&mut trackers);
        assert_eq!(c.rebalance(&mut users, |_| false).moved, 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn the_last_live_shard_cannot_be_downed() {
        let mut c = coordinator(2);
        insert_at(&mut c, 0, 1.0, 1.0);
        insert_at(&mut c, 1, 99.0, 1.0);
        let mut trackers: Vec<(UserId, SyncTracker)> = (0..2)
            .map(|i| (UserId(i), SyncTracker::default()))
            .collect();
        let mut users = handover_users(&mut trackers);
        let t = c.apply_outages(1, |_| Some(OutageMode::Crash), &mut users);
        assert_eq!(t.len(), 1, "only the first shard goes down");
        assert_eq!(t[0].shard, 0);
        assert!(!c.is_down(1), "shard 1 is the last live shard");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn availability_accounts_down_intervals() {
        let mut c = coordinator(2);
        insert_at(&mut c, 0, 1.0, 1.0);
        insert_at(&mut c, 1, 99.0, 1.0);
        let mut trackers: Vec<(UserId, SyncTracker)> = (0..2)
            .map(|i| (UserId(i), SyncTracker::default()))
            .collect();
        for interval in 0..4u64 {
            let mut users = handover_users(&mut trackers);
            // Shard 1 is down for intervals 1 and 2 of 4.
            c.apply_outages(
                interval,
                |s| (s == 1 && (1..3).contains(&interval)).then_some(OutageMode::Partition),
                &mut users,
            );
        }
        let summary = c.summary();
        assert_eq!(summary.intervals_observed, 4);
        assert_eq!(summary.outages_total, 1);
        assert_eq!(summary.demand[0].down_intervals, 0);
        assert_eq!(summary.demand[1].down_intervals, 2);
        assert!((summary.demand[0].availability - 1.0).abs() < 1e-12);
        assert!((summary.demand[1].availability - 0.5).abs() < 1e-12);
    }

    #[test]
    fn boundary_tie_user_keeps_a_unique_stable_owner_under_outage_overlay() {
        // A user exactly equidistant between BS 0 (shard 0) and BS 1
        // (shard 1). The tie must resolve identically in the base router
        // and the outage overlay, and the owner map must hold exactly
        // one entry for the user at every step of the cycle.
        let mut c = coordinator(2);
        insert_at(&mut c, 0, 50.0, 0.0); // tie -> lowest BS index -> shard 0
        insert_at(&mut c, 1, 99.0, 1.0); // shard 1 stays live
        assert_eq!(c.owner_of(UserId(0)), Some(0));
        let mut trackers: Vec<(UserId, SyncTracker)> = (0..2)
            .map(|i| (UserId(i), SyncTracker::default()))
            .collect();

        // Rebalance with everything live: the tie user must not flap.
        let mut users = handover_users(&mut trackers);
        assert_eq!(c.rebalance(&mut users, |_| false).moved, 0);

        // Crash shard 0: the tie re-resolves deterministically onto the
        // overlay (nearest live BS) and the owner stays unique.
        let mut users = handover_users(&mut trackers);
        c.apply_outages(1, |s| (s == 0).then_some(OutageMode::Crash), &mut users);
        assert_eq!(c.owner_of(UserId(0)), Some(1));
        assert_eq!(c.len(), 2, "exactly one twin per user");
        // Sweeps while down are idempotent for the boundary user.
        let mut users = handover_users(&mut trackers);
        assert_eq!(c.rebalance(&mut users, |_| false).moved, 0);

        // Restore: the tie falls back to the base resolution (shard 0).
        let mut users = handover_users(&mut trackers);
        c.apply_outages(3, |_| None, &mut users);
        let mut users = handover_users(&mut trackers);
        assert_eq!(c.rebalance(&mut users, |_| false).moved, 1);
        assert_eq!(c.owner_of(UserId(0)), Some(0));
        assert_eq!(c.len(), 2);
        // And the resolution is stable: a second sweep moves nobody.
        let mut users = handover_users(&mut trackers);
        assert_eq!(c.rebalance(&mut users, |_| false).moved, 0);
    }

    #[test]
    fn dirty_set_tracks_churn_and_outage_restores() {
        let mut c = coordinator(2);
        insert_at(&mut c, 0, 1.0, 1.0);
        insert_at(&mut c, 1, 99.0, 1.0);
        assert_eq!(c.drain_dirty(), vec![UserId(0), UserId(1)]);
        assert!(c.drain_dirty().is_empty(), "drain clears the set");
        // A clean handover migrates the embedding intact — nobody
        // becomes dirty (this keeps incremental counters shard-count
        // invariant).
        c.update_location(UserId(0), SimTime::from_secs(5), Position::new(98.0, 2.0))
            .unwrap();
        let mut trackers: Vec<(UserId, SyncTracker)> = (0..2)
            .map(|i| (UserId(i), SyncTracker::default()))
            .collect();
        let mut users = handover_users(&mut trackers);
        assert_eq!(c.rebalance(&mut users, |_| false).moved, 1);
        assert!(c.drain_dirty().is_empty(), "handover is not churn");
        // A churned slot is dirty again.
        let twin = UserDigitalTwin::new(UserId(0));
        c.insert(twin, Position::new(1.0, 1.0));
        assert_eq!(c.drain_dirty(), vec![UserId(0)]);
        // An outage restore dirties the users captured in the boundary
        // checkpoint.
        let mut users = handover_users(&mut trackers);
        c.apply_outages(1, |s| (s == 1).then_some(OutageMode::Crash), &mut users);
        c.drain_dirty();
        let mut users = handover_users(&mut trackers);
        c.apply_outages(2, |_| None, &mut users);
        assert_eq!(c.drain_dirty(), vec![UserId(1)]);
    }

    #[test]
    fn imbalance_tracks_the_largest_shard() {
        let mut c = coordinator(2);
        assert_eq!(c.imbalance(), 1.0);
        insert_at(&mut c, 0, 1.0, 1.0);
        insert_at(&mut c, 1, 2.0, 1.0);
        insert_at(&mut c, 2, 1.0, 2.0);
        insert_at(&mut c, 3, 99.0, 1.0);
        // 3 vs 1 users on 2 shards: max 3 over ideal 2.
        assert!((c.imbalance() - 1.5).abs() < 1e-12);
    }
}

//! Versioned shard checkpoints for control-plane fault tolerance.
//!
//! A [`ShardCheckpoint`] snapshots one shard at an interval boundary:
//! every twin it owns (full time series, revision counters and instance
//! nonce included), each owner's uplink [`SyncTracker`] state (pending
//! retries and backoff survive the outage), the store's instance-nonce
//! counter, and the keys of the cached CNN embeddings (the encodings
//! themselves are disposable — a restore re-encodes, which is always
//! correct). The encoding is the workspace's hand-rolled JSON
//! ([`msvs_telemetry::Json`]) under a versioned schema tag, mirroring
//! the bench baseline format, so checkpoints are diffable and survive
//! crate-version skew detectably rather than silently.

use msvs_telemetry::Json;
use msvs_types::UserId;
use msvs_udt::{SyncTracker, UserDigitalTwin};

use crate::shard::Shard;

/// Schema tag stamped into every checkpoint. Bump on layout changes so
/// a stale checkpoint fails loud with a named mismatch.
pub const CHECKPOINT_SCHEMA: &str = "msvs-checkpoint/v1";

/// One user's checkpointed state: the twin and its uplink sync state.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointEntry {
    /// The twin, revision counters and instance nonce intact.
    pub twin: UserDigitalTwin,
    /// The user's sync-tracker state (due times, pending retries).
    pub tracker: SyncTracker,
}

/// A whole-shard snapshot taken at an interval boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardCheckpoint {
    /// The shard this checkpoint belongs to.
    pub shard: usize,
    /// The interval boundary the snapshot was taken at.
    pub interval: u64,
    /// The store's instance-nonce counter — restored monotonically so a
    /// recovered shard can never re-stamp a nonce issued before the
    /// outage.
    pub next_instance: u64,
    /// Checkpointed users, sorted by user id.
    pub twins: Vec<CheckpointEntry>,
    /// Users with a cached CNN embedding at capture time, sorted. Keys
    /// only: restores re-encode instead of trusting stale features.
    pub embedding_keys: Vec<UserId>,
}

fn bad(reason: &str) -> String {
    format!("checkpoint: {reason}")
}

fn get_u64(obj: &Json, key: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| bad(&format!("missing integer field '{key}'")))
}

impl ShardCheckpoint {
    /// Snapshots `shard` at `interval`, pulling each owner's sync state
    /// through `tracker_of` (the simulation owns the trackers).
    pub fn capture(
        shard: &Shard,
        interval: u64,
        mut tracker_of: impl FnMut(UserId) -> SyncTracker,
    ) -> Self {
        let mut users = shard.store().user_ids();
        users.sort();
        let twins = users
            .iter()
            .map(|&user| CheckpointEntry {
                twin: shard
                    .store()
                    .with_twin(user, Clone::clone)
                    .expect("listed user owns a twin"),
                tracker: tracker_of(user),
            })
            .collect();
        Self {
            shard: shard.id(),
            interval,
            next_instance: shard.store().next_instance(),
            twins,
            embedding_keys: shard.embedding_users(),
        }
    }

    /// Number of checkpointed users.
    pub fn len(&self) -> usize {
        self.twins.len()
    }

    /// Whether the checkpoint holds no users.
    pub fn is_empty(&self) -> bool {
        self.twins.is_empty()
    }

    /// Serialized size in bytes (feeds the `checkpoint_bytes_total`
    /// counter).
    pub fn encoded_len(&self) -> usize {
        self.to_json().to_string().len()
    }

    /// Encodes the checkpoint under the versioned schema.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::Str(CHECKPOINT_SCHEMA.to_string())),
            ("shard", Json::Num(self.shard as f64)),
            ("interval", Json::Num(self.interval as f64)),
            ("next_instance", Json::Num(self.next_instance as f64)),
            (
                "twins",
                Json::Arr(
                    self.twins
                        .iter()
                        .map(|e| {
                            Json::obj([
                                ("twin", e.twin.checkpoint_json()),
                                ("tracker", e.tracker.checkpoint_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "embedding_keys",
                Json::Arr(
                    self.embedding_keys
                        .iter()
                        .map(|u| Json::Num(u32::from(*u) as f64))
                        .collect(),
                ),
            ),
        ])
    }

    /// Decodes a checkpoint, naming the first offending field.
    ///
    /// # Errors
    /// Returns a message identifying the schema mismatch or the field
    /// that failed to decode.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let schema = json
            .get("schema")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing string field 'schema'"))?;
        if schema != CHECKPOINT_SCHEMA {
            return Err(bad(&format!(
                "schema mismatch: got '{schema}', expected '{CHECKPOINT_SCHEMA}'"
            )));
        }
        let shard = usize::try_from(get_u64(json, "shard")?)
            .map_err(|_| bad("field 'shard' out of range"))?;
        let interval = get_u64(json, "interval")?;
        let next_instance = get_u64(json, "next_instance")?;
        let Some(Json::Arr(rows)) = json.get("twins") else {
            return Err(bad("missing array field 'twins'"));
        };
        let mut twins = Vec::with_capacity(rows.len());
        for (i, row) in rows.iter().enumerate() {
            let twin_json = row
                .get("twin")
                .ok_or_else(|| bad(&format!("twins[{i}] missing field 'twin'")))?;
            let tracker_json = row
                .get("tracker")
                .ok_or_else(|| bad(&format!("twins[{i}] missing field 'tracker'")))?;
            twins.push(CheckpointEntry {
                twin: UserDigitalTwin::from_checkpoint_json(twin_json)
                    .map_err(|e| bad(&format!("twins[{i}].{e}")))?,
                tracker: SyncTracker::from_checkpoint_json(tracker_json)
                    .map_err(|e| bad(&format!("twins[{i}].{e}")))?,
            });
        }
        let Some(Json::Arr(keys)) = json.get("embedding_keys") else {
            return Err(bad("missing array field 'embedding_keys'"));
        };
        let embedding_keys = keys
            .iter()
            .enumerate()
            .map(|(i, k)| {
                k.as_u64()
                    .and_then(|v| u32::try_from(v).ok())
                    .map(UserId)
                    .ok_or_else(|| bad(&format!("embedding_keys[{i}] must be a user id")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            shard,
            interval,
            next_instance,
            twins,
            embedding_keys,
        })
    }

    /// Parses a serialized checkpoint.
    ///
    /// # Errors
    /// Returns a message naming the JSON error or offending field.
    pub fn parse(text: &str) -> Result<Self, String> {
        let json = Json::parse(text).map_err(|e| bad(&format!("invalid JSON: {e}")))?;
        Self::from_json(&json)
    }

    /// Reloads the checkpointed registry into `shard`'s store (cleared
    /// first; the instance-nonce counter only moves forward so a stale
    /// checkpoint can never cause nonce reuse) and returns each user's
    /// restored sync state for the caller to re-install. Cached
    /// embeddings are NOT restored — the keys exist so operators can
    /// size the re-encode burst; the features themselves re-encode on
    /// the next pass, which is always correct.
    pub fn restore_into(&self, shard: &Shard) -> Vec<(UserId, SyncTracker)> {
        shard.store().clear();
        shard.store().restore_next_instance(self.next_instance);
        for entry in &self.twins {
            shard.store().import(entry.twin.clone());
        }
        self.twins
            .iter()
            .map(|e| (e.twin.user(), e.tracker.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msvs_core::cache::CachedEmbedding;
    use msvs_types::{Position, SimTime};
    use msvs_udt::RetryPolicy;

    fn seeded_shard() -> (Shard, Vec<(UserId, SyncTracker)>) {
        let shard = Shard::new(1, 1000.0);
        let mut trackers = Vec::new();
        for id in [4u32, 2, 9] {
            let user = UserId(id);
            shard.store().insert(UserDigitalTwin::new(user));
            shard
                .store()
                .update_channel(user, SimTime::from_secs(1), 6.0 + id as f64)
                .unwrap();
            shard
                .store()
                .update_location(user, SimTime::from_secs(2), Position::new(id as f64, 1.0))
                .unwrap();
            let mut tracker = SyncTracker::default();
            tracker.mark_channel(SimTime::from_secs(1));
            if id == 2 {
                tracker.mark_location_lost(SimTime::from_secs(3), &RetryPolicy::default());
            }
            trackers.push((user, tracker));
        }
        let rev = shard
            .store()
            .with_twin(UserId(4), |t| t.revision())
            .unwrap();
        shard.embeddings().lock().unwrap().put(
            2,
            UserId(4),
            CachedEmbedding {
                revision: rev,
                features: vec![0.5, -1.25],
            },
        );
        (shard, trackers)
    }

    #[test]
    fn capture_serialize_restore_round_trips() {
        let (shard, trackers) = seeded_shard();
        let lookup = |u: UserId| {
            trackers
                .iter()
                .find(|(id, _)| *id == u)
                .map(|(_, t)| t.clone())
                .unwrap()
        };
        let ckpt = ShardCheckpoint::capture(&shard, 7, lookup);
        assert_eq!(ckpt.shard, 1);
        assert_eq!(ckpt.len(), 3);
        assert_eq!(
            ckpt.twins
                .iter()
                .map(|e| e.twin.user().into())
                .collect::<Vec<u32>>(),
            vec![2, 4, 9],
            "entries are user-sorted"
        );
        assert_eq!(ckpt.embedding_keys, vec![UserId(4)]);
        assert!(ckpt.encoded_len() > 0);

        let back = ShardCheckpoint::parse(&ckpt.to_json().to_string()).expect("round trip");
        assert_eq!(back, ckpt, "JSON codec is lossless");

        let fresh = Shard::new(1, 1000.0);
        let restored = back.restore_into(&fresh);
        assert_eq!(fresh.len(), 3);
        assert_eq!(
            fresh
                .store()
                .with_twin(UserId(4), |t| t.revision())
                .unwrap(),
            shard
                .store()
                .with_twin(UserId(4), |t| t.revision())
                .unwrap(),
            "revision (instance nonce included) survives restore"
        );
        assert_eq!(
            fresh.store().next_instance(),
            shard.store().next_instance(),
            "nonce counter resumes where the checkpoint left it"
        );
        let restored_t2 = restored
            .iter()
            .find(|(u, _)| *u == UserId(2))
            .map(|(_, t)| t.clone())
            .unwrap();
        assert_eq!(restored_t2, lookup(UserId(2)), "retry state survives");
        assert!(
            fresh.embeddings().lock().unwrap().is_empty(),
            "embeddings re-encode instead of restoring stale features"
        );
    }

    #[test]
    fn schema_mismatch_and_bad_fields_fail_loud_by_name() {
        let (shard, _) = seeded_shard();
        let ckpt = ShardCheckpoint::capture(&shard, 0, |_| SyncTracker::default());
        let mut json = ckpt.to_json();
        if let Json::Obj(map) = &mut json {
            map.insert("schema".into(), Json::Str("msvs-checkpoint/v0".into()));
        }
        let err = ShardCheckpoint::from_json(&json).unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");

        let mut json = ckpt.to_json();
        if let Json::Obj(map) = &mut json {
            map.remove("next_instance");
        }
        let err = ShardCheckpoint::from_json(&json).unwrap_err();
        assert!(err.contains("next_instance"), "{err}");

        let err = ShardCheckpoint::parse("{nope").unwrap_err();
        assert!(err.contains("invalid JSON"), "{err}");
    }

    #[test]
    fn restore_never_rewinds_the_nonce_counter() {
        let (shard, _) = seeded_shard();
        let ckpt = ShardCheckpoint::capture(&shard, 0, |_| SyncTracker::default());
        let target = Shard::new(1, 1000.0);
        // The target store has advanced past the checkpoint.
        for id in 100..110u32 {
            target.store().insert(UserDigitalTwin::new(UserId(id)));
        }
        let advanced = target.store().next_instance();
        assert!(advanced > ckpt.next_instance);
        ckpt.restore_into(&target);
        assert_eq!(target.store().next_instance(), advanced);
    }
}

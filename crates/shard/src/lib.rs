//! Multi-BS sharded deployment of the DT-assisted pipeline.
//!
//! The paper models a single edge server; its successor ("Digital Twin
//! Based User-Centric Resource Management for Multicast Short Video
//! Streaming", arXiv 2308.08995) is explicitly multi-BS: users roam
//! across cells and their twins must follow. This crate partitions the
//! *data plane* per base station while keeping the *control plane*
//! (grouping, demand prediction, reservation scoring) global, so a
//! sharded run produces a bit-identical `SimulationReport` at any shard
//! count:
//!
//! - [`Shard`] owns one cell's twin registry ([`msvs_udt::UdtStore`]
//!   with a disjoint instance-nonce namespace), its slice of the CNN
//!   embedding cache, and a shard-local edge [`msvs_edge::VideoCache`]
//!   tier;
//! - [`ShardRouter`] maps positions to shards deterministically via the
//!   nearest base station;
//! - [`ShardCoordinator`] mirrors the `UdtStore` write API (routed by an
//!   ownership map), merges per-shard snapshots into the canonical
//!   population view on the worker pool, and runs the serial cross-shard
//!   handover sweep — twin, sync-tracker state and cached embedding
//!   migrate together, and a mid-handover lost report degrades (drops
//!   only the cached embedding, forcing a re-encode) but never
//!   duplicates or drops a twin;
//! - [`ShardedEmbeddingBackend`] plugs the per-shard caches into
//!   [`msvs_core::DtAssistedPredictor`] so cache entries live with their
//!   owning shard and stay hit-correct after a move;
//! - [`ReservationAggregator`] folds per-group demand predictions into
//!   per-shard rows that sum back to the global reservation totals.

pub mod aggregate;
pub mod checkpoint;
pub mod coordinator;
pub mod embedding;
pub mod router;
pub mod shard;

pub use aggregate::{ReservationAggregator, ShardDemandRow, ShardSummary};
pub use checkpoint::{CheckpointEntry, ShardCheckpoint, CHECKPOINT_SCHEMA};
pub use coordinator::{
    HandoverStats, HandoverUser, OutagePhase, OutageTransition, ShardCoordinator,
};
pub use embedding::ShardedEmbeddingBackend;
pub use router::ShardRouter;
pub use shard::{Shard, TwinExport};

//! Global reservation aggregator: per-shard demand attribution.
//!
//! The reservation itself stays global (the `SimulationReport` must be
//! comparable to the single-shard path), but operators provision per
//! cell. The aggregator folds each interval's per-group demand
//! predictions into per-shard rows by member ownership — a group's
//! demand is split evenly across its members, and each member's share is
//! attributed to the shard that owns their twin — so the rows always sum
//! back to the global totals (up to floating-point associativity).

use std::collections::HashMap;

use msvs_core::GroupDemandPrediction;
use msvs_types::UserId;
use serde::{Deserialize, Serialize};

/// Accumulated demand attributed to one shard.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ShardDemandRow {
    /// The shard.
    pub shard: usize,
    /// Twins the shard owned when the summary was taken.
    pub users: usize,
    /// Radio demand attributed to this shard, resource blocks summed
    /// over scored intervals.
    pub radio: f64,
    /// Computing demand attributed to this shard, cycles summed over
    /// scored intervals.
    pub computing: f64,
    /// Shard-local video-cache tier hits.
    pub video_cache_hits: u64,
    /// Shard-local video-cache tier misses.
    pub video_cache_misses: u64,
    /// Intervals this shard spent inside an outage window (crash or
    /// partition).
    pub down_intervals: u64,
    /// Fraction of observed intervals the shard was live (`1.0` when no
    /// outage hit it).
    pub availability: f64,
}

/// End-of-run summary of the shard plane, attached to the
/// `SimulationReport` when more than one shard ran.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ShardSummary {
    /// Number of shards the run partitioned into.
    pub shards: usize,
    /// Cross-shard twin migrations over the whole run.
    pub handovers_total: u64,
    /// Handovers whose mid-flight report was lost, degrading the cached
    /// embedding to a re-encode.
    pub embeddings_dropped_total: u64,
    /// Worst observed load factor: max shard population over the ideal
    /// (uniform) population, `1.0` = perfectly balanced.
    pub peak_imbalance: f64,
    /// Shard outage windows entered over the run (crash + partition).
    pub outages_total: u64,
    /// Twins migrated to live neighbours by crash failover sweeps.
    pub failover_handovers_total: u64,
    /// Serialized bytes of every boundary checkpoint captured.
    pub checkpoint_bytes_total: u64,
    /// Intervals the outage schedule was evaluated over (availability
    /// denominator; `0` when the run never applied outages).
    pub intervals_observed: u64,
    /// Per-shard demand attribution rows (one per shard, in shard order).
    pub demand: Vec<ShardDemandRow>,
}

/// Folds per-group demand predictions into per-shard totals.
#[derive(Debug, Clone)]
pub struct ReservationAggregator {
    radio: Vec<f64>,
    computing: Vec<f64>,
    intervals_folded: u64,
}

impl ReservationAggregator {
    /// Builds an aggregator over `n_shards` shards.
    pub fn new(n_shards: usize) -> Self {
        Self {
            radio: vec![0.0; n_shards],
            computing: vec![0.0; n_shards],
            intervals_folded: 0,
        }
    }

    /// Attributes one interval's per-group predictions to shards by
    /// member ownership. Members missing from `owner` (mid-churn) fall
    /// to shard 0 deterministically.
    pub fn fold(&mut self, groups: &[GroupDemandPrediction], owner: &HashMap<UserId, usize>) {
        for group in groups {
            if group.members.is_empty() {
                continue;
            }
            let radio_share = group.radio.value() / group.members.len() as f64;
            let computing_share = group.computing.value() / group.members.len() as f64;
            for member in &group.members {
                let shard = owner.get(member).copied().unwrap_or(0);
                self.radio[shard] += radio_share;
                self.computing[shard] += computing_share;
            }
        }
        self.intervals_folded += 1;
    }

    /// Number of intervals folded so far.
    pub fn intervals_folded(&self) -> u64 {
        self.intervals_folded
    }

    /// Accumulated radio demand per shard, resource blocks.
    pub fn radio(&self) -> &[f64] {
        &self.radio
    }

    /// Accumulated computing demand per shard, cycles.
    pub fn computing(&self) -> &[f64] {
        &self.computing
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msvs_types::{CpuCycles, GroupId, RepresentationLevel, ResourceBlocks};

    fn group(members: Vec<u32>, radio: f64, computing: f64) -> GroupDemandPrediction {
        GroupDemandPrediction {
            group: GroupId(0),
            members: members.into_iter().map(UserId).collect(),
            level: RepresentationLevel::P720,
            min_efficiency: 1.0,
            radio: ResourceBlocks(radio),
            computing: CpuCycles(computing),
            expected_slots: 1.0,
            expected_traffic_mb: 0.0,
            expected_waste_mb: 0.0,
        }
    }

    #[test]
    fn rows_sum_to_global_totals() {
        let mut agg = ReservationAggregator::new(2);
        let owner: HashMap<UserId, usize> = [(UserId(0), 0), (UserId(1), 1), (UserId(2), 1)].into();
        let groups = vec![group(vec![0, 1], 10.0, 4e9), group(vec![2], 6.0, 1e9)];
        agg.fold(&groups, &owner);
        let total_radio: f64 = agg.radio().iter().sum();
        let total_computing: f64 = agg.computing().iter().sum();
        assert!((total_radio - 16.0).abs() < 1e-9);
        assert!((total_computing - 5e9).abs() < 1e-3);
        assert!((agg.radio()[0] - 5.0).abs() < 1e-9);
        assert!((agg.radio()[1] - 11.0).abs() < 1e-9);
        assert_eq!(agg.intervals_folded(), 1);
    }

    #[test]
    fn unknown_members_fall_to_shard_zero() {
        let mut agg = ReservationAggregator::new(3);
        let owner = HashMap::new();
        agg.fold(&[group(vec![9], 3.0, 2.0)], &owner);
        assert_eq!(agg.radio()[0], 3.0);
        assert_eq!(agg.radio()[1], 0.0);
    }

    #[test]
    fn empty_groups_are_skipped() {
        let mut agg = ReservationAggregator::new(1);
        agg.fold(&[group(vec![], 5.0, 5.0)], &HashMap::new());
        assert_eq!(agg.radio()[0], 0.0);
    }
}

//! Fault-plane overhead: a no-op plan must cost the same as no plan at
//! all (the runner filters inactive plans out before the hot loop), an
//! active plan's per-report fate lookup must stay in the nanosecond
//! range, and a hostile plan bounds the worst-case end-to-end slowdown.

use criterion::{criterion_group, criterion_main, Criterion};
use msvs_faults::{Attribute, DelaySpec, FaultInjector, FaultPlan};
use msvs_sim::{Simulation, SimulationConfig};
use msvs_types::SimDuration;
use std::hint::black_box;

fn small_scheme() -> msvs_core::SchemeConfig {
    let mut scheme = msvs_core::SchemeConfig {
        compressor: msvs_core::CompressorConfig {
            window: 16,
            epochs: 10,
            ..Default::default()
        },
        grouping: msvs_core::GroupingConfig {
            k_min: 2,
            k_max: 5,
            ..Default::default()
        },
        ..Default::default()
    };
    scheme.demand.interval = SimDuration::from_mins(2);
    scheme
}

fn small_config(faults: Option<FaultPlan>) -> SimulationConfig {
    let mut cfg = SimulationConfig::builder()
        .users(24)
        .intervals(1)
        .warmup_intervals(1)
        .interval(SimDuration::from_mins(2))
        .scheme(small_scheme())
        .threads(1)
        .seed(17)
        .build()
        .expect("bench config is valid");
    cfg.faults = faults;
    cfg
}

fn active_plan() -> FaultPlan {
    FaultPlan {
        seed: 0xFA_17,
        uplink_loss: 0.30,
        delay: DelaySpec {
            probability: 0.10,
            max_ticks: 2,
        },
        corruption: 0.05,
        ..FaultPlan::none()
    }
}

/// Per-report fate lookup — the only code an active plan adds to every
/// uplink report in the collection hot loop.
fn bench_fate_lookup(c: &mut Criterion) {
    let plan = active_plan();
    let injector = FaultInjector::new(&plan, 42);
    let mut t = 0u64;
    c.bench_function("fault_fate_lookup", |b| {
        b.iter(|| {
            t = t.wrapping_add(5_000);
            injector.fate(
                black_box((t % 128) as u32),
                black_box(t),
                Attribute::Channel,
            )
        })
    });
}

/// End-to-end interval cost with no plan, a filtered-out no-op plan, and
/// an active hostile plan. The first two must be indistinguishable.
fn bench_sim_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_overhead");
    group.sample_size(10);
    group.bench_function("clean", |b| {
        b.iter(|| Simulation::run(small_config(None)).expect("clean run"))
    });
    group.bench_function("noop_plan", |b| {
        b.iter(|| Simulation::run(small_config(Some(FaultPlan::none()))).expect("noop run"))
    });
    group.bench_function("active_plan", |b| {
        b.iter(|| Simulation::run(small_config(Some(active_plan()))).expect("faulted run"))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fate_lookup, bench_sim_overhead
}
criterion_main!(benches);

//! DDQN costs: greedy inference (per-interval K decision) and one
//! observe+train step (online learning).

use criterion::{criterion_group, criterion_main, Criterion};
use msvs_rl::{DdqnAgent, DdqnConfig, Transition};
use std::hint::black_box;

fn agent() -> DdqnAgent {
    DdqnAgent::new(DdqnConfig {
        state_dim: 19,
        action_count: 11,
        hidden: vec![64, 32],
        min_replay: 32,
        batch_size: 32,
        seed: 5,
        ..Default::default()
    })
    .expect("valid config")
}

fn bench_inference(c: &mut Criterion) {
    let mut a = agent();
    let state = vec![0.05f32; 19];
    c.bench_function("ddqn_act_greedy", |b| {
        b.iter(|| a.act_greedy(black_box(&state)))
    });
}

fn bench_observe_train(c: &mut Criterion) {
    let mut a = agent();
    // Warm the replay buffer so every observe triggers a train step.
    for i in 0..64 {
        a.observe(Transition {
            state: vec![(i % 7) as f32 * 0.1; 19],
            action: i % 11,
            reward: 0.5,
            next_state: vec![0.0; 19],
            done: true,
        });
    }
    c.bench_function("ddqn_observe_train", |b| {
        b.iter(|| {
            a.observe(black_box(Transition {
                state: vec![0.1; 19],
                action: 3,
                reward: 0.7,
                next_state: vec![0.0; 19],
                done: true,
            }))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_inference, bench_observe_train
}
criterion_main!(benches);

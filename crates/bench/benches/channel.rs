//! Channel-model costs: SNR sampling (the per-tick collection hot path)
//! and multicast resource-block accounting.

use criterion::{criterion_group, criterion_main, Criterion};
use msvs_channel::{group_resource_demand, Link, LinkConfig};
use msvs_types::{Hertz, Mbps, Meters};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_snr_sample(c: &mut Criterion) {
    let link = Link::new(LinkConfig::default());
    let mut rng = StdRng::seed_from_u64(3);
    c.bench_function("link_sample_snr", |b| {
        b.iter(|| link.sample_snr_db(&mut rng, black_box(Meters(237.0))))
    });
}

fn bench_efficiency(c: &mut Criterion) {
    let link = Link::new(LinkConfig::default());
    c.bench_function("cqi_lookup", |b| {
        b.iter(|| link.spectral_efficiency(black_box(13.7)))
    });
}

fn bench_group_demand(c: &mut Criterion) {
    c.bench_function("group_rb_demand", |b| {
        b.iter(|| {
            group_resource_demand(
                black_box(Mbps(2.5)),
                black_box(1.9141),
                black_box(Hertz(180_000.0)),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_snr_sample, bench_efficiency, bench_group_demand
}
criterion_main!(benches);

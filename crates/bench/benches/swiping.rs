//! Swiping-abstraction costs: Kaplan–Meier fitting and the expectation
//! queries the demand predictor issues per recommended video.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msvs_core::SwipingAbstraction;
use msvs_types::{RepresentationLevel, SimDuration, VideoCategory, VideoId};
use msvs_udt::WatchRecord;
use std::hint::black_box;

fn abstraction(samples: usize) -> SwipingAbstraction {
    let records: Vec<WatchRecord> = (0..samples)
        .map(|i| WatchRecord {
            video: VideoId(0),
            category: VideoCategory::Music,
            level: RepresentationLevel::P720,
            watched: SimDuration::from_secs_f64(0.5 + (i % 55) as f64),
            video_duration: SimDuration::from_secs(55),
            completed: i % 5 == 0,
        })
        .collect();
    SwipingAbstraction::from_records(records.iter())
}

fn bench_expected_max(c: &mut Criterion) {
    let mut group = c.benchmark_group("swiping_expected_max");
    for &n_samples in &[128usize, 1024, 2048] {
        let s = abstraction(n_samples);
        group.bench_with_input(BenchmarkId::from_parameter(n_samples), &s, |b, s| {
            b.iter(|| {
                s.expected_max_engagement(
                    black_box(VideoCategory::Music),
                    black_box(24),
                    black_box(SimDuration::from_secs(40)),
                )
            })
        });
    }
    group.finish();
}

fn bench_cdf_eval(c: &mut Criterion) {
    let s = abstraction(2048);
    c.bench_function("swiping_cdf_eval", |b| {
        b.iter(|| s.cumulative_probability(black_box(VideoCategory::Music), black_box(12.5)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_expected_max, bench_cdf_eval
}
criterion_main!(benches);

//! UDT store throughput: single-threaded update ingestion and feature
//! window extraction (the collection and prediction hot paths).

use criterion::{criterion_group, criterion_main, Criterion};
use msvs_types::{Position, SimTime, UserId};
use msvs_udt::{UdtStore, UserDigitalTwin};
use std::hint::black_box;

fn warm_store(n_users: u32) -> UdtStore {
    let store = UdtStore::new();
    for u in 0..n_users {
        let mut twin = UserDigitalTwin::new(UserId(u));
        for s in 0..64u64 {
            twin.update_channel(SimTime::from_secs(s), 12.0 + (s % 9) as f64);
            twin.update_location(SimTime::from_secs(s), Position::new(s as f64 * 3.0, 400.0));
        }
        store.insert(twin);
    }
    store
}

fn bench_channel_update(c: &mut Criterion) {
    let store = warm_store(128);
    let mut t = 0u64;
    c.bench_function("udt_channel_update", |b| {
        b.iter(|| {
            t += 1;
            store
                .update_channel(black_box(UserId((t % 128) as u32)), SimTime(t), 14.2)
                .expect("user exists")
        })
    });
}

fn bench_feature_window(c: &mut Criterion) {
    let store = warm_store(128);
    c.bench_function("udt_feature_window", |b| {
        b.iter(|| {
            store
                .with_twin(black_box(UserId(7)), |twin| {
                    twin.feature_window(32, 1200.0, 1000.0)
                })
                .expect("user exists")
        })
    });
}

fn bench_snapshot(c: &mut Criterion) {
    let store = warm_store(128);
    c.bench_function("udt_snapshot_128", |b| b.iter(|| store.snapshot()));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_channel_update, bench_feature_window, bench_snapshot
}
criterion_main!(benches);

//! Serial-vs-parallel wall time for the hot paths behind `msvs-par`: a
//! full 1000-user reservation interval, batched CNN encoding, and K-means
//! assignment. Seeded runs are bit-identical at any thread count, so these
//! benches measure pure wall-time — the speedup is hardware-dependent
//! (single-core machines show ~1×).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msvs_bench::archetype_features;
use msvs_core::{CnnCompressor, CompressorConfig, SchemeConfig};
use msvs_par::Pool;
use msvs_sim::{Simulation, SimulationConfig};
use msvs_types::SimDuration;
use msvs_udt::FeatureWindow;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const THREAD_COUNTS: [usize; 2] = [1, 4];

/// A 1000-user scenario trimmed to one cheap scored interval so the
/// per-sample setup (construction + warm-up) stays tractable.
fn thousand_user_config(threads: usize) -> SimulationConfig {
    let mut scheme = SchemeConfig::default();
    scheme.compressor.window = 16;
    scheme.compressor.epochs = 5;
    scheme.demand.interval = SimDuration::from_mins(2);
    SimulationConfig::builder()
        .users(1000)
        .intervals(1)
        .warmup_intervals(1)
        .interval(SimDuration::from_mins(2))
        .scheme(scheme)
        .pretrain_rounds(0)
        .threads(threads)
        .seed(11)
        .build()
        .expect("bench scenario is valid")
}

fn synthetic_windows(n: usize, seed: u64) -> Vec<FeatureWindow> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let series = (0..4)
                .map(|_| (0..16).map(|_| rng.gen::<f32>()).collect())
                .collect();
            FeatureWindow {
                series,
                preference: vec![0.125; 8],
            }
        })
        .collect()
}

fn bench_interval(c: &mut Criterion) {
    let mut group = c.benchmark_group("interval_1000u");
    group.sample_size(10);
    for threads in THREAD_COUNTS {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter_with_setup(
                    || {
                        let mut sim = Simulation::new(thousand_user_config(threads))
                            .expect("scenario builds");
                        sim.warm_up().expect("warm-up runs");
                        sim
                    },
                    |mut sim| sim.run_interval(0).expect("interval runs"),
                )
            },
        );
    }
    group.finish();
}

fn bench_encode(c: &mut Criterion) {
    let windows = synthetic_windows(1000, 3);
    let mut comp = CnnCompressor::new(CompressorConfig {
        window: 16,
        epochs: 3,
        ..Default::default()
    })
    .expect("compressor config is valid");
    comp.train(&windows[..64]).expect("training runs");
    comp.freeze();
    let mut group = c.benchmark_group("cnn_encode_1000w");
    for threads in THREAD_COUNTS {
        let pool = Pool::new(threads);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &pool, |b, pool| {
            b.iter(|| comp.encode_with(&windows, pool).expect("encode runs"));
        });
    }
    group.finish();
}

fn bench_kmeans(c: &mut Criterion) {
    let points = archetype_features(5, 200, 0.6, 7);
    let mut group = c.benchmark_group("kmeans_1000p");
    for threads in THREAD_COUNTS {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let config = msvs_cluster::KMeansConfig {
                    k: 5,
                    seed: 5,
                    threads,
                    ..Default::default()
                };
                b.iter(|| {
                    msvs_cluster::KMeans::new(config.clone())
                        .fit(&points)
                        .expect("fit converges")
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_interval, bench_encode, bench_kmeans
}
criterion_main!(benches);

//! Telemetry hot-path overhead: counter increments and scoped stage
//! timers must stay cheap enough to leave inside the simulation loop
//! (target: well under 50 ns per operation on the pre-resolved handles).

use criterion::{criterion_group, criterion_main, Criterion};
use msvs_telemetry::{stage, Registry, ScopedTimer, Telemetry};
use std::hint::black_box;

fn bench_counter(c: &mut Criterion) {
    let registry = Registry::new();
    let counter = registry.counter("bench_ops", "hot");
    c.bench_function("counter_inc", |b| b.iter(|| black_box(&counter).inc()));
    let gauge = registry.gauge("bench_gauge", "hot");
    c.bench_function("gauge_set", |b| {
        b.iter(|| black_box(&gauge).set(black_box(42.0)))
    });
    let histogram = registry.histogram("bench_hist", "hot");
    c.bench_function("histogram_record", |b| {
        b.iter(|| black_box(&histogram).record(black_box(1.25)))
    });
}

fn bench_scoped_timer(c: &mut Criterion) {
    let telemetry = Telemetry::new();
    c.bench_function("scoped_timer_start_stop", |b| {
        b.iter(|| telemetry.stage_timer(stage::KMEANS_FIT).stop())
    });
    // Timing the resolution path separately: histogram lookup + RAII drop.
    let registry = Registry::new();
    let sink = registry.histogram(msvs_telemetry::STAGE_MS, stage::CNN_FORWARD);
    c.bench_function("scoped_timer_prebound", |b| {
        b.iter(|| ScopedTimer::new(black_box(sink.clone())).stop())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench_counter, bench_scoped_timer
}
criterion_main!(benches);

//! Whole-pipeline cost: one reservation interval of the simulator
//! (collection + prediction + playback) and one prediction-only pass — the
//! numbers behind the "timely" claim at reservation-interval granularity.

use criterion::{criterion_group, criterion_main, Criterion};
use msvs_bench::paper_scenario;
use msvs_sim::Simulation;

fn bench_full_interval(c: &mut Criterion) {
    c.bench_function("simulate_one_interval_60u", |b| {
        b.iter_with_setup(
            || {
                let mut sim = Simulation::new(paper_scenario(60, 1, 3)).expect("scenario builds");
                sim.warm_up().expect("warm-up runs");
                sim
            },
            |mut sim| sim.run_interval(0).expect("interval runs"),
        )
    });
}

fn bench_whole_run(c: &mut Criterion) {
    c.bench_function("simulate_4_intervals_40u", |b| {
        b.iter(|| Simulation::run(paper_scenario(40, 4, 5)).expect("simulation runs"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_full_interval, bench_whole_run
}
criterion_main!(benches);

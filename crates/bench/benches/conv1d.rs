//! 1D-CNN throughput: forward and forward+backward passes of the twin
//! compressor's encoder over a user batch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msvs_nn::{mse_loss, Conv1d, Dense, Flatten, Layer, Relu, Sequential, Tensor};
use std::hint::black_box;

fn encoder(window: usize) -> Sequential {
    let conv1 = Conv1d::new(4, 8, 3, 2, 1);
    let l1 = conv1.out_len(window).expect("window fits");
    let conv2 = Conv1d::new(8, 8, 3, 2, 2);
    let l2 = conv2.out_len(l1).expect("window fits");
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(conv1),
        Box::new(Relu::new()),
        Box::new(conv2),
        Box::new(Relu::new()),
        Box::new(Flatten::new()),
        Box::new(Dense::new(8 * l2, 8, 3)),
    ];
    Sequential::new(layers)
}

fn batch(n: usize, window: usize) -> Tensor {
    Tensor::from_vec(
        (0..n * 4 * window)
            .map(|i| (i % 97) as f32 / 97.0)
            .collect(),
        vec![n, 4, window],
    )
    .expect("shape matches")
}

fn bench_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("cnn_encode_forward");
    for &n in &[32usize, 128, 512] {
        let mut net = encoder(32);
        let x = batch(n, 32);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| net.forward(black_box(&x), false))
        });
    }
    group.finish();
}

fn bench_train_step(c: &mut Criterion) {
    let mut net = encoder(32);
    let x = batch(64, 32);
    let target = Tensor::zeros(vec![64, 8]);
    c.bench_function("cnn_train_step_64", |b| {
        b.iter(|| {
            let out = net.forward(black_box(&x), true);
            let (_, grad) = mse_loss(&out, &target);
            net.zero_grad();
            net.backward(&grad)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_forward, bench_train_step
}
criterion_main!(benches);

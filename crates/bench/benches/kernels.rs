//! Compute-kernel microbenches: the allocation-free inference path
//! (im2col conv + cache-blocked GEMM through a reusable scratch arena)
//! against the allocating `infer`, and bounded (Hamerly) versus plain
//! Lloyd K-means fits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msvs_bench::archetype_features;
use msvs_cluster::{KMeans, KMeansConfig};
use msvs_nn::{BackendKind, Conv1d, Dense, Flatten, Layer, Relu, Scratch, Sequential, Tensor};
use std::hint::black_box;

fn encoder(window: usize) -> Sequential {
    let conv1 = Conv1d::new(4, 8, 3, 2, 1);
    let l1 = conv1.out_len(window).expect("window fits");
    let conv2 = Conv1d::new(8, 8, 3, 2, 2);
    let l2 = conv2.out_len(l1).expect("window fits");
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(conv1),
        Box::new(Relu::new()),
        Box::new(conv2),
        Box::new(Relu::new()),
        Box::new(Flatten::new()),
        Box::new(Dense::new(8 * l2, 8, 3)),
    ];
    Sequential::new(layers)
}

fn batch(n: usize, window: usize) -> Tensor {
    Tensor::from_vec(
        (0..n * 4 * window)
            .map(|i| (i % 97) as f32 / 97.0)
            .collect(),
        vec![n, 4, window],
    )
    .expect("shape matches")
}

/// Steady-state inference through a reused scratch arena (zero heap
/// allocations per call) versus the tensor-per-layer `infer` path.
fn bench_infer_scratch(c: &mut Criterion) {
    let mut group = c.benchmark_group("cnn_infer");
    for &n in &[32usize, 128, 512] {
        let net = encoder(32);
        let x = batch(n, 32);
        group.bench_with_input(BenchmarkId::new("alloc", n), &n, |b, _| {
            b.iter(|| net.infer(black_box(&x)))
        });
        let mut scratch = Scratch::new();
        group.bench_with_input(BenchmarkId::new("scratch", n), &n, |b, _| {
            b.iter(|| {
                let (out, shape) =
                    net.infer_scratch(black_box(&x), &mut scratch, msvs_nn::backend::scalar());
                black_box((out[0], shape.len()))
            })
        });
    }
    group.finish();
}

/// The same scratch-arena inference routed through each swappable
/// compute backend: scalar (reference), simd (bit-identical lanes),
/// int8 (per-tensor symmetric quantized weights).
fn bench_infer_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("cnn_infer_backend");
    let net = encoder(32);
    for &n in &[32usize, 512] {
        let x = batch(n, 32);
        for kind in BackendKind::ALL {
            let mut scratch = Scratch::new();
            group.bench_with_input(BenchmarkId::new(kind.name(), n), &n, |b, _| {
                b.iter(|| {
                    let (out, shape) =
                        net.infer_scratch(black_box(&x), &mut scratch, kind.handle());
                    black_box((out[0], shape.len()))
                })
            });
        }
    }
    group.finish();
}

/// The cache-blocked zero-skip GEMM behind `Tensor::matmul` and `Dense`.
fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    for &(m, k, n) in &[(64usize, 64usize, 64usize), (256, 128, 64), (512, 56, 8)] {
        let a = Tensor::from_vec(
            (0..m * k).map(|i| (i % 89) as f32 / 89.0).collect(),
            vec![m, k],
        )
        .expect("shape matches");
        let b_mat = Tensor::from_vec(
            (0..k * n).map(|i| (i % 83) as f32 / 83.0).collect(),
            vec![k, n],
        )
        .expect("shape matches");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{k}x{n}")),
            &(m, k, n),
            |bch, _| bch.iter(|| black_box(&a).matmul(black_box(&b_mat))),
        );
    }
    group.finish();
}

/// Hamerly-bounded fit against the plain Lloyd sweep on the same blobs:
/// identical results, fewer distance evaluations per round.
fn bench_bounded_kmeans(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmeans_bounded");
    for &n_per in &[100usize, 400] {
        let features = archetype_features(5, n_per, 0.4, 7);
        for bounded in [false, true] {
            let label = if bounded { "bounded" } else { "plain" };
            group.bench_with_input(
                BenchmarkId::new(label, features.len()),
                &features,
                |b, feats| {
                    b.iter(|| {
                        KMeans::new(KMeansConfig {
                            k: 5,
                            seed: 1,
                            bounded,
                            ..Default::default()
                        })
                        .fit(black_box(feats))
                        .expect("fit succeeds")
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_infer_scratch, bench_infer_backends, bench_gemm, bench_bounded_kmeans
}
criterion_main!(benches);

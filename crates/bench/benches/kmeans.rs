//! K-means++ scaling: seeding plus Lloyd iterations over growing
//! populations (the per-interval clustering cost of group construction).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msvs_bench::archetype_features;
use msvs_cluster::{KMeans, KMeansConfig};
use std::hint::black_box;

fn bench_kmeans(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmeans_fit");
    for &n_per in &[25usize, 100, 400] {
        let features = archetype_features(5, n_per, 0.4, 7);
        group.bench_with_input(
            BenchmarkId::from_parameter(features.len()),
            &features,
            |b, feats| {
                b.iter(|| {
                    KMeans::new(KMeansConfig {
                        k: 5,
                        seed: 1,
                        ..Default::default()
                    })
                    .fit(black_box(feats))
                    .expect("fit succeeds")
                })
            },
        );
    }
    group.finish();
}

fn bench_silhouette(c: &mut Criterion) {
    let features = archetype_features(5, 60, 0.4, 7);
    let fit = KMeans::new(KMeansConfig {
        k: 5,
        seed: 1,
        ..Default::default()
    })
    .fit(&features)
    .expect("fit succeeds");
    c.bench_function("silhouette_300", |b| {
        b.iter(|| msvs_cluster::silhouette(black_box(&features), black_box(&fit.assignments)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_kmeans, bench_silhouette
}
criterion_main!(benches);

//! E12 (extension): the grouping reward's design knob — sweeping the
//! per-group cost λ in `reward = silhouette − λ·(K − K_min)/(K_max − K_min)`
//! and measuring the K the DDQN settles on, the clustering quality, and
//! the radio demand that K implies.
//!
//! This is the ablation for the one free parameter DESIGN.md introduces
//! beyond the paper's text (the paper never says how its DDQN trades
//! cluster quality against group count).
//!
//! ```text
//! cargo run --release -p msvs-bench --bin exp_group_cost
//! ```

use msvs_bench::paper_scenario;
use msvs_sim::Simulation;

fn main() {
    println!("# E12 — group-cost λ sweep (120 users, 10 intervals, seed 42)");
    println!(
        "{:>8} {:>8} {:>12} {:>14} {:>14}",
        "lambda", "mean K", "silhouette", "actual RB/ivl", "radio acc (%)"
    );
    for lambda in [0.0, 0.05, 0.15, 0.3, 0.6] {
        let mut cfg = paper_scenario(120, 10, 42);
        cfg.scheme.grouping.group_cost = lambda;
        let r = Simulation::run(cfg).expect("simulation runs");
        let rb: f64 = r
            .intervals
            .iter()
            .map(|i| i.actual_radio.value())
            .sum::<f64>()
            / r.intervals.len() as f64;
        println!(
            "{lambda:>8.2} {:>8.1} {:>12.3} {rb:>14.1} {:>14.1}",
            r.mean_k(),
            r.mean_silhouette(),
            100.0 * r.mean_radio_accuracy()
        );
    }
    println!(
        "\n# expectation: λ = 0 lets the agent chase silhouette with many\n\
         # small groups (more multicast channels, more total RBs); large λ\n\
         # collapses toward K_min, trading clustering quality for fewer\n\
         # channels. The default λ = 0.15 sits at the knee."
    );
}

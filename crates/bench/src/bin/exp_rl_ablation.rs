//! E11 (extension): DDQN component ablation for group-count selection —
//! uniform replay vs prioritized replay (PER), plain head vs dueling
//! head, measured as reward attained within a fixed training budget.
//!
//! ```text
//! cargo run --release -p msvs-bench --bin exp_rl_ablation
//! ```

use msvs_bench::{archetype_features, mean_std};
use msvs_core::{GroupingConfig, GroupingEngine};
use msvs_rl::EpsilonSchedule;

/// Trains a fresh engine for `budget` constructions, then averages the
/// reward of 20 greedy-ish evaluations.
fn final_reward(per: bool, dueling: bool, seed: u64, budget: usize) -> f64 {
    let features = archetype_features(5, 25, 0.4, 11);
    let mut engine = GroupingEngine::new(GroupingConfig {
        k_min: 2,
        k_max: 10,
        prioritized_replay: per,
        dueling,
        epsilon: EpsilonSchedule::linear(1.0, 0.02, (budget as u64 * 3) / 4)
            .expect("valid schedule"),
        seed,
        ..Default::default()
    })
    .expect("valid grouping config");
    engine
        .pretrain(std::slice::from_ref(&features), budget)
        .expect("pretraining runs");
    (0..20)
        .map(|_| engine.construct(&features).expect("construct runs").reward)
        .sum::<f64>()
        / 20.0
}

fn main() {
    let seeds = [3u64, 17, 29, 41];
    println!("# E11 — DDQN ablation: reward after a fixed training budget");
    println!(
        "{:>10} {:>22} {:>22}",
        "budget", "variant", "mean final reward"
    );
    for budget in [120usize, 400] {
        for (name, per, dueling) in [
            ("uniform", false, false),
            ("PER", true, false),
            ("dueling", false, true),
            ("PER+dueling", true, true),
        ] {
            let rewards: Vec<f64> = seeds
                .iter()
                .map(|&s| final_reward(per, dueling, s, budget))
                .collect();
            let (m, sd) = mean_std(&rewards);
            println!("{budget:>10} {name:>22} {m:>17.3}±{sd:<4.3}");
        }
        println!();
    }
    println!(
        "# context: the oracle silhouette for this population is ~0.91 and\n\
         # the reward subtracts a group-count cost, so ~0.85 is ceiling.\n\
         # finding (neutral result): on this stationary population every\n\
         # variant reaches the ceiling by 400 constructions and the small-\n\
         # budget differences stay within seed noise — the grouping task is\n\
         # a one-step contextual bandit, too easy for PER or dueling to pay\n\
         # off. They remain available for non-stationary populations."
    );
}

//! E8 (extension): single-cell vs per-BS multicast accounting — how much
//! radio the BS fan-out really costs, how much of the multicast saving
//! survives, and what it does to prediction accuracy.
//!
//! The paper treats the serving area as one multicast domain; real
//! deployments transmit a group's stream from every BS that has attached
//! members. Both modes are implemented; this harness compares them.
//!
//! ```text
//! cargo run --release -p msvs-bench --bin exp_per_bs
//! ```

use msvs_bench::{mean_std, paper_scenario};
use msvs_sim::Simulation;

fn main() {
    println!("# E8 — single-cell (paper) vs per-BS (extension) accounting");
    println!(
        "{:>8} {:>12} {:>18} {:>16} {:>16}",
        "n_bs", "mode", "radio acc (%)", "actual RB/ivl", "saving (%)"
    );
    for n_bs in [1usize, 4, 9] {
        for per_bs in [false, true] {
            let seeds = [7u64, 42];
            let mut accs = Vec::new();
            let mut rbs = Vec::new();
            let mut savings = Vec::new();
            for &s in &seeds {
                let cfg = msvs_sim::SimulationConfig {
                    n_bs,
                    per_bs_accounting: per_bs,
                    ..paper_scenario(120, 10, s)
                };
                let r = Simulation::run(cfg).expect("simulation runs");
                accs.push(100.0 * r.mean_radio_accuracy());
                rbs.push(
                    r.intervals
                        .iter()
                        .map(|i| i.actual_radio.value())
                        .sum::<f64>()
                        / r.intervals.len() as f64,
                );
                savings.push(100.0 * r.mean_multicast_saving());
            }
            let (am, asd) = mean_std(&accs);
            let (rm, _) = mean_std(&rbs);
            let (sm, _) = mean_std(&savings);
            println!(
                "{n_bs:>8} {:>12} {am:>13.1}±{asd:<4.1} {rm:>16.1} {sm:>16.1}",
                if per_bs { "per-BS" } else { "single" }
            );
        }
    }
    println!(
        "\n# expectation: per-BS fan-out raises the measured RB cost and\n\
         # trims the multicast saving as groups scatter across more BSs;\n\
         # accuracy dips a little (attachment is predicted from twin\n\
         # locations that lag the users)."
    );
}

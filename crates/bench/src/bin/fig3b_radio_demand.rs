//! Fig. 3(b): radio resource demand, predicted vs actual, per reservation
//! interval — plus the paper's headline prediction-accuracy number
//! (95.04% in the paper).
//!
//! ```text
//! cargo run --release -p msvs-bench --bin fig3b_radio_demand
//! ```

use msvs_bench::{mean_std, paper_scenario};
use msvs_sim::{report, Simulation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Primary run (the plotted series).
    let result = Simulation::run(paper_scenario(120, 12, 42))?;
    println!("# Fig. 3(b) — radio resource demand per 5-minute interval");
    println!(
        "{:>9} {:>12} {:>12} {:>10}",
        "interval", "pred (RB)", "actual (RB)", "accuracy"
    );
    for r in &result.intervals {
        println!(
            "{:>9} {:>12.1} {:>12.1} {:>9.1}%",
            r.index,
            r.predicted_radio.value(),
            r.actual_radio.value(),
            100.0 * r.radio_accuracy
        );
    }
    println!(
        "\nmean radio demand prediction accuracy: {:.2}%  (paper: 95.04%)",
        100.0 * result.mean_radio_accuracy()
    );

    // Robustness: repeat across seeds.
    let accs: Vec<f64> = (0..5)
        .map(|s| {
            Simulation::run(paper_scenario(120, 12, 100 + s))
                .map(|r| 100.0 * r.mean_radio_accuracy())
        })
        .collect::<Result<_, _>>()?;
    let (m, sd) = mean_std(&accs);
    println!("across 5 seeds: {m:.2}% ± {sd:.2}%");

    println!("\n# CSV of the primary run:");
    print!("{}", report::to_csv(&result));
    Ok(())
}

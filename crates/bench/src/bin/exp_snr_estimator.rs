//! E9 (extension): channel-condition estimation under mobility — the
//! twin's recent-mean SNR vs dead-reckoned extrapolation to the interval
//! midpoint, swept over walking speed.
//!
//! The faster users move, the staler a recent-mean estimate becomes over a
//! 5-minute reservation interval; a digital twin that *predicts* its
//! user's position should close that gap.
//!
//! ```text
//! cargo run --release -p msvs-bench --bin exp_snr_estimator
//! ```

use msvs_bench::{mean_std, paper_scenario};
use msvs_core::SnrEstimator;
use msvs_sim::Simulation;

fn accuracy(estimator: SnrEstimator, speed: f64, seeds: &[u64]) -> (f64, f64) {
    let accs: Vec<f64> = seeds
        .iter()
        .map(|&s| {
            let mut cfg = paper_scenario(120, 10, s);
            cfg.mean_speed = speed;
            cfg.scheme.snr_estimator = estimator;
            100.0
                * Simulation::run(cfg)
                    .expect("simulation runs")
                    .mean_radio_accuracy()
        })
        .collect();
    mean_std(&accs)
}

fn main() {
    let seeds = [7u64, 42, 99];
    println!("# E9 — radio accuracy (%) vs walking speed, per SNR estimator");
    println!(
        "{:>12} {:>18} {:>20}",
        "speed (m/s)", "recent mean", "extrapolated"
    );
    for speed in [0.5, 1.4, 3.0, 6.0] {
        let (rm, rsd) = accuracy(SnrEstimator::default(), speed, &seeds);
        let (em, esd) = accuracy(
            SnrEstimator::Extrapolated {
                fading_offset_db: -2.5,
            },
            speed,
            &seeds,
        );
        println!("{speed:>12.1} {rm:>13.1}±{rsd:<4.1} {em:>15.1}±{esd:<4.1}");
    }
    println!(
        "\n# finding (negative result): naive dead-reckoning over a half-\n\
         # interval horizon HURTS under random-waypoint mobility, and hurts\n\
         # more the faster users move — a two-sample velocity estimate\n\
         # overshoots destinations and pause phases badly, while the\n\
         # recent-mean stays robust because group min-efficiency is\n\
         # near-ergodic over the campus. A useful twin-side predictor\n\
         # needs an actual trajectory model, not linear extrapolation."
    );
}

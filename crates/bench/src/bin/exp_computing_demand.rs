//! E3 (extension): computing (transcoding) resource demand — predicted vs
//! actual per interval, and how cache capacity moves the demand.
//!
//! ```text
//! cargo run --release -p msvs-bench --bin exp_computing_demand
//! ```

use msvs_bench::paper_scenario;
use msvs_sim::Simulation;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("# E3 — computing demand per interval (primary scenario)");
    let result = Simulation::run(paper_scenario(120, 12, 42))?;
    println!(
        "{:>9} {:>14} {:>14} {:>10}",
        "interval", "pred (Gcyc)", "actual (Gcyc)", "accuracy"
    );
    for r in &result.intervals {
        println!(
            "{:>9} {:>14.1} {:>14.1} {:>9.1}%",
            r.index,
            r.predicted_computing.as_gigacycles(),
            r.actual_computing.as_gigacycles(),
            100.0 * r.computing_accuracy
        );
    }
    println!(
        "mean computing-demand accuracy: {:.1}%\n",
        100.0 * result.mean_computing_accuracy()
    );

    println!("# cache-capacity sweep (mean actual transcoding load)");
    println!(
        "{:>14} {:>16} {:>14}",
        "cache (GB)", "actual (Gcyc)", "accuracy"
    );
    for cache_gb in [1.0, 4.0, 16.0, 64.0] {
        let mut cfg = paper_scenario(120, 10, 42);
        cfg.edge.cache_capacity_mb = cache_gb * 8.0 * 1000.0; // GB -> Mb
        let r = Simulation::run(cfg)?;
        let mean_actual: f64 = r
            .intervals
            .iter()
            .map(|i| i.actual_computing.as_gigacycles())
            .sum::<f64>()
            / r.intervals.len() as f64;
        println!(
            "{cache_gb:>14.0} {mean_actual:>16.1} {:>13.1}%",
            100.0 * r.mean_computing_accuracy()
        );
    }
    println!(
        "\n# expectation: a larger cache holds more representations, so the\n\
         # transcoding load falls monotonically with capacity."
    );
    Ok(())
}

//! Fig. 3(a): cumulative swiping probability of multicast group 1 per
//! video category vs engagement time.
//!
//! The paper's observation: in the group it plots, News videos are watched
//! the longest (swipe CDF rises slowest) and Game videos the least (CDF
//! rises fastest). We run the campus scenario, pick the group whose
//! favourite category is News, and print its per-category cumulative
//! swiping probability series.
//!
//! ```text
//! cargo run --release -p msvs-bench --bin fig3a_swiping
//! ```

use msvs_bench::paper_scenario;
use msvs_sim::Simulation;
use msvs_types::VideoCategory;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = paper_scenario(120, 12, 42);
    let mut sim = Simulation::new(config.clone())?;
    sim.warm_up()?;
    for i in 0..config.n_intervals {
        sim.run_interval(i)?;
    }
    let outcome = sim.last_outcome().expect("intervals ran");

    // "Multicast group 1": the paper plots a News-leaning group (News
    // watched most). Pick the group whose recommendation pool carries the
    // most News probability mass — that is the group whose members'
    // preferences lean News.
    let catalog = sim.catalog();
    let group = outcome
        .recommendations
        .iter()
        .enumerate()
        .max_by(|a, b| {
            let news_mass = |r: &msvs_core::GroupRecommendation| {
                r.category_mix(catalog)[VideoCategory::News.index()]
            };
            news_mass(a.1)
                .partial_cmp(&news_mass(b.1))
                .expect("finite masses")
        })
        .map(|(g, _)| g)
        .expect("at least one group");
    let swiping = &outcome.swiping[group];

    println!("# Fig. 3(a) — cumulative swiping probability, multicast group {group}");
    println!("# (paper: News watched most / swiped latest, Game least)");
    print!("{:>6}", "t(s)");
    for cat in VideoCategory::ALL {
        print!("{:>10}", cat.name());
    }
    println!();
    for t in [1, 2, 3, 5, 8, 10, 15, 20, 30, 40, 50, 60] {
        print!("{t:>6}");
        for cat in VideoCategory::ALL {
            print!("{:>10.3}", swiping.cumulative_probability(cat, t as f64));
        }
        println!();
    }

    println!("\n# retention per category (ranked; * = fewer than 100 samples):");
    for (cat, mean) in swiping.ranked_categories() {
        let n = swiping.sample_count(cat);
        let marker = if n < 100 { "*" } else { " " };
        println!("{:>10}{marker}: {mean:>6.2} s ({n} samples)", cat.name());
    }
    // The paper's visual check: the favourite category's curve rises the
    // slowest. Compare the cumulative swiping probability at 10 s among
    // categories with meaningful support (lower = retained longer).
    let mut at_10s: Vec<(VideoCategory, f64)> = VideoCategory::ALL
        .iter()
        .filter(|&&c| swiping.sample_count(c) >= 100)
        .map(|&c| (c, swiping.cumulative_probability(c, 10.0)))
        .collect();
    at_10s.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite probabilities"));
    println!("\n# check: F(10 s) among well-sampled categories (lower = retained longer):");
    for (c, f) in &at_10s {
        println!("#   {:<10} {f:.3}", c.name());
    }
    println!(
        "# News swiped latest: {}",
        at_10s
            .first()
            .map(|(c, _)| *c == VideoCategory::News)
            .unwrap_or(false)
    );
    Ok(())
}

//! E14 (extension): control-plane fault tolerance — availability vs
//! prediction accuracy when base-station shards go dark.
//!
//! Runs the E13 sharded scenario clean, under `bs-flap` (two one-interval
//! partitions of shard 1 — users pinned in place with a severed uplink,
//! falling into the degradation ladder) and under `bs-crash` (shard 1
//! killed for two intervals — users failed over to live neighbours, the
//! shard restored from its boundary checkpoint). The twin population is
//! conserved through every kill/failover/restore cycle
//! (`tests/shard_outage.rs`); what this harness measures is the *price*
//! of each outage mode: accuracy and coverage lost per point of
//! availability given up.
//!
//! ```text
//! cargo run --release -p msvs-bench --bin exp_outage
//! ```

use msvs_bench::paper_scenario;
use msvs_faults::FaultPlan;
use msvs_sim::{MobilityMix, Simulation, SimulationConfig};

fn main() {
    println!("# E14 — shard outages: availability vs accuracy");
    println!(
        "{:>10} {:>14} {:>13} {:>10} {:>10} {:>10} {:>12}",
        "profile", "radio acc (%)", "coverage (%)", "degraded", "outages", "failover", "avail (%)"
    );
    for profile in ["clean", "bs-flap", "bs-crash"] {
        let mut cfg = SimulationConfig {
            n_bs: 8,
            shards: 4,
            mobility: MobilityMix::all_waypoint(),
            ..paper_scenario(120, 10, 42)
        };
        if profile != "clean" {
            cfg.faults = Some(FaultPlan::builtin(profile).expect("builtin profile"));
            cfg.validate().expect("config with faults is valid");
        }
        let report = Simulation::run(cfg).expect("simulation runs");
        let acc = 100.0 * report.mean_radio_accuracy();
        let coverage = report
            .mean_twin_coverage()
            .map_or("-".to_string(), |c| format!("{:.1}", 100.0 * c));
        let degraded = format!("{}/{}", report.degraded_intervals(), report.intervals.len());
        let summary = report.shards.as_ref().expect("sharded summary");
        let worst_avail = summary
            .demand
            .iter()
            .map(|r| r.availability)
            .fold(1.0f64, f64::min);
        println!(
            "{profile:>10} {acc:>14.1} {coverage:>13} {degraded:>10} {:>10} {:>10} {:>12.1}",
            summary.outages_total,
            summary.failover_handovers_total,
            100.0 * worst_avail,
        );
    }
    println!(
        "\n# expectation: bs-crash trades handover churn for continuity —\n\
         # failed-over users keep reporting, so coverage and accuracy hold\n\
         # near the clean run. bs-flap keeps users pinned behind a severed\n\
         # uplink: coverage dips while the degradation ladder (stale -> \n\
         # historical mean, widened margins) bounds the accuracy loss.\n\
         # Availability is per-shard down-time over scored intervals; the\n\
         # twin population is conserved in every mode."
    );
}

//! E15 (extension): incremental interval pipeline — warm-start K-means,
//! dirty-set encoding and the drift-gated DDQN versus the exact pipeline,
//! swept over per-interval churn.
//!
//! For each churn level the same seeded scenario runs twice (exact and
//! incremental) and the table reports the mean predictor wall per
//! interval, the K-means rounds the warm start saved, the fraction of
//! users re-encoded per interval, how many DDQN selections the drift
//! gate skipped, and the radio-accuracy delta between the two modes.
//! Accuracy loss is pinned below one percentage point: incremental mode
//! is a bounded approximation, not a different predictor.
//!
//! ```text
//! cargo run --release -p msvs-bench --bin exp_incremental
//! ```

use msvs_bench::{mean_std, paper_scenario};
use msvs_sim::{Simulation, SimulationReport};

/// Sums a counter across labels.
fn counter(r: &SimulationReport, name: &str) -> u64 {
    r.telemetry
        .counters
        .iter()
        .filter(|(n, _, _)| n == name)
        .map(|(_, _, v)| v)
        .sum()
}

struct ModeRun {
    acc: Vec<f64>,
    wall: Vec<f64>,
    rounds_saved: u64,
    dirty: u64,
    skipped_users: u64,
    gated: u64,
}

fn run_mode(churn: f64, incremental: bool, seeds: &[u64]) -> ModeRun {
    let mut out = ModeRun {
        acc: Vec::new(),
        wall: Vec::new(),
        rounds_saved: 0,
        dirty: 0,
        skipped_users: 0,
        gated: 0,
    };
    for &s in seeds {
        let cfg = msvs_sim::SimulationConfig {
            churn_rate: churn,
            incremental,
            ..paper_scenario(120, 10, s)
        };
        let r = Simulation::run(cfg).expect("simulation runs");
        out.acc.push(100.0 * r.mean_radio_accuracy());
        out.wall.push(r.mean_predict_wall_ms());
        out.rounds_saved += counter(&r, "kmeans_warm_rounds_saved");
        out.dirty += counter(&r, "encode_dirty_users");
        out.skipped_users += counter(&r, "encode_skipped_users");
        out.gated += counter(&r, "ddqn_selections_skipped_total");
    }
    out
}

fn main() {
    let seeds = [7u64, 42, 99];
    println!("# E15 — incremental interval pipeline vs exact, by churn");
    println!(
        "{:>8} {:>6} {:>18} {:>10} {:>8} {:>8} {:>6} {:>9}",
        "churn", "mode", "radio acc (%)", "wall ms", "saved", "dirty%", "gated", "acc delta"
    );
    for churn in [0.0, 0.05, 0.2] {
        let exact = run_mode(churn, false, &seeds);
        let fast = run_mode(churn, true, &seeds);
        let (ea, easd) = mean_std(&exact.acc);
        let (fa, fasd) = mean_std(&fast.acc);
        let (ew, _) = mean_std(&exact.wall);
        let (fw, _) = mean_std(&fast.wall);
        let delta = fa - ea;
        let encoded = fast.dirty + fast.skipped_users;
        let dirty_pct = if encoded > 0 {
            100.0 * fast.dirty as f64 / encoded as f64
        } else {
            100.0
        };
        println!(
            "{:>7.0}% {:>6} {ea:>13.1}±{easd:<4.1} {ew:>10.2} {:>8} {:>8} {:>6} {:>9}",
            100.0 * churn,
            "exact",
            exact.rounds_saved,
            "-",
            exact.gated,
            "-"
        );
        println!(
            "{:>7.0}% {:>6} {fa:>13.1}±{fasd:<4.1} {fw:>10.2} {:>8} {dirty_pct:>7.1}% {:>6} {delta:>+8.2}p",
            100.0 * churn,
            "incr",
            fast.rounds_saved,
            fast.gated
        );
        // The approximation must not *cost* accuracy; landing above the
        // exact pipeline (steadier groupings under churn) is fine.
        assert!(
            -delta < 1.0,
            "incremental accuracy fell {:.2}pp below exact at churn {churn}",
            -delta
        );
        assert!(
            fast.rounds_saved > 0,
            "warm start saved no K-means rounds at churn {churn}"
        );
        // The skip guarantee holds below the drift-dirty threshold (0.1);
        // above it the detector deliberately degrades to full refreshes
        // to bound staleness, so dirty% approaching 100 is by design.
        if churn > 0.0 && churn < 0.1 {
            assert!(
                fast.skipped_users > fast.dirty,
                "incremental mode must skip most re-encodes at churn {churn}"
            );
        }
    }
    println!(
        "\n# expectation: incremental mode loses <1pp radio accuracy at every\n\
         # churn level. Below the drift-dirty threshold it re-encodes only\n\
         # the churned fraction and skips DDQN re-selection on quiet\n\
         # intervals; above it the drift detector degrades to full refreshes\n\
         # (dirty% -> 100) so staleness stays bounded instead of compounding."
    );
}

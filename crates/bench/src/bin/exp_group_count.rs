//! E2 (extension): "accurate and timely" group construction — the DDQN's
//! chosen K, clustering quality, and decision latency vs the classical
//! group-count selectors, over growing populations.
//!
//! ```text
//! cargo run --release -p msvs-bench --bin exp_group_count
//! ```

use std::time::Instant;

use msvs_bench::archetype_features;
use msvs_core::{GroupingConfig, GroupingEngine, GroupingStrategy};
use msvs_rl::EpsilonSchedule;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("# E2 — group-count selection: quality and decision latency");
    println!(
        "{:>7} {:<17} {:>4} {:>12} {:>13}",
        "users", "strategy", "K", "silhouette", "decide (ms)"
    );
    for &(k_true, per) in &[(4usize, 15usize), (5, 40), (6, 67)] {
        let features = archetype_features(k_true, per, 0.4, 3);
        let n = features.len();
        // Train the DDQN once per population.
        let mut ddqn = GroupingEngine::new(GroupingConfig {
            k_min: 2,
            k_max: 10,
            epsilon: EpsilonSchedule::linear(1.0, 0.02, 300)?,
            seed: 5,
            ..Default::default()
        })?;
        ddqn.pretrain(std::slice::from_ref(&features), 350)?;

        for (name, strategy) in [
            ("DDQN (scheme)", None),
            ("silhouette scan", Some(GroupingStrategy::SilhouetteScan)),
            ("elbow", Some(GroupingStrategy::Elbow)),
            ("random K", Some(GroupingStrategy::RandomK)),
        ] {
            let mut engine = match strategy {
                None => {
                    std::mem::replace(&mut ddqn, GroupingEngine::new(GroupingConfig::default())?)
                }
                Some(s) => GroupingEngine::new(GroupingConfig {
                    k_min: 2,
                    k_max: 10,
                    strategy: s,
                    seed: 5,
                    ..Default::default()
                })?,
            };
            // Median of 5 timed constructions.
            let mut times = Vec::new();
            let mut last = None;
            for _ in 0..5 {
                let t0 = Instant::now();
                last = Some(engine.construct(&features)?);
                times.push(t0.elapsed().as_secs_f64() * 1000.0);
            }
            times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
            let g = last.expect("constructed");
            println!(
                "{n:>7} {name:<17} {:>4} {:>12.3} {:>13.2}",
                g.k, g.silhouette, times[2]
            );
            if strategy.is_none() {
                ddqn = engine; // put the trained agent back
            }
        }
        println!();
    }
    println!(
        "# expectation: DDQN tracks the scan's silhouette at near-elbow\n\
         # latency; the gap widens with population size (the scan re-runs\n\
         # K-means plus an O(n^2) silhouette for every candidate K)."
    );
    Ok(())
}

//! E13 (extension): multi-BS sharded deployment — per-BS demand
//! attribution, handover volume, and load imbalance as the pipeline is
//! partitioned across 1/2/4/8 base-station shards.
//!
//! Successor to E8's accounting comparison: the shard plane attributes
//! the predicted reservation to the shard that owns each user's twin, so
//! the tables below are the per-BS view an operator provisions from.
//! Seeded reports are bit-identical at any shard count (see
//! `tests/shard_determinism.rs`); only the attribution and the handover
//! counters change.
//!
//! ```text
//! cargo run --release -p msvs-bench --bin exp_shards
//! ```

use msvs_bench::paper_scenario;
use msvs_sim::{MobilityMix, Simulation, SimulationConfig};

fn main() {
    println!("# E13 — sharded deployment: per-BS demand attribution");
    println!(
        "{:>7} {:>14} {:>11} {:>10} {:>15}",
        "shards", "radio acc (%)", "handovers", "emb drops", "peak imbalance"
    );
    let mut tables = String::new();
    for shards in [1usize, 2, 4, 8] {
        let cfg = SimulationConfig {
            n_bs: 8,
            shards,
            mobility: MobilityMix::all_waypoint(),
            ..paper_scenario(120, 10, 42)
        };
        let report = Simulation::run(cfg).expect("simulation runs");
        let acc = 100.0 * report.mean_radio_accuracy();
        match &report.shards {
            Some(s) => {
                println!(
                    "{shards:>7} {acc:>14.1} {:>11} {:>10} {:>15.2}",
                    s.handovers_total, s.embeddings_dropped_total, s.peak_imbalance
                );
                tables.push_str(&format!(
                    "\n# per-BS demand, {shards} shards (summed over scored intervals)\n"
                ));
                tables.push_str(&format!(
                    "{:>7} {:>7} {:>14} {:>18} {:>11} {:>11}\n",
                    "shard", "users", "radio (RB)", "computing (Gcyc)", "cache hits", "misses"
                ));
                for row in &s.demand {
                    tables.push_str(&format!(
                        "{:>7} {:>7} {:>14.1} {:>18.2} {:>11} {:>11}\n",
                        row.shard,
                        row.users,
                        row.radio,
                        row.computing / 1e9,
                        row.video_cache_hits,
                        row.video_cache_misses,
                    ));
                }
            }
            None => println!(
                "{shards:>7} {acc:>14.1} {:>11} {:>10} {:>15}",
                "-", "-", "legacy path"
            ),
        }
    }
    print!("{tables}");
    println!(
        "\n# expectation: accuracy is identical at every shard count (the\n\
         # report is bit-identical; only attribution changes). Handover\n\
         # volume grows with the shard count as waypoint mobility crosses\n\
         # more cell boundaries, and the per-shard rows always sum to the\n\
         # global reservation."
    );
}

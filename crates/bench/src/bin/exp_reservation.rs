//! E6 (extension, the paper's future work): resource reservation from the
//! predicted demand — coverage vs idle capacity across headrooms, for the
//! DT scheme and the historical-mean baseline.
//!
//! ```text
//! cargo run --release -p msvs-bench --bin exp_reservation
//! ```

use msvs_bench::paper_scenario;
use msvs_core::ReservationPolicy;
use msvs_sim::{DemandPredictorKind, Simulation};

fn row(kind: DemandPredictorKind, headroom: f64, seed: u64) -> (f64, f64) {
    let cfg = msvs_sim::SimulationConfig {
        predictor: kind,
        reservation: Some(ReservationPolicy {
            headroom,
            ..Default::default()
        }),
        ..paper_scenario(120, 10, seed)
    };
    let r = Simulation::run(cfg).expect("simulation runs");
    (
        r.reservation_coverage().expect("policy configured"),
        r.reservation_idle().unwrap_or(0.0),
    )
}

fn main() {
    println!("# E6 — reservation from predicted demand (coverage / idle %)");
    println!(
        "{:>9} {:>22} {:>22}",
        "headroom", "DT scheme", "historical mean"
    );
    for headroom in [0.0, 0.05, 0.10, 0.20, 0.35] {
        let (sc, si) = row(DemandPredictorKind::Scheme, headroom, 42);
        let (hc, hi) = row(
            DemandPredictorKind::HistoricalMean { alpha: 0.3 },
            headroom,
            42,
        );
        println!(
            "{:>8.0}% {:>12.0}% /{:>5.1}% {:>12.0}% /{:>5.1}%",
            100.0 * headroom,
            100.0 * sc,
            100.0 * si,
            100.0 * hc,
            100.0 * hi,
        );
    }
    println!(
        "\n# expectation: the scheme needs a much smaller headroom to reach\n\
         # full coverage (its errors are small and symmetric), so it wastes\n\
         # less reserved-but-idle capacity than the EWMA baseline at the\n\
         # same coverage target."
    );
}

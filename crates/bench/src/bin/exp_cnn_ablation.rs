//! E5 (extension): 1D-CNN compression ablation — clustering quality and
//! group-construction latency with CNN embeddings vs raw flattened twin
//! windows.
//!
//! ```text
//! cargo run --release -p msvs-bench --bin exp_cnn_ablation
//! ```

use std::time::Instant;

use msvs_cluster::{silhouette, KMeans, KMeansConfig};
use msvs_core::{CnnCompressor, CompressorConfig};
use msvs_types::{Position, SimDuration, SimTime, UserId, VideoCategory, VideoId};
use msvs_udt::{FeatureWindow, UserDigitalTwin, WatchRecord};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds twins for `n` users drawn from 4 behavioural archetypes and
/// returns their feature windows plus ground-truth archetype labels.
fn twin_windows(n: usize, window: usize, seed: u64) -> (Vec<FeatureWindow>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let archetypes = [
        (22.0, 450.0, 520.0, 28.0, VideoCategory::News),
        (15.0, 950.0, 300.0, 12.0, VideoCategory::Sports),
        (7.0, 250.0, 750.0, 5.0, VideoCategory::Game),
        (18.0, 700.0, 650.0, 20.0, VideoCategory::Music),
    ];
    let mut windows = Vec::new();
    let mut labels = Vec::new();
    for u in 0..n {
        let a = u % archetypes.len();
        let (snr, x, y, watch_mean, fav) = archetypes[a];
        let mut twin = UserDigitalTwin::new(UserId(u as u32));
        for step in 0..(window as u64 + 8) {
            let t = SimTime::from_secs(step * 5);
            twin.update_channel(t, snr + rng.gen::<f64>() * 3.0);
            twin.update_location(
                t,
                Position::new(x + rng.gen::<f64>() * 50.0, y + rng.gen::<f64>() * 50.0),
            );
            twin.record_watch(
                t,
                WatchRecord {
                    video: VideoId((step % 40) as u32),
                    category: if step % 2 == 0 {
                        fav
                    } else {
                        VideoCategory::Comedy
                    },
                    level: msvs_types::RepresentationLevel::P720,
                    watched: SimDuration::from_secs_f64(
                        msvs_types::stats::exponential(&mut rng, 1.0 / watch_mean).min(59.0),
                    ),
                    video_duration: SimDuration::from_secs(60),
                    completed: false,
                },
            );
        }
        twin.refresh_preference_from_watches(SimTime::from_secs(300), 0.6);
        windows.push(twin.feature_window(window, 1200.0, 1000.0));
        labels.push(a);
    }
    (windows, labels)
}

/// Cluster purity against ground-truth archetypes: fraction of same-label
/// pairs that were co-clustered, averaged with cross-label separation.
fn pair_agreement(assignments: &[usize], labels: &[usize]) -> f64 {
    let n = assignments.len();
    let mut agree = 0usize;
    let mut total = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            total += 1;
            let same_cluster = assignments[i] == assignments[j];
            let same_label = labels[i] == labels[j];
            if same_cluster == same_label {
                agree += 1;
            }
        }
    }
    agree as f64 / total as f64
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const WINDOW: usize = 32;
    const K: usize = 4;
    println!("# E5 — 1D-CNN compression ablation (200 users, window {WINDOW})");
    let (windows, labels) = twin_windows(200, WINDOW, 9);

    // CNN path: train autoencoder, encode, cluster.
    let mut comp = CnnCompressor::new(CompressorConfig {
        window: WINDOW,
        ..Default::default()
    })?;
    let t0 = Instant::now();
    comp.train(&windows)?;
    let train_ms = t0.elapsed().as_secs_f64() * 1000.0;
    let t0 = Instant::now();
    let cnn_features = comp.encode(&windows)?;
    let encode_ms = t0.elapsed().as_secs_f64() * 1000.0;

    // Raw path: flatten windows directly.
    let raw_features: Vec<Vec<f64>> = windows
        .iter()
        .map(|w| w.flatten().iter().map(|&v| v as f64).collect())
        .collect();

    println!(
        "{:<16} {:>6} {:>12} {:>12} {:>14}",
        "features", "dims", "silhouette", "purity", "cluster (ms)"
    );
    for (name, feats) in [
        ("CNN embedding", &cnn_features),
        ("raw window", &raw_features),
    ] {
        let t0 = Instant::now();
        let fit = KMeans::new(KMeansConfig {
            k: K,
            seed: 2,
            ..Default::default()
        })
        .fit(feats)?;
        let ms = t0.elapsed().as_secs_f64() * 1000.0;
        let sil = silhouette(feats, &fit.assignments);
        let purity = pair_agreement(&fit.assignments, &labels);
        println!(
            "{name:<16} {:>6} {sil:>12.3} {purity:>12.3} {ms:>14.2}",
            feats[0].len()
        );
    }
    println!("\n# CNN one-off training {train_ms:.0} ms, per-interval encode {encode_ms:.1} ms");
    println!(
        "# expectation: the embedding clusters at least as cleanly in ~{}x\n\
         # fewer dimensions, cutting the per-interval K-means cost.",
        (WINDOW * 4 + 8) / 16
    );
    Ok(())
}

//! E10 (extension): quantifying the paper's over-provisioning story —
//! prefetched-but-unplayed traffic vs the prefetch horizon, and how well
//! the swiping abstraction predicts that waste.
//!
//! "Users' swiping behaviors can lead to resource over-provisioning if
//! precached segments are not played." Here we sweep the prefetch horizon
//! and measure exactly that waste, alongside the scheme's prediction of
//! it.
//!
//! ```text
//! cargo run --release -p msvs-bench --bin exp_prefetch_waste
//! ```

use msvs_bench::paper_scenario;
use msvs_core::demand::prediction_accuracy;
use msvs_sim::Simulation;

fn main() {
    println!("# E10 — prefetch waste vs horizon (120 users, seed 42)");
    println!(
        "{:>12} {:>12} {:>14} {:>14} {:>12}",
        "prefetch (s)", "waste %", "pred (Mb)", "actual (Mb)", "waste acc"
    );
    for prefetch in [0.0, 1.0, 3.0, 5.0, 10.0] {
        let mut cfg = paper_scenario(120, 10, 42);
        cfg.scheme.demand.prefetch_secs = prefetch;
        let r = Simulation::run(cfg).expect("simulation runs");
        let pred: f64 = r.intervals.iter().map(|i| i.predicted_waste_mb).sum();
        let actual: f64 = r.intervals.iter().map(|i| i.actual_waste_mb).sum();
        println!(
            "{prefetch:>12.0} {:>11.1}% {:>14.0} {:>14.0} {:>11.1}%",
            100.0 * r.waste_fraction(),
            pred,
            actual,
            100.0 * prediction_accuracy(pred, actual)
        );
    }
    println!(
        "\n# expectation: waste grows with the prefetch horizon (more\n\
         # precached segments die unplayed when the group swipes), and the\n\
         # swiping abstraction predicts the wasted volume closely — the\n\
         # quantification the paper's introduction calls for."
    );
}

//! E4 (extension): the value of the digital twin — prediction accuracy vs
//! UDT collection frequency, against the signalling cost the collection
//! incurs.
//!
//! Scaling every per-attribute period by `f` makes twins `f`× staler;
//! the experiment shows the accuracy/signalling trade-off the paper's
//! per-attribute-frequency design is about.
//!
//! ```text
//! cargo run --release -p msvs-bench --bin exp_sync_frequency
//! ```

use msvs_bench::{mean_std, paper_scenario};
use msvs_sim::Simulation;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("# E4 — accuracy vs UDT collection frequency");
    println!(
        "{:>12} {:>18} {:>20}",
        "period x", "radio acc (%)", "updates/interval"
    );
    for factor in [1.0, 2.0, 4.0, 8.0, 16.0, 48.0] {
        let seeds = [7u64, 42];
        let mut accs = Vec::new();
        let mut upd = 0.0;
        for &s in &seeds {
            let mut cfg = paper_scenario(120, 10, s);
            cfg.collection = cfg.collection.scaled(factor);
            let r = Simulation::run(cfg)?;
            accs.push(100.0 * r.mean_radio_accuracy());
            upd = r.mean_updates_sent();
        }
        let (m, sd) = mean_std(&accs);
        println!("{factor:>12.0} {m:>13.1}±{sd:<4.1} {upd:>20.0}");
    }
    println!(
        "\n# expectation: accuracy degrades as twins go stale (channel and\n\
         # preference drift unseen), while signalling cost falls — the knee\n\
         # justifies frequent channel collection with slower preference sync."
    );
    Ok(())
}

//! E7 (extension): robustness to user churn — prediction accuracy and
//! grouping quality while a fraction of the population is replaced with
//! cold-started twins every interval.
//!
//! ```text
//! cargo run --release -p msvs-bench --bin exp_churn
//! ```

use msvs_bench::{mean_std, paper_scenario};
use msvs_sim::Simulation;

fn main() {
    println!("# E7 — robustness to per-interval user churn");
    println!(
        "{:>8} {:>18} {:>14} {:>12} {:>12}",
        "churn", "radio acc (%)", "silhouette", "stability", "mean K"
    );
    for churn in [0.0, 0.05, 0.1, 0.2, 0.4] {
        let seeds = [7u64, 42, 99];
        let mut accs = Vec::new();
        let mut sil = Vec::new();
        let mut stab = Vec::new();
        let mut k = Vec::new();
        for &s in &seeds {
            let cfg = msvs_sim::SimulationConfig {
                churn_rate: churn,
                ..paper_scenario(120, 10, s)
            };
            let r = Simulation::run(cfg).expect("simulation runs");
            accs.push(100.0 * r.mean_radio_accuracy());
            sil.push(r.mean_silhouette());
            stab.push(r.mean_grouping_stability().unwrap_or(0.0));
            k.push(r.mean_k());
        }
        let (am, asd) = mean_std(&accs);
        let (sm, _) = mean_std(&sil);
        let (tm, _) = mean_std(&stab);
        let (km, _) = mean_std(&k);
        println!(
            "{:>7.0}% {am:>13.1}±{asd:<4.1} {sm:>14.3} {tm:>12.3} {km:>12.1}",
            100.0 * churn
        );
    }
    println!(
        "\n# expectation: accuracy is resilient to moderate churn (cold twins\n\
         # fall back to calibrated priors) while grouping quality (silhouette)\n\
         # erodes first — cold twins have no history to separate on."
    );
}

//! E1 (extension): radio-demand prediction accuracy of the DT scheme vs
//! baseline predictors, swept over population size.
//!
//! Baselines: the scheme without the swiping abstraction (every video
//! presumed fully transmitted) and a twin-free EWMA over past actual
//! demands. Unicast cost is reported as context for the multicast saving.
//!
//! ```text
//! cargo run --release -p msvs-bench --bin exp_baselines
//! ```

use msvs_bench::{mean_std, paper_scenario};
use msvs_sim::{DemandPredictorKind, Simulation};

fn accuracy(kind: DemandPredictorKind, n_users: usize, seeds: &[u64]) -> (f64, f64) {
    let accs: Vec<f64> = seeds
        .iter()
        .map(|&s| {
            let cfg = msvs_sim::SimulationConfig {
                predictor: kind,
                ..paper_scenario(n_users, 10, s)
            };
            100.0
                * Simulation::run(cfg)
                    .expect("simulation runs")
                    .mean_radio_accuracy()
        })
        .collect();
    mean_std(&accs)
}

fn main() {
    let seeds = [7u64, 19, 42];
    println!("# E1 — radio-demand prediction accuracy (%) vs baselines");
    println!(
        "{:>8} {:>18} {:>22} {:>18}",
        "users", "DT scheme", "no swiping abstr.", "historical mean"
    );
    for n_users in [40, 80, 120, 200] {
        let (s_m, s_sd) = accuracy(DemandPredictorKind::Scheme, n_users, &seeds);
        let (n_m, n_sd) = accuracy(DemandPredictorKind::NaiveFullWatch, n_users, &seeds);
        let (h_m, h_sd) = accuracy(
            DemandPredictorKind::HistoricalMean { alpha: 0.3 },
            n_users,
            &seeds,
        );
        println!(
            "{n_users:>8} {s_m:>11.1}±{s_sd:<5.1} {n_m:>15.1}±{n_sd:<5.1} {h_m:>11.1}±{h_sd:<5.1}"
        );
    }
    println!(
        "\n# expectation: DT scheme highest; dropping the swiping abstraction\n\
         # overshoots demand badly (precached-but-unplayed segments); the\n\
         # EWMA lags population and channel drift."
    );
}

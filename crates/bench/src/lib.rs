//! Shared fixtures for the experiment harnesses and criterion benches.
//!
//! Each binary in `src/bin/` regenerates one figure or table (see
//! DESIGN.md's experiment index); the helpers here keep their scenario
//! construction identical so results are comparable across experiments.

use msvs_sim::SimulationConfig;

/// The paper's evaluation scenario: Waterloo campus, 5-minute reservation
/// intervals, 120 users unless overridden.
pub fn paper_scenario(n_users: usize, n_intervals: usize, seed: u64) -> SimulationConfig {
    SimulationConfig {
        n_users,
        n_intervals,
        warmup_intervals: 2,
        seed,
        ..Default::default()
    }
}

/// Synthetic user-embedding population with `k_true` latent archetypes,
/// used by the grouping experiments and benches.
pub fn archetype_features(
    k_true: usize,
    per_archetype: usize,
    spread: f64,
    seed: u64,
) -> Vec<Vec<f64>> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for c in 0..k_true {
        let center: Vec<f64> = (0..12)
            .map(|d| (((c * 13 + d * 7) % 11) as f64) * 1.5)
            .collect();
        for _ in 0..per_archetype {
            out.push(
                center
                    .iter()
                    .map(|&x| x + msvs_types::stats::normal(&mut rng, 0.0, spread))
                    .collect(),
            );
        }
    }
    out
}

/// Mean of per-seed results with its sample standard deviation.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    (msvs_types::stats::mean(xs), msvs_types::stats::std_dev(xs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scenario_is_valid() {
        paper_scenario(40, 3, 1).validate().unwrap();
    }

    #[test]
    fn archetype_features_shape() {
        let f = archetype_features(3, 10, 0.3, 1);
        assert_eq!(f.len(), 30);
        assert!(f.iter().all(|v| v.len() == 12));
    }

    #[test]
    fn mean_std_sane() {
        let (m, s) = mean_std(&[1.0, 1.0, 1.0]);
        assert_eq!(m, 1.0);
        assert_eq!(s, 0.0);
    }
}

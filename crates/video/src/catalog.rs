//! Video catalog generation.

use msvs_types::stats::Zipf;
use msvs_types::{
    Error, Mbps, Representation, RepresentationLevel, Result, SimDuration, VideoCategory, VideoId,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::behavior::UserProfile;

/// Parameters for catalog generation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CatalogConfig {
    /// Number of videos.
    pub n_videos: usize,
    /// Zipf popularity exponent (≈0.8–1.2 for video platforms).
    pub zipf_exponent: f64,
    /// Minimum video duration, seconds.
    pub min_duration_secs: f64,
    /// Maximum video duration, seconds.
    pub max_duration_secs: f64,
    /// Relative std-dev of per-video bitrate jitter around the nominal
    /// ladder (content complexity varies).
    pub bitrate_jitter: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CatalogConfig {
    fn default() -> Self {
        Self {
            n_videos: 500,
            zipf_exponent: 1.0,
            min_duration_secs: 10.0,
            max_duration_secs: 60.0,
            bitrate_jitter: 0.15,
            seed: 0,
        }
    }
}

/// One short video: category, duration, popularity rank, bitrate ladder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Video {
    /// Stable identifier (index into the catalog).
    pub id: VideoId,
    /// Content category.
    pub category: VideoCategory,
    /// Playback length.
    pub duration: SimDuration,
    /// Popularity rank (0 = most popular).
    pub rank: usize,
    /// Available representations, lowest to highest quality.
    pub ladder: Vec<Representation>,
}

impl Video {
    /// The highest available representation level.
    pub fn top_level(&self) -> RepresentationLevel {
        self.ladder.last().expect("ladder is non-empty").level
    }

    /// The representation at `level`, if the video has it.
    pub fn representation(&self, level: RepresentationLevel) -> Option<Representation> {
        self.ladder.iter().copied().find(|r| r.level == level)
    }

    /// The best representation whose bitrate does not exceed `budget`,
    /// falling back to the lowest one.
    pub fn best_under(&self, budget: Mbps) -> Representation {
        self.ladder
            .iter()
            .rev()
            .copied()
            .find(|r| r.bitrate.value() <= budget.value())
            .unwrap_or(self.ladder[0])
    }
}

/// One externally-supplied catalog entry (see [`Catalog::from_rows`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CatalogRow {
    /// Content category.
    pub category: VideoCategory,
    /// Playback length, seconds.
    pub duration_secs: f64,
    /// Bitrate-ladder scale factor (1.0 = nominal ladder).
    pub complexity: f64,
}

/// An immutable, popularity-weighted collection of [`Video`]s.
#[derive(Debug, Clone)]
pub struct Catalog {
    videos: Vec<Video>,
    popularity: Zipf,
    by_category: Vec<Vec<usize>>,
}

impl Catalog {
    /// Generates a catalog.
    ///
    /// Category is assigned independently of rank; duration is uniform in
    /// the configured range; each video carries the full 5-level ladder
    /// with jittered bitrates.
    ///
    /// # Errors
    /// Returns `InvalidConfig` for a zero-size catalog, a non-positive
    /// duration range, or negative jitter.
    pub fn generate(config: CatalogConfig) -> Result<Self> {
        if config.n_videos == 0 {
            return Err(Error::invalid_config("n_videos", "must be positive"));
        }
        if !(config.min_duration_secs > 0.0 && config.max_duration_secs >= config.min_duration_secs)
        {
            return Err(Error::invalid_config(
                "duration range",
                "need 0 < min <= max",
            ));
        }
        if config.bitrate_jitter < 0.0 {
            return Err(Error::invalid_config("bitrate_jitter", "must be >= 0"));
        }
        let popularity = Zipf::new(config.n_videos, config.zipf_exponent)?;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut videos = Vec::with_capacity(config.n_videos);
        let mut by_category = vec![Vec::new(); VideoCategory::COUNT];
        for rank in 0..config.n_videos {
            let category = VideoCategory::ALL[rng.gen_range(0..VideoCategory::COUNT)];
            let dur = rng.gen_range(config.min_duration_secs..=config.max_duration_secs);
            // A single complexity factor per video scales the whole ladder:
            // busy content (sports) costs more bits at every level.
            let complexity = (1.0
                + msvs_types::stats::normal(&mut rng, 0.0, config.bitrate_jitter))
            .clamp(0.5, 2.0);
            let ladder = RepresentationLevel::ALL
                .iter()
                .map(|&level| Representation {
                    level,
                    bitrate: Mbps(level.nominal_bitrate().value() * complexity),
                })
                .collect();
            by_category[category.index()].push(rank);
            videos.push(Video {
                id: VideoId(rank as u32),
                category,
                duration: SimDuration::from_secs_f64(dur),
                rank,
                ladder,
            });
        }
        Ok(Self {
            videos,
            popularity,
            by_category,
        })
    }

    /// Builds a catalog from explicit rows (e.g. exported from the real
    /// short-video-streaming-challenge dataset), ordered by popularity
    /// rank (first row = most popular).
    ///
    /// Each row's `complexity` scales the whole bitrate ladder, exactly as
    /// in [`Catalog::generate`].
    ///
    /// # Errors
    /// Returns `InvalidConfig` for an empty row set, a non-positive
    /// duration or complexity, or a bad Zipf exponent.
    pub fn from_rows(rows: &[CatalogRow], zipf_exponent: f64) -> Result<Self> {
        if rows.is_empty() {
            return Err(Error::invalid_config("rows", "need at least one video"));
        }
        let popularity = Zipf::new(rows.len(), zipf_exponent)?;
        let mut videos = Vec::with_capacity(rows.len());
        let mut by_category = vec![Vec::new(); VideoCategory::COUNT];
        for (rank, row) in rows.iter().enumerate() {
            if !(row.duration_secs > 0.0 && row.duration_secs.is_finite()) {
                return Err(Error::invalid_config(
                    "duration_secs",
                    format!("row {rank}: must be positive and finite"),
                ));
            }
            if !(row.complexity > 0.0 && row.complexity.is_finite()) {
                return Err(Error::invalid_config(
                    "complexity",
                    format!("row {rank}: must be positive and finite"),
                ));
            }
            let ladder = RepresentationLevel::ALL
                .iter()
                .map(|&level| Representation {
                    level,
                    bitrate: Mbps(level.nominal_bitrate().value() * row.complexity),
                })
                .collect();
            by_category[row.category.index()].push(rank);
            videos.push(Video {
                id: VideoId(rank as u32),
                category: row.category,
                duration: SimDuration::from_secs_f64(row.duration_secs),
                rank,
                ladder,
            });
        }
        Ok(Self {
            videos,
            popularity,
            by_category,
        })
    }

    /// Parses a catalog from CSV text with `category,duration_secs,
    /// complexity` rows (header optional, `#` comments ignored), ordered
    /// by popularity.
    ///
    /// # Errors
    /// Returns `InvalidConfig` for unparseable rows or unknown categories.
    pub fn from_csv(csv: &str, zipf_exponent: f64) -> Result<Self> {
        let mut rows = Vec::new();
        for (lineno, line) in csv.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split(',').map(str::trim).collect();
            if fields.len() != 3 {
                return Err(Error::invalid_config(
                    "csv",
                    format!(
                        "line {}: expected 3 fields, got {}",
                        lineno + 1,
                        fields.len()
                    ),
                ));
            }
            // Skip a header row.
            if lineno == 0 && fields[1].parse::<f64>().is_err() {
                continue;
            }
            let category = VideoCategory::ALL
                .iter()
                .copied()
                .find(|c| c.name().eq_ignore_ascii_case(fields[0]))
                .ok_or_else(|| {
                    Error::invalid_config(
                        "csv",
                        format!("line {}: unknown category `{}`", lineno + 1, fields[0]),
                    )
                })?;
            let parse = |s: &str, what: &str| -> Result<f64> {
                s.parse().map_err(|_| {
                    Error::invalid_config("csv", format!("line {}: bad {what} `{s}`", lineno + 1))
                })
            };
            rows.push(CatalogRow {
                category,
                duration_secs: parse(fields[1], "duration")?,
                complexity: parse(fields[2], "complexity")?,
            });
        }
        Self::from_rows(&rows, zipf_exponent)
    }

    /// Number of videos.
    pub fn len(&self) -> usize {
        self.videos.len()
    }

    /// Always false: generation rejects empty catalogs.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// All videos in rank order.
    pub fn videos(&self) -> &[Video] {
        &self.videos
    }

    /// Looks up a video by id.
    ///
    /// # Errors
    /// Returns [`Error::NotFound`] for an unknown id.
    pub fn get(&self, id: VideoId) -> Result<&Video> {
        self.videos
            .get(id.index())
            .ok_or_else(|| Error::not_found("video", id))
    }

    /// Popularity mass of a video (Zipf pmf of its rank).
    pub fn popularity(&self, id: VideoId) -> f64 {
        self.popularity.pmf(id.index())
    }

    /// Samples a video by global popularity.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> &Video {
        &self.videos[self.popularity.sample(rng)]
    }

    /// Samples a video for a user: the platform recommender mixes the
    /// user's category preference (exploit) with global popularity
    /// (explore), then picks a popular video within the chosen category.
    pub fn sample_for<R: Rng + ?Sized>(&self, profile: &UserProfile, rng: &mut R) -> &Video {
        const EXPLOIT: f64 = 0.75;
        if rng.gen::<f64>() < EXPLOIT {
            if let Some(cat_idx) = msvs_types::stats::weighted_index(rng, profile.preferences()) {
                let members = &self.by_category[cat_idx];
                if !members.is_empty() {
                    // Within a category, rank-weight by inverse rank.
                    let weights: Vec<f64> =
                        members.iter().map(|&r| 1.0 / (1.0 + r as f64)).collect();
                    let pick = msvs_types::stats::weighted_index(rng, &weights)
                        .expect("weights are positive");
                    return &self.videos[members[pick]];
                }
            }
        }
        self.sample(rng)
    }

    /// The `n` most popular videos (rank order).
    pub fn top_videos(&self, n: usize) -> &[Video] {
        &self.videos[..n.min(self.videos.len())]
    }

    /// Ranks (catalog indices) of all videos in a category.
    pub fn category_members(&self, category: VideoCategory) -> &[usize] {
        &self.by_category[category.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Catalog {
        Catalog::generate(CatalogConfig {
            n_videos: 400,
            seed: 5,
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn generation_is_deterministic() {
        let a = catalog();
        let b = catalog();
        assert_eq!(a.videos(), b.videos());
    }

    #[test]
    fn durations_in_range_and_ladders_complete() {
        let c = catalog();
        for v in c.videos() {
            let d = v.duration.as_secs_f64();
            assert!((10.0..=60.0).contains(&d), "duration {d}");
            assert_eq!(v.ladder.len(), 5);
            let rates: Vec<f64> = v.ladder.iter().map(|r| r.bitrate.value()).collect();
            assert!(rates.windows(2).all(|w| w[0] < w[1]), "ladder monotone");
        }
    }

    #[test]
    fn categories_are_all_represented() {
        let c = catalog();
        for cat in VideoCategory::ALL {
            assert!(
                !c.category_members(cat).is_empty(),
                "{cat} missing from a 400-video catalog"
            );
        }
    }

    #[test]
    fn popularity_sampling_favours_low_ranks() {
        let c = catalog();
        let mut rng = StdRng::seed_from_u64(1);
        let mut head = 0;
        let n = 10_000;
        for _ in 0..n {
            if c.sample(&mut rng).rank < 40 {
                head += 1;
            }
        }
        // Top 10% of a Zipf(1.0) catalog carries far more than 10% of mass.
        assert!(
            head as f64 / n as f64 > 0.3,
            "head share {}",
            head as f64 / n as f64
        );
    }

    #[test]
    fn sample_for_respects_preferences() {
        let c = catalog();
        let mut rng = StdRng::seed_from_u64(2);
        // A user who only cares about News.
        let mut prefs = [0.01; VideoCategory::COUNT];
        prefs[VideoCategory::News.index()] = 1.0;
        let total: f64 = prefs.iter().sum();
        let prefs: Vec<f64> = prefs.iter().map(|p| p / total).collect();
        let profile = UserProfile::from_preferences(msvs_types::UserId(0), prefs, 1.0).unwrap();
        let news = (0..2000)
            .filter(|_| c.sample_for(&profile, &mut rng).category == VideoCategory::News)
            .count();
        assert!(news > 1200, "news share too low: {news}/2000");
    }

    #[test]
    fn best_under_budget() {
        let c = catalog();
        let v = &c.videos()[0];
        let top = v.ladder.last().unwrap();
        assert_eq!(v.best_under(Mbps(1e9)).level, top.level);
        assert_eq!(v.best_under(Mbps(0.0)).level, v.ladder[0].level);
    }

    #[test]
    fn get_unknown_video_errors() {
        let c = catalog();
        assert!(c.get(VideoId(9999)).is_err());
        assert!(c.get(VideoId(0)).is_ok());
    }

    #[test]
    fn rejects_bad_config() {
        assert!(Catalog::generate(CatalogConfig {
            n_videos: 0,
            ..Default::default()
        })
        .is_err());
        assert!(Catalog::generate(CatalogConfig {
            min_duration_secs: 30.0,
            max_duration_secs: 10.0,
            ..Default::default()
        })
        .is_err());
        assert!(Catalog::generate(CatalogConfig {
            bitrate_jitter: -0.1,
            ..Default::default()
        })
        .is_err());
    }
}

#[cfg(test)]
mod from_rows_tests {
    use super::*;

    #[test]
    fn from_rows_builds_ordered_catalog() {
        let rows = vec![
            CatalogRow {
                category: VideoCategory::News,
                duration_secs: 30.0,
                complexity: 1.2,
            },
            CatalogRow {
                category: VideoCategory::Game,
                duration_secs: 45.0,
                complexity: 0.8,
            },
        ];
        let c = Catalog::from_rows(&rows, 1.0).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.videos()[0].category, VideoCategory::News);
        assert_eq!(c.videos()[0].rank, 0);
        assert!(c.popularity(VideoId(0)) > c.popularity(VideoId(1)));
        // Ladder scaled by complexity.
        let top = c.videos()[0]
            .representation(RepresentationLevel::P1080)
            .unwrap();
        assert!((top.bitrate.value() - 4.5 * 1.2).abs() < 1e-9);
    }

    #[test]
    fn from_rows_validates() {
        assert!(Catalog::from_rows(&[], 1.0).is_err());
        let bad = CatalogRow {
            category: VideoCategory::News,
            duration_secs: 0.0,
            complexity: 1.0,
        };
        assert!(Catalog::from_rows(&[bad], 1.0).is_err());
        let bad = CatalogRow {
            category: VideoCategory::News,
            duration_secs: 10.0,
            complexity: -1.0,
        };
        assert!(Catalog::from_rows(&[bad], 1.0).is_err());
    }

    #[test]
    fn from_csv_parses_with_header_and_comments() {
        let csv = "category,duration_secs,complexity\n\
                   # most popular first\n\
                   News, 30.5, 1.1\n\
                   \n\
                   game,12.0,0.9\n";
        let c = Catalog::from_csv(csv, 0.8).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.videos()[1].category, VideoCategory::Game);
        assert!((c.videos()[0].duration.as_secs_f64() - 30.5).abs() < 1e-3);
    }

    #[test]
    fn from_csv_rejects_garbage() {
        assert!(Catalog::from_csv("News,abc,1.0\n", 1.0).is_err());
        assert!(Catalog::from_csv("Cooking,10,1.0\n", 1.0).is_err());
        assert!(Catalog::from_csv("News,10\n", 1.0).is_err());
        assert!(Catalog::from_csv("", 1.0).is_err());
    }

    #[test]
    fn trace_catalog_feeds_the_feed_simulator() {
        use crate::behavior::UserProfile;
        use crate::session::{simulate_feed, FeedConfig};
        use rand::{rngs::StdRng, SeedableRng};

        let rows: Vec<CatalogRow> = (0..40)
            .map(|i| CatalogRow {
                category: VideoCategory::ALL[i % VideoCategory::COUNT],
                duration_secs: 10.0 + i as f64,
                complexity: 1.0,
            })
            .collect();
        let catalog = Catalog::from_rows(&rows, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let profile = UserProfile::generate(msvs_types::UserId(0), 0.4, &mut rng);
        let sessions = simulate_feed(
            &profile,
            &catalog,
            &FeedConfig::default(),
            msvs_types::SimTime::ZERO,
            msvs_types::SimTime::from_mins(2),
            |v| v.top_level(),
            &mut rng,
        );
        assert!(!sessions.is_empty());
    }
}

//! Feed simulation: a user swiping through short videos over an interval.

use msvs_types::{Representation, SimDuration, SimTime, UserId, VideoCategory, VideoId};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::behavior::{EngagementModel, UserProfile};
use crate::catalog::Catalog;

/// One video view: who watched what, for how long, at which quality.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WatchSession {
    /// The viewer.
    pub user: UserId,
    /// The video.
    pub video: VideoId,
    /// The video's category (denormalised for cheap aggregation).
    pub category: VideoCategory,
    /// Representation that was streamed.
    pub representation: Representation,
    /// When playback started.
    pub start: SimTime,
    /// How long the user actually watched.
    pub watched: SimDuration,
    /// Full video length (for retention-curve normalisation).
    pub video_duration: SimDuration,
    /// `true` if the user reached the end rather than swiping away.
    pub completed: bool,
}

impl WatchSession {
    /// Fraction of the video watched, in `[0, 1]`.
    pub fn retention(&self) -> f64 {
        if self.video_duration == SimDuration::ZERO {
            return 0.0;
        }
        (self.watched.as_secs_f64() / self.video_duration.as_secs_f64()).clamp(0.0, 1.0)
    }

    /// Megabits delivered to the user during this session.
    pub fn traffic_megabits(&self) -> f64 {
        self.representation.bitrate.value() * self.watched.as_secs_f64()
    }
}

/// Parameters of the feed loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeedConfig {
    /// Dead time between swiping away and the next video starting.
    pub swipe_gap: SimDuration,
    /// Engagement behaviour.
    pub engagement: EngagementModel,
}

impl Default for FeedConfig {
    fn default() -> Self {
        Self {
            swipe_gap: SimDuration::from_millis(500),
            engagement: EngagementModel::default(),
        }
    }
}

/// Simulates one user's feed between `start` and `end`.
///
/// The user is shown preference-mixed recommendations
/// ([`Catalog::sample_for`]), watches each video according to the
/// engagement model at the given representation picker, swipes, and
/// repeats. The final session is truncated at `end`.
///
/// `pick_level` maps each candidate video to the representation that will
/// actually be streamed (in the full system this comes from the multicast
/// scheduler; tests can pass `|v| v.top_level()`).
pub fn simulate_feed<R, F>(
    profile: &UserProfile,
    catalog: &Catalog,
    config: &FeedConfig,
    start: SimTime,
    end: SimTime,
    mut pick_level: F,
    rng: &mut R,
) -> Vec<WatchSession>
where
    R: Rng + ?Sized,
    F: FnMut(&crate::catalog::Video) -> msvs_types::RepresentationLevel,
{
    let mut sessions = Vec::new();
    let mut now = start;
    while now < end {
        let video = catalog.sample_for(profile, rng);
        let level = pick_level(video);
        let representation = video
            .representation(level)
            .unwrap_or_else(|| video.ladder[0]);
        let interest = profile.interest(video.category) * profile.engagement_scale();
        let (mut watched, mut completed) =
            config
                .engagement
                .sample_watch(rng, interest, level, video.duration);
        // Truncate at the interval boundary.
        let remaining = end.since(now);
        if watched > remaining {
            watched = remaining;
            completed = false;
        }
        sessions.push(WatchSession {
            user: profile.user(),
            video: video.id,
            category: video.category,
            representation,
            start: now,
            watched,
            video_duration: video.duration,
            completed,
        });
        now += watched + config.swipe_gap;
    }
    sessions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::CatalogConfig;
    use msvs_types::RepresentationLevel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Catalog, UserProfile) {
        let catalog = Catalog::generate(CatalogConfig {
            n_videos: 300,
            seed: 3,
            ..Default::default()
        })
        .unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let profile = UserProfile::generate(UserId(1), 0.4, &mut rng);
        (catalog, profile)
    }

    #[test]
    fn sessions_tile_the_interval() {
        let (catalog, profile) = setup();
        let mut rng = StdRng::seed_from_u64(10);
        let start = SimTime::from_mins(0);
        let end = SimTime::from_mins(5);
        let sessions = simulate_feed(
            &profile,
            &catalog,
            &FeedConfig::default(),
            start,
            end,
            |v| v.top_level(),
            &mut rng,
        );
        assert!(!sessions.is_empty());
        let mut cursor = start;
        for s in &sessions {
            assert_eq!(s.start, cursor, "sessions must be contiguous");
            assert!(s.watched <= s.video_duration);
            cursor += s.watched + SimDuration::from_millis(500);
        }
        // Last session ends at or just before the boundary.
        let last = sessions.last().unwrap();
        assert!(last.start + last.watched <= end + SimDuration::from_millis(500));
    }

    #[test]
    fn short_interval_yields_truncated_single_session() {
        let (catalog, profile) = setup();
        let mut rng = StdRng::seed_from_u64(11);
        let sessions = simulate_feed(
            &profile,
            &catalog,
            &FeedConfig::default(),
            SimTime::ZERO,
            SimTime(1000),
            |v| v.top_level(),
            &mut rng,
        );
        assert!(!sessions.is_empty());
        assert!(sessions[0].watched <= SimDuration::from_secs(1));
    }

    #[test]
    fn retention_and_traffic_are_consistent() {
        let (catalog, profile) = setup();
        let mut rng = StdRng::seed_from_u64(12);
        let sessions = simulate_feed(
            &profile,
            &catalog,
            &FeedConfig::default(),
            SimTime::ZERO,
            SimTime::from_mins(10),
            |v| v.top_level(),
            &mut rng,
        );
        for s in &sessions {
            assert!((0.0..=1.0).contains(&s.retention()));
            if s.completed {
                assert!((s.retention() - 1.0).abs() < 1e-9);
            }
            assert!(s.traffic_megabits() >= 0.0);
        }
        let total: f64 = sessions.iter().map(|s| s.traffic_megabits()).sum();
        assert!(total > 0.0);
    }

    #[test]
    fn lower_level_picker_reduces_traffic() {
        let (catalog, profile) = setup();
        let run = |level: RepresentationLevel| {
            let mut rng = StdRng::seed_from_u64(13);
            simulate_feed(
                &profile,
                &catalog,
                &FeedConfig::default(),
                SimTime::ZERO,
                SimTime::from_mins(10),
                |_| level,
                &mut rng,
            )
            .iter()
            .map(|s| s.traffic_megabits())
            .sum::<f64>()
        };
        assert!(run(RepresentationLevel::P240) < run(RepresentationLevel::P1080));
    }

    #[test]
    fn feed_is_deterministic_per_seed() {
        let (catalog, profile) = setup();
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            simulate_feed(
                &profile,
                &catalog,
                &FeedConfig::default(),
                SimTime::ZERO,
                SimTime::from_mins(5),
                |v| v.top_level(),
                &mut rng,
            )
        };
        assert_eq!(run(7), run(7));
    }
}

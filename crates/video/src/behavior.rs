//! User preference and engagement behaviour.

use msvs_types::{Error, RepresentationLevel, Result, SimDuration, UserId, VideoCategory};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A user's stable content taste and engagement disposition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserProfile {
    user: UserId,
    preferences: Vec<f64>,
    engagement_scale: f64,
}

impl UserProfile {
    /// Draws a profile from a symmetric Dirichlet over categories.
    ///
    /// `alpha` controls taste sharpness: small alpha (≈0.3) produces users
    /// devoted to a few categories, large alpha (≈5) near-uniform tastes.
    /// The engagement scale is log-normal around 1 (some users linger,
    /// some flick).
    ///
    /// # Panics
    /// Panics if `alpha <= 0` (propagated from the Dirichlet sampler).
    pub fn generate<R: Rng + ?Sized>(user: UserId, alpha: f64, rng: &mut R) -> Self {
        let preferences = msvs_types::stats::dirichlet(rng, alpha, VideoCategory::COUNT);
        let engagement_scale = msvs_types::stats::log_normal(rng, 0.0, 0.3).clamp(0.3, 3.0);
        Self {
            user,
            preferences,
            engagement_scale,
        }
    }

    /// Builds a profile from an explicit preference vector.
    ///
    /// # Errors
    /// Returns `InvalidConfig` unless `preferences` has one non-negative
    /// entry per category summing to ~1 and `engagement_scale > 0`.
    pub fn from_preferences(
        user: UserId,
        preferences: Vec<f64>,
        engagement_scale: f64,
    ) -> Result<Self> {
        if preferences.len() != VideoCategory::COUNT {
            return Err(Error::invalid_config(
                "preferences",
                format!(
                    "need {} entries, got {}",
                    VideoCategory::COUNT,
                    preferences.len()
                ),
            ));
        }
        if preferences.iter().any(|&p| !(0.0..=1.0).contains(&p)) {
            return Err(Error::invalid_config(
                "preferences",
                "entries must be in [0, 1]",
            ));
        }
        let total: f64 = preferences.iter().sum();
        if (total - 1.0).abs() > 1e-6 {
            return Err(Error::invalid_config(
                "preferences",
                format!("must sum to 1, got {total}"),
            ));
        }
        if engagement_scale <= 0.0 {
            return Err(Error::invalid_config(
                "engagement_scale",
                "must be positive",
            ));
        }
        Ok(Self {
            user,
            preferences,
            engagement_scale,
        })
    }

    /// The user id.
    pub fn user(&self) -> UserId {
        self.user
    }

    /// Preference mass per category (sums to 1, category index order).
    pub fn preferences(&self) -> &[f64] {
        &self.preferences
    }

    /// Preference mass for one category.
    pub fn interest(&self, category: VideoCategory) -> f64 {
        self.preferences[category.index()]
    }

    /// Multiplier on watch durations (1 = average user).
    pub fn engagement_scale(&self) -> f64 {
        self.engagement_scale
    }

    /// The user's favourite category.
    pub fn favourite(&self) -> VideoCategory {
        let idx = self
            .preferences
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("preferences are finite"))
            .map(|(i, _)| i)
            .expect("preferences non-empty");
        VideoCategory::from_index(idx).expect("index in range")
    }

    /// Drifts preferences towards a recently-enjoyed category.
    ///
    /// `strength` in `[0, 1]`: 0 leaves the profile unchanged, 1 moves all
    /// mass to `category`. Preferences remain a probability vector.
    pub fn reinforce(&mut self, category: VideoCategory, strength: f64) {
        let s = strength.clamp(0.0, 1.0);
        for (i, p) in self.preferences.iter_mut().enumerate() {
            if i == category.index() {
                *p = *p * (1.0 - s) + s;
            } else {
                *p *= 1.0 - s;
            }
        }
    }
}

/// Maps user interest and representation quality to watch durations.
///
/// Watch duration is exponential with a mean that grows with interest and
/// degrades at low quality; completions happen when the sampled duration
/// reaches the video length. This produces exactly the per-category
/// cumulative swiping-probability curves the paper abstracts in Fig. 3(a).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngagementModel {
    /// Mean watch time of a neutral-interest user at top quality, seconds.
    pub base_mean_secs: f64,
    /// Fraction of the mean lost at the lowest quality level (0 = quality
    /// does not matter, 0.5 = bottom quality halves engagement).
    pub quality_sensitivity: f64,
}

impl Default for EngagementModel {
    fn default() -> Self {
        Self {
            base_mean_secs: 14.0,
            quality_sensitivity: 0.35,
        }
    }
}

impl EngagementModel {
    /// Expected watch time (untruncated) for a user whose interest in the
    /// category is `interest` (preference mass, neutral = 1/8) at `level`.
    pub fn mean_watch_secs(&self, interest: f64, level: RepresentationLevel) -> f64 {
        // Relative interest: 1.0 = neutral taste.
        let rel = (interest * VideoCategory::COUNT as f64).max(0.01);
        let q = level.index() as f64 / (RepresentationLevel::COUNT - 1) as f64;
        let quality_factor = 1.0 - self.quality_sensitivity * (1.0 - q);
        self.base_mean_secs * rel * quality_factor
    }

    /// Samples a watch duration for one video view.
    ///
    /// Returns `(watched, completed)`: `watched` never exceeds
    /// `video_duration`; `completed = true` means the user reached the end
    /// instead of swiping away.
    pub fn sample_watch<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        interest: f64,
        level: RepresentationLevel,
        video_duration: SimDuration,
    ) -> (SimDuration, bool) {
        let mean = self.mean_watch_secs(interest, level).max(0.1);
        let raw = msvs_types::stats::exponential(rng, 1.0 / mean);
        let cap = video_duration.as_secs_f64();
        if raw >= cap {
            (video_duration, true)
        } else {
            (SimDuration::from_secs_f64(raw), false)
        }
    }

    /// Analytic swipe probability before time `t` for the given interest
    /// and level: `F(t) = 1 - exp(-t / mean)`.
    pub fn swipe_cdf(&self, interest: f64, level: RepresentationLevel, t_secs: f64) -> f64 {
        let mean = self.mean_watch_secs(interest, level).max(0.1);
        1.0 - (-t_secs.max(0.0) / mean).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_profiles_are_valid() {
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..100 {
            let p = UserProfile::generate(UserId(i), 0.4, &mut rng);
            let total: f64 = p.preferences().iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
            assert!(p.engagement_scale() >= 0.3 && p.engagement_scale() <= 3.0);
        }
    }

    #[test]
    fn sharp_alpha_makes_opinionated_users() {
        let mut rng = StdRng::seed_from_u64(2);
        let sharp: f64 = (0..200)
            .map(|i| {
                let p = UserProfile::generate(UserId(i), 0.2, &mut rng);
                p.interest(p.favourite())
            })
            .sum::<f64>()
            / 200.0;
        let flat: f64 = (0..200)
            .map(|i| {
                let p = UserProfile::generate(UserId(i), 10.0, &mut rng);
                p.interest(p.favourite())
            })
            .sum::<f64>()
            / 200.0;
        assert!(sharp > flat + 0.2, "sharp {sharp} vs flat {flat}");
    }

    #[test]
    fn from_preferences_validates() {
        let ok = vec![1.0 / 8.0; 8];
        assert!(UserProfile::from_preferences(UserId(0), ok.clone(), 1.0).is_ok());
        assert!(UserProfile::from_preferences(UserId(0), vec![0.5; 8], 1.0).is_err());
        assert!(UserProfile::from_preferences(UserId(0), vec![0.5; 3], 1.0).is_err());
        assert!(UserProfile::from_preferences(UserId(0), ok, 0.0).is_err());
    }

    #[test]
    fn reinforce_shifts_mass_and_stays_normalised() {
        let mut p = UserProfile::from_preferences(UserId(0), vec![1.0 / 8.0; 8], 1.0).unwrap();
        let before = p.interest(VideoCategory::Music);
        p.reinforce(VideoCategory::Music, 0.3);
        assert!(p.interest(VideoCategory::Music) > before);
        let total: f64 = p.preferences().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(p.favourite(), VideoCategory::Music);
    }

    #[test]
    fn mean_watch_grows_with_interest() {
        let m = EngagementModel::default();
        let lo = m.mean_watch_secs(0.02, RepresentationLevel::P1080);
        let hi = m.mean_watch_secs(0.4, RepresentationLevel::P1080);
        assert!(hi > lo * 5.0);
    }

    #[test]
    fn mean_watch_degrades_at_low_quality() {
        let m = EngagementModel::default();
        let top = m.mean_watch_secs(0.125, RepresentationLevel::P1080);
        let bottom = m.mean_watch_secs(0.125, RepresentationLevel::P240);
        assert!(bottom < top);
        assert!((bottom / top - (1.0 - m.quality_sensitivity)).abs() < 1e-9);
    }

    #[test]
    fn sampled_watch_never_exceeds_video() {
        let m = EngagementModel::default();
        let mut rng = StdRng::seed_from_u64(3);
        let dur = SimDuration::from_secs(20);
        for _ in 0..2000 {
            let (w, completed) = m.sample_watch(&mut rng, 0.3, RepresentationLevel::P720, dur);
            assert!(w <= dur);
            if completed {
                assert_eq!(w, dur);
            }
        }
    }

    #[test]
    fn empirical_swipe_rate_matches_cdf() {
        let m = EngagementModel::default();
        let mut rng = StdRng::seed_from_u64(4);
        let dur = SimDuration::from_secs(60);
        let interest = 0.125;
        let t = 10.0;
        let n = 20_000;
        let swiped_by_t = (0..n)
            .filter(|_| {
                let (w, completed) =
                    m.sample_watch(&mut rng, interest, RepresentationLevel::P1080, dur);
                !completed && w.as_secs_f64() <= t
            })
            .count();
        let expected = m.swipe_cdf(interest, RepresentationLevel::P1080, t);
        let emp = swiped_by_t as f64 / n as f64;
        assert!((emp - expected).abs() < 0.02, "emp {emp} vs cdf {expected}");
    }

    #[test]
    fn high_interest_users_complete_more() {
        let m = EngagementModel::default();
        let mut rng = StdRng::seed_from_u64(5);
        let dur = SimDuration::from_secs(15);
        let completions = |interest: f64, rng: &mut StdRng| {
            (0..2000)
                .filter(|_| {
                    m.sample_watch(rng, interest, RepresentationLevel::P1080, dur)
                        .1
                })
                .count()
        };
        let hot = completions(0.5, &mut rng);
        let cold = completions(0.02, &mut rng);
        assert!(hot > cold * 3, "hot {hot} vs cold {cold}");
    }
}

//! Synthetic short-video dataset substrate.
//!
//! The paper evaluates on the public *short-video-streaming-challenge*
//! dataset (video bitrates + user swipe traces). That dataset is not
//! redistributable here, so this crate generates a statistically equivalent
//! workload (see DESIGN.md "Substitutions"):
//!
//! - [`catalog`] — a video catalog with Zipf popularity, per-category
//!   composition, realistic short-form durations and per-video bitrate
//!   ladders;
//! - [`behavior`] — per-user preference vectors (Dirichlet) and a
//!   preference-driven engagement model producing watch durations and
//!   swipe decisions;
//! - [`session`] — feed simulation: a user swipes through recommended
//!   videos over an interval, producing the watch sessions that base
//!   stations report into the digital twins.
//!
//! # Examples
//!
//! ```
//! use msvs_video::{Catalog, CatalogConfig, UserProfile, EngagementModel};
//! use rand::{SeedableRng, rngs::StdRng};
//!
//! let catalog = Catalog::generate(CatalogConfig { n_videos: 200, seed: 1,
//!     ..Default::default() }).unwrap();
//! let mut rng = StdRng::seed_from_u64(2);
//! let profile = UserProfile::generate(msvs_types::UserId(0), 0.4, &mut rng);
//! let video = catalog.sample_for(&profile, &mut rng);
//! let model = EngagementModel::default();
//! let (watched, completed) = model.sample_watch(
//!     &mut rng, profile.interest(video.category), video.top_level(), video.duration);
//! assert!(watched <= video.duration);
//! let _ = completed;
//! ```

pub mod behavior;
pub mod catalog;
pub mod session;

pub use behavior::{EngagementModel, UserProfile};
pub use catalog::{Catalog, CatalogConfig, CatalogRow, Video};
pub use session::{simulate_feed, FeedConfig, WatchSession};

//! Swappable compute backends behind one kernel API.
//!
//! Every inference entry point — [`crate::Tensor::matmul`],
//! [`crate::Layer::infer_into`], [`crate::Sequential::infer_scratch`] —
//! routes through a [`ComputeBackend`] handle instead of calling the
//! [`crate::kernels`] free functions directly. Three implementations ship:
//!
//! - [`ScalarBackend`] — the PR-5 kernels verbatim. This is the bit-exact
//!   reference path every other backend is cross-checked against, and the
//!   default everywhere.
//! - [`SimdBackend`] — manual `f32x8`-style lane unrolling with a scalar
//!   tail. Lanes run across *independent output elements* (GEMM columns,
//!   conv output positions), never across a reduction, so each output
//!   element sees the exact term sequence of the scalar kernel and the
//!   result is **bit-identical** to [`ScalarBackend`]. Gated behind the
//!   `simd` cargo feature (default-on); without it the backend falls back
//!   to the scalar kernels so every build configuration still compiles.
//! - [`QuantizedBackend`] — per-tensor symmetric int8 weights with f32
//!   accumulation, intended for the frozen `CnnCompressor` encode path
//!   only. Approximate by design: per output element the error is bounded
//!   by `Σ|x_i| * scale/2` (half a quantization step per weight, see
//!   [`QuantTensor::step`]). Training, backprop and the DDQN never touch
//!   it — gradients need the exact f32 weights.
//!
//! Backends are zero-sized unit structs handed around as
//! `&'static dyn ComputeBackend` ([`BackendKind::handle`]), so selection
//! is a plain `Copy` enum that flows through configuration like
//! `threads`/`shards` do.

use crate::kernels;

/// Per-tensor symmetric int8 quantization of an f32 weight tensor:
/// `scale = max|w| / 127`, `q_i = round(w_i / scale)`, dequantized on the
/// fly as `q_i * scale` with f32 accumulation.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantTensor {
    q: Vec<i8>,
    scale: f32,
}

impl QuantTensor {
    /// Quantizes `w`. An all-zero tensor gets `scale = 1.0` (every code
    /// is zero, so the scale is arbitrary but must stay finite).
    pub fn quantize(w: &[f32]) -> Self {
        let max_abs = w.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
        let q = w
            .iter()
            .map(|&v| (v / scale).round().clamp(-127.0, 127.0) as i8)
            .collect();
        Self { q, scale }
    }

    /// The int8 codes.
    pub fn q(&self) -> &[i8] {
        &self.q
    }

    /// The dequantization scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Upper bound on `|q_i * scale − w_i|` per weight: half a
    /// quantization step. The per-output-element error of a quantized dot
    /// product is at most `step() * Σ|x_i|` (plus f32 accumulation noise).
    pub fn step(&self) -> f32 {
        self.scale * 0.5
    }

    /// The dequantized weight at `i`.
    pub fn dequant(&self, i: usize) -> f32 {
        f32::from(self.q[i]) * self.scale
    }
}

/// Lazily-populated int8 cache a layer keeps next to its f32 weights.
///
/// `get_or_quantize` takes `&self` (so frozen networks stay shareable
/// across threads); [`invalidate`](Self::invalidate) takes `&mut self`
/// and is called from the layer's single weight-mutation site (see
/// `Dense::set_weights`), so a training step can never serve stale codes.
/// Cloning a cell yields an empty one — a cloned network (DDQN target
/// sync) re-quantizes lazily if it is ever encoded, which in practice it
/// never is.
#[derive(Debug, Default)]
pub struct QuantCell {
    cell: std::sync::OnceLock<QuantTensor>,
}

impl Clone for QuantCell {
    fn clone(&self) -> Self {
        Self::default()
    }
}

impl QuantCell {
    /// The cached quantization, computing it from `w` on first use.
    pub fn get_or_quantize(&self, w: &[f32]) -> &QuantTensor {
        self.cell.get_or_init(|| QuantTensor::quantize(w))
    }

    /// Drops the cache; the next `get_or_quantize` re-quantizes.
    pub fn invalidate(&mut self) {
        self.cell = std::sync::OnceLock::new();
    }

    /// Whether a quantization is currently cached.
    pub fn is_populated(&self) -> bool {
        self.cell.get().is_some()
    }
}

/// A dense layer's weights as a backend sees them: the cached transpose
/// in `[in_dim, out_dim]` row-major layout, the bias, and the layer's
/// int8 cache (quantized from `w_t`, populated only by
/// [`QuantizedBackend`]).
pub struct DenseWeights<'a> {
    /// Pre-transposed weight, `[in_dim, out_dim]` row-major.
    pub w_t: &'a [f32],
    /// Bias, `[out_dim]`.
    pub bias: &'a [f32],
    /// Lazily-quantized view of `w_t`.
    pub quant: &'a QuantCell,
}

/// A conv1d layer's weights as a backend sees them.
pub struct ConvWeights<'a> {
    /// Weight, `[out_ch, in_ch, kernel]` row-major.
    pub weight: &'a [f32],
    /// Bias, `[out_ch]`.
    pub bias: &'a [f32],
    /// Lazily-quantized view of `weight`.
    pub quant: &'a QuantCell,
}

/// Geometry of one conv1d inference call.
#[derive(Debug, Clone, Copy)]
pub struct ConvDims {
    /// Batch rows.
    pub batch: usize,
    /// Input channels.
    pub in_ch: usize,
    /// Input length per channel.
    pub in_len: usize,
    /// Output channels.
    pub out_ch: usize,
    /// Kernel width.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Output length, `(in_len - kernel) / stride + 1`.
    pub out_len: usize,
}

/// One set of inference kernels. All methods operate on the flat buffers
/// of the caller's [`crate::Scratch`] arena and must uphold each kernel's
/// shape contract (documented on the [`crate::kernels`] reference
/// implementations).
pub trait ComputeBackend: Send + Sync {
    /// Short stable identifier (`scalar`, `simd`, `int8`) recorded in run
    /// manifests and bench documents.
    fn name(&self) -> &'static str;

    /// `out[m, n] = a[m, k] x b[k, n]`, skipping zero elements of `a`.
    /// Serves [`crate::Tensor::matmul`]; quantized backends keep this
    /// exact (raw matmuls appear in training, which stays f32).
    fn gemm_zero_skip(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize);

    /// Dense inference: `out[batch, out_dim] = input x w_t + bias`.
    fn dense_infer(
        &self,
        input: &[f32],
        weights: DenseWeights<'_>,
        out: &mut [f32],
        batch: usize,
        in_dim: usize,
        out_dim: usize,
    );

    /// Conv1d inference over `[batch, in_ch, in_len]`; `patch` is the
    /// backend's im2col workspace from the scratch arena.
    fn conv1d_infer(
        &self,
        input: &[f32],
        weights: ConvWeights<'_>,
        out: &mut [f32],
        patch: &mut Vec<f32>,
        dims: ConvDims,
    );

    /// Elementwise ReLU with the reference NaN semantics (`v <= 0.0`
    /// maps to `0.0`, NaN propagates).
    fn relu(&self, input: &[f32], out: &mut Vec<f32>);

    /// Elementwise tanh.
    fn tanh(&self, input: &[f32], out: &mut Vec<f32>);
}

/// The `&'static` scalar reference backend (also the internal default for
/// every training-path call site).
pub fn scalar() -> &'static dyn ComputeBackend {
    &ScalarBackend
}

/// The PR-5 allocation-free kernels, unchanged: the bit-exact reference
/// path and the default backend.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarBackend;

impl ComputeBackend for ScalarBackend {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn gemm_zero_skip(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        kernels::gemm_zero_skip(a, b, out, m, k, n);
    }

    fn dense_infer(
        &self,
        input: &[f32],
        weights: DenseWeights<'_>,
        out: &mut [f32],
        batch: usize,
        in_dim: usize,
        out_dim: usize,
    ) {
        kernels::dense_infer(
            input,
            weights.w_t,
            weights.bias,
            out,
            batch,
            in_dim,
            out_dim,
        );
    }

    fn conv1d_infer(
        &self,
        input: &[f32],
        weights: ConvWeights<'_>,
        out: &mut [f32],
        patch: &mut Vec<f32>,
        dims: ConvDims,
    ) {
        kernels::conv1d_infer(
            input,
            weights.weight,
            weights.bias,
            out,
            patch,
            dims.batch,
            dims.in_ch,
            dims.in_len,
            dims.out_ch,
            dims.kernel,
            dims.stride,
            dims.out_len,
        );
    }

    fn relu(&self, input: &[f32], out: &mut Vec<f32>) {
        out.clear();
        // `v <= 0.0` (not `max`) so NaN propagates.
        out.extend(input.iter().map(|&v| if v <= 0.0 { 0.0 } else { v }));
    }

    fn tanh(&self, input: &[f32], out: &mut Vec<f32>) {
        out.clear();
        out.extend(input.iter().map(|v| v.tanh()));
    }
}

/// Lane-unrolled kernels. Lanes always run across independent output
/// elements — each element's accumulation sequence is exactly the scalar
/// kernel's, so results are bit-identical; only *which element* advances
/// next changes.
#[cfg(feature = "simd")]
mod lanes {
    use super::ConvDims;

    pub(super) const LANES: usize = 8;

    /// `dst[j] += a * src[j]` in 8-wide lanes with a scalar tail. No zero
    /// skip — callers that need one (the GEMM) apply it per `a`.
    #[inline]
    pub(super) fn axpy(dst: &mut [f32], src: &[f32], a: f32) {
        let mut d_chunks = dst.chunks_exact_mut(LANES);
        let mut s_chunks = src.chunks_exact(LANES);
        for (d, s) in (&mut d_chunks).zip(&mut s_chunks) {
            let mut dv = [0.0f32; LANES];
            let mut sv = [0.0f32; LANES];
            dv.copy_from_slice(d);
            sv.copy_from_slice(s);
            for l in 0..LANES {
                dv[l] += a * sv[l];
            }
            d.copy_from_slice(&dv);
        }
        for (d, &s) in d_chunks
            .into_remainder()
            .iter_mut()
            .zip(s_chunks.remainder())
        {
            *d += a * s;
        }
    }

    /// The scalar GEMM's loop structure with the inner axpy lane-unrolled.
    /// Per output element the same terms accumulate in the same
    /// increasing-`p` order from a `0.0` start: bit-identical.
    pub(super) fn gemm_zero_skip(
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), k * n);
        debug_assert_eq!(out.len(), m * n);
        const GEMM_BLOCK: usize = 64;
        for i in 0..m {
            let dst = &mut out[i * n..(i + 1) * n];
            dst.fill(0.0);
            let a_row = &a[i * k..(i + 1) * k];
            let mut j0 = 0;
            while j0 < n {
                let jw = GEMM_BLOCK.min(n - j0);
                for (p, &av) in a_row.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    axpy(&mut dst[j0..j0 + jw], &b[p * n + j0..p * n + j0 + jw], av);
                }
                j0 += jw;
            }
        }
    }

    /// Widest `out_ch` the stack accumulator covers; wider convolutions
    /// (none exist in the codebase today) fall back to the scalar kernel.
    const MAX_LANED_OUT_CH: usize = 64;

    /// Conv1d as a per-position row-GEMM: the scalar kernel's t-major
    /// im2col rows multiplied against a transposed weight `w_t[i][oc]`,
    /// so the innermost loop runs across the contiguous `out_ch` lane
    /// dimension instead of the scalar kernel's serial length-`ick` dot
    /// reduction (which an f32 compiler may not reassociate). Per output
    /// element the accumulator starts at `bias[oc]` and adds
    /// `w[i] * x[i]` in increasing `i` (`ic`-major / `k`-minor) order —
    /// the exact sequence of the scalar kernel, hence bit-identical
    /// despite the different memory walk.
    pub(super) fn conv1d_infer(
        input: &[f32],
        weight: &[f32],
        bias: &[f32],
        out: &mut [f32],
        patch: &mut Vec<f32>,
        dims: ConvDims,
    ) {
        let ConvDims {
            batch,
            in_ch,
            in_len,
            out_ch,
            kernel,
            stride,
            out_len,
        } = dims;
        let ick = in_ch * kernel;
        debug_assert_eq!(input.len(), batch * in_ch * in_len);
        debug_assert_eq!(weight.len(), out_ch * ick);
        debug_assert_eq!(bias.len(), out_ch);
        debug_assert_eq!(out.len(), batch * out_ch * out_len);
        if out_ch > MAX_LANED_OUT_CH {
            crate::kernels::conv1d_infer(
                input, weight, bias, out, patch, batch, in_ch, in_len, out_ch, kernel, stride,
                out_len,
            );
            return;
        }
        // One scratch buffer holds the transposed weight followed by one
        // sample's im2col rows, keeping the backend allocation-free in
        // steady state.
        patch.clear();
        patch.resize(ick * out_ch + out_len * ick, 0.0);
        let (w_t, rows) = patch.split_at_mut(ick * out_ch);
        for (oc, wrow) in weight.chunks_exact(ick).enumerate() {
            for (i, &wv) in wrow.iter().enumerate() {
                w_t[i * out_ch + oc] = wv;
            }
        }
        let mut acc = [0.0f32; MAX_LANED_OUT_CH];
        let acc = &mut acc[..out_ch];
        for b in 0..batch {
            let x = &input[b * in_ch * in_len..(b + 1) * in_ch * in_len];
            crate::kernels::im2col_rows(x, rows, in_ch, in_len, kernel, stride, out_len);
            let dst = &mut out[b * out_ch * out_len..(b + 1) * out_ch * out_len];
            for t in 0..out_len {
                let row = &rows[t * ick..(t + 1) * ick];
                acc.copy_from_slice(bias);
                for (i, &pv) in row.iter().enumerate() {
                    let wt_row = &w_t[i * out_ch..(i + 1) * out_ch];
                    for (a, &wv) in acc.iter_mut().zip(wt_row) {
                        *a += wv * pv;
                    }
                }
                for (oc, &av) in acc.iter().enumerate() {
                    dst[oc * out_len + t] = av;
                }
            }
        }
    }

    /// Elementwise lane ReLU with the reference NaN semantics.
    pub(super) fn relu(input: &[f32], out: &mut Vec<f32>) {
        out.clear();
        out.reserve(input.len());
        let mut chunks = input.chunks_exact(LANES);
        for s in &mut chunks {
            let mut v = [0.0f32; LANES];
            v.copy_from_slice(s);
            for x in &mut v {
                if *x <= 0.0 {
                    *x = 0.0;
                }
            }
            out.extend_from_slice(&v);
        }
        out.extend(
            chunks
                .remainder()
                .iter()
                .map(|&v| if v <= 0.0 { 0.0 } else { v }),
        );
    }
}

/// Manual `f32x8`-style lane unrolling with a scalar tail; bit-identical
/// to [`ScalarBackend`] by construction (lanes run across independent
/// output elements only). Without the `simd` cargo feature every method
/// falls back to the scalar kernels, so feature-less builds still get a
/// working (if unaccelerated) backend.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimdBackend;

impl ComputeBackend for SimdBackend {
    fn name(&self) -> &'static str {
        "simd"
    }

    fn gemm_zero_skip(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        #[cfg(feature = "simd")]
        lanes::gemm_zero_skip(a, b, out, m, k, n);
        #[cfg(not(feature = "simd"))]
        kernels::gemm_zero_skip(a, b, out, m, k, n);
    }

    fn dense_infer(
        &self,
        input: &[f32],
        weights: DenseWeights<'_>,
        out: &mut [f32],
        batch: usize,
        in_dim: usize,
        out_dim: usize,
    ) {
        debug_assert_eq!(input.len(), batch * in_dim);
        debug_assert_eq!(weights.w_t.len(), in_dim * out_dim);
        debug_assert_eq!(weights.bias.len(), out_dim);
        debug_assert_eq!(out.len(), batch * out_dim);
        self.gemm_zero_skip(input, weights.w_t, out, batch, in_dim, out_dim);
        // Elementwise bias add after the sum, exactly as the scalar
        // kernel orders it.
        for dst in out.chunks_exact_mut(out_dim) {
            for (d, &bv) in dst.iter_mut().zip(weights.bias) {
                *d += bv;
            }
        }
    }

    fn conv1d_infer(
        &self,
        input: &[f32],
        weights: ConvWeights<'_>,
        out: &mut [f32],
        patch: &mut Vec<f32>,
        dims: ConvDims,
    ) {
        #[cfg(feature = "simd")]
        lanes::conv1d_infer(input, weights.weight, weights.bias, out, patch, dims);
        #[cfg(not(feature = "simd"))]
        ScalarBackend.conv1d_infer(input, weights, out, patch, dims);
    }

    fn relu(&self, input: &[f32], out: &mut Vec<f32>) {
        #[cfg(feature = "simd")]
        lanes::relu(input, out);
        #[cfg(not(feature = "simd"))]
        ScalarBackend.relu(input, out);
    }

    fn tanh(&self, input: &[f32], out: &mut Vec<f32>) {
        // Elementwise transcendental: the scalar path is already
        // per-element, so there is nothing to lane-unroll without
        // changing bits.
        ScalarBackend.tanh(input, out);
    }
}

/// Per-tensor symmetric int8 weights, f32 accumulate. Layer weights come
/// from each layer's [`QuantCell`] (populated lazily, invalidated on
/// weight writes); activations and raw [`Tensor::matmul`] stay exact f32,
/// which keeps training and the DDQN untouched even if this backend were
/// (mis)applied to them.
///
/// [`Tensor::matmul`]: crate::Tensor::matmul
#[derive(Debug, Clone, Copy, Default)]
pub struct QuantizedBackend;

impl ComputeBackend for QuantizedBackend {
    fn name(&self) -> &'static str {
        "int8"
    }

    fn gemm_zero_skip(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        // Raw matmuls have no weight cache to quantize and appear only in
        // training; keep them exact.
        kernels::gemm_zero_skip(a, b, out, m, k, n);
    }

    fn dense_infer(
        &self,
        input: &[f32],
        weights: DenseWeights<'_>,
        out: &mut [f32],
        batch: usize,
        in_dim: usize,
        out_dim: usize,
    ) {
        debug_assert_eq!(input.len(), batch * in_dim);
        debug_assert_eq!(weights.bias.len(), out_dim);
        debug_assert_eq!(out.len(), batch * out_dim);
        let qt = weights.quant.get_or_quantize(weights.w_t);
        debug_assert_eq!(qt.q().len(), in_dim * out_dim);
        let (q, scale) = (qt.q(), qt.scale());
        for b in 0..batch {
            let x = &input[b * in_dim..(b + 1) * in_dim];
            let dst = &mut out[b * out_dim..(b + 1) * out_dim];
            // Accumulate x * q in f32 (int8 codes are exact in f32), then
            // apply the shared scale once and add the f32 bias.
            dst.fill(0.0);
            for (p, &av) in x.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let q_row = &q[p * out_dim..(p + 1) * out_dim];
                for (d, &qv) in dst.iter_mut().zip(q_row) {
                    *d += av * f32::from(qv);
                }
            }
            for (d, &bv) in dst.iter_mut().zip(weights.bias) {
                *d = *d * scale + bv;
            }
        }
    }

    fn conv1d_infer(
        &self,
        input: &[f32],
        weights: ConvWeights<'_>,
        out: &mut [f32],
        patch: &mut Vec<f32>,
        dims: ConvDims,
    ) {
        let ConvDims {
            batch,
            in_ch,
            in_len,
            out_ch,
            kernel,
            stride,
            out_len,
        } = dims;
        let ick = in_ch * kernel;
        debug_assert_eq!(input.len(), batch * in_ch * in_len);
        debug_assert_eq!(weights.bias.len(), out_ch);
        debug_assert_eq!(out.len(), batch * out_ch * out_len);
        let qt = weights.quant.get_or_quantize(weights.weight);
        debug_assert_eq!(qt.q().len(), out_ch * ick);
        let (q, scale) = (qt.q(), qt.scale());
        patch.clear();
        patch.resize(out_len * ick, 0.0);
        for b in 0..batch {
            let x = &input[b * in_ch * in_len..(b + 1) * in_ch * in_len];
            kernels::im2col_rows(x, patch, in_ch, in_len, kernel, stride, out_len);
            let dst = &mut out[b * out_ch * out_len..(b + 1) * out_ch * out_len];
            for oc in 0..out_ch {
                let q_row = &q[oc * ick..(oc + 1) * ick];
                let base = weights.bias[oc];
                for t in 0..out_len {
                    let row = &patch[t * ick..(t + 1) * ick];
                    let mut acc = 0.0f32;
                    for (&qv, &pv) in q_row.iter().zip(row) {
                        acc += f32::from(qv) * pv;
                    }
                    dst[oc * out_len + t] = acc * scale + base;
                }
            }
        }
    }

    fn relu(&self, input: &[f32], out: &mut Vec<f32>) {
        // Activations stay f32.
        ScalarBackend.relu(input, out);
    }

    fn tanh(&self, input: &[f32], out: &mut Vec<f32>) {
        ScalarBackend.tanh(input, out);
    }
}

/// Backend selection as configuration: a `Copy` enum that flows through
/// `SimulationConfig` → runner → predictor exactly like `threads` and
/// `shards` do, resolved to a handle only at the kernel call sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendKind {
    /// The bit-exact reference kernels (the default).
    #[default]
    Scalar,
    /// Lane-unrolled kernels, bit-identical to scalar.
    Simd,
    /// Per-tensor symmetric int8 weights, approximate.
    Int8,
}

impl BackendKind {
    /// Every backend, in cross-check order (scalar first).
    pub const ALL: [BackendKind; 3] = [BackendKind::Scalar, BackendKind::Simd, BackendKind::Int8];

    /// The stable identifier used on CLIs, in `MSVS_BACKEND`, and in
    /// bench/manifest documents.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Scalar => "scalar",
            BackendKind::Simd => "simd",
            BackendKind::Int8 => "int8",
        }
    }

    /// Parses an identifier (`scalar`, `simd`, `int8`; `quantized` is an
    /// accepted alias for `int8`).
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim() {
            "scalar" => Some(BackendKind::Scalar),
            "simd" => Some(BackendKind::Simd),
            "int8" | "quantized" => Some(BackendKind::Int8),
            _ => None,
        }
    }

    /// The backend implementation this kind names.
    pub fn handle(self) -> &'static dyn ComputeBackend {
        match self {
            BackendKind::Scalar => &ScalarBackend,
            BackendKind::Simd => &SimdBackend,
            BackendKind::Int8 => &QuantizedBackend,
        }
    }
}

impl std::str::FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s).ok_or_else(|| format!("unknown backend `{s}` (expected scalar|simd|int8)"))
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const CASES: u64 = 48;

    /// Seeded per-(property, case) RNG, mirroring `tests/properties.rs`.
    fn case_rng(property: u64, case: u64) -> StdRng {
        StdRng::seed_from_u64(property.wrapping_mul(0x9E37_79B9) ^ case)
    }

    fn random_vec(rng: &mut StdRng, n: usize) -> Vec<f32> {
        (0..n)
            .map(|_| {
                // Exact zeros exercise the zero-skip branches.
                if rng.gen_range(0..5) == 0 {
                    0.0f32
                } else {
                    rng.gen_range(-2.0..2.0) as f32
                }
            })
            .collect()
    }

    fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i}: {x} vs {y}");
        }
    }

    #[test]
    fn kind_round_trips_names_and_handles() {
        for kind in BackendKind::ALL {
            assert_eq!(BackendKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.name().parse::<BackendKind>().unwrap(), kind);
            assert_eq!(kind.handle().name(), kind.name());
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!(BackendKind::parse("quantized"), Some(BackendKind::Int8));
        assert_eq!(BackendKind::default(), BackendKind::Scalar);
        assert!(BackendKind::parse("gpu").is_none());
        assert!("gpu".parse::<BackendKind>().is_err());
    }

    #[test]
    fn quantize_round_trips_within_half_a_step() {
        let mut rng = case_rng(0x11, 0);
        let w = random_vec(&mut rng, 257);
        let qt = QuantTensor::quantize(&w);
        for (i, &v) in w.iter().enumerate() {
            let err = (qt.dequant(i) - v).abs();
            assert!(
                err <= qt.step() * 1.0001,
                "weight {i}: {v} -> {} (err {err} > step {})",
                qt.dequant(i),
                qt.step()
            );
        }
        // All-zero tensors stay finite and decode to zero.
        let zero = QuantTensor::quantize(&[0.0; 8]);
        assert_eq!(zero.scale(), 1.0);
        assert!(zero.q().iter().all(|&q| q == 0));
    }

    #[test]
    fn quant_cell_invalidate_drops_the_cache() {
        let mut cell = QuantCell::default();
        assert!(!cell.is_populated());
        let first = cell.get_or_quantize(&[1.0, -2.0]).clone();
        assert!(cell.is_populated());
        // While populated the cell ignores new weights (the layer
        // invalidates at its write site).
        assert_eq!(cell.get_or_quantize(&[9.9, 9.9]), &first);
        cell.invalidate();
        assert!(!cell.is_populated());
        assert_ne!(cell.get_or_quantize(&[9.9, 9.9]), &first);
        // Clones start empty.
        assert!(!cell.clone().is_populated());
    }

    /// Randomized-shape property: SIMD GEMM is bit-identical to scalar.
    #[test]
    fn simd_gemm_bit_identical_across_random_shapes() {
        for case in 0..CASES {
            let mut rng = case_rng(0x51, case);
            let (m, k, n) = (
                rng.gen_range(1..9usize),
                rng.gen_range(1..40usize),
                rng.gen_range(1..150usize),
            );
            let a = random_vec(&mut rng, m * k);
            let b = random_vec(&mut rng, k * n);
            let mut want = vec![f32::NAN; m * n];
            let mut got = vec![f32::NAN; m * n];
            ScalarBackend.gemm_zero_skip(&a, &b, &mut want, m, k, n);
            SimdBackend.gemm_zero_skip(&a, &b, &mut got, m, k, n);
            assert_bits_eq(&got, &want, &format!("gemm case {case} ({m}x{k}x{n})"));
        }
    }

    fn random_dense_case(case: u64) -> (StdRng, usize, usize, usize, Vec<f32>, Vec<f32>, Vec<f32>) {
        let mut rng = case_rng(0xDE, case);
        let (batch, in_dim, out_dim) = (
            rng.gen_range(1..7usize),
            rng.gen_range(1..33usize),
            rng.gen_range(1..90usize),
        );
        let input = random_vec(&mut rng, batch * in_dim);
        let w_t = random_vec(&mut rng, in_dim * out_dim);
        let bias = random_vec(&mut rng, out_dim);
        (rng, batch, in_dim, out_dim, input, w_t, bias)
    }

    /// Randomized-shape property: SIMD dense is bit-identical to scalar.
    #[test]
    fn simd_dense_bit_identical_across_random_shapes() {
        for case in 0..CASES {
            let (_, batch, in_dim, out_dim, input, w_t, bias) = random_dense_case(case);
            let cell = QuantCell::default();
            let weights = DenseWeights {
                w_t: &w_t,
                bias: &bias,
                quant: &cell,
            };
            let mut want = vec![f32::NAN; batch * out_dim];
            let mut got = vec![f32::NAN; batch * out_dim];
            ScalarBackend.dense_infer(&input, weights, &mut want, batch, in_dim, out_dim);
            SimdBackend.dense_infer(
                &input,
                DenseWeights {
                    w_t: &w_t,
                    bias: &bias,
                    quant: &cell,
                },
                &mut got,
                batch,
                in_dim,
                out_dim,
            );
            assert_bits_eq(&got, &want, &format!("dense case {case}"));
            assert!(!cell.is_populated(), "exact backends must not quantize");
        }
    }

    /// Randomized-shape property: int8 dense stays within the documented
    /// per-element tolerance `step * Σ|x_i|` (plus f32 accumulation
    /// slop) of the scalar reference.
    #[test]
    fn quantized_dense_within_documented_tolerance() {
        for case in 0..CASES {
            let (_, batch, in_dim, out_dim, input, w_t, bias) = random_dense_case(case);
            let cell = QuantCell::default();
            let mut want = vec![f32::NAN; batch * out_dim];
            let mut got = vec![f32::NAN; batch * out_dim];
            ScalarBackend.dense_infer(
                &input,
                DenseWeights {
                    w_t: &w_t,
                    bias: &bias,
                    quant: &cell,
                },
                &mut want,
                batch,
                in_dim,
                out_dim,
            );
            QuantizedBackend.dense_infer(
                &input,
                DenseWeights {
                    w_t: &w_t,
                    bias: &bias,
                    quant: &cell,
                },
                &mut got,
                batch,
                in_dim,
                out_dim,
            );
            let step = cell.get_or_quantize(&w_t).step();
            for b in 0..batch {
                let x_l1: f32 = input[b * in_dim..(b + 1) * in_dim]
                    .iter()
                    .map(|v| v.abs())
                    .sum();
                let bound = step * x_l1 * 1.001 + 1e-4;
                for j in 0..out_dim {
                    let (w, g) = (want[b * out_dim + j], got[b * out_dim + j]);
                    assert!(
                        (w - g).abs() <= bound,
                        "dense case {case} [{b},{j}]: {w} vs {g} (bound {bound})"
                    );
                }
            }
        }
    }

    fn random_conv_case(case: u64) -> (ConvDims, Vec<f32>, Vec<f32>, Vec<f32>) {
        let mut rng = case_rng(0xC0, case);
        let (batch, in_ch, out_ch) = (
            rng.gen_range(1..5usize),
            rng.gen_range(1..6usize),
            rng.gen_range(1..9usize),
        );
        let kernel = rng.gen_range(1..6usize);
        let stride = rng.gen_range(1..4usize);
        let in_len = kernel + rng.gen_range(0..40usize);
        let out_len = (in_len - kernel) / stride + 1;
        let dims = ConvDims {
            batch,
            in_ch,
            in_len,
            out_ch,
            kernel,
            stride,
            out_len,
        };
        let input = random_vec(&mut case_rng(0xC1, case), batch * in_ch * in_len);
        let weight = random_vec(&mut case_rng(0xC2, case), out_ch * in_ch * kernel);
        let bias = random_vec(&mut case_rng(0xC3, case), out_ch);
        (dims, input, weight, bias)
    }

    /// Randomized-shape property: SIMD conv1d (transposed-patch axpy) is
    /// bit-identical to the scalar im2col kernel.
    #[test]
    fn simd_conv_bit_identical_across_random_shapes() {
        for case in 0..CASES {
            let (dims, input, weight, bias) = random_conv_case(case);
            let cell = QuantCell::default();
            let n = dims.batch * dims.out_ch * dims.out_len;
            let (mut want, mut got) = (vec![f32::NAN; n], vec![f32::NAN; n]);
            let (mut p1, mut p2) = (Vec::new(), Vec::new());
            ScalarBackend.conv1d_infer(
                &input,
                ConvWeights {
                    weight: &weight,
                    bias: &bias,
                    quant: &cell,
                },
                &mut want,
                &mut p1,
                dims,
            );
            SimdBackend.conv1d_infer(
                &input,
                ConvWeights {
                    weight: &weight,
                    bias: &bias,
                    quant: &cell,
                },
                &mut got,
                &mut p2,
                dims,
            );
            assert_bits_eq(&got, &want, &format!("conv case {case} ({dims:?})"));
        }
    }

    /// Randomized-shape property: int8 conv1d stays within
    /// `step * Σ|patch_i|` per output element.
    #[test]
    fn quantized_conv_within_documented_tolerance() {
        for case in 0..CASES {
            let (dims, input, weight, bias) = random_conv_case(case);
            let cell = QuantCell::default();
            let n = dims.batch * dims.out_ch * dims.out_len;
            let (mut want, mut got) = (vec![f32::NAN; n], vec![f32::NAN; n]);
            let (mut p1, mut p2) = (Vec::new(), Vec::new());
            ScalarBackend.conv1d_infer(
                &input,
                ConvWeights {
                    weight: &weight,
                    bias: &bias,
                    quant: &cell,
                },
                &mut want,
                &mut p1,
                dims,
            );
            QuantizedBackend.conv1d_infer(
                &input,
                ConvWeights {
                    weight: &weight,
                    bias: &bias,
                    quant: &cell,
                },
                &mut got,
                &mut p2,
                dims,
            );
            let step = cell.get_or_quantize(&weight).step();
            let ick = dims.in_ch * dims.kernel;
            for b in 0..dims.batch {
                for oc in 0..dims.out_ch {
                    for t in 0..dims.out_len {
                        // Rebuild the receptive field's L1 norm.
                        let mut x_l1 = 0.0f32;
                        for ic in 0..dims.in_ch {
                            for k in 0..dims.kernel {
                                x_l1 += input
                                    [(b * dims.in_ch + ic) * dims.in_len + t * dims.stride + k]
                                    .abs();
                            }
                        }
                        let bound = step * x_l1 * 1.001 + 1e-4;
                        let idx = (b * dims.out_ch + oc) * dims.out_len + t;
                        assert!(
                            (want[idx] - got[idx]).abs() <= bound,
                            "conv case {case} [{b},{oc},{t}] (ick {ick}): {} vs {} (bound {bound})",
                            want[idx],
                            got[idx]
                        );
                    }
                }
            }
        }
    }

    /// Activations: SIMD relu is bit-identical (NaN semantics included);
    /// every backend's tanh is the scalar tanh.
    #[test]
    fn activations_cross_check() {
        let mut rng = case_rng(0xAC, 0);
        let mut input = random_vec(&mut rng, 1027);
        input[13] = f32::NAN;
        input[14] = -0.0;
        for kind in BackendKind::ALL {
            let backend = kind.handle();
            let (mut want, mut got) = (Vec::new(), Vec::new());
            ScalarBackend.relu(&input, &mut want);
            backend.relu(&input, &mut got);
            assert_bits_eq(&got, &want, &format!("relu {}", kind.name()));
            ScalarBackend.tanh(&input, &mut want);
            backend.tanh(&input, &mut got);
            assert_bits_eq(&got, &want, &format!("tanh {}", kind.name()));
        }
    }
}

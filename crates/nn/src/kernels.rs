//! Allocation-free inference kernels: im2col + cache-blocked GEMM.
//!
//! Every kernel here reproduces the exact f32 operation sequence of the
//! naive loops it replaces — same terms, same order, same accumulator
//! start — so outputs are **bit-identical** to the pre-kernel code. That
//! invariant is what lets the 1-vs-4-thread determinism suite (and the
//! frozen-compressor embedding cache) treat kernel and non-kernel paths
//! as interchangeable.
//!
//! Buffers come from a caller-owned [`Scratch`] arena; in steady state
//! (same network, same batch shape) a forward pass through
//! [`crate::Sequential::infer_scratch`] performs zero heap allocations.

/// Block width (columns of the output) for the GEMM inner loops. One
/// output block plus one rhs row block stay resident in L1 while the
/// `p` loop streams over the shared dimension.
const GEMM_BLOCK: usize = 64;

/// A small fixed-rank shape, copyable so layer kernels can pass it by
/// value instead of allocating `Vec<usize>` per call.
///
/// # Examples
/// ```
/// # use msvs_nn::Shape;
/// let s = Shape::rank3(2, 4, 16);
/// assert_eq!(s.dims(), &[2, 4, 16]);
/// assert_eq!(s.len(), 128);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shape {
    dims: [usize; 3],
    rank: usize,
}

impl Shape {
    /// A rank-2 shape `[a, b]`.
    pub fn rank2(a: usize, b: usize) -> Self {
        Self {
            dims: [a, b, 1],
            rank: 2,
        }
    }

    /// A rank-3 shape `[a, b, c]`.
    pub fn rank3(a: usize, b: usize, c: usize) -> Self {
        Self {
            dims: [a, b, c],
            rank: 3,
        }
    }

    /// Builds a shape from a dims slice.
    ///
    /// # Panics
    /// Panics if `dims` is empty or longer than 3.
    pub fn from_dims(dims: &[usize]) -> Self {
        assert!(
            !dims.is_empty() && dims.len() <= 3,
            "kernel shapes are rank 1..=3, got {dims:?}"
        );
        let mut d = [1usize; 3];
        d[..dims.len()].copy_from_slice(dims);
        Self {
            dims: d,
            rank: dims.len(),
        }
    }

    /// The dims as a slice of length `rank`.
    pub fn dims(&self) -> &[usize] {
        &self.dims[..self.rank]
    }

    /// The rank (1..=3).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.dims().iter().product()
    }

    /// Always false: shapes have at least one dim by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The dims as an owned vector (for [`Tensor`] round-trips).
    pub fn to_vec(&self) -> Vec<usize> {
        self.dims().to_vec()
    }
}

/// Reusable per-worker buffer arena for inference.
///
/// `bufs` ping-pong layer activations through
/// [`crate::Sequential::infer_scratch`]; `patch` holds the im2col
/// expansion of the current conv input. All three grow to a high-water
/// mark on first use and are reused verbatim afterwards.
#[derive(Debug, Default)]
pub struct Scratch {
    pub(crate) bufs: [Vec<f32>; 2],
    pub(crate) patch: Vec<f32>,
}

impl Scratch {
    /// Builds an empty arena; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current total capacity across the arena's buffers, in elements.
    /// Steady-state inference leaves this constant call-to-call.
    pub fn capacity(&self) -> usize {
        self.bufs[0].capacity() + self.bufs[1].capacity() + self.patch.capacity()
    }
}

/// `out[m, n] = a[m, k] x b[k, n]`, skipping zero elements of `a`.
///
/// Bit-identical to the naive `i/p/j` triple loop with an `a == 0.0`
/// skip: per output element the same terms accumulate in the same
/// (increasing-`p`) order from a `0.0` start. Column blocking only
/// reorders *which element* is updated next, never the term order
/// within one element, so IEEE-754 results are unchanged.
///
/// # Panics
/// Panics (debug) if slice lengths disagree with `m`/`k`/`n`.
pub fn gemm_zero_skip(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let dst = &mut out[i * n..(i + 1) * n];
        dst.fill(0.0);
        let a_row = &a[i * k..(i + 1) * k];
        let mut j0 = 0;
        while j0 < n {
            let jw = GEMM_BLOCK.min(n - j0);
            for (p, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let b_blk = &b[p * n + j0..p * n + j0 + jw];
                let d_blk = &mut dst[j0..j0 + jw];
                for (d, &bv) in d_blk.iter_mut().zip(b_blk) {
                    *d += av * bv;
                }
            }
            j0 += jw;
        }
    }
}

/// Dense inference: `out[batch, out_dim] = input x w_t + bias` with
/// `w_t` the **pre-transposed** weight in `[in_dim, out_dim]` row-major
/// layout (see `Dense`'s cached transpose).
///
/// The multiply is [`gemm_zero_skip`] verbatim, so the `input == 0.0`
/// skip sits one loop *above* a contiguous branch-free inner axpy —
/// putting the skip in the innermost dot product instead defeats
/// auto-vectorisation and costs ~4x on the DDQN hot path. Bit-identical
/// to `input.matmul(&weight.transpose())` followed by a bias add: same
/// terms, same increasing-`p` order, bias after the sum.
pub fn dense_infer(
    input: &[f32],
    w_t: &[f32],
    bias: &[f32],
    out: &mut [f32],
    batch: usize,
    in_dim: usize,
    out_dim: usize,
) {
    debug_assert_eq!(input.len(), batch * in_dim);
    debug_assert_eq!(w_t.len(), in_dim * out_dim);
    debug_assert_eq!(bias.len(), out_dim);
    debug_assert_eq!(out.len(), batch * out_dim);
    gemm_zero_skip(input, w_t, out, batch, in_dim, out_dim);
    for dst in out.chunks_exact_mut(out_dim) {
        for (d, &bv) in dst.iter_mut().zip(bias) {
            *d += bv;
        }
    }
}

/// Fills `patch[out_len, in_ch * kernel]` with the im2col expansion of
/// one batch row `x = [in_ch, in_len]`:
/// `patch[t][ic * kernel + k] = x[ic][t * stride + k]`.
/// Shared by [`conv1d_infer`] and the quantized conv backend.
pub(crate) fn im2col_rows(
    x: &[f32],
    patch: &mut [f32],
    in_ch: usize,
    in_len: usize,
    kernel: usize,
    stride: usize,
    out_len: usize,
) {
    let ick = in_ch * kernel;
    debug_assert_eq!(x.len(), in_ch * in_len);
    debug_assert_eq!(patch.len(), out_len * ick);
    for t in 0..out_len {
        let start = t * stride;
        let row = &mut patch[t * ick..(t + 1) * ick];
        for ic in 0..in_ch {
            let src = &x[ic * in_len + start..ic * in_len + start + kernel];
            row[ic * kernel..(ic + 1) * kernel].copy_from_slice(src);
        }
    }
}

/// 1-D convolution inference via im2col + row-dot GEMM.
///
/// `input` is `[batch, in_ch, in_len]`, `weight` is
/// `[out_ch, in_ch, kernel]` (both row-major), `out` is
/// `[batch, out_ch, out_len]`. Per batch the input is unrolled into
/// `patch[out_len, in_ch * kernel]` with
/// `patch[t][ic * kernel + k] = input[b][ic][t * stride + k]`, which
/// makes each output element one contiguous dot product against a
/// weight row. The accumulator starts at `bias[oc]` and adds terms in
/// `ic`-major / `k`-minor order with no zero skip — the exact sequence
/// of the direct 5-deep loop, hence bit-identical.
#[allow(clippy::too_many_arguments)]
pub fn conv1d_infer(
    input: &[f32],
    weight: &[f32],
    bias: &[f32],
    out: &mut [f32],
    patch: &mut Vec<f32>,
    batch: usize,
    in_ch: usize,
    in_len: usize,
    out_ch: usize,
    kernel: usize,
    stride: usize,
    out_len: usize,
) {
    let ick = in_ch * kernel;
    debug_assert_eq!(input.len(), batch * in_ch * in_len);
    debug_assert_eq!(weight.len(), out_ch * ick);
    debug_assert_eq!(bias.len(), out_ch);
    debug_assert_eq!(out.len(), batch * out_ch * out_len);
    patch.clear();
    patch.resize(out_len * ick, 0.0);
    for b in 0..batch {
        let x = &input[b * in_ch * in_len..(b + 1) * in_ch * in_len];
        im2col_rows(x, patch, in_ch, in_len, kernel, stride, out_len);
        let dst = &mut out[b * out_ch * out_len..(b + 1) * out_ch * out_len];
        for oc in 0..out_ch {
            let w = &weight[oc * ick..(oc + 1) * ick];
            let base = bias[oc];
            for t in 0..out_len {
                let row = &patch[t * ick..(t + 1) * ick];
                let mut acc = base;
                for (&wv, &pv) in w.iter().zip(row) {
                    acc += wv * pv;
                }
                dst[oc * out_len + t] = acc;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_vec(rng: &mut StdRng, n: usize) -> Vec<f32> {
        (0..n)
            .map(|_| {
                // Mix in exact zeros so the zero-skip branch is exercised.
                if rng.gen_range(0..5) == 0 {
                    0.0f32
                } else {
                    rng.gen_range(-2.0..2.0) as f32
                }
            })
            .collect()
    }

    /// The pre-kernel matmul: i/p/j loop, zero skip, memory-slot
    /// accumulation. The GEMM must match it to the bit.
    fn reference_matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                let av = a[i * k + p];
                if av == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out[i * n + j] += av * b[p * n + j];
                }
            }
        }
        out
    }

    /// The pre-kernel direct 5-deep conv loop.
    #[allow(clippy::too_many_arguments)]
    fn reference_conv(
        input: &[f32],
        weight: &[f32],
        bias: &[f32],
        batch: usize,
        in_ch: usize,
        in_len: usize,
        out_ch: usize,
        kernel: usize,
        stride: usize,
        out_len: usize,
    ) -> Vec<f32> {
        let mut out = vec![0.0f32; batch * out_ch * out_len];
        for b in 0..batch {
            for oc in 0..out_ch {
                for t in 0..out_len {
                    let start = t * stride;
                    let mut acc = bias[oc];
                    for ic in 0..in_ch {
                        for k in 0..kernel {
                            acc += weight[(oc * in_ch + ic) * kernel + k]
                                * input[(b * in_ch + ic) * in_len + start + k];
                        }
                    }
                    out[(b * out_ch + oc) * out_len + t] = acc;
                }
            }
        }
        out
    }

    fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i}: {x} vs {y}");
        }
    }

    #[test]
    fn gemm_bit_identical_to_reference_across_shapes() {
        let mut rng = StdRng::seed_from_u64(0xB10C);
        // Spans tiny, non-square, and wider-than-one-block shapes.
        for &(m, k, n) in &[(1, 1, 1), (2, 3, 4), (7, 5, 130), (16, 33, 64), (3, 90, 9)] {
            let a = random_vec(&mut rng, m * k);
            let b = random_vec(&mut rng, k * n);
            let mut out = vec![f32::NAN; m * n]; // kernel must overwrite
            gemm_zero_skip(&a, &b, &mut out, m, k, n);
            let want = reference_matmul(&a, &b, m, k, n);
            assert_bits_eq(&out, &want, &format!("gemm {m}x{k}x{n}"));
        }
    }

    #[test]
    fn dense_bit_identical_to_matmul_transpose_reference() {
        let mut rng = StdRng::seed_from_u64(0xDE5E);
        for &(batch, in_dim, out_dim) in &[(1, 1, 1), (4, 7, 3), (9, 16, 80)] {
            let input = random_vec(&mut rng, batch * in_dim);
            let weight = random_vec(&mut rng, out_dim * in_dim);
            let bias = random_vec(&mut rng, out_dim);
            // Reference: matmul against explicit transpose, bias after.
            let mut wt = vec![0.0f32; in_dim * out_dim];
            for o in 0..out_dim {
                for p in 0..in_dim {
                    wt[p * out_dim + o] = weight[o * in_dim + p];
                }
            }
            let mut want = reference_matmul(&input, &wt, batch, in_dim, out_dim);
            for b in 0..batch {
                for o in 0..out_dim {
                    want[b * out_dim + o] += bias[o];
                }
            }
            let mut out = vec![f32::NAN; batch * out_dim];
            dense_infer(&input, &wt, &bias, &mut out, batch, in_dim, out_dim);
            assert_bits_eq(&out, &want, &format!("dense {batch}x{in_dim}x{out_dim}"));
        }
    }

    #[test]
    fn conv_bit_identical_to_direct_loop_reference() {
        let mut rng = StdRng::seed_from_u64(0xC0DE);
        for &(batch, in_ch, in_len, out_ch, kernel, stride) in &[
            (1, 1, 3, 1, 3, 1),
            (2, 4, 16, 8, 3, 2),
            (3, 8, 7, 8, 3, 2),
            (5, 2, 31, 6, 5, 3),
        ] {
            let out_len = (in_len - kernel) / stride + 1;
            let input = random_vec(&mut rng, batch * in_ch * in_len);
            let weight = random_vec(&mut rng, out_ch * in_ch * kernel);
            let bias = random_vec(&mut rng, out_ch);
            let mut out = vec![f32::NAN; batch * out_ch * out_len];
            let mut patch = Vec::new();
            conv1d_infer(
                &input, &weight, &bias, &mut out, &mut patch, batch, in_ch, in_len, out_ch, kernel,
                stride, out_len,
            );
            let want = reference_conv(
                &input, &weight, &bias, batch, in_ch, in_len, out_ch, kernel, stride, out_len,
            );
            assert_bits_eq(
                &out,
                &want,
                &format!("conv b{batch} c{in_ch}->{out_ch} l{in_len} k{kernel} s{stride}"),
            );
        }
    }

    #[test]
    fn shape_round_trips() {
        let s = Shape::from_dims(&[3, 4]);
        assert_eq!(s, Shape::rank2(3, 4));
        assert_eq!(s.rank(), 2);
        assert_eq!(s.len(), 12);
        assert_eq!(s.to_vec(), vec![3, 4]);
        assert!(!s.is_empty());
        let t = Shape::from_dims(&[2, 3, 4]);
        assert_eq!(t, Shape::rank3(2, 3, 4));
        assert_eq!(t.dims(), &[2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "rank 1..=3")]
    fn shape_rejects_rank_4() {
        let _ = Shape::from_dims(&[1, 2, 3, 4]);
    }

    #[test]
    fn scratch_capacity_is_stable_across_repeated_inference() {
        use crate::{Conv1d, Dense, Flatten, Relu, Sequential};
        let net = Sequential::new(vec![
            Box::new(Conv1d::new(4, 8, 3, 2, 1)),
            Box::new(Relu::new()),
            Box::new(Flatten::new()),
            Box::new(Dense::new(8 * 7, 8, 2)),
        ]);
        let x = Tensor::from_vec(
            (0..2 * 4 * 16)
                .map(|i| (i % 13) as f32 * 0.1 - 0.6)
                .collect(),
            vec![2, 4, 16],
        )
        .unwrap();
        let mut scratch = Scratch::new();
        let backend = crate::backend::scalar();
        let first: Vec<f32> = {
            let (data, shape) = net.infer_scratch(&x, &mut scratch, backend);
            assert_eq!(shape.dims(), &[2, 8]);
            data.to_vec()
        };
        let warm = scratch.capacity();
        assert!(warm > 0);
        for _ in 0..10 {
            let (data, _) = net.infer_scratch(&x, &mut scratch, backend);
            assert_eq!(data, &first[..], "steady-state outputs identical");
        }
        assert_eq!(
            scratch.capacity(),
            warm,
            "no buffer growth after the first pass"
        );
    }
}

//! Layer composition.

use crate::backend::{self, ComputeBackend};
use crate::kernels::{Scratch, Shape};
use crate::layers::Layer;
use crate::tensor::Tensor;

/// A feed-forward stack of layers applied in order.
///
/// # Examples
/// ```
/// use msvs_nn::{Sequential, Dense, Relu, Tensor};
/// let mut net = Sequential::new(vec![
///     Box::new(Dense::new(4, 8, 1)),
///     Box::new(Relu::new()),
///     Box::new(Dense::new(8, 2, 2)),
/// ]);
/// let x = Tensor::zeros(vec![3, 4]);
/// assert_eq!(net.forward(&x, false).shape(), &[3, 2]);
/// ```
#[derive(Clone)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sequential")
            .field("layers", &self.layers.len())
            .field("param_count", &self.count_params())
            .finish()
    }
}

impl Sequential {
    /// Builds a network from an ordered list of layers.
    ///
    /// # Panics
    /// Panics if `layers` is empty.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        assert!(!layers.is_empty(), "network needs at least one layer");
        Self { layers }
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Always false: construction requires at least one layer.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Runs the network forward. `train = true` caches activations so a
    /// subsequent [`Sequential::backward`] can run.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, train);
        }
        x
    }

    /// Inference-only forward pass through `&self`. Numerically identical to
    /// `forward(input, false)` but never touches layer caches, so a frozen
    /// network can be shared across threads (`Sequential: Sync`).
    pub fn infer(&self, input: &Tensor) -> Tensor {
        let mut scratch = Scratch::new();
        let (data, shape) = self.infer_scratch(input, &mut scratch, backend::scalar());
        Tensor::from_vec(data.to_vec(), shape.to_vec()).expect("kernel output matches shape")
    }

    /// Allocation-free inference: activations ping-pong through the two
    /// buffers of a caller-owned [`Scratch`] arena, so steady-state calls
    /// (same architecture and batch shape) perform zero heap allocations.
    /// Returns a view of the final activation plus its shape. `backend`
    /// picks the kernel implementation (see [`crate::backend`]); with the
    /// scalar or SIMD backend this is bit-identical to
    /// [`Sequential::infer`].
    pub fn infer_scratch<'s>(
        &self,
        input: &Tensor,
        scratch: &'s mut Scratch,
        backend: &dyn ComputeBackend,
    ) -> (&'s [f32], Shape) {
        let mut cur = std::mem::take(&mut scratch.bufs[0]);
        let mut next = std::mem::take(&mut scratch.bufs[1]);
        let mut patch = std::mem::take(&mut scratch.patch);
        let mut shape = Shape::from_dims(input.shape());
        shape = self.layers[0].infer_into(input.data(), shape, &mut cur, &mut patch, backend);
        for layer in &self.layers[1..] {
            shape = layer.infer_into(&cur, shape, &mut next, &mut patch, backend);
            std::mem::swap(&mut cur, &mut next);
        }
        scratch.bufs[0] = cur;
        scratch.bufs[1] = next;
        scratch.patch = patch;
        (&scratch.bufs[0][..shape.len()], shape)
    }

    /// Backpropagates the loss gradient, accumulating parameter gradients.
    ///
    /// # Panics
    /// Panics if the preceding forward pass was not in training mode.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// Zeroes all accumulated parameter gradients.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Visits every `(value, grad)` parameter pair in stable order.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    /// Total number of scalar parameters.
    pub fn count_params(&self) -> usize {
        // visit_params needs &mut; clone the boxed layers' counts instead by
        // visiting on a temporary clone would be wasteful, so count via a
        // shared trick: clone_box is cheap for small nets but unnecessary —
        // use interior iteration on an immutable self is impossible with the
        // trait as defined, so we keep a mutable helper.
        let mut me = self.clone();
        let mut n = 0;
        me.visit_params(&mut |v, _| n += v.len());
        n
    }

    /// Copies all parameters from `source` into `self` (target-network sync).
    ///
    /// # Panics
    /// Panics if the two networks have different architectures.
    pub fn copy_params_from(&mut self, source: &Sequential) {
        let mut src = source.clone();
        let mut values: Vec<Tensor> = Vec::new();
        src.visit_params(&mut |v, _| values.push(v.clone()));
        let mut i = 0;
        self.visit_params(&mut |v, _| {
            assert!(i < values.len(), "architecture mismatch");
            assert_eq!(v.shape(), values[i].shape(), "architecture mismatch");
            *v = values[i].clone();
            i += 1;
        });
        assert_eq!(i, values.len(), "architecture mismatch");
    }

    /// Soft-updates parameters: `self = tau * source + (1 - tau) * self`.
    ///
    /// # Panics
    /// Panics if architectures differ or `tau` is outside `[0, 1]`.
    pub fn soft_update_from(&mut self, source: &Sequential, tau: f32) {
        assert!((0.0..=1.0).contains(&tau), "tau must be in [0, 1]");
        let mut src = source.clone();
        let mut values: Vec<Tensor> = Vec::new();
        src.visit_params(&mut |v, _| values.push(v.clone()));
        let mut i = 0;
        self.visit_params(&mut |v, _| {
            assert_eq!(v.shape(), values[i].shape(), "architecture mismatch");
            for (dst, s) in v.data_mut().iter_mut().zip(values[i].data()) {
                *dst = tau * s + (1.0 - tau) * *dst;
            }
            i += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu};

    fn tiny_net(seed: u64) -> Sequential {
        Sequential::new(vec![
            Box::new(Dense::new(2, 4, seed)),
            Box::new(Relu::new()),
            Box::new(Dense::new(4, 1, seed + 1)),
        ])
    }

    #[test]
    fn forward_shape() {
        let mut net = tiny_net(3);
        let y = net.forward(&Tensor::zeros(vec![5, 2]), false);
        assert_eq!(y.shape(), &[5, 1]);
    }

    #[test]
    fn count_params() {
        let net = tiny_net(3);
        // Dense(2,4): 8 + 4; Dense(4,1): 4 + 1.
        assert_eq!(net.count_params(), 17);
    }

    #[test]
    fn copy_params_makes_outputs_equal() {
        let mut a = tiny_net(1);
        let mut b = tiny_net(99);
        let x = Tensor::from_vec(vec![0.3, -0.8], vec![1, 2]).unwrap();
        assert_ne!(a.forward(&x, false).data(), b.forward(&x, false).data());
        b.copy_params_from(&a);
        assert_eq!(a.forward(&x, false).data(), b.forward(&x, false).data());
    }

    #[test]
    fn soft_update_converges_to_source() {
        let a = tiny_net(1);
        let mut b = tiny_net(99);
        for _ in 0..200 {
            b.soft_update_from(&a, 0.1);
        }
        let x = Tensor::from_vec(vec![0.5, 0.5], vec![1, 2]).unwrap();
        let ya = a.clone().forward(&x, false);
        let yb = b.forward(&x, false);
        assert!((ya.data()[0] - yb.data()[0]).abs() < 1e-3);
    }

    #[test]
    fn soft_update_tau_one_is_copy() {
        let a = tiny_net(1);
        let mut b = tiny_net(2);
        b.soft_update_from(&a, 1.0);
        let x = Tensor::from_vec(vec![1.0, 2.0], vec![1, 2]).unwrap();
        assert_eq!(
            a.clone().forward(&x, false).data(),
            b.forward(&x, false).data()
        );
    }

    #[test]
    #[should_panic(expected = "architecture mismatch")]
    fn copy_params_rejects_mismatch() {
        let a = tiny_net(1);
        let mut b = Sequential::new(vec![Box::new(Dense::new(3, 1, 0))]);
        b.copy_params_from(&a);
    }

    #[test]
    fn infer_matches_eval_forward() {
        let mut net = tiny_net(7);
        let x = Tensor::from_vec(vec![0.4, -1.2, 0.0, 2.5], vec![2, 2]).unwrap();
        let via_forward = net.forward(&x, false);
        let via_infer = net.infer(&x);
        assert_eq!(via_forward.data(), via_infer.data());
        assert_eq!(via_forward.shape(), via_infer.shape());
    }

    #[test]
    fn infer_is_shareable_across_threads() {
        let net = tiny_net(7);
        let x = Tensor::from_vec(vec![0.4, -1.2], vec![1, 2]).unwrap();
        let expected = net.infer(&x);
        let outputs: Vec<Tensor> = std::thread::scope(|s| {
            (0..4)
                .map(|_| s.spawn(|| net.infer(&x)))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for y in outputs {
            assert_eq!(y.data(), expected.data());
        }
    }

    #[test]
    fn infer_scratch_backends_cross_check() {
        use crate::backend::BackendKind;
        use crate::layers::{Conv1d, Flatten, MaxPool1d, Tanh};
        // Exercises every layer kind the compressor/DDQN stacks use.
        let net = Sequential::new(vec![
            Box::new(Conv1d::new(3, 6, 3, 1, 21)),
            Box::new(Relu::new()),
            Box::new(MaxPool1d::new(2)),
            Box::new(Flatten::new()),
            Box::new(Dense::new(6 * 7, 4, 22)),
            Box::new(Tanh::new()),
        ]);
        let x = Tensor::from_vec(
            (0..2 * 3 * 16)
                .map(|i| ((i * 11) % 17) as f32 * 0.1 - 0.8)
                .collect(),
            vec![2, 3, 16],
        )
        .unwrap();
        let mut scratch = Scratch::new();
        let (want, want_shape) = {
            let (d, s) = net.infer_scratch(&x, &mut scratch, BackendKind::Scalar.handle());
            (d.to_vec(), s)
        };
        let (simd, simd_shape) = {
            let (d, s) = net.infer_scratch(&x, &mut scratch, BackendKind::Simd.handle());
            (d.to_vec(), s)
        };
        assert_eq!(simd_shape, want_shape);
        for (i, (a, b)) in want.iter().zip(&simd).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "simd element {i}: {a} vs {b}");
        }
        let (int8, int8_shape) = {
            let (d, s) = net.infer_scratch(&x, &mut scratch, BackendKind::Int8.handle());
            (d.to_vec(), s)
        };
        assert_eq!(int8_shape, want_shape);
        // Post-tanh activations are in [-1, 1]; quantization error through
        // this tiny net stays well inside a coarse envelope.
        for (i, (a, b)) in want.iter().zip(&int8).enumerate() {
            assert!((a - b).abs() < 0.15, "int8 element {i} drifted: {a} vs {b}");
        }
    }

    #[test]
    fn debug_is_nonempty() {
        let net = tiny_net(0);
        let s = format!("{net:?}");
        assert!(s.contains("Sequential"));
        assert!(s.contains("param_count"));
    }
}

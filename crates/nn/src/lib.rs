//! From-scratch CPU neural-network substrate.
//!
//! The paper's scheme needs two small neural networks — a 1D-CNN that
//! compresses time-series digital-twin data, and the Q-networks inside a
//! DDQN agent. Rust's ML ecosystem is not mature enough to depend on for a
//! reproducible build (see DESIGN.md), so this crate implements the minimum
//! viable stack: a dense/convolutional [`Sequential`] network with manual
//! reverse-mode differentiation, and SGD/Adam optimizers.
//!
//! Networks here are deliberately small and CPU-friendly; all math is `f32`.
//!
//! # Examples
//!
//! Fit a tiny regression:
//!
//! ```
//! use msvs_nn::{Sequential, Dense, Relu, Adam, Optimizer, mse_loss, Tensor};
//!
//! let mut net = Sequential::new(vec![
//!     Box::new(Dense::new(1, 16, 7)),
//!     Box::new(Relu::new()),
//!     Box::new(Dense::new(16, 1, 8)),
//! ]);
//! let mut opt = Adam::new(1e-2);
//! let x = Tensor::from_vec(vec![0.0, 0.5, 1.0, 1.5], vec![4, 1]).unwrap();
//! let y = Tensor::from_vec(vec![0.0, 1.0, 2.0, 3.0], vec![4, 1]).unwrap();
//! let mut last = f32::MAX;
//! for _ in 0..300 {
//!     let pred = net.forward(&x, true);
//!     let (loss, grad) = mse_loss(&pred, &y);
//!     net.zero_grad();
//!     net.backward(&grad);
//!     opt.step(&mut net);
//!     last = loss;
//! }
//! assert!(last < 0.05, "loss {last}");
//! ```

pub mod backend;
pub mod kernels;
pub mod layers;
pub mod loss;
pub mod network;
pub mod optim;
pub mod tensor;

pub use backend::{
    BackendKind, ComputeBackend, ConvDims, ConvWeights, DenseWeights, QuantCell, QuantTensor,
    QuantizedBackend, ScalarBackend, SimdBackend,
};
pub use kernels::{Scratch, Shape};
pub use layers::{Conv1d, Dense, DuelingHead, Flatten, Layer, MaxPool1d, Relu, Tanh};
pub use loss::{huber_loss, masked_mse_loss, mse_loss};
pub use network::Sequential;
pub use optim::{Adam, Optimizer, Sgd};
pub use tensor::Tensor;

//! Loss functions returning `(scalar loss, gradient w.r.t. prediction)`.

use crate::tensor::Tensor;

/// Mean-squared error over all elements.
///
/// Returns the scalar loss and `dL/dpred`.
///
/// # Panics
/// Panics if shapes differ.
///
/// # Examples
/// ```
/// # use msvs_nn::{Tensor, mse_loss};
/// let pred = Tensor::from_slice(&[1.0, 2.0]);
/// let target = Tensor::from_slice(&[1.0, 4.0]);
/// let (loss, grad) = mse_loss(&pred, &target);
/// assert_eq!(loss, 2.0); // (0 + 4) / 2
/// assert_eq!(grad.data(), &[0.0, -2.0]); // 2 (pred - target) / n
/// ```
pub fn mse_loss(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "mse shapes must match");
    let n = pred.len() as f32;
    let mut grad = pred.clone();
    let mut loss = 0.0;
    for (g, t) in grad.data_mut().iter_mut().zip(target.data()) {
        let diff = *g - t;
        loss += diff * diff;
        *g = 2.0 * diff / n;
    }
    (loss / n, grad)
}

/// Huber (smooth-L1) loss with threshold `delta`, averaged over elements.
///
/// Quadratic for `|err| <= delta`, linear beyond — the standard choice for
/// DQN targets because it bounds gradient magnitude.
///
/// # Panics
/// Panics if shapes differ or `delta <= 0`.
pub fn huber_loss(pred: &Tensor, target: &Tensor, delta: f32) -> (f32, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "huber shapes must match");
    assert!(delta > 0.0, "delta must be positive");
    let n = pred.len() as f32;
    let mut grad = pred.clone();
    let mut loss = 0.0;
    for (g, t) in grad.data_mut().iter_mut().zip(target.data()) {
        let diff = *g - t;
        if diff.abs() <= delta {
            loss += 0.5 * diff * diff;
            *g = diff / n;
        } else {
            loss += delta * (diff.abs() - 0.5 * delta);
            *g = delta * diff.signum() / n;
        }
    }
    (loss / n, grad)
}

/// Masked MSE: only elements where `mask` is non-zero contribute.
///
/// Used for DQN updates where only the taken action's Q-value is trained.
///
/// # Panics
/// Panics if shapes differ.
pub fn masked_mse_loss(pred: &Tensor, target: &Tensor, mask: &Tensor) -> (f32, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "masked mse shapes must match");
    assert_eq!(pred.shape(), mask.shape(), "mask shape must match");
    let active = mask.data().iter().filter(|m| **m != 0.0).count().max(1) as f32;
    let mut grad = pred.clone();
    let mut loss = 0.0;
    for ((g, t), m) in grad
        .data_mut()
        .iter_mut()
        .zip(target.data())
        .zip(mask.data())
    {
        if *m == 0.0 {
            *g = 0.0;
            continue;
        }
        let diff = *g - t;
        loss += diff * diff;
        *g = 2.0 * diff / active;
    }
    (loss / active, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_zero_at_match() {
        let p = Tensor::from_slice(&[1.0, -2.0, 3.0]);
        let (loss, grad) = mse_loss(&p, &p);
        assert_eq!(loss, 0.0);
        assert!(grad.data().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn huber_is_quadratic_inside_delta() {
        let p = Tensor::from_slice(&[0.5]);
        let t = Tensor::from_slice(&[0.0]);
        let (loss, grad) = huber_loss(&p, &t, 1.0);
        assert!((loss - 0.125).abs() < 1e-6);
        assert!((grad.data()[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn huber_is_linear_outside_delta() {
        let p = Tensor::from_slice(&[10.0]);
        let t = Tensor::from_slice(&[0.0]);
        let (loss, grad) = huber_loss(&p, &t, 1.0);
        assert!((loss - 9.5).abs() < 1e-6);
        assert_eq!(grad.data()[0], 1.0, "gradient clipped at delta");
    }

    #[test]
    fn huber_gradient_is_bounded() {
        let p = Tensor::from_slice(&[-100.0, 100.0]);
        let t = Tensor::from_slice(&[0.0, 0.0]);
        let (_, grad) = huber_loss(&p, &t, 1.0);
        assert!(grad.data().iter().all(|g| g.abs() <= 0.5 + 1e-6));
    }

    #[test]
    fn masked_mse_ignores_masked_out() {
        let p = Tensor::from_slice(&[1.0, 99.0]);
        let t = Tensor::from_slice(&[0.0, 0.0]);
        let m = Tensor::from_slice(&[1.0, 0.0]);
        let (loss, grad) = masked_mse_loss(&p, &t, &m);
        assert_eq!(loss, 1.0);
        assert_eq!(grad.data()[1], 0.0);
        assert_eq!(grad.data()[0], 2.0);
    }

    #[test]
    fn masked_mse_all_masked_is_zero() {
        let p = Tensor::from_slice(&[1.0]);
        let t = Tensor::from_slice(&[0.0]);
        let m = Tensor::from_slice(&[0.0]);
        let (loss, grad) = masked_mse_loss(&p, &t, &m);
        assert_eq!(loss, 0.0);
        assert_eq!(grad.data(), &[0.0]);
    }

    #[test]
    #[should_panic(expected = "shapes must match")]
    fn mse_rejects_mismatch() {
        let _ = mse_loss(&Tensor::zeros(vec![2]), &Tensor::zeros(vec![3]));
    }
}
